// Package mrclone is a Go reproduction of "Task-Cloning Algorithms in a
// MapReduce Cluster with Competitive Performance Bounds" (Huanle Xu and
// Wing Cheong Lau, ICDCS 2015).
//
// The package provides:
//
//   - SRPTMS+C, the paper's online task-cloning scheduler, together with the
//     offline bulk-arrival algorithm and the Mantri, SCA, Fair, and SRPT
//     baselines, all behind one Scheduler interface;
//   - a time-slotted MapReduce cluster simulator with Map→Reduce precedence
//     and min-of-copies cloning semantics (Section III of the paper);
//   - a synthetic Google-trace generator calibrated to the paper's Table II;
//   - a statistical-distribution library (internal/dist) with the paper's
//     heavy-tailed workload models — Pareto, bounded Pareto, lognormal, and
//     the closed-form Pareto cloning-speedup — plus exponential, Weibull,
//     empirical (trace-fitted), and mixture families for scenario diversity,
//     all sampled from seeded deterministic streams;
//   - a parallel experiment-orchestration subsystem (internal/runner) that
//     expresses a study as a run matrix — schedulers × sweep points × seed
//     replicates — and executes its cells on a bounded worker pool with
//     deterministic per-cell seed derivation, so results and artifacts are
//     byte-identical at any parallelism level (exported as RunMatrix with
//     WithParallelism / WithProgress / WithRawResults);
//   - the full experiment harness regenerating every figure and table of the
//     paper's evaluation plus numerical checks of both theorems, all running
//     on the matrix runner;
//   - a simulation-as-a-service subsystem (internal/service, served by
//     cmd/mrserved): canonical versioned spec serialization with a
//     deterministic, stable content hash (internal/service/spec), a bounded
//     FIFO job queue feeding a worker pool of matrix runs, single-flight
//     deduplication plus a byte-budgeted, TTL-expiring content-addressed
//     result cache — sound because equal specs produce byte-identical
//     artifacts — and an HTTP/JSON API with Server-Sent-Events progress
//     streaming (exported as NewService / ParseServiceSpec / ServiceSpec);
//   - a durable persistence layer for that service (internal/store, enabled
//     via NewPersistentService or mrserved's -data-dir): a crash-atomic
//     disk-backed artifact store keyed by the spec hash plus an append-only
//     job log, so restarts begin with a warm cache and visible job history,
//     with corrupt entries quarantined and retention-driven garbage
//     collection of old jobs and expired artifacts;
//   - cell-level content addressing on top of that store: every
//     (scheduler, point, replicate) cell persists under a hash of the
//     single-cell projection of its spec, so overlapping matrices recompute
//     only the cells they don't share, interrupted matrices are requeued on
//     restart and refill from persisted cells, and clients watch the
//     cached/simulated split through streaming "cells" events;
//   - a sharded multi-node tier for that service (internal/ring,
//     internal/gateway, served by cmd/mrgated): a consistent-hash ring over
//     spec content hashes (virtual nodes, deterministic order-independent
//     placement, replica lists for failover) and a stateless reverse-proxy
//     gateway that routes submissions to the shard owning their hash — so
//     the shard-local single-flight table becomes cluster-wide dedup —
//     fails over to the next ring replica when a shard is down, namespaces
//     job IDs by shard, and aggregates pool health and metrics; proven by a
//     multi-node e2e and chaos-test harness in internal/gateway;
//   - multi-tenant admission control for that service (internal/tenant,
//     enabled via mrserved's -tenants): static API-token authentication
//     mapping requests to named tenants with per-tenant quotas and
//     token-bucket rate limits, a worker-free fast path assembling
//     fully-cached matrices straight from persisted cells, and pluggable
//     dequeue policies that dogfood the paper's schedulers on the
//     service's own queue — a weighted-fair lottery across tenant
//     backlogs and shortest-remaining-work-first sized by uncached cells
//     (exported as ParseTenants / QueuePolicy / SubmitToken);
//   - a small real in-process MapReduce engine whose speculative-execution
//     policy is pluggable with the same strategies.
//
// # The engine
//
// The cluster simulator is a discrete-event engine with slot-exact
// semantics. For the paper's event-driven schedulers (SRPTMS+C, SCA, Fair,
// SRPT, offline, Dolly) time advances through a priority-heap calendar of
// job arrivals and earliest copy completions — empty slots are never
// visited; the slot-stepped baselines (Mantri, LATE) keep per-slot
// progress inspection but skip provably idle stretches in one jump.
// Workload draws are batched per launch and the per-copy bookkeeping is
// pointer-free pooled memory, so the hot path does not allocate. All three
// loops (naive, slot-stepping, event core) produce identical Results bit
// for bit — pinned for every registered scheduler by the equivalence
// harness in internal/cluster — and a CI benchmark gate (cmd/benchgate
// against BENCH_BASELINE.json) holds the engine's cost per cell.
//
// # Quick start
//
//	params := mrclone.GoogleTraceParams()
//	params.Jobs = 500
//	tr, err := mrclone.GenerateTrace(params)
//	// handle err
//	sim, err := mrclone.NewSimulation(tr,
//		mrclone.WithMachines(1000),
//		mrclone.WithScheduler("srptms+c"),
//		mrclone.WithSeed(42))
//	// handle err
//	res, err := sim.Run()
//	// handle err
//	summary, err := mrclone.Summarize(res)
//	// handle err
//	fmt.Printf("weighted avg flowtime: %.1f s\n", summary.WeightedFlowtime)
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md for
// paper-versus-measured results.
package mrclone
