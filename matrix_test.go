package mrclone

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mrclone/internal/runner"
)

// matrixSpec builds a small valid matrix over the shared test trace.
func matrixSpec(t *testing.T) MatrixSpec {
	t.Helper()
	specs, err := smallTrace(t).Specs()
	if err != nil {
		t.Fatal(err)
	}
	return MatrixSpec{
		Specs:      specs,
		Schedulers: []MatrixSchedulerSpec{{Name: "fair"}},
		Points:     []MatrixPoint{{X: 0, Machines: 120}},
		Runs:       1,
		BaseSeed:   3,
	}
}

func TestRunMatrixOptionWrappers(t *testing.T) {
	spec := matrixSpec(t)

	// WithParallelism(0) means one worker per core and must succeed.
	res, err := RunMatrix(context.Background(), spec, WithParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	// Without WithRawResults, CDF reduction must fail with ErrNoRaw.
	if _, err := res.CDF(0, 0, 0, 300, 5); !errors.Is(err, runner.ErrNoRaw) {
		t.Fatalf("CDF without raw results: %v", err)
	}

	// WithProgress calls are serialized and monotone up to the total.
	var calls []int
	res2, err := RunMatrix(context.Background(), spec,
		WithParallelism(1),
		WithRawResults(),
		WithProgress(func(done, total int) {
			if total != 1 {
				t.Errorf("total %d, want 1", total)
			}
			calls = append(calls, done)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != 1 {
		t.Fatalf("progress calls %v", calls)
	}
	if _, err := res2.CDF(0, 0, 0, 300, 5); err != nil {
		t.Fatalf("CDF with raw results: %v", err)
	}

	// Option errors surface before any cell runs.
	if _, err := RunMatrix(context.Background(), spec, WithParallelism(-2)); err == nil ||
		!strings.Contains(err.Error(), "parallelism") {
		t.Fatalf("negative parallelism: %v", err)
	}
}

func TestRunMatrixErrorPaths(t *testing.T) {
	valid := matrixSpec(t)

	noWorkload := valid
	noWorkload.Specs = nil
	if _, err := RunMatrix(context.Background(), noWorkload); !errors.Is(err, runner.ErrNoWorkload) {
		t.Fatalf("no workload: %v", err)
	}

	noScheds := valid
	noScheds.Schedulers = nil
	if _, err := RunMatrix(context.Background(), noScheds); !errors.Is(err, runner.ErrNoSchedulers) {
		t.Fatalf("no schedulers: %v", err)
	}

	noPoints := valid
	noPoints.Points = nil
	if _, err := RunMatrix(context.Background(), noPoints); !errors.Is(err, runner.ErrNoPoints) {
		t.Fatalf("no points: %v", err)
	}

	badMachines := valid
	badMachines.Points = []MatrixPoint{{X: 0, Machines: 0}}
	if _, err := RunMatrix(context.Background(), badMachines); err == nil ||
		!strings.Contains(err.Error(), "machines") {
		t.Fatalf("bad machines: %v", err)
	}

	badSched := valid
	badSched.Schedulers = []MatrixSchedulerSpec{{Name: "bogus"}}
	if _, err := RunMatrix(context.Background(), badSched); err == nil ||
		!strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("unknown scheduler: %v", err)
	}

	// A pre-cancelled context aborts before (or during) the run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMatrix(ctx, valid); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
}

// TestServiceFacade drives the root-package service surface end to end:
// parse a spec from JSON, submit it twice, and check the cache hit.
func TestServiceFacade(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	p := GoogleTraceParams()
	p.Jobs = 8
	p.Span = 200
	sp := ServiceSpec{
		Version:    ServiceSpecVersion,
		Workload:   ServiceWorkload{Trace: &p},
		Schedulers: []ServiceSchedulerSpec{{Name: "fair"}},
		Points:     []ServicePoint{{X: 0, Machines: 20}},
		BaseSeed:   5,
	}
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseServiceSpec(canon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseServiceSpec([]byte(`{"version":1,"nope":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}

	first, err := svc.Submit(parsed)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := svc.Get(first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) || st.State == "failed" {
			t.Fatalf("job state %s (%s)", st.State, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
	second, err := svc.Submit(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second submission not served from cache")
	}
	if m := svc.Metrics(); m.CacheHits != 1 {
		t.Fatalf("cache hits %d", m.CacheHits)
	}
}
