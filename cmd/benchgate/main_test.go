package main

import (
	"strings"
	"testing"
)

// run is a realistic test2json fragment: two counts of the same benchmark
// (the min must win), a sub-benchmark with a -cpus suffix, the calibration
// spin, and interleaved non-benchmark noise.
const runJSON = `{"Action":"start","Package":"mrclone"}
{"Action":"output","Package":"mrclone","Output":"goos: linux\n"}
{"Action":"output","Package":"mrclone","Output":"BenchmarkEngineEventCore \t       3\t   7000000 ns/op\t     45448 final-slot\t 1591104 B/op\t    2547 allocs/op\n"}
{"Action":"output","Package":"mrclone","Output":"BenchmarkEngineEventCore \t       3\t   6500000 ns/op\t     45448 final-slot\t 1591104 B/op\t    2500 allocs/op\n"}
{"Action":"output","Package":"mrclone","Output":"BenchmarkEngineNaiveLoop-16 \t       3\t  13000000 ns/op\t     45448 final-slot\t 1591008 B/op\t    2547 allocs/op\n"}
{"Action":"output","Package":"mrclone","Output":"BenchmarkRunnerMatrix/parallel1-16 \t 1\t 250000000 ns/op\n"}
{"Action":"output","Package":"mrclone","Output":"BenchmarkCalibrationSpin \t"}
{"Action":"output","Package":"mrclone","Output":"      28\t  40000000 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"mrclone","Output":"PASS\n"}
`

func parsed(t *testing.T) map[string]sample {
	t.Helper()
	samples, err := parseRun(strings.NewReader(runJSON))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestParseRun(t *testing.T) {
	samples := parsed(t)
	ev, ok := samples["BenchmarkEngineEventCore"]
	if !ok {
		t.Fatalf("event core missing: %v", samples)
	}
	if ev.nsPerOp != 6.5e6 {
		t.Errorf("min ns/op across counts = %v, want 6.5e6", ev.nsPerOp)
	}
	if ev.allocsPerOp != 2500 {
		t.Errorf("allocs/op = %v, want 2500 (from the min-ns sample)", ev.allocsPerOp)
	}
	if _, ok := samples["BenchmarkEngineNaiveLoop"]; !ok {
		t.Error("cpu suffix -16 not stripped")
	}
	if _, ok := samples["BenchmarkRunnerMatrix/parallel1"]; !ok {
		t.Error("sub-benchmark name not preserved")
	}
	if mat := samples["BenchmarkRunnerMatrix/parallel1"]; mat.allocsPerOp != -1 {
		t.Errorf("missing -benchmem must read as allocs -1, got %v", mat.allocsPerOp)
	}
}

func TestParsePlainTextOutput(t *testing.T) {
	// Raw `go test -bench` output without -json must parse identically.
	plain := "BenchmarkEngineEventCore-8 \t 3\t 6000000 ns/op\t 100 allocs/op\n"
	samples, err := parseRun(strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if s := samples["BenchmarkEngineEventCore"]; s.nsPerOp != 6e6 || s.allocsPerOp != 100 {
		t.Fatalf("plain text parse: %+v", s)
	}
}

func testBaseline() baseline {
	return baseline{
		Calibration:    "BenchmarkCalibrationSpin",
		Tolerance:      0.20,
		AllocTolerance: 0.25,
		Benchmarks: map[string]entry{
			// Normalized: 6.5e6 / 40e6 = 0.1625.
			"BenchmarkEngineEventCore": {NsPerOp: 0.1625, AllocsPerOp: 2500},
		},
		MinRatios: []ratio{
			{Slow: "BenchmarkEngineNaiveLoop", Fast: "BenchmarkEngineEventCore", Min: 1.5},
		},
	}
}

func TestGatePasses(t *testing.T) {
	var out strings.Builder
	if err := gate(&out, testBaseline(), parsed(t)); err != nil {
		t.Fatalf("gate failed on its own baseline: %v\n%s", err, out.String())
	}
}

func TestGateCatchesNsRegression(t *testing.T) {
	base := testBaseline()
	e := base.Benchmarks["BenchmarkEngineEventCore"]
	e.NsPerOp /= 1.5 // run is now 50% over baseline, past the 20% tolerance
	base.Benchmarks["BenchmarkEngineEventCore"] = e
	var out strings.Builder
	err := gate(&out, base, parsed(t))
	if err == nil || !strings.Contains(err.Error(), "exceeds baseline") {
		t.Fatalf("want ns/op regression failure, got %v", err)
	}
}

func TestGateCatchesAllocRegression(t *testing.T) {
	base := testBaseline()
	e := base.Benchmarks["BenchmarkEngineEventCore"]
	e.AllocsPerOp = 1000 // run's 2500 is 2.5x the baseline
	base.Benchmarks["BenchmarkEngineEventCore"] = e
	var out strings.Builder
	err := gate(&out, base, parsed(t))
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("want allocs/op regression failure, got %v", err)
	}
}

func TestGateCatchesRatioFloor(t *testing.T) {
	base := testBaseline()
	base.MinRatios[0].Min = 5 // run's 13/6.5 = 2.0 is below 5
	var out strings.Builder
	err := gate(&out, base, parsed(t))
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("want ratio floor failure, got %v", err)
	}
}

func TestGateCalibrationNormalizes(t *testing.T) {
	// Same machine-relative performance at half the machine speed: every
	// ns/op doubles, including the calibration spin. The gate must pass.
	samples := parsed(t)
	for name, s := range samples {
		s.nsPerOp *= 2
		samples[name] = s
	}
	var out strings.Builder
	if err := gate(&out, testBaseline(), samples); err != nil {
		t.Fatalf("uniformly slower machine flagged as regression: %v", err)
	}
}

func TestGateMissingBenchmark(t *testing.T) {
	base := testBaseline()
	base.Benchmarks["BenchmarkDoesNotExist"] = entry{NsPerOp: 1, AllocsPerOp: 0}
	var out strings.Builder
	err := gate(&out, base, parsed(t))
	if err == nil || !strings.Contains(err.Error(), "missing from run") {
		t.Fatalf("want missing-benchmark failure, got %v", err)
	}
}
