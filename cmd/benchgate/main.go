// Command benchgate enforces the repository's benchmark gate: it parses a
// `go test -json -bench` run, normalizes every ns/op by the calibration
// benchmark (so a uniformly slower CI runner is not mistaken for a code
// regression), and fails when any gated benchmark regresses more than the
// committed tolerance against BENCH_BASELINE.json — or when an in-run
// speedup ratio (for example naive-loop over event-core, which cancels
// machine speed entirely) falls below its floor.
//
// Usage:
//
//	benchgate -baseline BENCH_BASELINE.json bench.json    gate a run
//	benchgate -capture bench.json                         emit a fresh baseline
//
// bench.json is the test2json stream of a benchmark run, e.g.:
//
//	go test -run '^$' -bench 'BenchmarkEngine|BenchmarkCalibrationSpin' \
//	  -benchtime=3x -count=3 -benchmem -json . > bench.json
//
// With -count > 1 the minimum ns/op per benchmark is used — the least noisy
// estimate of the true cost. Capture with the same -benchtime the gate runs
// at: allocs/op amortizes one-time warm-up allocations over the iteration
// count, so baselines taken at a different benchtime do not compare.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// sample is one benchmark measurement extracted from the test2json stream.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64 // -1 when -benchmem was off
}

// entry is one gated benchmark's pinned cost in the baseline file.
type entry struct {
	NsPerOp     float64 `json:"nsPerOp"`     // calibration-normalized when Calibration is set
	AllocsPerOp float64 `json:"allocsPerOp"` // raw allocations per op
	// Tolerance overrides the file-level ns/op tolerance for this entry
	// when > 0. Used to hold the production path to a tight bound while
	// giving the slower reference loops — whose long runs wander more with
	// machine load — a wider one.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// ratio is an in-run speedup floor: slow's ns/op divided by fast's must be
// at least Min. Both run on the same machine in the same process, so the
// comparison needs no calibration at all.
type ratio struct {
	Slow string  `json:"slow"`
	Fast string  `json:"fast"`
	Min  float64 `json:"min"`
}

// baseline is the committed BENCH_BASELINE.json schema.
type baseline struct {
	// Calibration names the fixed-work benchmark whose ns/op divides every
	// gated ns/op before comparison. Empty disables normalization.
	Calibration string `json:"calibration"`
	// Tolerance is the allowed fractional ns/op regression (0.20 = +20%).
	Tolerance float64 `json:"tolerance"`
	// AllocTolerance is the allowed fractional allocs/op regression.
	AllocTolerance float64          `json:"allocTolerance"`
	Benchmarks     map[string]entry `json:"benchmarks"`
	MinRatios      []ratio          `json:"minRatios"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "baseline JSON to gate against")
	capture := fs.Bool("capture", false, "emit a fresh baseline from the run instead of gating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one bench.json argument (test2json stream), got %d", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := parseRun(f)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("%s: no benchmark results found", fs.Arg(0))
	}
	if *capture {
		return emitBaseline(out, samples)
	}
	if *baselinePath == "" {
		return fmt.Errorf("need -baseline (or -capture)")
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %v", *baselinePath, err)
	}
	return gate(out, base, samples)
}

// benchLine matches a benchmark result in test output:
//
//	BenchmarkName-8 \t 30 \t 6811023 ns/op \t 45448 final-slot \t 1558106 B/op \t 2235 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+)\s+\d+\s+(.*)$`)

// cpuSuffix is the -GOMAXPROCS tail the bench runner appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseRun extracts the best (minimum ns/op) sample per benchmark from a
// test2json stream; plain `go test -bench` text output is accepted too.
//
// test2json splits one benchmark result across output events — the name
// fragment ends in a tab with the metrics in a later event — so the text
// stream is reassembled per package and split on real newlines before
// matching.
func parseRun(r io.Reader) (map[string]sample, error) {
	samples := make(map[string]sample)
	pending := make(map[string]*strings.Builder) // partial line per package
	record := func(line string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			return
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		s, ok := parseMetrics(m[2])
		if !ok {
			return
		}
		if prev, seen := samples[name]; !seen || s.nsPerOp < prev.nsPerOp {
			samples[name] = s
		}
	}
	feed := func(pkg, text string) {
		buf, ok := pending[pkg]
		if !ok {
			buf = &strings.Builder{}
			pending[pkg] = buf
		}
		buf.WriteString(text)
		for {
			s := buf.String()
			nl := strings.IndexByte(s, '\n')
			if nl < 0 {
				return
			}
			record(s[:nl])
			buf.Reset()
			buf.WriteString(s[nl+1:])
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action  string `json:"Action"`
				Package string `json:"Package"`
				Output  string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					feed(ev.Package, ev.Output)
				}
				continue
			}
		}
		record(line)
	}
	return samples, sc.Err()
}

// parseMetrics reads the "value unit" pairs after the iteration count.
func parseMetrics(rest string) (sample, bool) {
	s := sample{nsPerOp: -1, allocsPerOp: -1}
	fields := strings.Fields(rest)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
		case "allocs/op":
			s.allocsPerOp = v
		}
	}
	return s, s.nsPerOp >= 0
}

// defaultCalibration must match the benchmark in bench_test.go.
const defaultCalibration = "BenchmarkCalibrationSpin"

// emitBaseline writes a fresh baseline JSON from the run's samples. Ratio
// floors are seeded at 60% of the measured ratio — review before committing.
func emitBaseline(out io.Writer, samples map[string]sample) error {
	base := baseline{
		Calibration:    defaultCalibration,
		Tolerance:      0.20,
		AllocTolerance: 0.25,
		Benchmarks:     make(map[string]entry),
	}
	cal, hasCal := samples[defaultCalibration]
	if !hasCal {
		return fmt.Errorf("capture run lacks %s; include it in -bench", defaultCalibration)
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if name == defaultCalibration {
			continue
		}
		s := samples[name]
		base.Benchmarks[name] = entry{
			NsPerOp:     round3(s.nsPerOp / cal.nsPerOp),
			AllocsPerOp: s.allocsPerOp,
		}
	}
	if naive, ok := samples["BenchmarkEngineNaiveLoop"]; ok {
		if event, ok := samples["BenchmarkEngineEventCore"]; ok {
			base.MinRatios = append(base.MinRatios, ratio{
				Slow: "BenchmarkEngineNaiveLoop",
				Fast: "BenchmarkEngineEventCore",
				Min:  round3(0.6 * naive.nsPerOp / event.nsPerOp),
			})
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// gate compares the run against the baseline and returns an error listing
// every violation.
func gate(out io.Writer, base baseline, samples map[string]sample) error {
	calFactor := 1.0
	if base.Calibration != "" {
		cal, ok := samples[base.Calibration]
		if !ok {
			return fmt.Errorf("run lacks calibration benchmark %s", base.Calibration)
		}
		calFactor = cal.nsPerOp
	}
	var violations []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := samples[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from run", name))
			continue
		}
		tol := base.Tolerance
		if want.Tolerance > 0 {
			tol = want.Tolerance
		}
		norm := got.nsPerOp / calFactor
		limit := want.NsPerOp * (1 + tol)
		status := "ok"
		if norm > limit {
			status = "REGRESSED"
			violations = append(violations, fmt.Sprintf(
				"%s: normalized ns/op %.3f exceeds baseline %.3f by more than %.0f%%",
				name, norm, want.NsPerOp, tol*100))
		}
		fmt.Fprintf(out, "%-32s ns/op %12.0f  normalized %7.3f  baseline %7.3f  %s\n",
			name, got.nsPerOp, norm, want.NsPerOp, status)
		if want.AllocsPerOp >= 0 && got.allocsPerOp >= 0 {
			if got.allocsPerOp > want.AllocsPerOp*(1+base.AllocTolerance) {
				violations = append(violations, fmt.Sprintf(
					"%s: allocs/op %.0f exceeds baseline %.0f by more than %.0f%%",
					name, got.allocsPerOp, want.AllocsPerOp, base.AllocTolerance*100))
			}
		}
	}
	for _, r := range base.MinRatios {
		slow, okS := samples[r.Slow]
		fast, okF := samples[r.Fast]
		if !okS || !okF {
			violations = append(violations, fmt.Sprintf(
				"ratio %s/%s: benchmark missing from run", r.Slow, r.Fast))
			continue
		}
		got := slow.nsPerOp / fast.nsPerOp
		status := "ok"
		if got < r.Min {
			status = "REGRESSED"
			violations = append(violations, fmt.Sprintf(
				"ratio %s/%s = %.2f below floor %.2f", r.Slow, r.Fast, got, r.Min))
		}
		fmt.Fprintf(out, "%-32s ratio %.2f  floor %.2f  %s\n",
			r.Slow+"/"+r.Fast, got, r.Min, status)
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	fmt.Fprintln(out, "benchmark gate passed")
	return nil
}
