// Command mrtrace generates and inspects synthetic MapReduce workload
// traces calibrated to the paper's Table II.
//
// Usage:
//
//	mrtrace gen   [-jobs N] [-seed S] [-o trace.csv]
//	mrtrace stats [-i trace.csv]        (or stats of a fresh generation)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mrclone/internal/experiments"
	"mrclone/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mrtrace <gen|stats> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "stats":
		return runStats(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or stats)", args[0])
	}
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	jobs := fs.Int("jobs", trace.GoogleJobs, "number of jobs")
	seed := fs.Int64("seed", 1, "generator seed")
	output := fs.String("o", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := trace.GoogleParams()
	p.Jobs = *jobs
	p.Seed = *seed
	tr, err := trace.Generate(p)
	if err != nil {
		return err
	}
	w := out
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.WriteCSV(w)
}

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	input := fs.String("i", "", "trace CSV path (default: generate Table II trace)")
	seed := fs.Int64("seed", 1, "generator seed when no input file is given")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		tr  *trace.Trace
		err error
	)
	if *input != "" {
		f, err2 := os.Open(*input)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		tr, err = trace.ReadCSV(f)
	} else {
		p := trace.GoogleParams()
		p.Seed = *seed
		tr, err = trace.Generate(p)
	}
	if err != nil {
		return err
	}
	st, err := tr.ComputeStats()
	if err != nil {
		return err
	}
	res := &experiments.Table2Result{Stats: st}
	return res.WriteText(out)
}
