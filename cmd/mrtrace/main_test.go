package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("bogus subcommand accepted")
	}
}

func TestGenAndStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var buf bytes.Buffer
	if err := run([]string{"gen", "-jobs", "50", "-seed", "3", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "id,arrival") {
		t.Fatalf("unexpected CSV header: %.40s", data)
	}
	buf.Reset()
	if err := run([]string{"stats", "-i", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Total number of jobs") {
		t.Errorf("stats output missing table: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "50") {
		t.Errorf("stats should report 50 jobs: %s", buf.String())
	}
}

func TestGenToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"gen", "-jobs", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 6 { // header + 5 rows
		t.Errorf("lines = %d, want 6", lines)
	}
}

func TestStatsGenerated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"stats", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6064") {
		t.Errorf("default stats should cover the full trace: %s", buf.String())
	}
}

func TestStatsMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"stats", "-i", "/nonexistent/x.csv"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
}
