package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "bogus"}, &buf); err == nil {
		t.Error("bogus scale accepted")
	}
	if err := run(context.Background(), []string{"-scale", "quick", "nonsense"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-parallel", "0", "table2"}, &buf); err == nil {
		t.Error("zero parallelism accepted")
	}
	if err := run(context.Background(), []string{"-parallel", "-2", "table2"}, &buf); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestTable2AndTheorems(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "quick", "-runs", "1", "table2", "theorem1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "table2") || !strings.Contains(out, "theorem1") {
		t.Errorf("missing experiment sections:\n%s", out)
	}
	if !strings.Contains(out, "zero-variance competitive ratio") {
		t.Errorf("theorem1 output incomplete:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	// Tiny custom scale via quick + runs 1 on fig6 only; fig6 at quick scale
	// is the slowest acceptable in tests, so restrict to table2+fig1-less.
	if err := run(context.Background(), []string{"-scale", "quick", "-runs", "1", "-csv", dir, "fig6"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "algorithm,") {
		t.Errorf("fig6.csv header: %.40s", data)
	}
	if !strings.Contains(buf.String(), "vs Mantri") {
		t.Errorf("fig6 text missing headline:\n%s", buf.String())
	}
}
