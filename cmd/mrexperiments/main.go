// Command mrexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	mrexperiments [-scale quick|full] [-runs N] [-seed S] [-parallel W]
//	              [-csv dir] [names...]
//
// With no names it runs every experiment: table2 fig1 fig2 fig3 fig4 fig5
// fig6 theorem1 theorem2. With -csv the figure data are also written as CSV
// files into the given directory. Each experiment's run matrix (schedulers
// × sweep points × seeds) is simulated on -parallel workers; results are
// byte-identical at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"mrclone/internal/experiments"
)

func main() {
	// SIGINT/SIGTERM cancel the in-flight run matrix so long experiments
	// exit cleanly (no partially written artifacts) instead of mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mrexperiments:", err)
		os.Exit(1)
	}
}

var allExperiments = []string{
	"table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "theorem1", "theorem2",
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mrexperiments", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "experiment scale: quick or full")
	runs := fs.Int("runs", 0, "override runs per configuration (0 = preset)")
	seed := fs.Int64("seed", 0, "override base seed (0 = preset)")
	parallel := fs.Int("parallel", runtime.NumCPU(),
		"simulation cells run concurrently; >= 1 (results do not depend on it)")
	csvDir := fs.String("csv", "", "directory to also write CSV data into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel %d: need at least one worker", *parallel)
	}

	var opts experiments.Options
	switch *scale {
	case "quick":
		opts = experiments.QuickOptions()
	case "full":
		opts = experiments.FullOptions()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Parallelism = *parallel
	opts.Ctx = ctx
	names := fs.Args()
	if len(names) == 0 {
		names = allExperiments
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, name := range names {
		fmt.Fprintf(out, "\n===== %s (scale=%s) =====\n", name, *scale)
		if err := runOne(name, opts, out, *csvDir); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// csvWriter opens <dir>/<name>.csv, or returns nil when dir is empty.
func csvWriter(dir, name string) (io.WriteCloser, error) {
	if dir == "" {
		return nil, nil
	}
	return os.Create(filepath.Join(dir, name+".csv"))
}

func runOne(name string, opts experiments.Options, out io.Writer, csvDir string) error {
	emitCSV := func(render func(io.Writer) error) error {
		w, err := csvWriter(csvDir, name)
		if err != nil || w == nil {
			return err
		}
		defer w.Close()
		return render(w)
	}
	switch name {
	case "table2":
		res, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		return res.WriteText(out)
	case "fig1":
		res, err := experiments.Fig1(opts)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "best epsilon (min unweighted avg): %g\n", res.BestEpsilon())
		return emitCSV(res.WriteCSV)
	case "fig2":
		res, err := experiments.Fig2(opts)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		return emitCSV(res.WriteCSV)
	case "fig3":
		res, err := experiments.Fig3(opts)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		return emitCSV(res.WriteCSV)
	case "fig4":
		res, err := experiments.Fig4(opts)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		if err := experiments.ASCIIPlot(out, "CDF of small-job flowtime (0-300 s)", res.Curves); err != nil {
			return err
		}
		return emitCSV(res.WriteCSV)
	case "fig5":
		res, err := experiments.Fig5(opts)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		if err := experiments.ASCIIPlot(out, "CDF of big-job flowtime (300-4000 s)", res.Curves); err != nil {
			return err
		}
		return emitCSV(res.WriteCSV)
	case "fig6":
		res, err := experiments.Fig6(opts)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		return emitCSV(res.WriteCSV)
	case "theorem1":
		res, err := experiments.Theorem1(opts)
		if err != nil {
			return err
		}
		return res.WriteText(out)
	case "theorem2":
		res, err := experiments.Theorem2(opts)
		if err != nil {
			return err
		}
		return res.WriteText(out)
	default:
		return fmt.Errorf("unknown experiment (have %v)", allExperiments)
	}
}
