package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mrclone/internal/service"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "-shard"},
		{[]string{"-shard", "http://h:1", "-probe-timeout", "0s"}, "-probe-timeout"},
		{[]string{"-shard", "http://h:1", "-drain-timeout", "0s"}, "-drain-timeout"},
		{[]string{"-shard", "http://h:1", "-replicas", "-1"}, "-replicas"},
		{[]string{"-shard", "http://h:1?token=x"}, "query"},
		{[]string{"-shard", "://bad"}, "-shard"},
		{[]string{"-shard", "relative/path"}, "http(s)"},
		{[]string{"-shard", "a=http://h:1", "-shard", "a=http://h:2"}, "duplicate"},
		{[]string{"-shard", "http://h:1", "-log-format", "xml"}, "-log-format"},
		{[]string{"-shard", "http://h:1", "-log-level", "loud"}, "-log-level"},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %s", tc.args, err, tc.want)
		}
	}
}

func TestParseShards(t *testing.T) {
	shards, err := parseShards([]string{
		"http://a:8080",
		"east=http://b:8080/base",
		"http://c:8080?x=y",
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards[0].Name != "s0" || shards[0].URL.Host != "a:8080" {
		t.Errorf("shard 0 = %s %s", shards[0].Name, shards[0].URL)
	}
	if shards[1].Name != "east" || shards[1].URL.Host != "b:8080" || shards[1].URL.Path != "/base" {
		t.Errorf("shard 1 = %s %s", shards[1].Name, shards[1].URL)
	}
	// '=' inside a query string is not a name separator.
	if shards[2].Name != "s2" || shards[2].URL.Host != "c:8080" {
		t.Errorf("shard 2 = %s %s", shards[2].Name, shards[2].URL)
	}
}

// syncBuffer is a goroutine-safe log sink that signals the first write.
type syncBuffer struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	once  sync.Once
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, err := b.buf.Write(p)
	b.once.Do(func() { close(b.first) })
	return n, err
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAndDrain boots the gateway against one live in-process shard,
// checks the aggregated /healthz sees it, then cancels the context (the
// SIGINT path) and expects a clean drain.
func TestServeAndDrain(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()
	shard := httptest.NewServer(svc.Handler())
	defer shard.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shard", shard.URL}, logw)
	}()

	select {
	case <-logw.first:
	case err := <-errCh:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never logged its listen address")
	}
	m := regexp.MustCompile(`listening on ([0-9.:]+)`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("no listen address in log: %q", logw.String())
	}
	resp, err := http.Get("http://" + m[1] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Shards []struct {
			Name string `json:"name"`
			Up   bool   `json:"up"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Shards) != 1 || !health.Shards[0].Up || health.Shards[0].Name != "s0" {
		t.Fatalf("pool health = %+v, want ok with shard s0 up", health)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway did not drain")
	}
	if !strings.Contains(logw.String(), "drained") {
		t.Fatalf("log missing drain marker: %q", logw.String())
	}
}
