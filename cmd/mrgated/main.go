// Command mrgated fronts a pool of mrserved shards with consistent-hash
// routing: submissions are placed on the shard that owns their spec content
// hash (so identical specs from any client, through any gateway, meet in
// one shard's single-flight table and compute once cluster-wide), job routes
// follow the shard namespace baked into gateway job IDs, and /healthz and
// /metrics aggregate the whole pool. The gateway owns no compute and no
// durable state; run several for availability.
//
// Usage:
//
//	mrgated [-addr :8081] -shard URL [-shard URL ...]
//	        [-vnodes 128] [-replicas 0] [-tenants FILE]
//	        [-probe-timeout 2s] [-probe-interval 1s] [-drain-timeout 10s]
//	        [-breaker-failures 3] [-breaker-cooldown 5s] [-pool-admin]
//	        [-log-format text|json] [-log-level info] [-debug-addr ADDR]
//
// Each -shard is an mrserved base URL, optionally named ("name=URL"); unnamed
// shards are called s0, s1, … in flag order. Shard names are embedded in the
// job IDs the gateway hands out, and ring placement depends only on the set
// of names — keep names (or flag order) stable across gateway restarts and
// across a fleet of gateways, or job IDs and placement will not line up.
// See docs/OPERATIONS.md ("Sharded deployment") for topology guidance.
//
// -shard gives the initial pool; with -pool-admin the membership is elastic
// at runtime via POST /v1/pool/shards (unauthenticated — bind only to a
// trusted operator network). A background probe loop (-probe-interval) feeds
// per-shard circuit breakers (-breaker-failures consecutive failures open a
// breaker, -breaker-cooldown before a half-open retry), so a dead shard
// stops costing request-path dials; see docs/OPERATIONS.md ("Elastic pool").
//
// With -tenants the gateway authenticates and rate-limits submissions at
// the edge (same JSON registry file the shards take), rejecting a flooding
// tenant before it touches a shard; bearer tokens are always forwarded
// upstream either way.
//
// Every request logs one structured line carrying the request ID, W3C
// trace ID, matched route, status, duration, and serving shard; the same
// trace ID is forwarded to the shard (traceparent header, fresh span), so
// one grep follows a request across tiers. -debug-addr opens a second
// listener serving /debug/pprof and /debug/vars. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mrclone/internal/gateway"
	"mrclone/internal/obs"
	"mrclone/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mrgated:", err)
		os.Exit(1)
	}
}

// stringSlice is a repeatable string flag.
type stringSlice []string

func (s *stringSlice) String() string { return strings.Join(*s, ",") }

func (s *stringSlice) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// parseShards turns -shard values ("URL" or "name=URL") into the gateway's
// pool, auto-naming unnamed shards s0, s1, … in flag order.
func parseShards(vals []string) ([]gateway.Shard, error) {
	shards := make([]gateway.Shard, 0, len(vals))
	for i, v := range vals {
		name := fmt.Sprintf("s%d", i)
		raw := v
		// A name is present when '=' appears before any "://"; a bare URL
		// like http://host?a=b must not be split at its query '='.
		if eq := strings.Index(v, "="); eq >= 0 {
			if scheme := strings.Index(v, "://"); scheme < 0 || eq < scheme {
				name, raw = v[:eq], v[eq+1:]
			}
		}
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("-shard %q: %w", v, err)
		}
		shards = append(shards, gateway.Shard{Name: name, URL: u})
	}
	return shards, nil
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mrgated", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	var shardFlags stringSlice
	fs.Var(&shardFlags, "shard", "mrserved shard base URL, optionally named (\"name=URL\"); repeatable")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard on the placement ring (0 = default 128)")
	replicas := fs.Int("replicas", 0, "submission failover depth in ring order (0 = try every shard)")
	tenantsFile := fs.String("tenants", "",
		"JSON tenant registry for edge admission: authenticate and rate-limit submissions before routing (empty = pass credentials through)")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second,
		"per-shard /healthz and /metrics probe timeout")
	probeInterval := fs.Duration("probe-interval", time.Second,
		"background health-probe period feeding the circuit breakers (negative = disabled)")
	breakerFailures := fs.Int("breaker-failures", 0,
		"consecutive probe/dial failures that open a shard's circuit breaker (0 = default 3)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0,
		"how long an open breaker short-circuits before a half-open retry (0 = default 5s)")
	poolAdmin := fs.Bool("pool-admin", false,
		"register POST /v1/pool/shards for runtime membership changes (unauthenticated; trusted networks only)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight proxied requests")
	logFormat := fs.String("log-format", "text",
		"structured log format: text (logfmt-style) or json (one object per line)")
	logLevel := fs.String("log-level", "info",
		"minimum log level: debug, info, warn, or error")
	debugAddr := fs.String("debug-addr", "",
		"optional second listener serving /debug/pprof and /debug/vars (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := obs.ParseLevel(*logLevel); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	logger, err := obs.NewLogger(logw, *logFormat, *logLevel)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	jsonLog := strings.EqualFold(strings.TrimSpace(*logFormat), "json")
	if len(shardFlags) == 0 {
		return errors.New("-shard: need at least one mrserved shard URL")
	}
	if *probeTimeout <= 0 {
		return fmt.Errorf("-probe-timeout %s: need > 0", *probeTimeout)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout %s: need > 0", *drainTimeout)
	}
	if *replicas < 0 {
		return fmt.Errorf("-replicas %d: need >= 0", *replicas)
	}
	if *breakerFailures < 0 {
		return fmt.Errorf("-breaker-failures %d: need >= 0", *breakerFailures)
	}
	if *breakerCooldown < 0 {
		return fmt.Errorf("-breaker-cooldown %s: need >= 0", *breakerCooldown)
	}
	shards, err := parseShards(shardFlags)
	if err != nil {
		return err
	}
	var registry *tenant.Registry
	if *tenantsFile != "" {
		registry, err = tenant.Load(*tenantsFile)
		if err != nil {
			return fmt.Errorf("-tenants: %w", err)
		}
	}
	gw, err := gateway.New(gateway.Config{
		Shards:          shards,
		VirtualNodes:    *vnodes,
		Replicas:        *replicas,
		ProbeTimeout:    *probeTimeout,
		ProbeInterval:   *probeInterval,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		EnableAdmin:     *poolAdmin,
		Tenants:         registry,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	if *debugAddr != "" {
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return fmt.Errorf("-debug-addr: %w", derr)
		}
		debugSrv := &http.Server{Handler: obs.DebugHandler()}
		go func() { _ = debugSrv.Serve(dln) }()
		defer debugSrv.Close()
		if jsonLog {
			logger.Info("debug server listening", "addr", dln.Addr().String())
		} else {
			fmt.Fprintf(logw, "mrgated: debug server on %s\n", dln.Addr())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if jsonLog {
		logger.Info("listening", "addr", ln.Addr().String(),
			"ring", fmt.Sprint(gw.Ring()), "replicas", *replicas)
	} else {
		fmt.Fprintf(logw, "mrgated: listening on %s (%s, replicas=%d)\n",
			ln.Addr(), gw.Ring(), *replicas)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	if jsonLog {
		logger.Info("draining", "timeout", drainTimeout.String())
	} else {
		fmt.Fprintf(logw, "mrgated: signal received, draining (timeout %s)\n", *drainTimeout)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("drain: %w", err)
		}
		// Distinguishable from a clean drain: in-flight requests (long SSE
		// streams, typically) were cut at the deadline.
		if jsonLog {
			logger.Warn("drain timeout exceeded, aborted in-flight requests")
		} else {
			fmt.Fprintln(logw, "mrgated: drain timeout exceeded, aborted in-flight requests")
		}
		return nil
	}
	if jsonLog {
		logger.Info("drained")
	} else {
		fmt.Fprintln(logw, "mrgated: drained")
	}
	return nil
}
