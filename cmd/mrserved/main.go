// Command mrserved serves cluster simulations over HTTP: clients POST
// canonical matrix specs (see internal/service/spec) to /v1/matrices, poll
// or stream job progress, and fetch deterministic JSON/CSV artifacts.
// Identical specs share one computation (single-flight) and completed
// matrices are served from a content-addressed LRU cache.
//
// Usage:
//
//	mrserved [-addr :8080] [-parallel NumCPU] [-workers 2]
//	         [-queue 16] [-cache 64]
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes,
// queued and running matrices finish, then the process exits. A second
// signal (or the -drain-timeout deadline) cancels the remaining work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mrclone/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mrserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mrserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", runtime.NumCPU(),
		"simulation cells run concurrently per matrix; >= 1 (results do not depend on it)")
	workers := fs.Int("workers", 2, "matrices executed concurrently; >= 1")
	queue := fs.Int("queue", 16, "bounded job-queue depth; >= 1 (submissions beyond it get 429)")
	cache := fs.Int("cache", 64, "result-cache capacity in matrices (0 disables caching)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute,
		"how long shutdown waits for queued and running matrices before cancelling them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *parallel < 1:
		return fmt.Errorf("-parallel %d: need at least one worker", *parallel)
	case *workers < 1:
		return fmt.Errorf("-workers %d: need at least one worker", *workers)
	case *queue < 1:
		return fmt.Errorf("-queue %d: need at least one slot", *queue)
	case *cache < 0:
		return fmt.Errorf("-cache %d: need >= 0 entries", *cache)
	}

	cacheEntries := *cache
	if cacheEntries == 0 {
		cacheEntries = -1 // Config treats 0 as "default"; negative disables.
	}
	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    cacheEntries,
		CellParallelism: *parallel,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(logw, "mrserved: listening on %s (workers=%d parallel=%d queue=%d cache=%d)\n",
		ln.Addr(), *workers, *parallel, *queue, *cache)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(logw, "mrserved: signal received, draining (timeout %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// A second signal cuts the drain short and cancels the remaining work.
	drainCtx, stopDrain := signal.NotifyContext(drainCtx, syscall.SIGINT, syscall.SIGTERM)
	defer stopDrain()
	// Stop the listener first so no new jobs arrive, then drain the queue.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(logw, "mrserved: http shutdown: %v\n", err)
	}
	if err := svc.Close(drainCtx); err != nil && !errors.Is(err, service.ErrClosed) {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(logw, "mrserved: drained")
	return nil
}
