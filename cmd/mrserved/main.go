// Command mrserved serves cluster simulations over HTTP: clients POST
// canonical matrix specs (see internal/service/spec) to /v1/matrices, poll
// or stream job progress, and fetch deterministic JSON/CSV artifacts.
// Identical specs share one computation (single-flight) and completed
// matrices are served from a content-addressed result cache.
//
// Usage:
//
//	mrserved [-addr :8080] [-parallel NumCPU] [-workers 2] [-queue 16]
//	         [-data-dir DIR] [-cache-bytes 256MiB] [-cache-ttl 0]
//	         [-cell-cache] [-cell-cache-bytes 0]
//	         [-tenants FILE] [-tenants-poll 30s] [-queue-policy fifo|fair|srpt]
//	         [-job-retention 24h] [-gc-interval 1m] [-peer-timeout 5s]
//	         [-log-format text|json] [-log-level info]
//	         [-debug-addr ADDR] [-shard-name NAME]
//
// By default the service is in-memory: results and job history vanish with
// the process. With -data-dir it becomes durable — completed artifacts and
// the job table persist on disk, so a restart serves previously computed
// specs straight from the store and keeps terminal-job history visible.
// Durable mode also enables the per-cell content-addressed cache (disable
// with -cell-cache=false): every simulated matrix cell persists under its
// cell hash, overlapping matrices recompute only the cells they don't
// share, and a matrix interrupted by a crash is requeued on restart and
// refills from its persisted cells. See docs/OPERATIONS.md for the data-dir
// layout and tuning guidance.
//
// Behind an mrgated pool with elastic membership, a submission relocated by
// a membership change arrives stamped with its previous owner's base URL;
// this shard then adopts the already-computed artifacts (or individual
// cells) from that peer instead of recomputing, verifying every byte
// against checksums it computes itself. -peer-timeout bounds each such
// fetch; a slow or dead peer degrades to recomputation. See
// docs/OPERATIONS.md ("Elastic pool").
//
// Without -tenants the service is anonymous and open, exactly as before.
// With a tenants file (see internal/tenant and docs/OPERATIONS.md,
// "Multi-tenant deployment") every API request must carry a known bearer
// token; submissions are rate-limited and quota-checked per tenant, and
// -queue-policy picks how queued matrices are dequeued: "fifo" (arrival
// order, the default), "fair" (weighted lottery across tenant queues), or
// "srpt" — shortest remaining work first, where a matrix's remaining work
// shrinks as the cell cache fills, dogfooding the SRPT scheduler the
// service exists to simulate.
//
// The tenants file is hot-reloadable: SIGHUP reloads it immediately, and
// every -tenants-poll interval (default 30s; 0 disables polling) the file's
// mtime is checked and a changed file is reloaded. The swap is atomic —
// in-flight requests finish against the registry they authenticated with,
// the next request sees the new one — and a file that fails to parse is
// logged and skipped, so a half-written edit never locks tenants out.
// Tenancy itself cannot be toggled at runtime: a daemon started with
// -tenants stays authenticated, one started without stays anonymous.
//
// Every request logs one structured line (log/slog) carrying the request
// ID, W3C trace ID (minted, or continued from an inbound traceparent
// header), matched route, status, and duration; -log-format json makes the
// stream machine-parseable and -shard-name stamps every line for fleets
// behind mrgated. -debug-addr opens a second listener serving
// /debug/pprof and /debug/vars for live profiling. See
// docs/OBSERVABILITY.md.
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes,
// queued and running matrices finish, then the process exits. A second
// signal (or the -drain-timeout deadline) cancels the remaining work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/service"
	"mrclone/internal/store"
	"mrclone/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mrserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mrserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", runtime.NumCPU(),
		"simulation cells run concurrently per matrix; >= 1 (results do not depend on it)")
	workers := fs.Int("workers", 2, "matrices executed concurrently; >= 1")
	queue := fs.Int("queue", 16, "bounded job-queue depth; >= 1 (submissions beyond it get 429)")
	dataDir := fs.String("data-dir", "",
		"directory for the durable artifact store and job log (empty = in-memory only)")
	cacheBytes := fs.String("cache-bytes", "256MiB",
		"in-memory result-cache budget in artifact bytes, e.g. 64MiB or 1GiB (0 disables caching)")
	cacheTTL := fs.Duration("cache-ttl", 0,
		"expire cached artifacts (memory and disk) this long after computation (0 = never)")
	cellCache := fs.Bool("cell-cache", true,
		"persist and reuse per-cell results in the data dir (needs -data-dir; enables cross-matrix reuse and crash resume)")
	cellCacheBytes := fs.String("cell-cache-bytes", "0",
		"disk budget for the per-cell tier; GC evicts oldest cells beyond it (0 = unbounded)")
	tenantsFile := fs.String("tenants", "",
		"JSON tenant registry; when set, every request must carry a known bearer token (empty = anonymous, open access)")
	tenantsPoll := fs.Duration("tenants-poll", 30*time.Second,
		"with -tenants, how often the file's mtime is checked for a hot reload (0 disables polling; SIGHUP always reloads)")
	queuePolicy := fs.String("queue-policy", "fifo",
		"dequeue order for queued matrices: fifo, fair (weighted across tenants), or srpt (shortest estimated job first)")
	jobRetention := fs.Duration("job-retention", 24*time.Hour,
		"age terminal jobs out of the job table after this long (0 = keep forever)")
	gcInterval := fs.Duration("gc-interval", time.Minute,
		"how often the retention/TTL garbage collector sweeps")
	peerTimeout := fs.Duration("peer-timeout", 5*time.Second,
		"timeout per peer artifact or cell fetch when a gateway relocates keys here (a slow peer degrades to recomputation)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute,
		"how long shutdown waits for queued and running matrices before cancelling them")
	logFormat := fs.String("log-format", "text",
		"structured log format: text (logfmt-style) or json (one object per line)")
	logLevel := fs.String("log-level", "info",
		"minimum log level: debug, info, warn, or error")
	debugAddr := fs.String("debug-addr", "",
		"optional second listener serving /debug/pprof and /debug/vars (empty = disabled)")
	shardName := fs.String("shard-name", "",
		"shard name stamped on every log line, for fleets behind mrgated (empty = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := obs.ParseLevel(*logLevel); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	logger, err := obs.NewLogger(logw, *logFormat, *logLevel)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	jsonLog := strings.EqualFold(strings.TrimSpace(*logFormat), "json")
	cacheBudget, err := parseBytes(*cacheBytes)
	if err != nil {
		return fmt.Errorf("-cache-bytes %q: %w", *cacheBytes, err)
	}
	cellBudget, err := parseBytes(*cellCacheBytes)
	if err != nil {
		return fmt.Errorf("-cell-cache-bytes %q: %w", *cellCacheBytes, err)
	}
	switch {
	case *parallel < 1:
		return fmt.Errorf("-parallel %d: need at least one worker", *parallel)
	case *workers < 1:
		return fmt.Errorf("-workers %d: need at least one worker", *workers)
	case *queue < 1:
		return fmt.Errorf("-queue %d: need at least one slot", *queue)
	case cacheBudget < 0:
		return fmt.Errorf("-cache-bytes %q: need >= 0", *cacheBytes)
	case cellBudget < 0:
		return fmt.Errorf("-cell-cache-bytes %q: need >= 0", *cellCacheBytes)
	case *cacheTTL < 0:
		return fmt.Errorf("-cache-ttl %s: need >= 0", *cacheTTL)
	case *jobRetention < 0:
		return fmt.Errorf("-job-retention %s: need >= 0", *jobRetention)
	case *gcInterval <= 0:
		return fmt.Errorf("-gc-interval %s: need > 0", *gcInterval)
	case *peerTimeout <= 0:
		return fmt.Errorf("-peer-timeout %s: need > 0", *peerTimeout)
	case *tenantsPoll < 0:
		return fmt.Errorf("-tenants-poll %s: need >= 0", *tenantsPoll)
	}
	policy, err := tenant.ParsePolicy(*queuePolicy)
	if err != nil {
		return fmt.Errorf("-queue-policy: %w", err)
	}
	var registry *tenant.Registry
	var tenantsMod time.Time
	if *tenantsFile != "" {
		registry, err = tenant.Load(*tenantsFile)
		if err != nil {
			return fmt.Errorf("-tenants: %w", err)
		}
		// Captured here, before the listener opens, so an edit racing the
		// boot is seen as a change by the watcher's first poll.
		if fi, serr := os.Stat(*tenantsFile); serr == nil {
			tenantsMod = fi.ModTime()
		}
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheBytes:       cacheBudget,
		CacheTTL:         *cacheTTL,
		CellParallelism:  *parallel,
		DisableCellCache: !*cellCache,
		CellCacheBytes:   cellBudget,
		JobRetention:     *jobRetention,
		GCInterval:       *gcInterval,
		PeerTimeout:      *peerTimeout,
		Tenants:          registry,
		QueuePolicy:      policy,
		Logger:           logger,
		ShardName:        *shardName,
	}
	if cacheBudget == 0 {
		cfg.CacheBytes = -1 // Config treats 0 as "default"; negative disables.
	}
	if *jobRetention == 0 {
		cfg.JobRetention = -1 // keep terminal jobs forever
	}
	mode := "in-memory"
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			return err
		}
		cfg.Store = st // the service owns the store and closes it on drain
		mode = "data-dir " + *dataDir
	}
	svc := service.New(cfg)
	if *tenantsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go watchTenants(ctx, svc, *tenantsFile, *tenantsPoll, tenantsMod, hup, logger, logw, jsonLog)
	}

	if *debugAddr != "" {
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = svc.Close(drainCtx)
			return fmt.Errorf("-debug-addr: %w", derr)
		}
		debugSrv := &http.Server{Handler: obs.DebugHandler()}
		go func() { _ = debugSrv.Serve(dln) }()
		defer debugSrv.Close()
		if jsonLog {
			logger.Info("debug server listening", "addr", dln.Addr().String())
		} else {
			fmt.Fprintf(logw, "mrserved: debug server on %s\n", dln.Addr())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = svc.Close(drainCtx) // release the store before bailing
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	auth := "anonymous"
	if registry != nil {
		auth = fmt.Sprintf("%d tenants", registry.Len())
	}
	if jsonLog {
		logger.Info("listening", "addr", ln.Addr().String(), "workers", *workers,
			"parallel", *parallel, "queue", *queue, "policy", fmt.Sprint(policy),
			"auth", auth, "cache", *cacheBytes, "ttl", cacheTTL.String(), "mode", mode)
	} else {
		fmt.Fprintf(logw, "mrserved: listening on %s (workers=%d parallel=%d queue=%d policy=%s %s cache=%s ttl=%s %s)\n",
			ln.Addr(), *workers, *parallel, *queue, policy, auth, *cacheBytes, *cacheTTL, mode)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	if jsonLog {
		logger.Info("draining", "timeout", drainTimeout.String())
	} else {
		fmt.Fprintf(logw, "mrserved: signal received, draining (timeout %s)\n", *drainTimeout)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// A second signal cuts the drain short and cancels the remaining work.
	drainCtx, stopDrain := signal.NotifyContext(drainCtx, syscall.SIGINT, syscall.SIGTERM)
	defer stopDrain()
	// Stop the listener first so no new jobs arrive, then drain the queue.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		if jsonLog {
			logger.Warn("http shutdown", "error", err.Error())
		} else {
			fmt.Fprintf(logw, "mrserved: http shutdown: %v\n", err)
		}
	}
	if err := svc.Close(drainCtx); err != nil && !errors.Is(err, service.ErrClosed) {
		return fmt.Errorf("drain: %w", err)
	}
	if jsonLog {
		logger.Info("drained")
	} else {
		fmt.Fprintln(logw, "mrserved: drained")
	}
	return nil
}

// watchTenants hot-reloads the tenant registry while the daemon runs:
// SIGHUP reloads unconditionally, and every poll interval the tenants
// file's mtime is compared against the last load. A file that fails to
// parse (or a swap the service rejects) is logged and skipped — the
// registry already serving stays, so a half-written edit never locks every
// tenant out. lastMod is the mtime of the load the service booted with.
// Runs until ctx is cancelled.
func watchTenants(ctx context.Context, svc *service.Service, path string, poll time.Duration,
	lastMod time.Time, hup <-chan os.Signal, logger *slog.Logger, logw io.Writer, jsonLog bool) {
	reload := func(reason string) {
		if fi, err := os.Stat(path); err == nil {
			lastMod = fi.ModTime()
		}
		reg, err := tenant.Load(path)
		if err == nil {
			err = svc.ReloadTenants(reg)
		}
		switch {
		case err != nil && jsonLog:
			logger.Warn("tenant reload failed", "reason", reason, "error", err.Error())
		case err != nil:
			fmt.Fprintf(logw, "mrserved: tenant reload (%s): %v\n", reason, err)
		case jsonLog:
			logger.Info("tenant registry reloaded", "reason", reason, "tenants", reg.Len())
		default:
			fmt.Fprintf(logw, "mrserved: tenant registry reloaded (%s): %d tenants\n", reason, reg.Len())
		}
	}
	var tick <-chan time.Time
	if poll > 0 {
		t := time.NewTicker(poll)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			reload("SIGHUP")
		case <-tick:
			fi, err := os.Stat(path)
			if err != nil || fi.ModTime().Equal(lastMod) {
				continue
			}
			reload("mtime change")
		}
	}
}

// parseBytes parses a human-friendly byte size: a plain integer counts
// bytes; KiB/MiB/GiB — and their bare K/M/G shorthands — are powers of
// 1024, while KB/MB/GB are powers of 1000. Case-insensitive.
func parseBytes(s string) (int64, error) {
	in := strings.TrimSpace(strings.ToLower(s))
	unit := int64(1)
	for _, u := range []struct {
		suffix string
		factor int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1000}, {"mb", 1000 * 1000}, {"gb", 1000 * 1000 * 1000},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(in, u.suffix) {
			in = strings.TrimSpace(strings.TrimSuffix(in, u.suffix))
			unit = u.factor
			break
		}
	}
	n, err := strconv.ParseInt(in, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want an integer with an optional KiB/MiB/GiB suffix: %w", err)
	}
	if n < 0 {
		return -1, nil
	}
	const maxBudget = int64(1) << 50
	if n > maxBudget/unit {
		return 0, fmt.Errorf("size overflows")
	}
	return n * unit, nil
}
