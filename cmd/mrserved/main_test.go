package main

import (
	"bytes"
	"context"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-parallel", "0"}, "-parallel"},
		{[]string{"-workers", "0"}, "-workers"},
		{[]string{"-queue", "0"}, "-queue"},
		{[]string{"-cache", "-1"}, "-cache"},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %s", tc.args, err, tc.want)
		}
	}
}

// syncBuffer is a goroutine-safe log sink that signals the first write.
type syncBuffer struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	once  sync.Once
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, err := b.buf.Write(p)
	b.once.Do(func() { close(b.first) })
	return n, err
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAndDrain boots the daemon on an ephemeral port, hits /healthz,
// then cancels the context (the SIGINT path) and expects a clean drain.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}

	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s"}, logw)
	}()

	select {
	case <-logw.first:
	case err := <-errCh:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}
	m := regexp.MustCompile(`listening on ([0-9.:]+)`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("no listen address in log: %q", logw.String())
	}
	base := "http://" + m[1]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(logw.String(), "drained") {
		t.Fatalf("log missing drain marker: %q", logw.String())
	}
}
