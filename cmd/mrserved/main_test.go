package main

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mrclone/internal/service"
	"mrclone/internal/service/spec"
	"mrclone/internal/tenant"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-parallel", "0"}, "-parallel"},
		{[]string{"-workers", "0"}, "-workers"},
		{[]string{"-queue", "0"}, "-queue"},
		{[]string{"-cache-bytes", "-1"}, "-cache-bytes"},
		{[]string{"-cache-bytes", "10potatoes"}, "-cache-bytes"},
		{[]string{"-cache-ttl", "-1s"}, "-cache-ttl"},
		{[]string{"-job-retention", "-1s"}, "-job-retention"},
		{[]string{"-gc-interval", "0s"}, "-gc-interval"},
		{[]string{"-log-format", "xml"}, "-log-format"},
		{[]string{"-log-level", "loud"}, "-log-level"},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %s", tc.args, err, tc.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"64KiB", 64 << 10, false},
		{"256mib", 256 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2g", 2 << 30, false},
		{"5KB", 5000, false},
		{"1MB", 1000000, false},
		{" 8 MiB ", 8 << 20, false},
		{"-1", -1, false},
		{"", 0, true},
		{"MiB", 0, true},
		{"1.5GiB", 0, true},
		{"99999999999999999GiB", 0, true},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if tc.err != (err != nil) || (!tc.err && got != tc.want) {
			t.Errorf("parseBytes(%q) = %d, %v; want %d (err %v)", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// syncBuffer is a goroutine-safe log sink that signals the first write.
type syncBuffer struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	once  sync.Once
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, err := b.buf.Write(p)
	b.once.Do(func() { close(b.first) })
	return n, err
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeJSONLogsAndDebug boots the daemon with -log-format json and a
// -debug-addr, finds both listen addresses in the structured log, hits
// /healthz, the pprof index, and /debug/vars, then drains cleanly.
func TestServeJSONLogsAndDebug(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}

	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s",
			"-log-format", "json", "-log-level", "debug",
			"-debug-addr", "127.0.0.1:0", "-shard-name", "obs0"}, logw)
	}()

	// Both listeners log their address; the debug listener comes up first.
	addrRE := regexp.MustCompile(`"addr":"([0-9.:]+)"`)
	var addrs []string
	deadline := time.After(10 * time.Second)
	for len(addrs) < 2 {
		select {
		case err := <-errCh:
			t.Fatalf("run exited early: %v (log %q)", err, logw.String())
		case <-deadline:
			t.Fatalf("daemon never logged both listen addresses: %q", logw.String())
		case <-time.After(10 * time.Millisecond):
		}
		addrs = nil
		for _, m := range addrRE.FindAllStringSubmatch(logw.String(), -1) {
			addrs = append(addrs, m[1])
		}
	}
	debugBase, apiBase := "http://"+addrs[0], "http://"+addrs[1]

	for _, u := range []string{apiBase + "/healthz", debugBase + "/debug/pprof/", debugBase + "/debug/vars"} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", u, resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	log := logw.String()
	for _, want := range []string{`"msg":"drained"`, `"shard":"obs0"`, `"msg":"http request"`, `"trace_id":`} {
		if !strings.Contains(log, want) {
			t.Errorf("JSON log missing %s:\n%s", want, log)
		}
	}
	// Structured mode replaces, not duplicates, the plain lifecycle lines.
	if strings.Contains(log, "mrserved: listening on") {
		t.Error("json mode still emits the plain-text lifecycle line")
	}
}

// TestServeAndDrain boots the daemon on an ephemeral port, hits /healthz,
// then cancels the context (the SIGINT path) and expects a clean drain.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}
	dataDir := t.TempDir() // exercise the persistent path end to end

	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s",
			"-data-dir", dataDir}, logw)
	}()

	select {
	case <-logw.first:
	case err := <-errCh:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}
	m := regexp.MustCompile(`listening on ([0-9.:]+)`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("no listen address in log: %q", logw.String())
	}
	base := "http://" + m[1]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(logw.String(), "drained") {
		t.Fatalf("log missing drain marker: %q", logw.String())
	}
}

// TestTenantHotReloadByPoll boots the daemon against a tenants file with a
// fast mtime poll, proves a not-yet-registered token is rejected, rewrites
// the file to add the tenant, and waits for the poller to admit it — no
// restart, no signal. 401 flipping to 404 is the admission proof: the token
// now authenticates and the probed job genuinely does not exist.
func TestTenantHotReloadByPoll(t *testing.T) {
	tenantsPath := filepath.Join(t.TempDir(), "tenants.json")
	writeTenants := func(body string) {
		t.Helper()
		if err := os.WriteFile(tenantsPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeTenants(`{"tenants":[{"name":"alpha","token":"tok-alpha"}]}`)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s",
			"-tenants", tenantsPath, "-tenants-poll", "25ms"}, logw)
	}()
	select {
	case <-logw.first:
	case err := <-errCh:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}
	m := regexp.MustCompile(`listening on ([0-9.:]+)`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("no listen address in log: %q", logw.String())
	}
	base := "http://" + m[1]

	status := func(token string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+"/v1/matrices/none", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("tok-bravo"); got != http.StatusUnauthorized {
		t.Fatalf("unregistered token: HTTP %d, want 401", got)
	}

	writeTenants(`{"tenants":[{"name":"alpha","token":"tok-alpha"},{"name":"bravo","token":"tok-bravo"}]}`)
	deadline := time.Now().Add(10 * time.Second)
	for status("tok-bravo") != http.StatusNotFound {
		if time.Now().After(deadline) {
			t.Fatalf("token added after startup never admitted; log: %q", logw.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestWatchTenantsSIGHUP drives the watcher's signal path with an injected
// channel: a rewritten file is swapped in on SIGHUP, and a corrupt rewrite
// is logged and skipped while the previous registry keeps serving.
func TestWatchTenantsSIGHUP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants":[{"name":"alpha","token":"tok-alpha"}]}`)
	reg, err := tenant.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 1, Tenants: reg})
	defer func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Close(closeCtx); err != nil {
			t.Error(err)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}
	hup := make(chan os.Signal, 1)
	done := make(chan struct{})
	go func() {
		watchTenants(ctx, svc, path, 0, time.Time{}, hup, nil, logw, false)
		close(done)
	}()

	// SubmitToken with a zero spec separates the auth outcome from the spec
	// one: an unknown token fails authentication, a known one reaches (and
	// fails) spec validation.
	authErr := func(token string) error {
		_, err := svc.SubmitToken(token, spec.Spec{})
		return err
	}
	if err := authErr("tok-bravo"); !errors.Is(err, tenant.ErrUnknownToken) {
		t.Fatalf("pre-reload bravo: %v, want ErrUnknownToken", err)
	}

	write(`{"tenants":[{"name":"alpha","token":"tok-alpha"},{"name":"bravo","token":"tok-bravo"}]}`)
	hup <- syscall.SIGHUP
	deadline := time.Now().Add(10 * time.Second)
	for errors.Is(authErr("tok-bravo"), tenant.ErrUnknownToken) {
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never admitted bravo; log: %q", logw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A corrupt rewrite is skipped: the failure is logged, bravo keeps
	// authenticating against the registry already in service.
	write(`{"tenants":`)
	hup <- syscall.SIGHUP
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(logw.String(), "tenant reload (SIGHUP):") {
		if time.Now().After(deadline) {
			t.Fatalf("corrupt reload never logged; log: %q", logw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := authErr("tok-bravo"); errors.Is(err, tenant.ErrUnknownToken) {
		t.Fatal("corrupt reload wiped the serving registry")
	}

	cancel()
	<-done
}
