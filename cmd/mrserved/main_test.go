package main

import (
	"bytes"
	"context"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-parallel", "0"}, "-parallel"},
		{[]string{"-workers", "0"}, "-workers"},
		{[]string{"-queue", "0"}, "-queue"},
		{[]string{"-cache-bytes", "-1"}, "-cache-bytes"},
		{[]string{"-cache-bytes", "10potatoes"}, "-cache-bytes"},
		{[]string{"-cache-ttl", "-1s"}, "-cache-ttl"},
		{[]string{"-job-retention", "-1s"}, "-job-retention"},
		{[]string{"-gc-interval", "0s"}, "-gc-interval"},
	}
	for _, tc := range cases {
		err := run(context.Background(), tc.args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %s", tc.args, err, tc.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"64KiB", 64 << 10, false},
		{"256mib", 256 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2g", 2 << 30, false},
		{"5KB", 5000, false},
		{"1MB", 1000000, false},
		{" 8 MiB ", 8 << 20, false},
		{"-1", -1, false},
		{"", 0, true},
		{"MiB", 0, true},
		{"1.5GiB", 0, true},
		{"99999999999999999GiB", 0, true},
	}
	for _, tc := range cases {
		got, err := parseBytes(tc.in)
		if tc.err != (err != nil) || (!tc.err && got != tc.want) {
			t.Errorf("parseBytes(%q) = %d, %v; want %d (err %v)", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// syncBuffer is a goroutine-safe log sink that signals the first write.
type syncBuffer struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	once  sync.Once
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, err := b.buf.Write(p)
	b.once.Do(func() { close(b.first) })
	return n, err
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAndDrain boots the daemon on an ephemeral port, hits /healthz,
// then cancels the context (the SIGINT path) and expects a clean drain.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logw := &syncBuffer{first: make(chan struct{})}
	dataDir := t.TempDir() // exercise the persistent path end to end

	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s",
			"-data-dir", dataDir}, logw)
	}()

	select {
	case <-logw.first:
	case err := <-errCh:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}
	m := regexp.MustCompile(`listening on ([0-9.:]+)`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("no listen address in log: %q", logw.String())
	}
	base := "http://" + m[1]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(logw.String(), "drained") {
		t.Fatalf("log missing drain marker: %q", logw.String())
	}
}
