package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-jobs", "60", "-machines", "150", "-sched", "srptms+c",
		"-eps", "0.9", "-seed", "2", "-cdf", "0:300",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scheduler", "avg flowtime", "jobs finished        60", "flowtime<="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllSchedulersRunnable(t *testing.T) {
	for _, name := range []string{"sca", "mantri", "fair", "srpt", "offline"} {
		var buf bytes.Buffer
		err := run(context.Background(), []string{"-jobs", "30", "-machines", "80", "-sched", name, "-seed", "1"}, &buf)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestParallelismDoesNotChangeOutput runs the same replicated simulation
// at parallelism 1 and 4 and requires byte-identical stdout.
func TestParallelismDoesNotChangeOutput(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, par := range []string{"1", "4"} {
		var buf bytes.Buffer
		err := run(context.Background(), []string{
			"-jobs", "50", "-machines", "120", "-runs", "3",
			"-parallel", par, "-seed", "4", "-cdf", "0:300",
		}, &buf)
		if err != nil {
			t.Fatalf("parallel %s: %v", par, err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output depends on -parallel:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	if !strings.Contains(outputs[0], "seed replicates      3") {
		t.Errorf("replicated run missing seed line:\n%s", outputs[0])
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-sched", "bogus", "-jobs", "10", "-machines", "10"}, &buf); err == nil {
		t.Error("bogus scheduler accepted")
	}
	if err := run(context.Background(), []string{"-jobs", "10", "-machines", "10", "-cdf", "nonsense"}, &buf); err == nil {
		t.Error("bad cdf range accepted")
	}
	if err := run(context.Background(), []string{"-trace", "/nonexistent.csv"}, &buf); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run(context.Background(), []string{"-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-jobs", "10", "-machines", "10", "-runs", "0"}, &buf); err == nil {
		t.Error("zero runs accepted")
	}
	if err := run(context.Background(), []string{"-jobs", "10", "-machines", "10", "-parallel", "0"}, &buf); err == nil {
		t.Error("zero parallelism accepted")
	}
	if err := run(context.Background(), []string{"-jobs", "10", "-machines", "10", "-parallel", "-3"}, &buf); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestTraceFileInput(t *testing.T) {
	// Generate a trace via the trace package through the mrtrace-equivalent
	// path: reuse loadTrace with jobs truncation.
	tr, err := loadTrace("", 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 25 {
		t.Fatalf("rows = %d", len(tr.Rows))
	}
}
