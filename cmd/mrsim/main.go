// Command mrsim runs one cluster simulation: a trace (generated or loaded
// from CSV) under a chosen scheduler, printing the flowtime summary.
//
// Usage:
//
//	mrsim [-sched srptms+c] [-machines 12000] [-jobs N] [-eps 0.9] [-r 3]
//	      [-seed 1] [-speed 1] [-trace trace.csv] [-cdf lo:hi]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mrclone/internal/cluster"
	"mrclone/internal/metrics"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mrsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mrsim", flag.ContinueOnError)
	schedName := fs.String("sched", "srptms+c", "scheduler: "+strings.Join(sched.Names(), ", "))
	machines := fs.Int("machines", 12000, "cluster size M")
	jobs := fs.Int("jobs", 0, "truncate trace to first N jobs (0 = all)")
	eps := fs.Float64("eps", 0.9, "SRPTMS+C sharing fraction epsilon")
	rFactor := fs.Float64("r", 3, "deviation factor r in effective workloads")
	seed := fs.Int64("seed", 1, "simulation seed")
	speed := fs.Float64("speed", 1, "machine speed (resource augmentation)")
	tracePath := fs.String("trace", "", "trace CSV (default: generate Table II trace)")
	cdfRange := fs.String("cdf", "", "also print a flowtime CDF over lo:hi seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := loadTrace(*tracePath, *jobs)
	if err != nil {
		return err
	}
	s, err := sched.Build(*schedName, sched.Params{
		Epsilon:         *eps,
		DeviationFactor: *rFactor,
		GateReduces:     true,
	})
	if err != nil {
		return err
	}
	specs, err := tr.Specs()
	if err != nil {
		return err
	}
	eng, err := cluster.New(cluster.Config{
		Machines: *machines,
		Speed:    *speed,
		Seed:     *seed,
	}, s, specs)
	if err != nil {
		return err
	}
	res, err := eng.Run()
	if err != nil {
		return err
	}
	sum, err := metrics.Summarize(res)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scheduler            %s\n", res.Scheduler)
	fmt.Fprintf(out, "machines             %d (speed %.2f)\n", res.Machines, res.Speed)
	fmt.Fprintf(out, "jobs finished        %d\n", res.FinishedJobs)
	fmt.Fprintf(out, "makespan (s)         %d\n", res.Slots)
	fmt.Fprintf(out, "avg flowtime (s)     %.1f\n", sum.MeanFlowtime)
	fmt.Fprintf(out, "weighted avg (s)     %.1f\n", sum.WeightedFlowtime)
	fmt.Fprintf(out, "p50/p90/p99 (s)      %.0f / %.0f / %.0f\n", sum.P50, sum.P90, sum.P99)
	fmt.Fprintf(out, "copies launched      %d (%d clones)\n", res.TotalCopies, res.CloneCopies)
	fmt.Fprintf(out, "wasted clone work    %.0f machine-seconds\n", res.WastedCopyWrk)

	if *cdfRange != "" {
		var lo, hi float64
		if _, err := fmt.Sscanf(*cdfRange, "%f:%f", &lo, &hi); err != nil {
			return fmt.Errorf("bad -cdf %q (want lo:hi): %v", *cdfRange, err)
		}
		pts, err := metrics.FlowtimeCDF(res, lo, hi, 11)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nflowtime<=  fraction")
		for _, p := range pts {
			fmt.Fprintf(out, "%9.0f  %.3f\n", p.X, p.Fraction)
		}
	}
	return nil
}

func loadTrace(path string, jobs int) (*trace.Trace, error) {
	var (
		tr  *trace.Trace
		err error
	)
	if path != "" {
		f, err2 := os.Open(path)
		if err2 != nil {
			return nil, err2
		}
		defer f.Close()
		tr, err = trace.ReadCSV(f)
	} else {
		tr, err = trace.Generate(trace.GoogleParams())
	}
	if err != nil {
		return nil, err
	}
	if jobs > 0 && jobs < len(tr.Rows) {
		tr = tr.Subset(jobs)
	}
	return tr, nil
}
