// Command mrsim runs cluster simulations: a trace (generated or loaded
// from CSV) under a chosen scheduler, printing the flowtime summary. With
// -runs N the simulation is replicated over N deterministic seeds on
// -parallel workers (via internal/runner) and the replicate-averaged
// metrics are printed; results are identical at any worker count.
//
// Usage:
//
//	mrsim [-sched srptms+c] [-machines 12000] [-jobs N] [-eps 0.9] [-r 3]
//	      [-seed 1] [-speed 1] [-runs 1] [-parallel NumCPU]
//	      [-trace trace.csv] [-cdf lo:hi]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the in-flight replicates so long runs exit
	// cleanly instead of dying mid-output.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mrsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mrsim", flag.ContinueOnError)
	schedName := fs.String("sched", "srptms+c", "scheduler: "+strings.Join(sched.Names(), ", "))
	machines := fs.Int("machines", 12000, "cluster size M")
	jobs := fs.Int("jobs", 0, "truncate trace to first N jobs (0 = all)")
	eps := fs.Float64("eps", 0.9, "SRPTMS+C sharing fraction epsilon")
	rFactor := fs.Float64("r", 3, "deviation factor r in effective workloads")
	seed := fs.Int64("seed", 1, "base simulation seed")
	speed := fs.Float64("speed", 1, "machine speed (resource augmentation)")
	runs := fs.Int("runs", 1, "seed replicates to average over; >= 1")
	parallel := fs.Int("parallel", runtime.NumCPU(),
		"replicates simulated concurrently; >= 1 (results do not depend on it)")
	tracePath := fs.String("trace", "", "trace CSV (default: generate Table II trace)")
	cdfRange := fs.String("cdf", "", "also print a flowtime CDF over lo:hi seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs %d: need at least one replicate", *runs)
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel %d: need at least one worker", *parallel)
	}
	var cdfLo, cdfHi float64
	if *cdfRange != "" {
		if _, err := fmt.Sscanf(*cdfRange, "%f:%f", &cdfLo, &cdfHi); err != nil {
			return fmt.Errorf("bad -cdf %q (want lo:hi): %v", *cdfRange, err)
		}
		if cdfHi <= cdfLo {
			return fmt.Errorf("bad -cdf %q: hi must exceed lo", *cdfRange)
		}
	}

	tr, err := loadTrace(*tracePath, *jobs)
	if err != nil {
		return err
	}
	specs, err := tr.Specs()
	if err != nil {
		return err
	}
	res, err := runner.Run(ctx, runner.Spec{
		Specs: specs,
		Schedulers: []runner.SchedulerSpec{{
			Name: *schedName,
			Params: sched.Params{
				Epsilon:         *eps,
				DeviationFactor: *rFactor,
				GateReduces:     true,
			},
		}},
		Points:   []runner.Point{{X: 0, Machines: *machines, Speed: *speed}},
		Runs:     *runs,
		BaseSeed: *seed,
	}, runner.Options{Parallelism: *parallel, KeepRaw: *cdfRange != ""})
	if err != nil {
		return err
	}

	agg := res.Aggregate(0, 0)
	cell := res.Cell(0, 0, 0)
	fmt.Fprintf(out, "scheduler            %s\n", cell.SchedulerName)
	fmt.Fprintf(out, "machines             %d (speed %.2f)\n", cell.Machines, cell.Speed)
	fmt.Fprintf(out, "jobs finished        %d\n", cell.FinishedJobs)
	if *runs > 1 {
		fmt.Fprintf(out, "seed replicates      %d (base seed %d)\n", *runs, *seed)
		fmt.Fprintf(out, "makespan (s)         %.1f\n", agg.MeanSlots)
	} else {
		fmt.Fprintf(out, "makespan (s)         %d\n", cell.Slots)
	}
	fmt.Fprintf(out, "avg flowtime (s)     %.1f\n", agg.MeanFlowtime)
	fmt.Fprintf(out, "weighted avg (s)     %.1f\n", agg.WeightedFlowtime)
	fmt.Fprintf(out, "p50/p90/p99 (s)      %.0f / %.0f / %.0f\n", agg.P50, agg.P90, agg.P99)
	fmt.Fprintf(out, "copies launched      %.0f (%.0f clones)\n", agg.MeanTotalCopies, agg.MeanCloneCopies)
	fmt.Fprintf(out, "wasted clone work    %.0f machine-seconds\n", agg.MeanWastedWork)

	if *cdfRange != "" {
		pts, err := res.CDF(0, 0, cdfLo, cdfHi, 11)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nflowtime<=  fraction")
		for _, p := range pts {
			fmt.Fprintf(out, "%9.0f  %.3f\n", p.X, p.Fraction)
		}
	}
	return nil
}

func loadTrace(path string, jobs int) (*trace.Trace, error) {
	var (
		tr  *trace.Trace
		err error
	)
	if path != "" {
		f, err2 := os.Open(path)
		if err2 != nil {
			return nil, err2
		}
		defer f.Close()
		tr, err = trace.ReadCSV(f)
	} else {
		tr, err = trace.Generate(trace.GoogleParams())
	}
	if err != nil {
		return nil, err
	}
	if jobs > 0 && jobs < len(tr.Rows) {
		tr = tr.Subset(jobs)
	}
	return tr, nil
}
