// Quickstart: generate a small Table II-calibrated workload, run it under
// SRPTMS+C, and print the flowtime summary — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"mrclone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 500-job slice of the Google-like workload.
	params := mrclone.GoogleTraceParams()
	params.Jobs = 500
	tr, err := mrclone.GenerateTrace(params)
	if err != nil {
		return err
	}

	// A proportionally sized cluster (same load ratio as the paper's
	// 6064 jobs on 12000 machines).
	sim, err := mrclone.NewSimulation(tr,
		mrclone.WithMachines(1000),
		mrclone.WithScheduler("srptms+c"),
		mrclone.WithSeed(42),
	)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	sum, err := mrclone.Summarize(res)
	if err != nil {
		return err
	}

	fmt.Printf("scheduler:              %s\n", res.Scheduler)
	fmt.Printf("jobs finished:          %d\n", res.FinishedJobs)
	fmt.Printf("average flowtime:       %.1f s\n", sum.MeanFlowtime)
	fmt.Printf("weighted avg flowtime:  %.1f s\n", sum.WeightedFlowtime)
	fmt.Printf("median / p90 flowtime:  %.0f s / %.0f s\n", sum.P50, sum.P90)
	fmt.Printf("clones launched:        %d (of %d copies)\n", res.CloneCopies, res.TotalCopies)
	return nil
}
