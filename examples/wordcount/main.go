// Wordcount: run a real (in-process) MapReduce word count on a worker pool
// that injects stragglers, and compare the paper's cloning strategy against
// no speculation and detection-based speculation.
//
// This demonstrates the algorithms driving an actual two-phase computation
// rather than the cluster simulator.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"mrclone"
)

// corpus is the input: each line becomes one map split.
var corpus = []string{
	"speculative execution mitigates stragglers in a mapreduce cluster",
	"extra copies of a task are scheduled in parallel with the initial task",
	"the copy which finishes first is used for the subsequent computation",
	"stragglers lead to a large variation in completion times among tasks",
	"the reduce phase of a job cannot begin until all map tasks complete",
	"cloning helps small jobs without waiting for straggler detection",
	"the scheduler computes a priority for every alive job each time slot",
	"jobs with the highest priorities share the machines in proportion",
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	splits := make([][]mrclone.KV, len(corpus))
	for i, line := range corpus {
		splits[i] = []mrclone.KV{{Key: strconv.Itoa(i), Value: line}}
	}
	job := &mrclone.MapReduceJob{
		Name:   "wordcount",
		Splits: splits,
		Map: func(_, value string, emit func(k, v string)) error {
			for _, w := range strings.Fields(value) {
				emit(w, "1")
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, strconv.Itoa(len(values)))
			return nil
		},
		Reducers: 4,
	}

	// 30% of task attempts run 25x slower — a badly flaky cluster.
	straggler := mrclone.StragglerModel{
		BaseDelay:      4 * time.Millisecond,
		Probability:    0.3,
		SlowdownFactor: 25,
	}
	policies := []mrclone.SpeculationPolicy{
		mrclone.NoSpeculation{},
		mrclone.DetectionPolicy{Threshold: 2},
		mrclone.CloningPolicy{Copies: 3},
	}

	fmt.Println("policy      map wall    reduce wall  attempts  backups")
	var firstOutput []mrclone.KV
	for _, policy := range policies {
		engine, err := mrclone.NewMapReduceEngine(mrclone.MapReduceConfig{
			Workers:     64,
			Straggler:   straggler,
			Speculation: policy,
			Seed:        7,
		})
		if err != nil {
			return err
		}
		res, err := engine.Run(context.Background(), job)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %-11v %-12v %-9d %d\n",
			policy.Name(), res.MapStats.WallTime.Round(time.Millisecond),
			res.ReduceStats.WallTime.Round(time.Millisecond),
			res.MapStats.Attempts+res.ReduceStats.Attempts,
			res.MapStats.Backups+res.ReduceStats.Backups)
		if firstOutput == nil {
			firstOutput = res.Output
		} else if len(firstOutput) != len(res.Output) {
			return fmt.Errorf("outputs diverge across policies")
		}
	}

	fmt.Println("\ntop words:")
	printed := 0
	for _, kv := range firstOutput {
		if kv.Value >= "3" && len(kv.Value) == 1 {
			fmt.Printf("  %-12s %s\n", kv.Key, kv.Value)
			printed++
		}
	}
	if printed == 0 {
		fmt.Println("  (no word appears 3+ times)")
	}
	return nil
}
