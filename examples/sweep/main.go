// Sweep: the paper's parameter studies (Figures 1-3) at laptop scale — how
// the sharing fraction epsilon, the deviation factor r, and the cluster size
// shape the average flowtimes of SRPTMS+C. Each study is expressed as a run
// matrix and executed by mrclone.RunMatrix on all cores; the results are
// identical to a sequential run.
package main

import (
	"context"
	"fmt"
	"log"

	"mrclone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := mrclone.GoogleTraceParams()
	params.Jobs = 400
	tr, err := mrclone.GenerateTrace(params)
	if err != nil {
		return err
	}
	specs, err := tr.Specs()
	if err != nil {
		return err
	}

	// sweep runs one srptms+c matrix over the given points and prints the
	// replicate-averaged flowtimes per point.
	sweep := func(points []mrclone.MatrixPoint) error {
		res, err := mrclone.RunMatrix(context.Background(), mrclone.MatrixSpec{
			Specs:      specs,
			Schedulers: []mrclone.MatrixSchedulerSpec{{Name: "srptms+c"}},
			Points:     points,
			Runs:       1,
			BaseSeed:   1,
		}, mrclone.WithParallelism(0))
		if err != nil {
			return err
		}
		for pi := range points {
			agg := res.Aggregate(0, pi)
			fmt.Printf("%-9g %-13.1f %.1f\n", agg.X, agg.MeanFlowtime, agg.WeightedFlowtime)
		}
		return nil
	}
	point := func(x, eps, r float64, machines int) mrclone.MatrixPoint {
		p := mrclone.SchedulerParams{Epsilon: eps, DeviationFactor: r}
		return mrclone.MatrixPoint{X: x, Machines: machines, Params: &p}
	}

	const machines = 800
	fmt.Println("-- Figure 1: epsilon sweep (r = 0)")
	fmt.Println("eps       avg flow (s)  weighted (s)")
	var epsPoints []mrclone.MatrixPoint
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		epsPoints = append(epsPoints, point(eps, eps, 0, machines))
	}
	if err := sweep(epsPoints); err != nil {
		return err
	}

	fmt.Println("\n-- Figure 2: deviation factor sweep (eps = 0.9)")
	fmt.Println("r         avg flow (s)  weighted (s)")
	var rPoints []mrclone.MatrixPoint
	for _, r := range []float64{0, 2, 4, 8} {
		rPoints = append(rPoints, point(r, 0.9, r, machines))
	}
	if err := sweep(rPoints); err != nil {
		return err
	}

	fmt.Println("\n-- Figure 3: cluster size sweep (eps = 0.9, r = 3)")
	fmt.Println("machines  avg flow (s)  weighted (s)")
	var mPoints []mrclone.MatrixPoint
	for _, m := range []int{400, 550, 700, 800} {
		mPoints = append(mPoints, point(float64(m), 0.9, 3, m))
	}
	return sweep(mPoints)
}
