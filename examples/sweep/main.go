// Sweep: the paper's parameter studies (Figures 1-3) at laptop scale — how
// the sharing fraction epsilon, the deviation factor r, and the cluster size
// shape the average flowtimes of SRPTMS+C.
package main

import (
	"fmt"
	"log"

	"mrclone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := mrclone.GoogleTraceParams()
	params.Jobs = 400
	tr, err := mrclone.GenerateTrace(params)
	if err != nil {
		return err
	}

	measure := func(eps, r float64, machines int) (mean, weighted float64, err error) {
		sim, err := mrclone.NewSimulation(tr,
			mrclone.WithMachines(machines),
			mrclone.WithScheduler("srptms+c"),
			mrclone.WithSchedulerParams(mrclone.SchedulerParams{
				Epsilon: eps, DeviationFactor: r,
			}),
			mrclone.WithSeed(1),
		)
		if err != nil {
			return 0, 0, err
		}
		res, err := sim.Run()
		if err != nil {
			return 0, 0, err
		}
		sum, err := mrclone.Summarize(res)
		if err != nil {
			return 0, 0, err
		}
		return sum.MeanFlowtime, sum.WeightedFlowtime, nil
	}

	const machines = 800
	fmt.Println("-- Figure 1: epsilon sweep (r = 0)")
	fmt.Println("eps   avg flow (s)  weighted (s)")
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		mean, weighted, err := measure(eps, 0, machines)
		if err != nil {
			return err
		}
		fmt.Printf("%.1f   %-13.1f %.1f\n", eps, mean, weighted)
	}

	fmt.Println("\n-- Figure 2: deviation factor sweep (eps = 0.9)")
	fmt.Println("r     avg flow (s)  weighted (s)")
	for _, r := range []float64{0, 2, 4, 8} {
		mean, weighted, err := measure(0.9, r, machines)
		if err != nil {
			return err
		}
		fmt.Printf("%.0f     %-13.1f %.1f\n", r, mean, weighted)
	}

	fmt.Println("\n-- Figure 3: cluster size sweep (eps = 0.9, r = 3)")
	fmt.Println("machines  avg flow (s)  weighted (s)")
	for _, m := range []int{400, 550, 700, 800} {
		mean, weighted, err := measure(0.9, 3, m)
		if err != nil {
			return err
		}
		fmt.Printf("%-9d %-13.1f %.1f\n", m, mean, weighted)
	}
	return nil
}
