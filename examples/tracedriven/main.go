// Tracedriven: the paper's headline comparison (Figure 6) on a laptop-scale
// slice of the workload — SRPTMS+C versus the SCA and Mantri baselines, with
// the small-job CDF of Figure 4.
package main

import (
	"fmt"
	"log"

	"mrclone"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := mrclone.GoogleTraceParams()
	params.Jobs = 800
	tr, err := mrclone.GenerateTrace(params)
	if err != nil {
		return err
	}

	type row struct {
		name     string
		mean     float64
		weighted float64
		within   float64 // fraction of jobs finishing within 100 s
	}
	var rows []row
	for _, name := range []string{"srptms+c", "sca", "mantri"} {
		sim, err := mrclone.NewSimulation(tr,
			mrclone.WithMachines(1600),
			mrclone.WithScheduler(name),
			mrclone.WithSeed(1),
		)
		if err != nil {
			return err
		}
		res, err := sim.Run()
		if err != nil {
			return err
		}
		sum, err := mrclone.Summarize(res)
		if err != nil {
			return err
		}
		cdf, err := mrclone.FlowtimeCDF(res, 100, 101, 2)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			name: name, mean: sum.MeanFlowtime, weighted: sum.WeightedFlowtime,
			within: cdf[0].Fraction,
		})
	}

	fmt.Println("algorithm   avg flow (s)  weighted avg (s)  jobs <= 100 s")
	for _, r := range rows {
		fmt.Printf("%-11s %-13.1f %-17.1f %.0f%%\n", r.name, r.mean, r.weighted, r.within*100)
	}
	base := rows[len(rows)-1] // mantri
	ours := rows[0]
	fmt.Printf("\nSRPTMS+C vs Mantri: avg flowtime -%.0f%%, weighted avg -%.0f%% (paper: ~25%%)\n",
		(base.mean-ours.mean)/base.mean*100,
		(base.weighted-ours.weighted)/base.weighted*100)
	return nil
}
