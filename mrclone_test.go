package mrclone

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func smallTrace(t *testing.T) *Trace {
	t.Helper()
	p := GoogleTraceParams()
	p.Jobs = 60
	tr, err := GenerateTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestQuickstartFlow(t *testing.T) {
	tr := smallTrace(t)
	sim, err := NewSimulation(tr,
		WithMachines(200),
		WithScheduler("srptms+c"),
		WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedJobs != 60 {
		t.Fatalf("finished %d/60", res.FinishedJobs)
	}
	sum, err := Summarize(res)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanFlowtime <= 0 || sum.WeightedFlowtime <= 0 {
		t.Fatalf("bad summary %+v", sum)
	}
	cdf, err := FlowtimeCDF(res, 0, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdf) != 10 {
		t.Fatalf("cdf points %d", len(cdf))
	}
}

func TestAllSchedulersViaFacade(t *testing.T) {
	tr := smallTrace(t)
	names := SchedulerNames()
	if len(names) != 8 {
		t.Fatalf("scheduler names: %v", names)
	}
	for _, name := range names {
		sim, err := NewSimulation(tr,
			WithMachines(150),
			WithScheduler(name),
			WithSchedulerParams(SchedulerParams{Epsilon: 0.6, DeviationFactor: 3, GateReduces: true}),
			WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	tr := smallTrace(t)
	if _, err := NewSimulation(nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewSimulation(&Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewSimulation(tr, WithMachines(0)); err == nil {
		t.Error("machines=0 accepted")
	}
	if _, err := NewSimulation(tr, WithSpeed(-1)); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewSimulation(tr, WithCustomScheduler(nil)); err == nil {
		t.Error("nil custom scheduler accepted")
	}
	sim, err := NewSimulation(tr, WithMachines(100), WithScheduler("bogus"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("bogus scheduler name accepted at Run")
	}
	if _, err := NewSimulationFromSpecs(nil); err == nil {
		t.Error("empty specs accepted")
	}
}

// greedy is a custom scheduler exercising the public extension point: it
// launches one copy of every unscheduled task in arrival order.
type greedy struct{}

func (greedy) Name() string { return "greedy-custom" }

func (greedy) Schedule(ctx *SchedulerContext) {
	for _, j := range ctx.AliveJobs() {
		for _, task := range j.UnscheduledTasks(PhaseMap) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, task, 1, false); err != nil {
				return
			}
		}
		if !j.MapPhaseDone() {
			continue
		}
		for _, task := range j.UnscheduledTasks(PhaseReduce) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, task, 1, false); err != nil {
				return
			}
		}
	}
}

func TestCustomScheduler(t *testing.T) {
	// A custom scheduler that launches everything greedily.
	tr := smallTrace(t)
	sim, err := NewSimulation(tr,
		WithMachines(500),
		WithCustomScheduler(greedy{}),
		WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedJobs != 60 {
		t.Fatalf("finished %d", res.FinishedJobs)
	}
	if res.Scheduler != "greedy-custom" {
		t.Fatalf("scheduler name %q", res.Scheduler)
	}
}

func TestTraceCSVRoundTripViaFacade(t *testing.T) {
	tr := smallTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(tr.Rows) {
		t.Fatal("round trip lost rows")
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := smallTrace(t)
	runOnce := func() FlowtimeSummary {
		sim, err := NewSimulation(tr, WithMachines(120), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum, err := Summarize(res)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same seed, different summaries: %+v vs %+v", a, b)
	}
}

func TestRunMatrixPublicAPI(t *testing.T) {
	tr := smallTrace(t)
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	spec := MatrixSpec{
		Specs: specs,
		Schedulers: []MatrixSchedulerSpec{
			{Name: "srptms+c", Params: SchedulerParams{Epsilon: 0.9, DeviationFactor: 3}},
			{Name: "fair"},
		},
		Points:   []MatrixPoint{{X: 120, Machines: 120}},
		Runs:     2,
		BaseSeed: 9,
	}
	var done int
	res, err := RunMatrix(context.Background(), spec,
		WithParallelism(2),
		WithRawResults(),
		WithProgress(func(d, total int) {
			done = d
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Errorf("progress reached %d, want 4", done)
	}
	for si := range spec.Schedulers {
		agg := res.Aggregate(si, 0)
		if agg.Jobs == 0 || agg.MeanFlowtime <= 0 {
			t.Errorf("scheduler %d: empty aggregate %+v", si, agg)
		}
		if _, err := res.CDF(si, 0, 0, 300, 5); err != nil {
			t.Errorf("scheduler %d: CDF: %v", si, err)
		}
	}
	// The matrix cell must agree with the single-simulation API at the
	// same seed.
	sim, err := NewSimulation(tr, WithMachines(120), WithSeed(9),
		WithSchedulerParams(SchedulerParams{Epsilon: 0.9, DeviationFactor: 3}))
	if err != nil {
		t.Fatal(err)
	}
	single, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(single)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cell(0, 0, 0).Summary; got != sum {
		t.Errorf("matrix cell %+v != single run %+v", got, sum)
	}

	if _, err := RunMatrix(context.Background(), spec, WithParallelism(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestExperimentPresets(t *testing.T) {
	full := FullExperimentOptions()
	if full.Machines != 12000 {
		t.Errorf("full machines %d", full.Machines)
	}
	quick := QuickExperimentOptions()
	if quick.Machines != 1600 {
		t.Errorf("quick machines %d", quick.Machines)
	}
}
