package mrclone

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section VI) plus the theorem checks and ablations.
// Each benchmark regenerates its artifact at laptop scale per iteration;
// run the full-scale versions with:
//
//	go run ./cmd/mrexperiments -scale full
//
// The -benchtime=1x flag gives one full regeneration per benchmark:
//
//	go test -bench=. -benchtime=1x -benchmem

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/experiments"
	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// benchOptions is a reduced preset so `go test -bench=.` stays tractable:
// 300 jobs on a 600-machine cluster (the paper's load ratio), one run.
func benchOptions() experiments.Options {
	p := trace.GoogleParams()
	p.Jobs = 300
	return experiments.Options{TraceParams: p, Machines: 600, Runs: 1, Seed: 1}
}

// BenchmarkTable2TraceStats regenerates Table II (trace statistics).
func BenchmarkTable2TraceStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1EpsilonSweep regenerates Figure 1 (flowtime vs epsilon, r=0).
func BenchmarkFig1EpsilonSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1Epsilons(benchOptions(), []float64{0.2, 0.6, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2RSweep regenerates Figure 2 (flowtime vs deviation factor r).
func BenchmarkFig2RSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2Factors(benchOptions(), []float64{1, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3MachineSweep regenerates Figure 3 (flowtime vs cluster size).
func BenchmarkFig3MachineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3Machines(benchOptions(), []int{300, 450, 600})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SmallJobCDF regenerates Figure 4 (small-job flowtime CDF
// under SRPTMS+C / SCA / Mantri).
func BenchmarkFig4SmallJobCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5BigJobCDF regenerates Figure 5 (big-job flowtime CDF).
func BenchmarkFig5BigJobCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6AlgorithmComparison regenerates Figure 6 (weighted and
// unweighted average flowtime per algorithm) and reports the improvement
// over Mantri as a custom metric (the paper's headline ~25%).
func BenchmarkFig6AlgorithmComparison(b *testing.B) {
	var lastMean, lastWeighted float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		mean, weighted, err := res.ImprovementOverMantri()
		if err != nil {
			b.Fatal(err)
		}
		lastMean, lastWeighted = mean, weighted
	}
	b.ReportMetric(lastMean*100, "%mean-vs-mantri")
	b.ReportMetric(lastWeighted*100, "%weighted-vs-mantri")
}

// BenchmarkTheorem1OfflineBound regenerates the Theorem 1 check (offline
// flowtime bound hold rate and zero-variance 2-competitiveness).
func BenchmarkTheorem1OfflineBound(b *testing.B) {
	var holdRate, ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Theorem1(experiments.Options{Runs: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		holdRate, ratio = res.HoldRate(), res.ZeroVarianceRatio
	}
	b.ReportMetric(holdRate, "hold-rate")
	b.ReportMetric(ratio, "competitive-ratio")
}

// BenchmarkTheorem2SpeedAugmentation regenerates the Theorem 2 check
// (speed-augmented competitive ratio vs the o(1/eps^2) ceiling).
func BenchmarkTheorem2SpeedAugmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Theorem2Epsilons(benchOptions(), []float64{0.4, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Ratio > p.Ceiling {
				b.Fatalf("eps=%v: ratio %v exceeds ceiling %v", p.Epsilon, p.Ratio, p.Ceiling)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Engine and runner throughput
// ---------------------------------------------------------------------------

// benchEngineRun measures one full simulation of the bench workload under
// one of the engine's execution loops (the per-cell cost of a matrix run).
func benchEngineRun(b *testing.B, loop cluster.LoopMode) {
	b.Helper()
	o := benchOptions()
	tr, err := trace.Generate(o.TraceParams)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		b.Fatal(err)
	}
	var slots int64
	for i := 0; i < b.N; i++ {
		s, err := sched.Build("srptms+c", sched.Params{
			Epsilon: experiments.TunedEpsilon, DeviationFactor: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := cluster.New(cluster.Config{
			Machines: o.Machines,
			Seed:     1,
			Loop:     loop,
		}, s, specs)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		slots = res.Slots
	}
	b.ReportMetric(float64(slots), "final-slot")
}

// BenchmarkEngineEventCore is the production configuration: the
// discrete-event loop over the priority-heap calendar. This is the
// benchmark the CI gate holds against BENCH_BASELINE.json.
func BenchmarkEngineEventCore(b *testing.B) { benchEngineRun(b, cluster.LoopAuto) }

// BenchmarkEngineSlotForward is the slot-stepping loop with the idle-slot
// fast-forward — what Mantri/LATE run on, measured on the same workload.
func BenchmarkEngineSlotForward(b *testing.B) { benchEngineRun(b, cluster.LoopSlots) }

// BenchmarkEngineNaiveLoop is the naive slot-by-slot reference loop, kept
// as the baseline the event core is measured against in-run (the gate
// asserts the naive/event ratio, which cancels out machine speed).
func BenchmarkEngineNaiveLoop(b *testing.B) { benchEngineRun(b, cluster.LoopNaive) }

// BenchmarkCalibrationSpin is a fixed, allocation-free integer workload used
// to normalize ns/op across machines: the CI gate divides each benchmark's
// ns/op by this benchmark's before comparing against BENCH_BASELINE.json, so
// a uniformly slower runner does not read as an engine regression.
func BenchmarkCalibrationSpin(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		x := uint64(88172645463325252)
		for n := 0; n < 1<<23; n++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sink += x
	}
	if sink == 0 {
		b.Fatal("unreachable: xorshift never yields zero")
	}
}

// BenchmarkRunnerMatrix executes the Figure 6 comparison matrix (3
// algorithms × 2 seeds) through internal/runner at parallelism 1 versus all
// cores — the orchestration speedup on one number.
func BenchmarkRunnerMatrix(b *testing.B) {
	o := benchOptions()
	tr, err := trace.Generate(o.TraceParams)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		b.Fatal(err)
	}
	p := sched.Params{Epsilon: experiments.TunedEpsilon, DeviationFactor: 3}
	spec := runner.Spec{
		Specs: specs,
		Schedulers: []runner.SchedulerSpec{
			{Name: "srptms+c", Params: p}, {Name: "sca", Params: p}, {Name: "mantri", Params: p},
		},
		Points:   []runner.Point{{X: float64(o.Machines), Machines: o.Machines}},
		Runs:     2,
		BaseSeed: 1,
	}
	wide := runtime.NumCPU()
	if wide < 4 {
		wide = 4 // keep the comparison meaningful on small CI machines
	}
	for _, tc := range []struct {
		name string
		par  int
	}{
		{"parallel1", 1},
		{fmt.Sprintf("parallel%d", wide), wide},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(context.Background(), spec,
					runner.Options{Parallelism: tc.par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5 design choices)
// ---------------------------------------------------------------------------

// benchScheduler measures one simulation of the bench workload under a
// scheduler configuration and reports the weighted average flowtime.
func benchScheduler(b *testing.B, name string, p sched.Params) {
	b.Helper()
	o := benchOptions()
	tr, err := trace.Generate(o.TraceParams)
	if err != nil {
		b.Fatal(err)
	}
	var weighted float64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulation(tr,
			WithMachines(o.Machines),
			WithScheduler(name),
			WithSchedulerParams(p),
			WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		sum, err := Summarize(res)
		if err != nil {
			b.Fatal(err)
		}
		weighted = sum.WeightedFlowtime
	}
	b.ReportMetric(weighted, "weighted-flowtime-s")
}

// BenchmarkAblationCloneCap sweeps the per-task clone cap of SRPTMS+C.
func BenchmarkAblationCloneCap(b *testing.B) {
	for _, cloneCap := range []int{1, 2, 4, 8} {
		cloneCap := cloneCap
		b.Run(fmt.Sprintf("cap%d", cloneCap), func(b *testing.B) {
			benchScheduler(b, "srptms+c", sched.Params{
				Epsilon: experiments.TunedEpsilon, DeviationFactor: 3, MaxClonesPerTask: cloneCap,
			})
		})
	}
}

// BenchmarkAblationEpsilon compares the SRPT-like, tuned, and fair-like
// operating points of the sharing fraction.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, tc := range []struct {
		name string
		eps  float64
	}{
		{"srpt-like-0.1", 0.1},
		{"tuned-0.9", 0.9},
		{"fair-like-1.0", 1.0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchScheduler(b, "srptms+c", sched.Params{Epsilon: tc.eps, DeviationFactor: 3})
		})
	}
}

// BenchmarkAblationSchedulers measures every registered scheduler on the
// same workload — the simulator-throughput comparison.
func BenchmarkAblationSchedulers(b *testing.B) {
	for _, name := range SchedulerNames() {
		b.Run(name, func(b *testing.B) {
			benchScheduler(b, name, sched.Params{
				Epsilon: experiments.TunedEpsilon, DeviationFactor: 3, GateReduces: true,
			})
		})
	}
}
