module mrclone

go 1.24
