// Package rng provides deterministic, label-splittable pseudo-random number
// generation for reproducible simulations.
//
// Every experiment in this repository derives all of its randomness from a
// single root seed. Sub-streams are derived by hashing string labels and
// integer indexes into the parent seed, so that
//
//   - the same (seed, label-path) always yields the same stream, and
//   - independent components (trace generation, per-task duration sampling,
//     scheduler tie-breaking) consume independent streams and can be
//     re-ordered or parallelized without perturbing each other.
package rng

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Source is a deterministic random stream that can be split into
// independent child streams by label.
type Source struct {
	seed int64
	rnd  *rand.Rand
}

// New returns a Source rooted at the given seed.
func New(seed int64) *Source {
	return &Source{
		seed: seed,
		rnd:  rand.New(rand.NewSource(seed)),
	}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child stream from a string label. Splitting
// does not consume randomness from the parent, so the parent stream is
// unaffected by how many children are derived.
func (s *Source) Split(label string) *Source {
	return New(deriveSeed(s.seed, label))
}

// SplitN derives an independent child stream from a label and an index,
// convenient for per-item streams (for example, one stream per task).
func (s *Source) SplitN(label string, n int) *Source {
	return New(deriveSeed(s.seed, label+"#"+strconv.Itoa(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.rnd.Float64() }

// Intn returns a uniform int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int { return s.rnd.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.rnd.Int63() }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.rnd.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 { return s.rnd.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rnd.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rnd.Shuffle(n, swap) }

// deriveSeed mixes a parent seed and a label into a child seed using FNV-1a.
// FNV is not cryptographic but provides excellent avalanche behaviour for
// stream separation, which is all that simulation reproducibility requires.
func deriveSeed(parent int64, label string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(parent) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	return int64(h.Sum64())
}
