package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Float64(), b.Float64(); got != want {
			t.Fatalf("draw %d: %v != %v", i, got, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	childA := root.Split("a")
	// Drawing from childA must not perturb a later-split sibling.
	for i := 0; i < 100; i++ {
		childA.Float64()
	}
	childB := root.Split("b")

	root2 := New(7)
	childB2 := root2.Split("b")
	for i := 0; i < 100; i++ {
		if got, want := childB.Float64(), childB2.Float64(); got != want {
			t.Fatalf("sibling stream perturbed at draw %d: %v != %v", i, got, want)
		}
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	root := New(1)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for distinct labels look identical: %d/100 equal draws", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(3)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := root.SplitN("task", i)
		if seen[s.Seed()] {
			t.Fatalf("duplicate derived seed for index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMeanApproximatelyHalf(t *testing.T) {
	s := New(99)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(5)
	v := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range v {
		sum += x
	}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	sum2 := 0
	for _, x := range v {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", v)
	}
}
