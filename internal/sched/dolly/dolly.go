// Package dolly implements a Dolly-style pure-cloning baseline
// (Ananthanarayanan et al., "Effective Straggler Mitigation: Attack of the
// Clones", NSDI 2013 — reference [2] of the paper): clone *every* task of
// sufficiently small jobs up-front within a cluster-wide cloning budget, and
// run everything else without speculation. Jobs are served FIFO.
//
// Dolly's insight is that small jobs dominate job counts while contributing
// little load, so cloning them wholesale is cheap insurance; the paper's
// critique is that this greedy heuristic carries no performance guarantee
// and does not prioritize jobs.
package dolly

import (
	"fmt"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
)

// Config parameterizes the Dolly baseline.
type Config struct {
	// SmallJobTasks is the maximum total task count for a job to be cloned
	// (Dolly clones jobs below a task-count threshold; default 10).
	SmallJobTasks int
	// Copies is the number of copies per task of a small job (default 3).
	Copies int
	// BudgetFraction caps machines spent on clone copies (beyond first
	// copies) as a fraction of the cluster (Dolly's ~5-10%; default 0.1).
	BudgetFraction float64
}

// Defaults for Config zero values.
const (
	DefaultSmallJobTasks  = 10
	DefaultCopies         = 3
	DefaultBudgetFraction = 0.1
)

// Scheduler implements cluster.Scheduler. It carries per-instance scratch
// and must not be shared by concurrently running engines.
type Scheduler struct {
	cfg Config

	tasks []*job.Task
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns a Dolly-style scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.SmallJobTasks == 0 {
		cfg.SmallJobTasks = DefaultSmallJobTasks
	}
	if cfg.SmallJobTasks < 1 {
		return nil, fmt.Errorf("dolly: small-job threshold %d", cfg.SmallJobTasks)
	}
	if cfg.Copies == 0 {
		cfg.Copies = DefaultCopies
	}
	if cfg.Copies < 1 {
		return nil, fmt.Errorf("dolly: copies %d", cfg.Copies)
	}
	if cfg.BudgetFraction == 0 {
		cfg.BudgetFraction = DefaultBudgetFraction
	}
	if cfg.BudgetFraction < 0 || cfg.BudgetFraction > 1 {
		return nil, fmt.Errorf("dolly: budget fraction %v outside [0, 1]", cfg.BudgetFraction)
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("Dolly(<=%d tasks x%d)", s.cfg.SmallJobTasks, s.cfg.Copies)
}

// EventDriven implements cluster.EventDriven: the clone budget and copy
// counts are recomputed from task states each slot, so idle slots may be
// skipped.
func (s *Scheduler) EventDriven() bool { return true }

// Schedule implements cluster.Scheduler.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	alive := ctx.AliveJobs() // FIFO

	// Current clone budget: machines running copies beyond one per task.
	cloneBudget := int(s.cfg.BudgetFraction * float64(ctx.Machines()))
	for _, j := range alive {
		for _, p := range []job.Phase{job.PhaseMap, job.PhaseReduce} {
			s.tasks = j.AppendRunning(s.tasks[:0], p)
			for _, t := range s.tasks {
				if t.Copies > 1 {
					cloneBudget -= t.Copies - 1
				}
			}
		}
	}

	for _, j := range alive {
		if ctx.FreeMachines() == 0 {
			return
		}
		copies := 1
		if j.Spec.TotalTasks() <= s.cfg.SmallJobTasks {
			copies = s.cfg.Copies
		}
		cloneBudget = s.fillPhase(ctx, j, job.PhaseMap, copies, cloneBudget)
		if !j.MapPhaseDone() {
			continue
		}
		cloneBudget = s.fillPhase(ctx, j, job.PhaseReduce, copies, cloneBudget)
	}
}

// fillPhase launches the unscheduled tasks of one phase with up to `copies`
// copies each, charging extra copies against the clone budget. It returns
// the remaining budget.
func (s *Scheduler) fillPhase(ctx *cluster.Context, j *job.Job, p job.Phase,
	copies, cloneBudget int) int {
	s.tasks = j.AppendUnscheduled(s.tasks[:0], p)
	for _, t := range s.tasks {
		if ctx.FreeMachines() == 0 {
			return cloneBudget
		}
		n := copies
		if extra := n - 1; extra > cloneBudget {
			n = 1 + cloneBudget
		}
		if n > ctx.FreeMachines() {
			n = ctx.FreeMachines()
		}
		if n < 1 {
			n = 1
		}
		launched, err := ctx.Launch(j, t, n, false)
		if err != nil {
			return cloneBudget
		}
		if launched > 1 {
			cloneBudget -= launched - 1
		}
	}
	return cloneBudget
}
