package dolly

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func run(t *testing.T, machines int, cfg Config, seed int64, specs []job.Spec) *cluster.Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: seed}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SmallJobTasks: -1},
		{Copies: -2},
		{BudgetFraction: -0.5},
		{BudgetFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.SmallJobTasks != DefaultSmallJobTasks || s.cfg.Copies != DefaultCopies ||
		s.cfg.BudgetFraction != DefaultBudgetFraction {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestClonesSmallJobsOnly(t *testing.T) {
	p, err := dist.NewPareto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 2, MapDist: p},  // small: cloned x3
		{ID: 1, Weight: 1, MapTasks: 40, MapDist: p}, // big: no clones
	}
	res := run(t, 100, Config{SmallJobTasks: 10, Copies: 3, BudgetFraction: 0.5}, 1, specs)
	var smallCopies, bigCopies int
	for _, jr := range res.Jobs {
		if jr.ID == 0 {
			smallCopies = jr.TotalCopies
		} else {
			bigCopies = jr.TotalCopies
		}
	}
	if smallCopies != 6 { // 2 tasks x 3 copies
		t.Errorf("small job copies = %d, want 6", smallCopies)
	}
	if bigCopies != 40 { // one copy per task
		t.Errorf("big job copies = %d, want 40", bigCopies)
	}
}

func TestBudgetBoundsCloning(t *testing.T) {
	p, err := dist.NewPareto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 5 small jobs x 4 tasks: cloning x3 would need 40 extra machines, but
	// the budget allows only 10% of 50 = 5 extra copies at any time.
	var specs []job.Spec
	for i := 0; i < 5; i++ {
		specs = append(specs, job.Spec{ID: i, Weight: 1, MapTasks: 4, MapDist: p})
	}
	res := run(t, 50, Config{SmallJobTasks: 10, Copies: 3, BudgetFraction: 0.1}, 2, specs)
	// Clone copies launched in the first wave cannot exceed the budget by
	// much (budget is re-checked per slot; each slot adds at most budget).
	if res.CloneCopies > 15 {
		t.Fatalf("clones = %d, budget should keep this low", res.CloneCopies)
	}
	if res.FinishedJobs != 5 {
		t.Fatalf("finished %d/5", res.FinishedJobs)
	}
}

func TestFIFOOrder(t *testing.T) {
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Arrival: 0, Weight: 1, MapTasks: 6, MapDist: d},
		{ID: 1, Arrival: 1, Weight: 5, MapTasks: 1, MapDist: d},
	}
	res := run(t, 1, Config{}, 1, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	if finish[0] >= finish[1] {
		t.Fatalf("FIFO violated: %v", finish)
	}
}

func TestPrecedence(t *testing.T) {
	d, err := dist.NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 2, MapDist: d,
		ReduceTask: 1, ReduceDist: d,
	}}
	res := run(t, 20, Config{}, 1, specs)
	if res.Jobs[0].Flowtime != 10 {
		t.Fatalf("flowtime = %d, want 10", res.Jobs[0].Flowtime)
	}
}
