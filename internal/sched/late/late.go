// Package late implements a LATE-style baseline (Zaharia et al., OSDI 2008,
// reference [28] of the paper): Longest Approximate Time to End. LATE ranks
// running tasks by their estimated remaining time and speculatively
// re-executes the ones expected to finish farthest in the future, subject to
// a cap on concurrent speculative copies, and only for tasks whose progress
// is below a threshold relative to the phase average.
//
// Like Mantri it is a straggler-*detection* scheme with FIFO job order; the
// two differ in the relaunch rule. It broadens the detection-family
// comparison beyond the paper's Figures 4-6.
package late

import (
	"fmt"
	"sort"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
)

// Config parameterizes LATE.
type Config struct {
	// SpeculativeCap bounds concurrently running speculative copies as a
	// fraction of cluster size (LATE's SpeculativeCap, default 0.1).
	SpeculativeCap float64
	// SlowTaskThreshold: only tasks whose progress fraction is below this
	// quantile-ish threshold of the phase mean are candidates (default 0.25
	// below mean progress).
	SlowTaskThreshold float64
	// MinObservationSlots before a copy's progress is trusted (default 8).
	MinObservationSlots int64
}

// Defaults for Config zero values.
const (
	DefaultSpeculativeCap    = 0.1
	DefaultSlowTaskThreshold = 0.25
	DefaultMinObservation    = 8
)

// Scheduler implements cluster.Scheduler.
type Scheduler struct {
	cfg Config
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns a LATE-style scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.SpeculativeCap == 0 {
		cfg.SpeculativeCap = DefaultSpeculativeCap
	}
	if cfg.SpeculativeCap < 0 || cfg.SpeculativeCap > 1 {
		return nil, fmt.Errorf("late: speculative cap %v outside [0, 1]", cfg.SpeculativeCap)
	}
	if cfg.SlowTaskThreshold == 0 {
		cfg.SlowTaskThreshold = DefaultSlowTaskThreshold
	}
	if cfg.SlowTaskThreshold < 0 || cfg.SlowTaskThreshold > 1 {
		return nil, fmt.Errorf("late: slow-task threshold %v outside [0, 1]", cfg.SlowTaskThreshold)
	}
	if cfg.MinObservationSlots == 0 {
		cfg.MinObservationSlots = DefaultMinObservation
	}
	if cfg.MinObservationSlots < 0 {
		return nil, fmt.Errorf("late: negative observation window %d", cfg.MinObservationSlots)
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string { return fmt.Sprintf("LATE(cap=%g)", s.cfg.SpeculativeCap) }

// Schedule implements cluster.Scheduler.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	alive := ctx.AliveJobs() // FIFO

	// Pass 1: first copies, FIFO, maps before reduces.
	var specCopies int // currently running speculative copies (approximate)
	for _, j := range alive {
		if ctx.FreeMachines() == 0 {
			return
		}
		for _, t := range j.UnscheduledTasks(job.PhaseMap) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
		if !j.MapPhaseDone() {
			continue
		}
		for _, t := range j.UnscheduledTasks(job.PhaseReduce) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
	}
	if ctx.FreeMachines() == 0 {
		return
	}

	// Pass 2: rank candidate stragglers by longest approximate time to end.
	type candidate struct {
		j   *job.Job
		t   *job.Task
		tte float64 // approximate time to end
	}
	var cands []candidate
	for _, j := range alive {
		for _, p := range []job.Phase{job.PhaseMap, job.PhaseReduce} {
			running := j.RunningTasks(p)
			if len(running) == 0 {
				continue
			}
			// Phase-average progress across running tasks.
			var sum float64
			var observed int
			type obs struct {
				t    *job.Task
				prog cluster.CopyProgress
			}
			var obsList []obs
			for _, t := range running {
				pr, ok := ctx.BestProgress(t)
				if !ok || pr.Gated || pr.Elapsed < s.cfg.MinObservationSlots {
					continue
				}
				sum += pr.Fraction
				observed++
				obsList = append(obsList, obs{t: t, prog: pr})
			}
			if observed == 0 {
				continue
			}
			mean := sum / float64(observed)
			for _, o := range obsList {
				if o.t.Copies > 1 {
					continue // one speculative copy per task
				}
				if o.prog.Fraction >= mean-s.cfg.SlowTaskThreshold {
					continue // not slow enough relative to the phase
				}
				if o.prog.Fraction <= 0 {
					continue
				}
				tte := float64(o.prog.Elapsed) * (1 - o.prog.Fraction) / o.prog.Fraction
				cands = append(cands, candidate{j: j, t: o.t, tte: tte})
			}
		}
		specCopies += countSpeculative(j)
	}
	budget := int(s.cfg.SpeculativeCap*float64(ctx.Machines())) - specCopies
	if budget <= 0 {
		return
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].tte != cands[b].tte {
			return cands[a].tte > cands[b].tte // longest time-to-end first
		}
		if cands[a].j.Spec.ID != cands[b].j.Spec.ID {
			return cands[a].j.Spec.ID < cands[b].j.Spec.ID
		}
		return cands[a].t.ID.Index < cands[b].t.ID.Index
	})
	for _, c := range cands {
		if budget == 0 || ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(c.j, c.t, 1, false); err != nil {
			return
		}
		budget--
	}
}

// countSpeculative counts running copies beyond one per task.
func countSpeculative(j *job.Job) int {
	n := 0
	for _, p := range []job.Phase{job.PhaseMap, job.PhaseReduce} {
		for _, t := range j.RunningTasks(p) {
			if t.Copies > 1 {
				n += t.Copies - 1
			}
		}
	}
	return n
}
