package late

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func run(t *testing.T, machines int, cfg Config, seed int64, specs []job.Spec) *cluster.Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: seed}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SpeculativeCap: -0.1},
		{SpeculativeCap: 1.5},
		{SlowTaskThreshold: -0.2},
		{SlowTaskThreshold: 2},
		{MinObservationSlots: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v) accepted", i, cfg)
		}
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.SpeculativeCap != DefaultSpeculativeCap ||
		s.cfg.SlowTaskThreshold != DefaultSlowTaskThreshold ||
		s.cfg.MinObservationSlots != DefaultMinObservation {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestCompletesWorkload(t *testing.T) {
	p, err := dist.NewPareto(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 5, MapDist: p, ReduceTask: 2, ReduceDist: p},
		{ID: 1, Arrival: 3, Weight: 2, MapTasks: 3, MapDist: p},
	}
	res := run(t, 6, Config{}, 4, specs)
	if res.FinishedJobs != 2 {
		t.Fatalf("finished %d/2", res.FinishedJobs)
	}
}

func TestSpeculatesOnStragglers(t *testing.T) {
	// Heavy tail with many tasks: the slowest tasks should attract
	// speculative copies across seeds.
	p, err := dist.NewPareto(10, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 10, MapDist: p}}
	var clones int64
	for seed := int64(0); seed < 10; seed++ {
		res := run(t, 30, Config{}, seed, specs)
		clones += res.CloneCopies
	}
	if clones == 0 {
		t.Fatal("LATE never speculated on heavy-tail stragglers")
	}
}

func TestSpeculativeCapLimitsCopies(t *testing.T) {
	p, err := dist.NewPareto(20, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 10, MapDist: p}}
	// Cap 0 machines of speculation via a tiny fraction on a small cluster.
	res := run(t, 12, Config{SpeculativeCap: 0.0001}, 3, specs)
	if res.CloneCopies != 0 {
		t.Fatalf("speculation above cap: %d clones", res.CloneCopies)
	}
}

func TestZeroVarianceNoSpeculation(t *testing.T) {
	// With deterministic durations no task falls below the mean progress
	// threshold, so nothing is speculated.
	d, err := dist.NewDeterministic(30)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 6, MapDist: d}}
	res := run(t, 20, Config{}, 1, specs)
	if res.CloneCopies != 0 {
		t.Fatalf("speculated on deterministic tasks: %d", res.CloneCopies)
	}
}
