// Package sca implements the Smart Cloning Algorithm (SCA) baseline from
// Xu & Lau's earlier work (INFOCOM 2015, reference [26] of the paper):
// a cloning scheduler that, at the beginning of each slot, decides how many
// copies each task receives by optimizing a concave speedup objective, then
// launches all copies on available machines.
//
// The original SCA solves a convex program over the tasks of the *arriving*
// jobs ("make clones for each task of the arriving jobs... which aims at
// minimizing the total job elapsed time", Section I). The objective is
// separable and concave in the per-task copy counts with one total-machines
// constraint, so the exact optimizer of the discretized problem is greedy
// marginal allocation ("water-filling"): repeatedly grant the next machine
// to the task whose job gains the most weighted expected-duration reduction.
// This substitution is documented in DESIGN.md §2.
//
// Crucially, SCA does not prioritize across jobs the way SRPT does — the
// paper's stated limitation of the cloning baselines is that "it remains a
// problem to prioritize different jobs". Jobs therefore receive first copies
// in arrival (FIFO) order, with the cloning budget shared by marginal gain.
package sca

import (
	"container/heap"
	"fmt"
	"math"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
	"mrclone/internal/sched/schedutil"
)

// Config parameterizes SCA.
type Config struct {
	// Speedup is the concave speedup model used by the convex objective.
	// Nil means ParetoSpeedup(alpha=2), matching heavy-tailed traces.
	Speedup dist.Speedup
	// DeviationFactor is r in the priority's effective workload.
	DeviationFactor float64
	// MaxClonesPerTask caps copies per task. Zero means 8.
	MaxClonesPerTask int
}

// DefaultMaxClones bounds per-task cloning when Config.MaxClonesPerTask is 0.
const DefaultMaxClones = 8

// Scheduler implements cluster.Scheduler. It carries per-instance scratch
// and must not be shared by concurrently running engines.
type Scheduler struct {
	cfg Config

	allocs []allocation
	items  []*allocation
	tasks  []*job.Task
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns an SCA scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Speedup == nil {
		s, err := dist.NewParetoSpeedup(2)
		if err != nil {
			return nil, err
		}
		cfg.Speedup = s
	}
	if cfg.DeviationFactor < 0 || math.IsNaN(cfg.DeviationFactor) {
		return nil, fmt.Errorf("sca: deviation factor %v negative", cfg.DeviationFactor)
	}
	if cfg.MaxClonesPerTask < 0 {
		return nil, fmt.Errorf("sca: max clones %d negative", cfg.MaxClonesPerTask)
	}
	if cfg.MaxClonesPerTask == 0 {
		cfg.MaxClonesPerTask = DefaultMaxClones
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string { return "SCA" }

// EventDriven implements cluster.EventDriven: the greedy gain allocation is
// recomputed from task states each slot, so idle slots may be skipped.
func (s *Scheduler) EventDriven() bool { return true }

// allocation is one task's tentative copy count inside the greedy solver.
type allocation struct {
	j      *job.Job
	t      *job.Task
	mean   float64 // E of the task's phase
	weight float64 // job weight
	copies int     // copies tentatively granted this slot
	index  int     // heap index
}

// gain returns the weighted reduction in expected duration from granting one
// more copy: w * E * (1/s(k) - 1/s(k+1)).
func (s *Scheduler) gain(a *allocation) float64 {
	k := float64(a.copies)
	if a.copies >= s.cfg.MaxClonesPerTask {
		return 0
	}
	return a.weight * a.mean * (1/s.cfg.Speedup.At(k) - 1/s.cfg.Speedup.At(k+1))
}

// gainHeap is a max-heap of allocations by marginal gain.
type gainHeap struct {
	items []*allocation
	s     *Scheduler
}

func (h gainHeap) Len() int { return len(h.items) }
func (h gainHeap) Less(i, j int) bool {
	gi, gj := h.s.gain(h.items[i]), h.s.gain(h.items[j])
	if gi != gj {
		return gi > gj
	}
	// Deterministic tie-break: job then task index.
	a, b := h.items[i], h.items[j]
	if a.j.Spec.ID != b.j.Spec.ID {
		return a.j.Spec.ID < b.j.Spec.ID
	}
	return a.t.ID.Index < b.t.ID.Index
}
func (h gainHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}
func (h *gainHeap) Push(x interface{}) {
	a := x.(*allocation)
	a.index = len(h.items)
	h.items = append(h.items, a)
}
func (h *gainHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return item
}

// Schedule implements cluster.Scheduler.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	psi := schedutil.WithUnscheduledTasks(ctx.AliveJobs())
	if len(psi) == 0 {
		return
	}
	// Jobs are served in arrival (FIFO) order: SCA clones arriving jobs but
	// does not reorder them by remaining work.

	// Phase A: guarantee one copy to every unscheduled task in arrival
	// order (the program's feasibility baseline). Allocations live in a
	// reused value slice; pointers into it are taken only after it stops
	// growing.
	allocs := s.allocs[:0]
	budget := ctx.FreeMachines()
	for _, j := range psi {
		if budget == 0 {
			break
		}
		for _, p := range []job.Phase{job.PhaseMap, job.PhaseReduce} {
			if p == job.PhaseReduce && !j.MapPhaseDone() {
				break
			}
			stats := j.PhaseStats(p)
			s.tasks = j.AppendUnscheduled(s.tasks[:0], p)
			for _, t := range s.tasks {
				if budget == 0 {
					break
				}
				allocs = append(allocs, allocation{
					j: j, t: t, mean: stats.Mean, weight: j.Spec.Weight, copies: 1,
				})
				budget--
			}
		}
	}
	s.allocs = allocs

	// Phase B: water-fill the remaining budget by marginal weighted gain.
	// heap.Init and repeated pushes can lay the heap array out differently,
	// but the comparator is a total order, so the element at the top — the
	// only one the loop reads — is the unique maximum either way.
	if budget > 0 && len(allocs) > 0 {
		items := s.items[:0]
		for i := range allocs {
			allocs[i].index = i
			items = append(items, &allocs[i])
		}
		s.items = items
		h := &gainHeap{items: items, s: s}
		heap.Init(h)
		for budget > 0 && h.Len() > 0 {
			top := h.items[0]
			if s.gain(top) <= 0 {
				break
			}
			top.copies++
			budget--
			heap.Fix(h, 0)
		}
	}

	// Launch every allocation.
	for i := range allocs {
		a := &allocs[i]
		n := a.copies
		if n > ctx.FreeMachines() {
			n = ctx.FreeMachines()
		}
		if n == 0 {
			return
		}
		if _, err := ctx.Launch(a.j, a.t, n, false); err != nil {
			return
		}
	}
}
