package sca

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func run(t *testing.T, machines int, cfg Config, seed int64, specs []job.Spec) *cluster.Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: seed}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DeviationFactor: -1}); err == nil {
		t.Error("negative r accepted")
	}
	if _, err := New(Config{MaxClonesPerTask: -1}); err == nil {
		t.Error("negative clone cap accepted")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Speedup == nil {
		t.Error("default speedup not installed")
	}
	if s.cfg.MaxClonesPerTask != DefaultMaxClones {
		t.Error("default clone cap not installed")
	}
	if s.Name() != "SCA" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestMarginalGainDecreasing(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := &allocation{mean: 100, weight: 2, copies: 1}
	prev := s.gain(a)
	if prev <= 0 {
		t.Fatalf("first marginal gain %v, want > 0", prev)
	}
	for k := 2; k < DefaultMaxClones; k++ {
		a.copies = k
		g := s.gain(a)
		if g >= prev {
			t.Fatalf("gain not decreasing at k=%d: %v >= %v", k, g, prev)
		}
		if g < 0 {
			t.Fatalf("negative gain at k=%d", k)
		}
		prev = g
	}
	a.copies = DefaultMaxClones
	if s.gain(a) != 0 {
		t.Error("gain beyond cap should be zero")
	}
}

func TestWaterFillingPrefersHeavyJobs(t *testing.T) {
	// Two identical 1-task jobs, weights 10 vs 1, on a 4-machine cluster:
	// after the two mandatory first copies, the two surplus machines should
	// both go to the heavy job (strictly decreasing marginal gains in k and
	// a 10x weight gap; gain_heavy(k=2) > gain_light(k=1)).
	// We verify via copy counts.
	p, err := dist.NewPareto(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 10, MapTasks: 1, MapDist: p},
		{ID: 1, Weight: 1, MapTasks: 1, MapDist: p},
	}
	res := run(t, 4, Config{}, 7, specs)
	var heavy, light int
	for _, jr := range res.Jobs {
		if jr.ID == 0 {
			heavy = jr.TotalCopies
		} else {
			light = jr.TotalCopies
		}
	}
	if heavy <= light {
		t.Fatalf("heavy job got %d copies, light job %d; water-filling should favour weight",
			heavy, light)
	}
}

func TestCloneCap(t *testing.T) {
	p, err := dist.NewPareto(20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 1, MapDist: p}}
	res := run(t, 100, Config{MaxClonesPerTask: 3}, 1, specs)
	if res.TotalCopies > 3 {
		t.Fatalf("copies = %d, cap 3", res.TotalCopies)
	}
}

func TestPrecedenceAndCompletion(t *testing.T) {
	d, err := dist.NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 2, MapTasks: 3, MapDist: d, ReduceTask: 2, ReduceDist: d},
		{ID: 1, Arrival: 1, Weight: 1, MapTasks: 2, MapDist: d},
	}
	res := run(t, 3, Config{}, 2, specs)
	if res.FinishedJobs != 2 {
		t.Fatalf("finished %d/2", res.FinishedJobs)
	}
	for _, jr := range res.Jobs {
		if jr.ID == 0 && jr.Flowtime < 10 {
			t.Fatalf("job 0 flowtime %d below critical path 10", jr.Flowtime)
		}
	}
}

func TestFIFOAcrossJobs(t *testing.T) {
	// SCA does not reorder jobs by remaining work (the paper's stated
	// limitation of the cloning baselines): under contention, the earlier
	// arrival finishes first even when a tiny job waits behind it.
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Arrival: 0, Weight: 1, MapTasks: 30, MapDist: d},
		{ID: 1, Arrival: 1, Weight: 1, MapTasks: 1, MapDist: d},
	}
	res := run(t, 2, Config{}, 1, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	if finish[0] >= finish[1] {
		t.Fatalf("FIFO violated: %v", finish)
	}
}
