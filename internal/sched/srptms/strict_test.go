package srptms

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

// TestStrictModeCompletes: the letter-of-Algorithm-2 variant (no surplus
// pass) must still finish every job — below-band jobs eventually rise into
// the band as higher-priority work drains.
func TestStrictModeCompletes(t *testing.T) {
	p, err := dist.NewPareto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Epsilon: 0.5, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	var specs []job.Spec
	for i := 0; i < 8; i++ {
		specs = append(specs, job.Spec{
			ID: i, Arrival: int64(i * 2), Weight: float64(1 + i%4),
			MapTasks: 2 + i, MapDist: p,
		})
	}
	eng, err := cluster.New(cluster.Config{Machines: 10, Seed: 3}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishedJobs != len(specs) {
		t.Fatalf("strict mode finished %d/%d", res.FinishedJobs, len(specs))
	}
}

// TestStrictNeverWorseBusyThanWorkConserving: the surplus pass can only add
// usefully-busy machines, so the work-conserving variant must finish no
// later overall than strict on the same workload and seed.
func TestStrictVersusWorkConserving(t *testing.T) {
	p, err := dist.NewPareto(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	var specs []job.Spec
	for i := 0; i < 12; i++ {
		specs = append(specs, job.Spec{
			ID: i, Arrival: int64(i), Weight: float64(1 + i%3),
			MapTasks: 1 + i%5, MapDist: p,
		})
	}
	runWith := func(strict bool) int64 {
		t.Helper()
		s, err := New(Config{Epsilon: 0.4, Strict: strict})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cluster.New(cluster.Config{Machines: 6, Seed: 9}, s, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Slots
	}
	strict := runWith(true)
	wc := runWith(false)
	if wc > strict {
		t.Fatalf("work-conserving makespan %d exceeds strict %d", wc, strict)
	}
}
