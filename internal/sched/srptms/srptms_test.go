package srptms

import (
	"math"
	"testing"
	"testing/quick"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func det(t *testing.T, v float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mkJob(t *testing.T, id int, weight float64, maps int, mean float64) *job.Job {
	t.Helper()
	j, err := job.New(job.Spec{ID: id, Weight: weight, MapTasks: maps, MapDist: det(t, mean)})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Epsilon: 0},
		{Epsilon: -0.5},
		{Epsilon: 1.5},
		{Epsilon: math.NaN()},
		{Epsilon: 0.5, DeviationFactor: -1},
		{Epsilon: 0.5, MaxClonesPerTask: -2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
	s, err := New(Config{Epsilon: 0.6, DeviationFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Epsilon() != 0.6 || s.DeviationFactor() != 3 {
		t.Error("accessors wrong")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

// TestSharesSumToMachines: the epsilon-share allocation must hand out exactly
// M machines whenever there is at least one alive job.
func TestSharesSumToMachines(t *testing.T) {
	s, err := New(Config{Epsilon: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		mkJob(t, 0, 5, 1, 10),  // priority 0.5 (highest)
		mkJob(t, 1, 2, 2, 10),  // 0.1
		mkJob(t, 2, 1, 5, 10),  // 0.02
		mkJob(t, 3, 1, 20, 10), // 0.005
	}
	const m = 100
	shares := s.Shares(jobs, m)
	sum := 0
	for _, g := range shares {
		sum += g
	}
	if sum != m {
		t.Fatalf("shares %v sum to %d, want %d", shares, sum, m)
	}
}

// TestSharesTopEpsilonBand verifies the three-branch g_i formula on a hand
// example. Jobs sorted by priority desc with weights 5,2,1,1 (W=9), eps=0.6:
// threshold (1-eps)W = 3.6.
// suffix sums: [9, 4, 2, 1].
//   - job0: suffix-w = 4 >= 3.6  -> full share 5*M/(0.6*9)
//   - job1: suffix = 4 >= 3.6? branch: suffix-w = 2 < 3.6, suffix=4 >= 3.6
//     -> boundary: (4-3.6)*M/(0.6*9)
//   - job2: suffix = 2 < 3.6 -> 0
//   - job3: suffix = 1 < 3.6 -> 0
func TestSharesTopEpsilonBand(t *testing.T) {
	s, err := New(Config{Epsilon: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		mkJob(t, 0, 5, 1, 10),
		mkJob(t, 1, 2, 2, 10),
		mkJob(t, 2, 1, 5, 10),
		mkJob(t, 3, 1, 20, 10),
	}
	const m = 108 // makes the fractions land on integers: M/(0.6*9) = 20
	shares := s.Shares(jobs, m)
	want := []int{100, 8, 0, 0} // 5*20 = 100; (4-3.6)*20 = 8
	for i := range want {
		if shares[i] != want[i] {
			t.Fatalf("shares = %v, want %v", shares, want)
		}
	}
}

// TestEpsilonOneIsProportional: at eps=1 every alive job gets w_i*M/W.
func TestEpsilonOneIsProportional(t *testing.T) {
	s, err := New(Config{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		mkJob(t, 0, 1, 1, 10),
		mkJob(t, 1, 3, 1, 10),
	}
	shares := s.Shares(jobs, 8)
	if shares[0] != 2 || shares[1] != 6 {
		t.Fatalf("eps=1 shares = %v, want [2 6]", shares)
	}
}

// TestSmallEpsilonIsSRPTLike: as eps -> 0 only the top-priority job gets
// machines.
func TestSmallEpsilonIsSRPTLike(t *testing.T) {
	s, err := New(Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		mkJob(t, 0, 1, 1, 10), // priority 0.1: top
		mkJob(t, 1, 1, 2, 10),
		mkJob(t, 2, 1, 5, 10),
	}
	shares := s.Shares(jobs, 90)
	if shares[0] != 90 || shares[1] != 0 || shares[2] != 0 {
		t.Fatalf("eps->0 shares = %v, want all to top job", shares)
	}
}

// Property: shares are non-negative, sum to M, and are monotone in priority
// order (a higher-priority job never gets fewer machines than a
// lower-priority job with at least its weight).
func TestSharesProperty(t *testing.T) {
	s, err := New(Config{Epsilon: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(weightsRaw []uint8, mRaw uint16) bool {
		if len(weightsRaw) == 0 {
			return true
		}
		if len(weightsRaw) > 12 {
			weightsRaw = weightsRaw[:12]
		}
		m := int(mRaw%1000) + 1
		jobs := make([]*job.Job, 0, len(weightsRaw))
		for i, w := range weightsRaw {
			weight := float64(w%11) + 1
			// Increasing task counts => decreasing priority in input order.
			jobs = append(jobs, mkJob(t, i, weight, i+1, 10))
		}
		shares := s.Shares(jobs, m)
		sum := 0
		for _, g := range shares {
			if g < 0 {
				return false
			}
			sum += g
		}
		return sum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func run(t *testing.T, cfg cluster.Config, s cluster.Scheduler, specs []job.Spec) *cluster.Result {
	t.Helper()
	eng, err := cluster.New(cfg, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// End-to-end: SRPTMS+C finishes a small workload and clones when machines
// outnumber tasks.
func TestEndToEndWithCloning(t *testing.T) {
	p, err := dist.NewPareto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Epsilon: 0.6, DeviationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 8, MapTasks: 2, MapDist: p, ReduceTask: 1, ReduceDist: p},
		{ID: 1, Arrival: 2, Weight: 1, MapTasks: 6, MapDist: p},
	}
	res := run(t, cluster.Config{Machines: 30, Seed: 3}, s, specs)
	if res.FinishedJobs != 2 {
		t.Fatalf("finished %d/2", res.FinishedJobs)
	}
	if res.CloneCopies == 0 {
		t.Fatal("expected clones with 30 machines for 9 tasks")
	}
	for _, jr := range res.Jobs {
		if jr.Flowtime <= 0 {
			t.Fatalf("job %d flowtime %d", jr.ID, jr.Flowtime)
		}
	}
}

// TestCloneCapRespected: per-task live copies never exceed the cap. We use a
// single 1-task job on a large cluster, which maximizes the clone pressure.
func TestCloneCapRespected(t *testing.T) {
	p, err := dist.NewPareto(50, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Epsilon: 0.6, MaxClonesPerTask: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 1, MapDist: p}}
	res := run(t, cluster.Config{Machines: 100, Seed: 5}, s, specs)
	if res.TotalCopies > 4 {
		t.Fatalf("launched %d copies of one task, cap 4", res.TotalCopies)
	}
}

// TestSRPTMSPrioritizesSmallJobs: with one machine's worth of contention, the
// small job should finish well before the big one under SRPTMS+C.
func TestSRPTMSPrioritizesSmallJobs(t *testing.T) {
	s, err := New(Config{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 40, MapDist: det(t, 20)}, // big
		{ID: 1, Weight: 1, MapTasks: 2, MapDist: det(t, 20)},  // small
	}
	res := run(t, cluster.Config{Machines: 4, Seed: 1}, s, specs)
	var big, small int64
	for _, jr := range res.Jobs {
		if jr.ID == 0 {
			big = jr.Flowtime
		} else {
			small = jr.Flowtime
		}
	}
	if small >= big {
		t.Fatalf("small job flowtime %d >= big job %d", small, big)
	}
}

// TestReduceWaitsForMaps: reduces must never start before all maps finish.
func TestReduceWaitsForMaps(t *testing.T) {
	s, err := New(Config{Epsilon: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 3, MapDist: det(t, 10),
		ReduceTask: 2, ReduceDist: det(t, 7),
	}}
	res := run(t, cluster.Config{Machines: 10, Seed: 1}, s, specs)
	// Critical path: 10 (maps in parallel) + 7 (reduces in parallel) = 17.
	if got := res.Jobs[0].Flowtime; got != 17 {
		t.Fatalf("flowtime = %d, want 17", got)
	}
}

// TestNonPreemption: a job over its share keeps its machines; shares shift
// only through new allocations. Indirectly verified: total machine busy time
// is conserved and the run completes without stranded jobs.
func TestNonPreemptionCompletes(t *testing.T) {
	s, err := New(Config{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	var specs []job.Spec
	for i := 0; i < 10; i++ {
		specs = append(specs, job.Spec{
			ID: i, Arrival: int64(i), Weight: float64(1 + i%3),
			MapTasks: 3 + i%4, MapDist: det(t, float64(5+i)),
		})
	}
	res := run(t, cluster.Config{Machines: 6, Seed: 2}, s, specs)
	if res.FinishedJobs != len(specs) {
		t.Fatalf("finished %d/%d", res.FinishedJobs, len(specs))
	}
}
