// Package srptms implements SRPTMS+C — Shortest Remaining Processing Time
// based Machine Sharing plus Cloning — the online scheduling algorithm of
// Section V of Xu & Lau (ICDCS 2015), this repository's core contribution.
//
// Each slot the scheduler:
//
//  1. collects psi^s(l), the alive jobs with unscheduled tasks, and sorts
//     them by descending priority w_i / U_i(l) on remaining effective
//     workload (Equation 4);
//  2. computes the epsilon-fraction machine shares g_i(l): the jobs whose
//     cumulative weight falls inside the top epsilon fraction of the total
//     alive weight W(l) share the M machines in proportion to their weights
//     (Section V-A);
//  3. non-preemptively assigns each job xi_i(l) = g_i(l) - sigma_i(l) new
//     machines, where sigma_i(l) counts machines still running the job's
//     copies (jobs over their share simply keep their machines);
//  4. fills a job's machines with its unscheduled tasks, cloning when the
//     allocation exceeds the number of unscheduled tasks: each task receives
//     roughly x/c copies (Section V-B). Reduce tasks are scheduled only
//     after the job's map phase has completed.
//
// With epsilon = 1 the scheduler degenerates to the Hadoop fair scheduler;
// as epsilon -> 0 it approaches pure SRPT. The paper proves SRPTMS+C is
// (1+eps)-speed o(1/eps^2)-competitive for the weighted sum of flowtimes.
package srptms

import (
	"fmt"
	"math"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
	"mrclone/internal/sched/schedutil"
)

// Config parameterizes SRPTMS+C.
type Config struct {
	// Epsilon is the sharing fraction in (0, 1]. The paper's evaluation
	// selects 0.6.
	Epsilon float64
	// DeviationFactor is r, the weight of the standard deviation inside the
	// effective workload (Equations 2 and 4). The paper's evaluation selects
	// 3 for the unweighted metric.
	DeviationFactor float64
	// MaxClonesPerTask caps the number of live copies a single task may
	// receive. The paper's formula is uncapped; in a lightly loaded cluster
	// it would dedicate the entire cluster to cloning one task, which no
	// practical system does (Ananthanarayanan et al. cap at 2-3 copies).
	// Zero means DefaultMaxClones.
	MaxClonesPerTask int
	// Strict disables the work-conserving surplus pass: exactly Algorithm 2,
	// where machines the epsilon band cannot absorb (because of the clone
	// cap) idle rather than flowing to lower-priority jobs. Used by the
	// ablation benchmarks.
	Strict bool
}

// DefaultMaxClones bounds per-task cloning when Config.MaxClonesPerTask is 0.
const DefaultMaxClones = 8

// Scheduler implements cluster.Scheduler. It carries per-instance scratch
// for the per-event sort, apportionment, and task snapshots, so a Scheduler
// must not be shared by concurrently running engines (the runner builds one
// per cell).
type Scheduler struct {
	cfg Config

	sorter   schedutil.Sorter
	app      schedutil.Apportioner
	fracs    []float64
	suffixes []float64
	tasks    []*job.Task
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns an SRPTMS+C scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Epsilon <= 0 || cfg.Epsilon > 1 || math.IsNaN(cfg.Epsilon) {
		return nil, fmt.Errorf("srptms: epsilon %v outside (0, 1]", cfg.Epsilon)
	}
	if cfg.DeviationFactor < 0 || math.IsNaN(cfg.DeviationFactor) {
		return nil, fmt.Errorf("srptms: deviation factor %v negative", cfg.DeviationFactor)
	}
	if cfg.MaxClonesPerTask < 0 {
		return nil, fmt.Errorf("srptms: max clones %d negative", cfg.MaxClonesPerTask)
	}
	if cfg.MaxClonesPerTask == 0 {
		cfg.MaxClonesPerTask = DefaultMaxClones
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("SRPTMS+C(eps=%g,r=%g)", s.cfg.Epsilon, s.cfg.DeviationFactor)
}

// EventDriven implements cluster.EventDriven: Schedule is a pure function
// of the alive jobs' task states and the free-machine count, so decisions
// only change on completions or arrivals and idle slots may be skipped.
func (s *Scheduler) EventDriven() bool { return true }

// Epsilon returns the configured sharing fraction.
func (s *Scheduler) Epsilon() float64 { return s.cfg.Epsilon }

// DeviationFactor returns the configured r.
func (s *Scheduler) DeviationFactor() float64 { return s.cfg.DeviationFactor }

// Schedule implements cluster.Scheduler (Algorithm 2).
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	psi := schedutil.WithUnscheduledTasks(ctx.AliveJobs())
	if len(psi) == 0 {
		return
	}
	s.sorter.ByPriorityDesc(psi, s.cfg.DeviationFactor)
	shares := s.Shares(psi, ctx.Machines())

	for i, j := range psi {
		if ctx.FreeMachines() == 0 {
			return
		}
		gi := shares[i]
		if gi <= 0 {
			continue
		}
		// Non-preemption: machines still running this job's copies count
		// against its share; only the surplus is newly assigned.
		xi := gi - j.RunningCopies
		if xi <= 0 {
			continue
		}
		if xi > ctx.FreeMachines() {
			xi = ctx.FreeMachines()
		}
		s.scheduleTasks(ctx, j, xi)
	}

	// Work-conserving pass. The paper's formula always absorbs a job's full
	// share with clones; the practical per-task clone cap can leave part of
	// a share unusable, so surplus machines flow down the priority order as
	// plain (non-cloned) first copies rather than idling.
	if s.cfg.Strict || ctx.FreeMachines() == 0 {
		return
	}
	for _, j := range psi {
		if ctx.FreeMachines() == 0 {
			return
		}
		s.launchSingles(ctx, j)
	}
}

// launchSingles starts one copy for as many of j's unscheduled tasks as free
// machines allow, maps before (ungated) reduces.
func (s *Scheduler) launchSingles(ctx *cluster.Context, j *job.Job) {
	s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseMap)
	for _, t := range s.tasks {
		if ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, 1, false); err != nil {
			return
		}
	}
	if !j.MapPhaseDone() {
		return
	}
	s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseReduce)
	for _, t := range s.tasks {
		if ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, 1, false); err != nil {
			return
		}
	}
}

// Shares computes the integer machine shares g_i(l) for jobs already sorted
// by descending priority. The fractional shares follow Section V-A exactly;
// largest-remainder rounding converts them to integers summing to at most M.
// The returned slice is scratch owned by the Scheduler, valid until the next
// Shares call.
func (s *Scheduler) Shares(sorted []*job.Job, machines int) []int {
	frac := s.fracs[:0]
	for range sorted {
		frac = append(frac, 0)
	}
	s.fracs = frac
	w := schedutil.TotalWeight(sorted)
	if w <= 0 {
		return s.app.LargestRemainder(frac, 0)
	}
	eps := s.cfg.Epsilon
	m := float64(machines)

	// W_i(l) sums the weights of jobs with priority <= job i's, including
	// job i itself: a suffix sum over the descending-priority order.
	suffix := 0.0
	suffixes := s.suffixes[:0]
	for range sorted {
		suffixes = append(suffixes, 0)
	}
	s.suffixes = suffixes
	for i := len(sorted) - 1; i >= 0; i-- {
		suffix += sorted[i].Spec.Weight
		suffixes[i] = suffix
	}
	threshold := (1 - eps) * w
	for i, j := range sorted {
		wi := j.Spec.Weight
		switch {
		case suffixes[i]-wi >= threshold:
			frac[i] = wi * m / (eps * w)
		case suffixes[i] < threshold:
			frac[i] = 0
		default:
			frac[i] = (suffixes[i] - threshold) * m / (eps * w)
		}
	}
	return s.app.LargestRemainder(frac, machines)
}

// scheduleTasks implements the task-scheduling procedure of Algorithm 2 for
// one job with x newly allocated machines.
func (s *Scheduler) scheduleTasks(ctx *cluster.Context, j *job.Job, x int) {
	if x <= 0 {
		return
	}
	if m := j.Unscheduled(job.PhaseMap); m > 0 {
		s.launchPhase(ctx, j, job.PhaseMap, x)
		return
	}
	// Reduce tasks are scheduled only once the map phase has completed
	// (Section V-B); until then the surplus machines flow to the next job.
	if !j.MapPhaseDone() {
		return
	}
	if r := j.Unscheduled(job.PhaseReduce); r > 0 {
		s.launchPhase(ctx, j, job.PhaseReduce, x)
	}
}

// launchPhase launches copies of unscheduled tasks of one phase using x
// machines: one copy for x random tasks when x <= c; otherwise about x/c
// copies per task with the remainder spread one extra copy at a time.
func (s *Scheduler) launchPhase(ctx *cluster.Context, j *job.Job, p job.Phase, x int) {
	tasks := j.AppendUnscheduled(s.tasks[:0], p)
	s.tasks = tasks
	c := len(tasks)
	if c == 0 {
		return
	}
	if x <= c {
		for _, t := range schedutil.PickRandomInPlace(tasks, x, ctx.Rand()) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
		return
	}
	// Cloning: spread x machines over c tasks as evenly as possible.
	base := x / c
	extra := x % c
	if base > s.cfg.MaxClonesPerTask {
		base = s.cfg.MaxClonesPerTask
		extra = 0
	}
	order := schedutil.PickRandomInPlace(tasks, c, ctx.Rand())
	for i, t := range order {
		n := base
		if i < extra && base < s.cfg.MaxClonesPerTask {
			n++
		}
		if n > ctx.FreeMachines() {
			n = ctx.FreeMachines()
		}
		if n == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, n, false); err != nil {
			return
		}
	}
}
