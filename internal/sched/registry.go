// Package sched ties the individual scheduler implementations together
// behind a name-based registry so command-line tools and experiments can
// construct any of them uniformly.
package sched

import (
	"fmt"
	"sort"

	"mrclone/internal/cluster"
	"mrclone/internal/sched/dolly"
	"mrclone/internal/sched/fair"
	"mrclone/internal/sched/late"
	"mrclone/internal/sched/mantri"
	"mrclone/internal/sched/offline"
	"mrclone/internal/sched/sca"
	"mrclone/internal/sched/srpt"
	"mrclone/internal/sched/srptms"
)

// Params carries the tunables a scheduler factory may consume; unknown
// fields are ignored by schedulers that do not use them. The JSON tags are
// the wire names used by the service spec (internal/service/spec); zero
// values are omitted so the canonical encoding stays minimal.
type Params struct {
	// Epsilon is SRPTMS+C's sharing fraction (default 0.6, the paper's pick).
	Epsilon float64 `json:"epsilon,omitempty"`
	// DeviationFactor is r, the standard-deviation weight in effective
	// workloads (default 3, the paper's pick for the unweighted metric).
	DeviationFactor float64 `json:"deviation_factor,omitempty"`
	// MaxClonesPerTask caps cloning for the cloning schedulers (0 = default).
	MaxClonesPerTask int `json:"max_clones_per_task,omitempty"`
	// Delta is Mantri's relaunch confidence threshold (0 = default).
	Delta float64 `json:"delta,omitempty"`
	// GateReduces lets the offline algorithm occupy machines with reduce
	// tasks whose map phase is still running.
	GateReduces bool `json:"gate_reduces,omitempty"`
}

// DefaultParams returns the parameter values selected by the paper's
// evaluation (Section VI-C): epsilon = 0.6, r = 3.
func DefaultParams() Params {
	return Params{Epsilon: 0.6, DeviationFactor: 3}
}

// Factory builds a scheduler from parameters.
type Factory func(Params) (cluster.Scheduler, error)

// registry maps canonical lower-case names to factories.
var registry = map[string]Factory{
	"srptms+c": func(p Params) (cluster.Scheduler, error) {
		eps := p.Epsilon
		if eps == 0 {
			eps = 0.6
		}
		return srptms.New(srptms.Config{
			Epsilon:          eps,
			DeviationFactor:  p.DeviationFactor,
			MaxClonesPerTask: p.MaxClonesPerTask,
		})
	},
	"sca": func(p Params) (cluster.Scheduler, error) {
		return sca.New(sca.Config{
			DeviationFactor:  p.DeviationFactor,
			MaxClonesPerTask: p.MaxClonesPerTask,
		})
	},
	"mantri": func(p Params) (cluster.Scheduler, error) {
		return mantri.New(mantri.Config{Delta: p.Delta})
	},
	"fair": func(Params) (cluster.Scheduler, error) {
		return fair.New(), nil
	},
	"late": func(Params) (cluster.Scheduler, error) {
		return late.New(late.Config{})
	},
	"dolly": func(p Params) (cluster.Scheduler, error) {
		return dolly.New(dolly.Config{Copies: p.MaxClonesPerTask})
	},
	"srpt": func(p Params) (cluster.Scheduler, error) {
		return srpt.New(srpt.Config{DeviationFactor: p.DeviationFactor})
	},
	"offline": func(p Params) (cluster.Scheduler, error) {
		return offline.New(offline.Config{
			DeviationFactor: p.DeviationFactor,
			GateReduces:     p.GateReduces,
		})
	},
}

// Has reports whether a scheduler name is registered.
func Has(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named scheduler with the given parameters.
func Build(name string, p Params) (cluster.Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return f(p)
}
