package sched

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func TestNamesStable(t *testing.T) {
	names := Names()
	want := []string{"dolly", "fair", "late", "mantri", "offline", "sca", "srpt", "srptms+c"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", Params{}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestBuildAllAndRun(t *testing.T) {
	d, err := dist.NewPareto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 2, MapTasks: 3, MapDist: d, ReduceTask: 1, ReduceDist: d},
		{ID: 1, Arrival: 2, Weight: 1, MapTasks: 2, MapDist: d},
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := Build(name, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			eng, err := cluster.New(cluster.Config{Machines: 8, Seed: 11}, s, specs)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.FinishedJobs != len(specs) {
				t.Fatalf("%s finished %d/%d jobs", name, res.FinishedJobs, len(specs))
			}
		})
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Epsilon != 0.6 || p.DeviationFactor != 3 {
		t.Fatalf("defaults %+v, paper picks eps=0.6 r=3", p)
	}
}

func TestBuildPropagatesBadParams(t *testing.T) {
	if _, err := Build("srptms+c", Params{Epsilon: 2}); err == nil {
		t.Error("epsilon=2 accepted")
	}
	if _, err := Build("mantri", Params{Delta: 3}); err == nil {
		t.Error("delta=3 accepted")
	}
	if _, err := Build("srpt", Params{DeviationFactor: -1}); err == nil {
		t.Error("negative r accepted")
	}
}
