package mantri

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func run(t *testing.T, machines int, cfg Config, seed int64, specs []job.Spec) *cluster.Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: seed}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Delta: -0.1},
		{Delta: 1},
		{Delta: 2},
		{Delta: 0.5, MinObservationSlots: -1},
		{Delta: 0.5, MaxBackupsPerTask: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Delta != DefaultDelta ||
		s.cfg.MinObservationSlots != DefaultMinObservation ||
		s.cfg.MaxBackupsPerTask != DefaultMaxBackups {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestShouldBackupRule(t *testing.T) {
	s, err := New(Config{Delta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	stats := job.Stats{Mean: 10, StdDev: 5}
	cases := []struct {
		trem float64
		want bool
	}{
		{5, false},   // trem/2 < mean: fresh copy no better
		{20, false},  // trem/2 == mean: boundary, no backup
		{25, false},  // trem/2 = 12.5, d=2.5: Cantelli P(exceed) = 25/31.25 = 0.8 -> 1-0.8 < delta
		{60, true},   // trem/2 = 30, d=20: P = 25/425 ~ 0.06 -> 0.94 > delta
		{1000, true}, // extreme straggler
	}
	for _, tc := range cases {
		if got := s.shouldBackup(tc.trem, stats); got != tc.want {
			t.Errorf("shouldBackup(trem=%v) = %v, want %v", tc.trem, got, tc.want)
		}
	}
	// Deterministic durations: any trem > 2E triggers.
	if !s.shouldBackup(21, job.Stats{Mean: 10, StdDev: 0}) {
		t.Error("deterministic straggler not backed up")
	}
	if s.shouldBackup(21, job.Stats{}) {
		t.Error("zero-mean stats should never back up")
	}
}

func TestBackupsLaunchForStragglers(t *testing.T) {
	// Heavy-tail durations: across seeds, Mantri should launch some backups
	// when machines are plentiful.
	p, err := dist.NewPareto(10, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 6, MapDist: p},
	}
	var clones int64
	for seed := int64(0); seed < 10; seed++ {
		res := run(t, 20, Config{}, seed, specs)
		clones += res.CloneCopies
	}
	if clones == 0 {
		t.Fatal("Mantri never launched a backup copy on heavy-tailed tasks")
	}
}

func TestBackupCapRespected(t *testing.T) {
	p, err := dist.NewPareto(50, 1.1) // extremely heavy tail
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 1, MapDist: p}}
	res := run(t, 50, Config{MaxBackupsPerTask: 2}, 3, specs)
	// 1 original + at most 2 backups.
	if res.TotalCopies > 3 {
		t.Fatalf("copies = %d, exceeds 1 original + 2 backups", res.TotalCopies)
	}
}

func TestFIFOOrderAcrossJobs(t *testing.T) {
	// Mantri does not prioritize small jobs: with FIFO and one machine, the
	// first-arrived big job finishes before the later small job.
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Arrival: 0, Weight: 1, MapTasks: 5, MapDist: d},
		{ID: 1, Arrival: 1, Weight: 1, MapTasks: 1, MapDist: d},
	}
	res := run(t, 1, Config{}, 1, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	if finish[0] >= finish[1] {
		t.Fatalf("FIFO violated: big job %d, small job %d", finish[0], finish[1])
	}
}

func TestMapReducePrecedenceUnderMantri(t *testing.T) {
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 2, MapDist: d,
		ReduceTask: 1, ReduceDist: d,
	}}
	res := run(t, 10, Config{}, 1, specs)
	if res.Jobs[0].Flowtime != 20 {
		t.Fatalf("flowtime = %d, want 20", res.Jobs[0].Flowtime)
	}
}

func TestNoBackupBeforeObservationWindow(t *testing.T) {
	// With a huge observation window, no backups can ever launch.
	p, err := dist.NewPareto(10, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 4, MapDist: p}}
	res := run(t, 20, Config{MinObservationSlots: 1 << 40}, 5, specs)
	if res.CloneCopies != 0 {
		t.Fatalf("backups launched despite infinite observation window: %d", res.CloneCopies)
	}
}
