// Package mantri implements the Mantri-style speculative-execution baseline
// the paper compares against (Section VI-A): a straggler-*detection* scheme
// that monitors task progress and launches a backup copy when the estimated
// remaining time of a running task dwarfs the expected duration of a fresh
// copy.
//
// The decision rule is the one the paper attributes to Mantri: relaunch when
// P(t_rem > 2 * t_new) > delta. Because schedulers in this model only know
// the first two moments of task duration, the probability is bounded with
// the one-sided Chebyshev (Cantelli) inequality:
//
//	P(t_new >= t_rem/2) <= sigma^2 / (sigma^2 + (t_rem/2 - E)^2)  for t_rem/2 > E,
//
// so a backup launches when t_rem > 2E and 1 - that bound exceeds delta.
// t_rem is estimated from the copy's reported progress fraction f as
// t_rem = elapsed * (1-f) / f, the standard progress-rate estimator.
//
// Jobs are served in arrival (FIFO) order — Mantri mitigates stragglers
// within jobs but does not prioritize across jobs, which is exactly the
// weakness the paper's SRPT-based algorithms exploit.
package mantri

import (
	"fmt"
	"math"
	"sort"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
)

// Config parameterizes the Mantri baseline.
type Config struct {
	// Delta is the confidence threshold of the relaunch rule. The original
	// system uses a high-confidence setting; 0.25 is a reasonable default
	// given Cantelli's conservativeness. Must be in (0, 1).
	Delta float64
	// MinObservationSlots is the minimum elapsed time before a copy's
	// progress is trusted — detection "needs to wait for the collection of
	// enough samples" (Section II). Zero means DefaultMinObservation.
	MinObservationSlots int64
	// MaxBackupsPerTask caps speculative copies per task (Mantri restarts or
	// duplicates at most once or twice in practice). Zero means 2.
	MaxBackupsPerTask int
	// CheckIntervalSlots is how often the straggler-detection scan runs.
	// Production systems poll task progress periodically, not every second.
	// Zero means DefaultCheckInterval; 1 scans every slot.
	CheckIntervalSlots int64
}

// Defaults for Config zero values.
const (
	DefaultDelta          = 0.25
	DefaultMinObservation = 8
	DefaultMaxBackups     = 2
	DefaultCheckInterval  = 5
)

// Scheduler implements cluster.Scheduler.
type Scheduler struct {
	cfg Config
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns a Mantri-style scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Delta == 0 {
		cfg.Delta = DefaultDelta
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 || math.IsNaN(cfg.Delta) {
		return nil, fmt.Errorf("mantri: delta %v outside (0, 1)", cfg.Delta)
	}
	if cfg.MinObservationSlots == 0 {
		cfg.MinObservationSlots = DefaultMinObservation
	}
	if cfg.MinObservationSlots < 0 {
		return nil, fmt.Errorf("mantri: negative observation window %d", cfg.MinObservationSlots)
	}
	if cfg.MaxBackupsPerTask == 0 {
		cfg.MaxBackupsPerTask = DefaultMaxBackups
	}
	if cfg.MaxBackupsPerTask < 0 {
		return nil, fmt.Errorf("mantri: negative backup cap %d", cfg.MaxBackupsPerTask)
	}
	if cfg.CheckIntervalSlots == 0 {
		cfg.CheckIntervalSlots = DefaultCheckInterval
	}
	if cfg.CheckIntervalSlots < 0 {
		return nil, fmt.Errorf("mantri: negative check interval %d", cfg.CheckIntervalSlots)
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string { return fmt.Sprintf("Mantri(delta=%g)", s.cfg.Delta) }

// Schedule implements cluster.Scheduler.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	alive := ctx.AliveJobs() // arrival order == FIFO

	// Pass 1: launch first copies of unscheduled tasks, FIFO across jobs,
	// maps before reduces within a job.
	for _, j := range alive {
		if ctx.FreeMachines() == 0 {
			return
		}
		for _, t := range j.UnscheduledTasks(job.PhaseMap) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
		if !j.MapPhaseDone() {
			continue
		}
		for _, t := range j.UnscheduledTasks(job.PhaseReduce) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
	}

	// Pass 2: with leftover machines, launch backups for detected
	// stragglers, worst (largest estimated remaining time) first. The scan
	// runs on the configured polling cadence.
	if ctx.FreeMachines() == 0 || ctx.Now()%s.cfg.CheckIntervalSlots != 0 {
		return
	}
	type candidate struct {
		j    *job.Job
		t    *job.Task
		trem float64
	}
	var cands []candidate
	for _, j := range alive {
		for _, p := range []job.Phase{job.PhaseMap, job.PhaseReduce} {
			stats := j.PhaseStats(p)
			for _, t := range j.RunningTasks(p) {
				if t.Copies >= 1+s.cfg.MaxBackupsPerTask {
					continue
				}
				trem, ok := s.estimateRemaining(ctx, t)
				if !ok {
					continue
				}
				if s.shouldBackup(trem, stats) {
					cands = append(cands, candidate{j: j, t: t, trem: trem})
				}
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].trem != cands[b].trem {
			return cands[a].trem > cands[b].trem
		}
		if cands[a].j.Spec.ID != cands[b].j.Spec.ID {
			return cands[a].j.Spec.ID < cands[b].j.Spec.ID
		}
		return cands[a].t.ID.Index < cands[b].t.ID.Index
	})
	for _, c := range cands {
		if ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(c.j, c.t, 1, false); err != nil {
			return
		}
	}
}

// estimateRemaining returns the progress-based remaining-time estimate of
// the task's best copy (the task finishes when its best copy does), or
// ok=false when no copy has been observed long enough.
func (s *Scheduler) estimateRemaining(ctx *cluster.Context, t *job.Task) (float64, bool) {
	p, ok := ctx.BestProgress(t)
	if !ok || p.Elapsed < s.cfg.MinObservationSlots || p.Fraction <= 0 {
		return 0, false
	}
	return float64(p.Elapsed) * (1 - p.Fraction) / p.Fraction, true
}

// shouldBackup applies the relaunch rule P(t_rem > 2 t_new) > delta using the
// Cantelli bound over the phase's (E, sigma).
func (s *Scheduler) shouldBackup(trem float64, stats job.Stats) bool {
	if stats.Mean <= 0 {
		return false
	}
	half := trem / 2
	if half <= stats.Mean {
		return false // a fresh copy is not expected to beat the running one
	}
	if stats.StdDev == 0 {
		return true // deterministic t_new < t_rem/2 with certainty
	}
	if math.IsInf(stats.StdDev, 1) {
		// Infinite variance (Pareto alpha <= 2): Cantelli is vacuous, so
		// fall back to the expectation rule t_rem > 2 E[t_new], which the
		// half > mean guard above has already established.
		return true
	}
	d := half - stats.Mean
	pNewExceeds := stats.StdDev * stats.StdDev / (stats.StdDev*stats.StdDev + d*d)
	return 1-pNewExceeds > s.cfg.Delta
}
