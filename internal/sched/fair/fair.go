// Package fair implements a Hadoop-style weighted fair scheduler baseline:
// alive jobs share the cluster in proportion to their weights, with no
// cloning and no SRPT prioritization. It is the degenerate epsilon = 1 case
// of the machine-sharing principle in Section V-A ("when epsilon is set to
// 1, the scheduler just reduces to the fair scheduler in Hadoop"), minus
// speculative copies.
package fair

import (
	"mrclone/internal/cluster"
	"mrclone/internal/job"
	"mrclone/internal/sched/schedutil"
)

// Scheduler implements cluster.Scheduler. It carries per-instance scratch
// and must not be shared by concurrently running engines.
type Scheduler struct {
	app    schedutil.Apportioner
	shares []float64
	tasks  []*job.Task
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns a fair scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements cluster.Scheduler.
func (*Scheduler) Name() string { return "Fair" }

// EventDriven implements cluster.EventDriven: the weighted shares depend
// only on alive jobs' task states, so idle slots may be skipped.
func (*Scheduler) EventDriven() bool { return true }

// Schedule implements cluster.Scheduler: each job with unscheduled tasks is
// entitled to w_i*M/W machines; surplus entitlement beyond a job's demand is
// redistributed by a second greedy pass so the cluster does not idle.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	psi := schedutil.WithUnscheduledTasks(ctx.AliveJobs())
	if len(psi) == 0 {
		return
	}
	w := schedutil.TotalWeight(psi)
	if w <= 0 {
		return
	}
	m := float64(ctx.Machines())
	shares := s.shares[:0]
	for _, j := range psi {
		shares = append(shares, j.Spec.Weight*m/w)
	}
	s.shares = shares
	grant := s.app.LargestRemainder(shares, ctx.Machines())

	for i, j := range psi {
		if ctx.FreeMachines() == 0 {
			return
		}
		x := grant[i] - j.RunningCopies
		if x <= 0 {
			continue
		}
		if x > ctx.FreeMachines() {
			x = ctx.FreeMachines()
		}
		s.launchUpTo(ctx, j, x)
	}
	// Work-conserving second pass: hand leftover machines to any job with
	// unscheduled tasks, in arrival order.
	for _, j := range psi {
		if ctx.FreeMachines() == 0 {
			return
		}
		s.launchUpTo(ctx, j, ctx.FreeMachines())
	}
}

// launchUpTo launches at most x first copies of j's unscheduled tasks, maps
// before (ungated) reduces. No clones are ever made.
func (s *Scheduler) launchUpTo(ctx *cluster.Context, j *job.Job, x int) {
	s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseMap)
	for _, t := range s.tasks {
		if x == 0 || ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, 1, false); err != nil {
			return
		}
		x--
	}
	if !j.MapPhaseDone() {
		return
	}
	s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseReduce)
	for _, t := range s.tasks {
		if x == 0 || ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, 1, false); err != nil {
			return
		}
		x--
	}
}
