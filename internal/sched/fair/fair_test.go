package fair

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func run(t *testing.T, machines int, seed int64, specs []job.Spec) *cluster.Result {
	t.Helper()
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: seed}, New(), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestName(t *testing.T) {
	if New().Name() != "Fair" {
		t.Errorf("name = %q", New().Name())
	}
}

func TestWeightedSharing(t *testing.T) {
	// Two jobs, weights 3:1, 4 machines, plenty of tasks: the heavy job
	// should finish its work roughly 3x as fast per unit of work.
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 3, MapTasks: 12, MapDist: d},
		{ID: 1, Weight: 1, MapTasks: 12, MapDist: d},
	}
	res := run(t, 4, 1, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	// Heavy job: 3 machines -> 12 tasks * 10s / 3 = 40s.
	if finish[0] != 40 {
		t.Errorf("heavy job finish = %d, want 40", finish[0])
	}
	// Light job: 1 machine until the heavy job drains, then more.
	if finish[1] <= finish[0] {
		t.Errorf("light job should finish after heavy: %v", finish)
	}
}

func TestNeverClones(t *testing.T) {
	p, err := dist.NewPareto(10, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 2, MapDist: p},
		{ID: 1, Weight: 4, MapTasks: 1, MapDist: p},
	}
	res := run(t, 50, 9, specs)
	if res.CloneCopies != 0 {
		t.Fatalf("fair scheduler cloned %d copies", res.CloneCopies)
	}
}

func TestWorkConserving(t *testing.T) {
	// A single job must be able to use the whole cluster even though its
	// fair share is everything anyway; more interestingly, a zero-surplus
	// second pass hands leftovers out. 5 tasks, 5 machines: makespan 10.
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 5, MapDist: d}}
	res := run(t, 5, 1, specs)
	if res.Jobs[0].Flowtime != 10 {
		t.Fatalf("flowtime = %d, want 10 (all machines used)", res.Jobs[0].Flowtime)
	}
}

func TestPrecedence(t *testing.T) {
	d, err := dist.NewDeterministic(6)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 2, MapDist: d,
		ReduceTask: 2, ReduceDist: d,
	}}
	res := run(t, 4, 1, specs)
	if res.Jobs[0].Flowtime != 12 {
		t.Fatalf("flowtime = %d, want 12", res.Jobs[0].Flowtime)
	}
}
