// Package offline implements Algorithm 1 of Xu & Lau (ICDCS 2015): the
// SRPT-derived offline scheduler for the bulk-arrival case in which every
// job is present at time zero.
//
// Jobs are ranked once by the static priority w_i / phi_i, where
// phi_i = m_i(E^m_i + r sigma^m_i) + r_i(E^r_i + r sigma^r_i) is the
// effective workload (Equation 2). Whenever a machine frees up, it is given
// to an unscheduled task of the highest-ranked job that still has one, map
// tasks before reduce tasks; no clones are made (in the overloaded bulk
// regime cloning cannot help when s(x) <= x). Reduce tasks may occupy a
// machine before the job's map phase completes but make no progress until it
// does, matching the paper's analysis of the last-finishing reduce task.
//
// When task-duration variance is zero the algorithm is 2-competitive for the
// weighted sum of flowtimes (Remark 2); with variance, each job's flowtime
// is bounded by E^r_i + r sigma^r_i + f^s_i/M with probability at least
// 1 + 1/r^4 - 2/r^2 (Theorem 1).
package offline

import (
	"fmt"
	"math"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
	"mrclone/internal/sched/schedutil"
)

// Config parameterizes Algorithm 1.
type Config struct {
	// DeviationFactor is r in Equation 2. Zero is valid (ignore variance).
	DeviationFactor float64
	// GateReduces controls whether reduce tasks may be launched (gated)
	// before their job's map phase completes, as the paper's pseudo-code
	// allows. Disabling it holds reduce tasks back instead and never wastes
	// a machine on a stalled copy.
	GateReduces bool
}

// Scheduler implements cluster.Scheduler. It carries per-instance scratch
// and must not be shared by concurrently running engines.
type Scheduler struct {
	cfg Config

	sorter schedutil.Sorter
	tasks  []*job.Task
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns an offline bulk-arrival scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.DeviationFactor < 0 || math.IsNaN(cfg.DeviationFactor) {
		return nil, fmt.Errorf("offline: deviation factor %v negative", cfg.DeviationFactor)
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("Offline-SRPT(r=%g)", s.cfg.DeviationFactor)
}

// EventDriven implements cluster.EventDriven: the static phi_i priorities
// depend only on the specs and task states, so idle slots may be skipped.
func (s *Scheduler) EventDriven() bool { return true }

// LaunchesGatedCopies implements cluster.GatedLauncher: with GateReduces,
// Schedule launches reduce copies behind a closed map gate, so the event
// loop must keep invoking it while such tasks remain unscheduled.
func (s *Scheduler) LaunchesGatedCopies() bool { return s.cfg.GateReduces }

// Schedule implements cluster.Scheduler (Algorithm 1). The priority order is
// static — phi_i depends only on the spec — so re-sorting each slot yields
// the same ranking the one-shot sort in the pseudo-code produces.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	jobs := ctx.AliveJobs()
	s.sorter.ByOfflinePriorityDesc(jobs, s.cfg.DeviationFactor)
	for _, j := range jobs {
		if ctx.FreeMachines() == 0 {
			return
		}
		s.fill(ctx, j)
	}
}

// fill assigns free machines to unscheduled tasks of j: maps first, then
// reduces (gated when the map phase is still running, if enabled).
func (s *Scheduler) fill(ctx *cluster.Context, j *job.Job) {
	s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseMap)
	for _, t := range s.tasks {
		if ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, 1, false); err != nil {
			return
		}
	}
	mapsDone := j.MapPhaseDone()
	if !mapsDone && !s.cfg.GateReduces {
		return
	}
	s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseReduce)
	for _, t := range s.tasks {
		if ctx.FreeMachines() == 0 {
			return
		}
		if _, err := ctx.Launch(j, t, 1, !mapsDone); err != nil {
			return
		}
	}
}
