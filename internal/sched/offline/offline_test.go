package offline

import (
	"math"
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func det(t *testing.T, v float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t *testing.T, machines int, cfg Config, specs []job.Spec) *cluster.Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: 1}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DeviationFactor: -1}); err == nil {
		t.Error("negative r accepted")
	}
	if _, err := New(Config{DeviationFactor: math.NaN()}); err == nil {
		t.Error("NaN r accepted")
	}
	s, err := New(Config{DeviationFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

// TestSRPTOrderZeroVariance: with deterministic durations and one machine,
// the offline algorithm must execute jobs in SRPT (w/phi) order, so the
// smallest job finishes first.
func TestSRPTOrderZeroVariance(t *testing.T) {
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 4, MapDist: det(t, 10)}, // phi 40
		{ID: 1, Weight: 1, MapTasks: 1, MapDist: det(t, 10)}, // phi 10
		{ID: 2, Weight: 1, MapTasks: 2, MapDist: det(t, 10)}, // phi 20
	}
	res := run(t, 1, Config{}, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	// SRPT order: job1 (10), job2 (30), job0 (70).
	if !(finish[1] < finish[2] && finish[2] < finish[0]) {
		t.Fatalf("finish times out of SRPT order: %v", finish)
	}
	if finish[1] != 10 || finish[2] != 30 || finish[0] != 70 {
		t.Fatalf("finish = %v, want {1:10, 2:30, 0:70}", finish)
	}
}

// TestWeightedPriority: a heavy job overtakes a lighter equal-size job.
func TestWeightedPriority(t *testing.T) {
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 2, MapDist: det(t, 10)},
		{ID: 1, Weight: 5, MapTasks: 2, MapDist: det(t, 10)},
	}
	res := run(t, 1, Config{}, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	if finish[1] >= finish[0] {
		t.Fatalf("weighted job should finish first: %v", finish)
	}
}

// TestTwoCompetitiveZeroVariance (Remark 2): under zero variance the weighted
// flowtime sum is at most 2x the single-machine-SRPT lower bound
// sum_i w_i * fs_i / M.
func TestTwoCompetitiveZeroVariance(t *testing.T) {
	specs := []job.Spec{
		{ID: 0, Weight: 2, MapTasks: 3, MapDist: det(t, 8), ReduceTask: 1, ReduceDist: det(t, 4)},
		{ID: 1, Weight: 1, MapTasks: 6, MapDist: det(t, 5)},
		{ID: 2, Weight: 3, MapTasks: 1, MapDist: det(t, 12)},
		{ID: 3, Weight: 1, MapTasks: 9, MapDist: det(t, 3), ReduceTask: 2, ReduceDist: det(t, 6)},
		{ID: 4, Weight: 2, MapTasks: 2, MapDist: det(t, 20)},
	}
	const m = 3
	res := run(t, m, Config{GateReduces: true}, specs)

	var got float64
	for _, jr := range res.Jobs {
		got += jr.Weight * float64(jr.Flowtime)
	}
	// Lower bound: sum_i w_i * (fs_i / M) where fs_i is Equation 3, plus the
	// irreducible per-job floor E^r (Remark 2 uses both bounds; the weaker
	// sum bound suffices here).
	var lower float64
	for i := range specs {
		fs := job.AccumulatedHigherPriorityWorkload(specs, i, 0)
		lower += specs[i].Weight * fs / m
	}
	if got > 2*lower {
		t.Fatalf("weighted flowtime %v exceeds 2x lower bound %v", got, 2*lower)
	}
}

// TestTheorem1Bound: with variance, each job's flowtime obeys
// E^r + r*sigma^r + fs_i/M with probability ~ (r^2-1)^2/r^4. We check the
// empirical violation rate across seeds stays below the theoretical bound
// (plus slack).
func TestTheorem1Bound(t *testing.T) {
	u, err := dist.NewUniform(5, 15) // mean 10, sd ~2.89
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 4, MapDist: u, ReduceTask: 2, ReduceDist: u},
		{ID: 1, Weight: 1, MapTasks: 2, MapDist: u},
		{ID: 2, Weight: 2, MapTasks: 6, MapDist: u, ReduceTask: 1, ReduceDist: u},
	}
	const (
		m    = 2
		r    = 3.0
		runs = 40
	)
	s, err := New(Config{DeviationFactor: r, GateReduces: true})
	if err != nil {
		t.Fatal(err)
	}
	violations, total := 0, 0
	for seed := int64(0); seed < runs; seed++ {
		eng, err := cluster.New(cluster.Config{Machines: m, Seed: seed}, s, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			stats := specs[i].PhaseStats(job.PhaseReduce)
			if specs[i].ReduceTask == 0 {
				stats = specs[i].PhaseStats(job.PhaseMap)
			}
			fs := job.AccumulatedHigherPriorityWorkload(specs, i, r)
			bound := stats.Mean + r*stats.StdDev + fs/m
			var flow int64
			for _, jr := range res.Jobs {
				if jr.ID == specs[i].ID {
					flow = jr.Flowtime
				}
			}
			total++
			if float64(flow) > bound {
				violations++
			}
		}
	}
	// Theorem 1 allows violation probability up to 2/r^2 - 1/r^4 ~ 0.21 at
	// r=3; require the empirical rate to stay under 0.30 with MC slack.
	rate := float64(violations) / float64(total)
	if rate > 0.30 {
		t.Fatalf("bound violated in %.0f%% of cases, theorem allows ~21%%", rate*100)
	}
}

// TestGatedReducesOccupyMachines: with gating on, reduce tasks of the top
// job hold machines while its maps run.
func TestGateReducesToggle(t *testing.T) {
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 2, MapDist: det(t, 10),
		ReduceTask: 2, ReduceDist: det(t, 5),
	}}
	gated := run(t, 4, Config{GateReduces: true}, specs)
	ungated := run(t, 4, Config{GateReduces: false}, specs)
	if gated.Jobs[0].Flowtime != 15 || ungated.Jobs[0].Flowtime != 15 {
		t.Fatalf("flowtimes: gated %d, ungated %d, want 15",
			gated.Jobs[0].Flowtime, ungated.Jobs[0].Flowtime)
	}
	if gated.MachineSlots <= ungated.MachineSlots {
		t.Fatalf("gated busy %d should exceed ungated %d",
			gated.MachineSlots, ungated.MachineSlots)
	}
}

// TestNoCloning: Algorithm 1 never clones.
func TestNoCloning(t *testing.T) {
	p, err := dist.NewPareto(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 3, MapDist: p},
		{ID: 1, Weight: 2, MapTasks: 2, MapDist: p},
	}
	res := run(t, 50, Config{DeviationFactor: 2}, specs)
	if res.CloneCopies != 0 {
		t.Fatalf("offline algorithm cloned %d copies", res.CloneCopies)
	}
	if res.TotalCopies != 5 {
		t.Fatalf("total copies = %d, want 5", res.TotalCopies)
	}
}

// TestMapsBeforeReduces: within a job all map tasks are scheduled before any
// reduce task (checked via launch slots on a single machine).
func TestMapsBeforeReduces(t *testing.T) {
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 2, MapDist: det(t, 3),
		ReduceTask: 2, ReduceDist: det(t, 3),
	}}
	res := run(t, 1, Config{GateReduces: true}, specs)
	// One machine: maps at 0,3; reduces at 6,9 => finish 12.
	if res.Jobs[0].Flowtime != 12 {
		t.Fatalf("flowtime = %d, want 12", res.Jobs[0].Flowtime)
	}
}
