// Package srpt implements a pure SRPT scheduler on M machines without
// cloning: the epsilon -> 0 degenerate case of SRPTMS+C. Jobs are ordered
// by w_i / U_i(l) on remaining effective workload and greedily given one
// copy per unscheduled task, maps before reduces. It is the classical
// multi-machine SRPT baseline of Fox & Moseley (SODA 2011) extended with
// the paper's two-phase precedence, and serves as the optimal-scheduler
// proxy in the competitive-ratio experiments.
package srpt

import (
	"fmt"
	"math"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
	"mrclone/internal/sched/schedutil"
)

// Config parameterizes SRPT.
type Config struct {
	// DeviationFactor is r in the effective workload.
	DeviationFactor float64
}

// Scheduler implements cluster.Scheduler. It carries per-instance scratch
// and must not be shared by concurrently running engines.
type Scheduler struct {
	cfg Config

	sorter schedutil.Sorter
	tasks  []*job.Task
}

var _ cluster.Scheduler = (*Scheduler)(nil)

// New returns a pure SRPT scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.DeviationFactor < 0 || math.IsNaN(cfg.DeviationFactor) {
		return nil, fmt.Errorf("srpt: deviation factor %v negative", cfg.DeviationFactor)
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name implements cluster.Scheduler.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("SRPT(r=%g)", s.cfg.DeviationFactor)
}

// EventDriven implements cluster.EventDriven: priorities depend only on
// remaining effective workloads, so idle slots may be skipped.
func (s *Scheduler) EventDriven() bool { return true }

// Schedule implements cluster.Scheduler.
func (s *Scheduler) Schedule(ctx *cluster.Context) {
	psi := schedutil.WithUnscheduledTasks(ctx.AliveJobs())
	if len(psi) == 0 {
		return
	}
	s.sorter.ByPriorityDesc(psi, s.cfg.DeviationFactor)
	for _, j := range psi {
		if ctx.FreeMachines() == 0 {
			return
		}
		s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseMap)
		for _, t := range s.tasks {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
		if !j.MapPhaseDone() {
			continue
		}
		s.tasks = j.AppendUnscheduled(s.tasks[:0], job.PhaseReduce)
		for _, t := range s.tasks {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				return
			}
		}
	}
}
