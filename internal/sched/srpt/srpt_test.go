package srpt

import (
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
)

func run(t *testing.T, machines int, seed int64, specs []job.Spec) *cluster.Result {
	t.Helper()
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: seed}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DeviationFactor: -1}); err == nil {
		t.Error("negative r accepted")
	}
	s, err := New(Config{DeviationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestShortestJobFirst(t *testing.T) {
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 8, MapDist: d},
		{ID: 1, Weight: 1, MapTasks: 1, MapDist: d},
		{ID: 2, Weight: 1, MapTasks: 3, MapDist: d},
	}
	res := run(t, 1, 1, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	if !(finish[1] < finish[2] && finish[2] < finish[0]) {
		t.Fatalf("SRPT order violated: %v", finish)
	}
}

// Preemption-by-arrival: a short job arriving mid-run overtakes the long
// job's remaining (unscheduled) tasks.
func TestNewSmallJobOvertakes(t *testing.T) {
	d, err := dist.NewDeterministic(10)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Arrival: 0, Weight: 1, MapTasks: 10, MapDist: d},
		{ID: 1, Arrival: 5, Weight: 1, MapTasks: 1, MapDist: d},
	}
	res := run(t, 1, 1, specs)
	finish := map[int]int64{}
	for _, jr := range res.Jobs {
		finish[jr.ID] = jr.Finish
	}
	// Job 1 (10s of work) must finish long before job 0 (100s of work).
	if finish[1] >= finish[0] {
		t.Fatalf("small job should overtake: %v", finish)
	}
	if finish[1] != 20 { // running task finishes at 10, then job1's task [10,20)
		t.Fatalf("small job finish = %d, want 20", finish[1])
	}
}

func TestNoClones(t *testing.T) {
	p, err := dist.NewPareto(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{ID: 0, Weight: 1, MapTasks: 2, MapDist: p}}
	res := run(t, 20, 2, specs)
	if res.CloneCopies != 0 {
		t.Fatalf("SRPT cloned %d copies", res.CloneCopies)
	}
}

func TestPrecedence(t *testing.T) {
	d, err := dist.NewDeterministic(4)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{{
		ID: 0, Weight: 1,
		MapTasks: 3, MapDist: d,
		ReduceTask: 1, ReduceDist: d,
	}}
	res := run(t, 8, 1, specs)
	if res.Jobs[0].Flowtime != 8 {
		t.Fatalf("flowtime = %d, want 8", res.Jobs[0].Flowtime)
	}
}
