// Package schedutil provides helpers shared by the scheduler
// implementations: priority ordering, random task picking, and the
// largest-remainder integer rounding used to convert fractional machine
// shares into whole machines.
package schedutil

import (
	"sort"

	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// ByPriorityDesc sorts jobs in place by descending priority w_i/U_i(l)
// (Equation 4 with the given deviation factor), breaking ties by ascending
// job ID for determinism.
func ByPriorityDesc(jobs []*job.Job, deviationFactor float64) {
	sort.SliceStable(jobs, func(a, b int) bool {
		pa, pb := jobs[a].Priority(deviationFactor), jobs[b].Priority(deviationFactor)
		if pa != pb {
			return pa > pb
		}
		return jobs[a].Spec.ID < jobs[b].Spec.ID
	})
}

// ByOfflinePriorityDesc sorts jobs by the offline priority w_i/phi_i
// (Equation 2), descending, ties by ascending ID.
func ByOfflinePriorityDesc(jobs []*job.Job, deviationFactor float64) {
	type keyed struct {
		j *job.Job
		p float64
	}
	ks := make([]keyed, len(jobs))
	for i, j := range jobs {
		phi := j.EffectiveWorkload(deviationFactor)
		p := 0.0
		if phi > 0 {
			p = j.Spec.Weight / phi
		}
		ks[i] = keyed{j: j, p: p}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if ks[a].p != ks[b].p {
			return ks[a].p > ks[b].p
		}
		return ks[a].j.Spec.ID < ks[b].j.Spec.ID
	})
	for i := range ks {
		jobs[i] = ks[i].j
	}
}

// PickRandom returns k distinct tasks chosen uniformly at random from the
// given slice (the paper's "choose one unscheduled task at random"). When
// k >= len(tasks) it returns all of them. The input slice is not modified.
func PickRandom(tasks []*job.Task, k int, src *rng.Source) []*job.Task {
	if k >= len(tasks) {
		out := make([]*job.Task, len(tasks))
		copy(out, tasks)
		return out
	}
	if k <= 0 {
		return nil
	}
	// Partial Fisher–Yates over a copied slice.
	pool := make([]*job.Task, len(tasks))
	copy(pool, tasks)
	for i := 0; i < k; i++ {
		r := i + src.Intn(len(pool)-i)
		pool[i], pool[r] = pool[r], pool[i]
	}
	return pool[:k]
}

// LargestRemainder rounds non-negative fractional shares to integers whose
// sum equals the floor of the total share mass, distributing the residual
// units to the entries with the largest fractional parts (ties broken by
// lower index). It is the standard apportionment rule and preserves
// monotonicity of the input ordering.
func LargestRemainder(shares []float64, total int) []int {
	out := make([]int, len(shares))
	if total <= 0 || len(shares) == 0 {
		return out
	}
	type frac struct {
		idx  int
		part float64
	}
	sum := 0
	fracs := make([]frac, 0, len(shares))
	for i, s := range shares {
		if s < 0 {
			s = 0
		}
		w := int(s)
		out[i] = w
		sum += w
		fracs = append(fracs, frac{idx: i, part: s - float64(w)})
	}
	remaining := total - sum
	if remaining <= 0 {
		return out
	}
	sort.SliceStable(fracs, func(a, b int) bool {
		if fracs[a].part != fracs[b].part {
			return fracs[a].part > fracs[b].part
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; i < len(fracs) && remaining > 0; i++ {
		// Only top up entries that asked for a nonzero share.
		if shares[fracs[i].idx] <= 0 {
			continue
		}
		out[fracs[i].idx]++
		remaining--
	}
	return out
}

// WithUnscheduledTasks filters jobs to those with at least one unscheduled
// task (the paper's alive set psi^s(l) for scheduling purposes).
func WithUnscheduledTasks(jobs []*job.Job) []*job.Job {
	out := make([]*job.Job, 0, len(jobs))
	for _, j := range jobs {
		if j.Unscheduled(job.PhaseMap) > 0 || j.Unscheduled(job.PhaseReduce) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// TotalWeight sums job weights (W(l), Equation 5).
func TotalWeight(jobs []*job.Job) float64 {
	var w float64
	for _, j := range jobs {
		w += j.Spec.Weight
	}
	return w
}
