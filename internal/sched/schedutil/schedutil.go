// Package schedutil provides helpers shared by the scheduler
// implementations: priority ordering, random task picking, and the
// largest-remainder integer rounding used to convert fractional machine
// shares into whole machines.
//
// The package-level functions allocate per call. Schedulers invoked once per
// engine event keep a Sorter and an Apportioner as scratch instead — same
// results, no per-call allocation. Scratch values are not safe for
// concurrent use; each engine builds its own scheduler, so per-scheduler
// scratch is single-threaded by construction.
package schedutil

import (
	"slices"

	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// keyedJob pairs a job with its precomputed sort key so comparisons inside
// the sort do not recompute priorities O(n log n) times.
type keyedJob struct {
	j *job.Job
	p float64
}

// compareKeyedDesc orders by descending priority, ties by ascending job ID
// for determinism. Job IDs are unique, so the order is total and the stable
// sort's output is the unique sorted permutation.
func compareKeyedDesc(a, b keyedJob) int {
	switch {
	case a.p > b.p:
		return -1
	case a.p < b.p:
		return 1
	case a.j.Spec.ID < b.j.Spec.ID:
		return -1
	case a.j.Spec.ID > b.j.Spec.ID:
		return 1
	default:
		return 0
	}
}

// Sorter holds reusable scratch for the priority sorts. The zero value is
// ready to use.
type Sorter struct {
	keyed []keyedJob
}

// ByPriorityDesc sorts jobs in place by descending priority w_i/U_i(l)
// (Equation 4 with the given deviation factor), breaking ties by ascending
// job ID for determinism.
func (s *Sorter) ByPriorityDesc(jobs []*job.Job, deviationFactor float64) {
	ks := s.keyed[:0]
	for _, j := range jobs {
		ks = append(ks, keyedJob{j: j, p: j.Priority(deviationFactor)})
	}
	slices.SortStableFunc(ks, compareKeyedDesc)
	for i := range ks {
		jobs[i] = ks[i].j
	}
	s.keyed = ks
}

// ByOfflinePriorityDesc sorts jobs by the offline priority w_i/phi_i
// (Equation 2), descending, ties by ascending ID.
func (s *Sorter) ByOfflinePriorityDesc(jobs []*job.Job, deviationFactor float64) {
	ks := s.keyed[:0]
	for _, j := range jobs {
		phi := j.EffectiveWorkload(deviationFactor)
		p := 0.0
		if phi > 0 {
			p = j.Spec.Weight / phi
		}
		ks = append(ks, keyedJob{j: j, p: p})
	}
	slices.SortStableFunc(ks, compareKeyedDesc)
	for i := range ks {
		jobs[i] = ks[i].j
	}
	s.keyed = ks
}

// ByPriorityDesc is the allocating convenience form of Sorter.ByPriorityDesc.
func ByPriorityDesc(jobs []*job.Job, deviationFactor float64) {
	var s Sorter
	s.ByPriorityDesc(jobs, deviationFactor)
}

// ByOfflinePriorityDesc is the allocating convenience form of
// Sorter.ByOfflinePriorityDesc.
func ByOfflinePriorityDesc(jobs []*job.Job, deviationFactor float64) {
	var s Sorter
	s.ByOfflinePriorityDesc(jobs, deviationFactor)
}

// PickRandom returns k distinct tasks chosen uniformly at random from the
// given slice (the paper's "choose one unscheduled task at random"). When
// k >= len(tasks) it returns all of them. The input slice is not modified.
func PickRandom(tasks []*job.Task, k int, src *rng.Source) []*job.Task {
	if k >= len(tasks) {
		out := make([]*job.Task, len(tasks))
		copy(out, tasks)
		return out
	}
	if k <= 0 {
		return nil
	}
	pool := make([]*job.Task, len(tasks))
	copy(pool, tasks)
	return PickRandomInPlace(pool, k, src)
}

// PickRandomInPlace is PickRandom for callers that own the slice (scratch
// buffers): it reorders tasks in place and returns a prefix of it, drawing
// exactly the same random sequence as PickRandom. When k >= len(tasks) the
// slice is returned unshuffled with no draws.
func PickRandomInPlace(tasks []*job.Task, k int, src *rng.Source) []*job.Task {
	if k >= len(tasks) {
		return tasks
	}
	if k <= 0 {
		return nil
	}
	// Partial Fisher–Yates.
	for i := 0; i < k; i++ {
		r := i + src.Intn(len(tasks)-i)
		tasks[i], tasks[r] = tasks[r], tasks[i]
	}
	return tasks[:k]
}

// frac is one entry of the largest-remainder ranking.
type frac struct {
	idx  int
	part float64
}

// compareFracDesc orders by descending fractional part, ties by lower index.
func compareFracDesc(a, b frac) int {
	switch {
	case a.part > b.part:
		return -1
	case a.part < b.part:
		return 1
	default:
		return a.idx - b.idx
	}
}

// Apportioner holds reusable scratch for largest-remainder rounding. The
// zero value is ready to use.
type Apportioner struct {
	out   []int
	fracs []frac
}

// LargestRemainder rounds non-negative fractional shares to integers whose
// sum equals the floor of the total share mass, distributing the residual
// units to the entries with the largest fractional parts (ties broken by
// lower index). It is the standard apportionment rule and preserves
// monotonicity of the input ordering. The returned slice is scratch owned by
// the Apportioner, valid until its next call.
func (ap *Apportioner) LargestRemainder(shares []float64, total int) []int {
	out := ap.out[:0]
	for range shares {
		out = append(out, 0)
	}
	ap.out = out
	if total <= 0 || len(shares) == 0 {
		return out
	}
	sum := 0
	fracs := ap.fracs[:0]
	for i, s := range shares {
		if s < 0 {
			s = 0
		}
		w := int(s)
		out[i] = w
		sum += w
		fracs = append(fracs, frac{idx: i, part: s - float64(w)})
	}
	ap.fracs = fracs
	remaining := total - sum
	if remaining <= 0 {
		return out
	}
	slices.SortStableFunc(fracs, compareFracDesc)
	for i := 0; i < len(fracs) && remaining > 0; i++ {
		// Only top up entries that asked for a nonzero share.
		if shares[fracs[i].idx] <= 0 {
			continue
		}
		out[fracs[i].idx]++
		remaining--
	}
	return out
}

// LargestRemainder is the allocating convenience form of
// Apportioner.LargestRemainder; the returned slice is freshly allocated.
func LargestRemainder(shares []float64, total int) []int {
	var ap Apportioner
	out := ap.LargestRemainder(shares, total)
	res := make([]int, len(out))
	copy(res, out)
	return res
}

// WithUnscheduledTasks filters jobs in place to those with at least one
// unscheduled task (the paper's alive set psi^s(l) for scheduling purposes)
// and returns the filtered prefix. Callers pass Context.AliveJobs scratch,
// which is documented as filterable in place.
func WithUnscheduledTasks(jobs []*job.Job) []*job.Job {
	out := jobs[:0]
	for _, j := range jobs {
		if j.Unscheduled(job.PhaseMap) > 0 || j.Unscheduled(job.PhaseReduce) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// TotalWeight sums job weights (W(l), Equation 5).
func TotalWeight(jobs []*job.Job) float64 {
	var w float64
	for _, j := range jobs {
		w += j.Spec.Weight
	}
	return w
}
