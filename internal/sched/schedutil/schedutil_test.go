package schedutil

import (
	"math"
	"testing"
	"testing/quick"

	"mrclone/internal/dist"
	"mrclone/internal/job"
	"mrclone/internal/rng"
)

func mkJob(t *testing.T, id int, weight float64, maps int, mean float64) *job.Job {
	t.Helper()
	d, err := dist.NewDeterministic(mean)
	if err != nil {
		t.Fatal(err)
	}
	j, err := job.New(job.Spec{ID: id, Weight: weight, MapTasks: maps, MapDist: d})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestByPriorityDesc(t *testing.T) {
	// priorities w/U: A: 1/(2*10)=0.05, B: 4/(2*10)=0.2, C: 1/(1*10)=0.1
	a := mkJob(t, 0, 1, 2, 10)
	b := mkJob(t, 1, 4, 2, 10)
	c := mkJob(t, 2, 1, 1, 10)
	jobs := []*job.Job{a, b, c}
	ByPriorityDesc(jobs, 0)
	wantOrder := []int{1, 2, 0}
	for i, j := range jobs {
		if j.Spec.ID != wantOrder[i] {
			t.Fatalf("position %d: job %d, want %d", i, j.Spec.ID, wantOrder[i])
		}
	}
}

func TestByPriorityDescTieBreak(t *testing.T) {
	a := mkJob(t, 7, 1, 1, 10)
	b := mkJob(t, 3, 1, 1, 10)
	jobs := []*job.Job{a, b}
	ByPriorityDesc(jobs, 0)
	if jobs[0].Spec.ID != 3 {
		t.Fatalf("ties must break by ascending ID, got %d first", jobs[0].Spec.ID)
	}
}

func TestByOfflinePriorityDesc(t *testing.T) {
	// phi: A = 3*10 = 30 (w 1 => p=1/30), B = 1*10 (w 1 => 1/10).
	a := mkJob(t, 0, 1, 3, 10)
	b := mkJob(t, 1, 1, 1, 10)
	jobs := []*job.Job{a, b}
	ByOfflinePriorityDesc(jobs, 0)
	if jobs[0].Spec.ID != 1 {
		t.Fatalf("smaller job must rank first, got %d", jobs[0].Spec.ID)
	}
}

func TestPickRandom(t *testing.T) {
	j := mkJob(t, 0, 1, 10, 5)
	tasks := j.UnscheduledTasks(job.PhaseMap)
	src := rng.New(1)

	got := PickRandom(tasks, 4, src)
	if len(got) != 4 {
		t.Fatalf("picked %d, want 4", len(got))
	}
	seen := map[*job.Task]bool{}
	for _, task := range got {
		if seen[task] {
			t.Fatal("duplicate pick")
		}
		seen[task] = true
	}
	if got := PickRandom(tasks, 100, src); len(got) != 10 {
		t.Fatalf("over-pick returned %d, want all 10", len(got))
	}
	if got := PickRandom(tasks, 0, src); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := PickRandom(tasks, -3, src); got != nil {
		t.Fatalf("k<0 returned %v", got)
	}
	// Input slice must be unmodified (same pointers in same order).
	again := j.UnscheduledTasks(job.PhaseMap)
	for i := range tasks {
		if tasks[i] != again[i] {
			t.Fatal("PickRandom mutated its input")
		}
	}
}

func TestLargestRemainderExact(t *testing.T) {
	cases := []struct {
		shares []float64
		total  int
		want   []int
	}{
		{[]float64{2.5, 2.5, 5}, 10, []int{3, 2, 5}}, // tie on .5 -> lower index first
		{[]float64{1.2, 1.2, 1.6}, 4, []int{1, 1, 2}},
		{[]float64{0, 0, 4}, 4, []int{0, 0, 4}},
		{[]float64{3, 3, 3}, 9, []int{3, 3, 3}},
		{nil, 5, []int{}},
		{[]float64{1.5}, 0, []int{0}},
		{[]float64{-2, 3.5, 0.5}, 4, []int{0, 4, 0}}, // negatives clamp to 0
	}
	for i, tc := range cases {
		got := LargestRemainder(tc.shares, tc.total)
		if len(got) != len(tc.want) {
			t.Errorf("case %d: len %d, want %d", i, len(got), len(tc.want))
			continue
		}
		for k := range got {
			if got[k] != tc.want[k] {
				t.Errorf("case %d: got %v, want %v", i, got, tc.want)
				break
			}
		}
	}
}

// Property: when the share mass equals the total (the scheduler's contract —
// fractional g_i always sum to M), the rounded shares sum to exactly total,
// are non-negative, deviate from their fractional share by less than 1, and
// zero shares get zero machines.
func TestLargestRemainderProperty(t *testing.T) {
	f := func(raw []uint16, totalRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		total := int(totalRaw%200) + 1
		var mass float64
		shares := make([]float64, len(raw))
		for i, r := range raw {
			shares[i] = float64(r)
			mass += shares[i]
		}
		if mass == 0 {
			return true
		}
		for i := range shares {
			shares[i] = shares[i] / mass * float64(total)
		}
		got := LargestRemainder(shares, total)
		sum := 0
		for i, g := range got {
			if g < 0 {
				return false
			}
			if shares[i] == 0 && g != 0 {
				return false
			}
			if math.Abs(float64(g)-shares[i]) >= 1+1e-9 {
				return false
			}
			sum += g
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWithUnscheduledTasksAndTotalWeight(t *testing.T) {
	a := mkJob(t, 0, 2, 1, 5)
	b := mkJob(t, 1, 3, 1, 5)
	// Exhaust a's unscheduled pool.
	mt := a.Tasks[0]
	if err := a.MarkLaunched(mt, 0); err != nil {
		t.Fatal(err)
	}
	got := WithUnscheduledTasks([]*job.Job{a, b})
	if len(got) != 1 || got[0] != b {
		t.Fatalf("filter = %v", got)
	}
	if w := TotalWeight([]*job.Job{a, b}); w != 5 {
		t.Fatalf("total weight = %v, want 5", w)
	}
}
