package mrengine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mrclone/internal/rng"
)

// workerPool bounds concurrent task attempts with a semaphore.
type workerPool struct {
	slots chan struct{}
}

func newWorkerPool(n int) *workerPool {
	return &workerPool{slots: make(chan struct{}, n)}
}

// acquire blocks until a worker is free or ctx is done.
func (p *workerPool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *workerPool) release() { <-p.slots }

func (p *workerPool) close() {}

// attemptResult is the outcome of one task attempt.
type attemptResult struct {
	task    int
	out     []KV
	err     error
	elapsed time.Duration
}

// taskState tracks a running task during a phase.
type taskState struct {
	started  time.Time
	attempts int
	done     bool
}

// runPhase executes every task with the configured speculation policy and
// writes each task's first successful result into outputs[task]. It returns
// phase statistics.
func (e *Engine) runPhase(ctx context.Context, pool *workerPool, src *rng.Source,
	tasks []func(int) ([]KV, error), outputs [][]KV) (Stats, error) {

	phaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		states   = make([]taskState, len(tasks))
		finished = 0
		doneDur  []time.Duration
		stats    Stats
	)
	stats.Tasks = len(tasks)
	results := make(chan attemptResult, len(tasks))
	phaseStart := time.Now()

	// launchAttempt starts one attempt of task i on the pool. Delays are
	// pre-drawn under the mutex so randomness stays deterministic even
	// though goroutine completion order is not: the straggler injection,
	// not the race winner, is what experiments key off.
	launchAttempt := func(i int, delay time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.acquire(phaseCtx); err != nil {
				return
			}
			defer pool.release()
			start := time.Now()
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-phaseCtx.Done():
					return
				}
			}
			out, err := tasks[i](i)
			select {
			case results <- attemptResult{task: i, out: out, err: err, elapsed: time.Since(start)}:
			case <-phaseCtx.Done():
			}
		}()
	}

	// Initial attempts per the policy.
	initial := e.cfg.Speculation.InitialAttempts()
	mu.Lock()
	for i := range tasks {
		states[i].started = time.Now()
		for a := 0; a < initial; a++ {
			states[i].attempts++
			stats.Attempts++
			if a > 0 {
				stats.Backups++
			}
			launchAttempt(i, e.cfg.Straggler.delayFor(src))
		}
	}
	mu.Unlock()

	// Monitor loop for detection-based policies.
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		ticker := time.NewTicker(e.cfg.MonitorInterval)
		defer ticker.Stop()
		for {
			select {
			case <-phaseCtx.Done():
				return
			case <-ticker.C:
				mu.Lock()
				median := medianDuration(doneDur)
				for i := range states {
					if states[i].done {
						continue
					}
					elapsed := time.Since(states[i].started)
					if e.cfg.Speculation.ShouldBackup(elapsed, median, states[i].attempts) {
						states[i].attempts++
						stats.Attempts++
						stats.Backups++
						launchAttempt(i, e.cfg.Straggler.delayFor(src))
					}
				}
				mu.Unlock()
			}
		}
	}()

	var firstErr error
	for finished < len(tasks) && firstErr == nil {
		select {
		case <-ctx.Done():
			firstErr = ctx.Err()
		case r := <-results:
			mu.Lock()
			if r.err != nil && !states[r.task].done {
				firstErr = fmt.Errorf("task %d: %w", r.task, r.err)
			} else if !states[r.task].done {
				states[r.task].done = true
				outputs[r.task] = r.out
				doneDur = append(doneDur, r.elapsed)
				if r.elapsed > stats.MaxTask {
					stats.MaxTask = r.elapsed
				}
				finished++
			}
			mu.Unlock()
		}
	}
	cancel()
	<-monitorDone
	wg.Wait()
	stats.WallTime = time.Since(phaseStart)
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// medianDuration returns the median of ds (0 when empty). ds is copied.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(ds))
	copy(cp, ds)
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	return cp[len(cp)/2]
}
