// Package mrengine is a small but real in-process MapReduce engine: input
// splits fan out to map tasks, intermediate pairs shuffle by key hash into
// reduce partitions, and reduce tasks produce the output — executed by an
// actual bounded worker pool of goroutines.
//
// Its purpose in this repository is to demonstrate the paper's speculative
// execution strategies driving a real two-phase computation rather than a
// simulator: the engine injects stragglers (randomly slowed task attempts,
// the phenomenon of Section I) and delegates the mitigation decision to a
// pluggable SpeculationPolicy. CloningPolicy launches parallel attempts
// up-front and takes the first finisher (the paper's approach); detection
// policies launch backups only after observing slow progress (the
// Mantri/LATE family); NoSpeculation runs one attempt per task.
package mrengine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"mrclone/internal/rng"
)

// KV is one key-value pair.
type KV struct {
	Key   string
	Value string
}

// MapFunc transforms one input pair into intermediate pairs via emit.
type MapFunc func(key, value string, emit func(k, v string)) error

// ReduceFunc folds all intermediate values of one key into output pairs.
type ReduceFunc func(key string, values []string, emit func(k, v string)) error

// Job describes a MapReduce computation.
type Job struct {
	Name     string
	Splits   [][]KV // one map task per split
	Map      MapFunc
	Reduce   ReduceFunc
	Reducers int // number of reduce tasks (partitions), >= 1
}

// Validate checks the job description.
func (j *Job) Validate() error {
	switch {
	case j == nil:
		return errors.New("mrengine: nil job")
	case len(j.Splits) == 0:
		return fmt.Errorf("mrengine: job %q has no input splits", j.Name)
	case j.Map == nil:
		return fmt.Errorf("mrengine: job %q has no map function", j.Name)
	case j.Reduce == nil:
		return fmt.Errorf("mrengine: job %q has no reduce function", j.Name)
	case j.Reducers < 1:
		return fmt.Errorf("mrengine: job %q needs >= 1 reducers", j.Name)
	}
	return nil
}

// StragglerModel injects execution-time skew: each task attempt is delayed
// by BaseDelay, and with probability Probability the delay is multiplied by
// SlowdownFactor — the "partially/intermittently failing machine" of the
// paper. Zero values disable injection.
type StragglerModel struct {
	BaseDelay      time.Duration
	Probability    float64
	SlowdownFactor float64
}

func (m StragglerModel) validate() error {
	if m.Probability < 0 || m.Probability > 1 {
		return fmt.Errorf("mrengine: straggler probability %v", m.Probability)
	}
	if m.Probability > 0 && m.SlowdownFactor < 1 {
		return fmt.Errorf("mrengine: slowdown factor %v < 1", m.SlowdownFactor)
	}
	if m.BaseDelay < 0 {
		return fmt.Errorf("mrengine: negative base delay %v", m.BaseDelay)
	}
	return nil
}

// delayFor returns the injected delay for one task attempt.
func (m StragglerModel) delayFor(src *rng.Source) time.Duration {
	if m.BaseDelay == 0 {
		return 0
	}
	d := m.BaseDelay
	if m.Probability > 0 && src.Float64() < m.Probability {
		d = time.Duration(float64(d) * m.SlowdownFactor)
	}
	return d
}

// SpeculationPolicy decides how many parallel attempts each task starts with
// and whether to launch a backup for a running task.
type SpeculationPolicy interface {
	// InitialAttempts is the number of copies to launch when the task
	// starts (>= 1). The paper's cloning approach returns > 1.
	InitialAttempts() int
	// ShouldBackup reports whether a task running for `elapsed` with
	// `attempts` live attempts deserves a backup, given the median duration
	// of completed tasks in the same phase (0 if none completed yet).
	ShouldBackup(elapsed, medianDone time.Duration, attempts int) bool
	// Name identifies the policy.
	Name() string
}

// NoSpeculation runs exactly one attempt per task.
type NoSpeculation struct{}

// InitialAttempts implements SpeculationPolicy.
func (NoSpeculation) InitialAttempts() int { return 1 }

// ShouldBackup implements SpeculationPolicy.
func (NoSpeculation) ShouldBackup(time.Duration, time.Duration, int) bool { return false }

// Name implements SpeculationPolicy.
func (NoSpeculation) Name() string { return "none" }

// CloningPolicy launches Copies attempts for every task up-front — the
// paper's proactive strategy ("extra copies of a task are scheduled in
// parallel with the initial task and the one which finishes first is used").
type CloningPolicy struct {
	Copies int
}

// InitialAttempts implements SpeculationPolicy.
func (c CloningPolicy) InitialAttempts() int {
	if c.Copies < 1 {
		return 1
	}
	return c.Copies
}

// ShouldBackup implements SpeculationPolicy.
func (CloningPolicy) ShouldBackup(time.Duration, time.Duration, int) bool { return false }

// Name implements SpeculationPolicy.
func (c CloningPolicy) Name() string { return fmt.Sprintf("clone-%d", c.InitialAttempts()) }

// DetectionPolicy launches one backup for a task whose runtime exceeds
// Threshold times the median completed-task duration — the
// straggler-detection family (Mantri, LATE).
type DetectionPolicy struct {
	Threshold float64 // > 1; e.g. 2.0
}

// InitialAttempts implements SpeculationPolicy.
func (DetectionPolicy) InitialAttempts() int { return 1 }

// ShouldBackup implements SpeculationPolicy.
func (d DetectionPolicy) ShouldBackup(elapsed, medianDone time.Duration, attempts int) bool {
	if attempts > 1 || medianDone == 0 {
		return false
	}
	th := d.Threshold
	if th <= 1 {
		th = 2
	}
	return elapsed > time.Duration(th*float64(medianDone))
}

// Name implements SpeculationPolicy.
func (d DetectionPolicy) Name() string { return fmt.Sprintf("detect-%.1fx", d.Threshold) }

// Config parameterizes the engine.
type Config struct {
	// Workers bounds concurrent task attempts (the machine pool). >= 1.
	Workers int
	// Straggler injects execution-time skew.
	Straggler StragglerModel
	// Speculation mitigates the skew. Nil means NoSpeculation.
	Speculation SpeculationPolicy
	// Seed drives straggler injection deterministically.
	Seed int64
	// MonitorInterval is the cadence of the backup-decision scan for
	// detection policies. Zero means 2ms.
	MonitorInterval time.Duration
}

// Stats summarizes one phase's execution.
type Stats struct {
	Tasks    int
	Attempts int           // attempts ever started
	Backups  int           // attempts beyond the first per task
	WallTime time.Duration // phase duration
	MaxTask  time.Duration // slowest task (first-finisher time)
}

// Result is the output of a completed job.
type Result struct {
	Output      []KV // sorted by key then value
	MapStats    Stats
	ReduceStats Stats
}

// Engine executes MapReduce jobs on a bounded worker pool.
type Engine struct {
	cfg Config
}

// New returns an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("mrengine: workers %d", cfg.Workers)
	}
	if err := cfg.Straggler.validate(); err != nil {
		return nil, err
	}
	if cfg.Speculation == nil {
		cfg.Speculation = NoSpeculation{}
	}
	if cfg.MonitorInterval == 0 {
		cfg.MonitorInterval = 2 * time.Millisecond
	}
	return &Engine{cfg: cfg}, nil
}

// Run executes the job to completion (or ctx cancellation).
func (e *Engine) Run(ctx context.Context, job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(e.cfg.Seed).Split("mrengine/" + job.Name)
	pool := newWorkerPool(e.cfg.Workers)
	defer pool.close()

	// ---- Map phase ----
	mapOutputs := make([][]KV, len(job.Splits))
	mapTasks := make([]func(int) ([]KV, error), len(job.Splits))
	for i := range job.Splits {
		split := job.Splits[i]
		mapTasks[i] = func(int) ([]KV, error) {
			var out []KV
			emit := func(k, v string) { out = append(out, KV{Key: k, Value: v}) }
			for _, kv := range split {
				if err := job.Map(kv.Key, kv.Value, emit); err != nil {
					return nil, fmt.Errorf("map: %w", err)
				}
			}
			return out, nil
		}
	}
	mapStats, err := e.runPhase(ctx, pool, src.Split("map"), mapTasks, mapOutputs)
	if err != nil {
		return nil, fmt.Errorf("mrengine: job %q map phase: %w", job.Name, err)
	}

	// ---- Shuffle: partition intermediate pairs by key hash ----
	partitions := make([]map[string][]string, job.Reducers)
	for i := range partitions {
		partitions[i] = make(map[string][]string)
	}
	for _, out := range mapOutputs {
		for _, kv := range out {
			p := int(hashKey(kv.Key) % uint64(job.Reducers))
			partitions[p][kv.Key] = append(partitions[p][kv.Key], kv.Value)
		}
	}

	// ---- Reduce phase (gated on map completion, inherently) ----
	reduceOutputs := make([][]KV, job.Reducers)
	reduceTasks := make([]func(int) ([]KV, error), job.Reducers)
	for i := range reduceTasks {
		part := partitions[i]
		reduceTasks[i] = func(int) ([]KV, error) {
			keys := make([]string, 0, len(part))
			for k := range part {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var out []KV
			emit := func(k, v string) { out = append(out, KV{Key: k, Value: v}) }
			for _, k := range keys {
				if err := job.Reduce(k, part[k], emit); err != nil {
					return nil, fmt.Errorf("reduce: %w", err)
				}
			}
			return out, nil
		}
	}
	reduceStats, err := e.runPhase(ctx, pool, src.Split("reduce"), reduceTasks, reduceOutputs)
	if err != nil {
		return nil, fmt.Errorf("mrengine: job %q reduce phase: %w", job.Name, err)
	}

	var output []KV
	for _, out := range reduceOutputs {
		output = append(output, out...)
	}
	sort.Slice(output, func(a, b int) bool {
		if output[a].Key != output[b].Key {
			return output[a].Key < output[b].Key
		}
		return output[a].Value < output[b].Value
	})
	return &Result{Output: output, MapStats: mapStats, ReduceStats: reduceStats}, nil
}

func hashKey(k string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(k))
	return h.Sum64()
}
