package mrengine

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

// wordCountJob builds the canonical word-count job over the given lines.
func wordCountJob(lines []string, reducers int) *Job {
	splits := make([][]KV, 0, len(lines))
	for i, line := range lines {
		splits = append(splits, []KV{{Key: strconv.Itoa(i), Value: line}})
	}
	return &Job{
		Name:   "wordcount",
		Splits: splits,
		Map: func(_, value string, emit func(k, v string)) error {
			for _, w := range strings.Fields(value) {
				emit(strings.ToLower(w), "1")
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, strconv.Itoa(len(values)))
			return nil
		},
		Reducers: reducers,
	}
}

func TestWordCount(t *testing.T) {
	e, err := New(Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob([]string{
		"the quick brown fox",
		"the lazy dog and the quick cat",
	}, 3)
	res, err := e.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"the": "3", "quick": "2", "brown": "1", "fox": "1",
		"lazy": "1", "dog": "1", "and": "1", "cat": "1",
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output size %d, want %d: %v", len(res.Output), len(want), res.Output)
	}
	for _, kv := range res.Output {
		if want[kv.Key] != kv.Value {
			t.Errorf("%s = %s, want %s", kv.Key, kv.Value, want[kv.Key])
		}
	}
	// Output must be key-sorted.
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i-1].Key > res.Output[i].Key {
			t.Fatal("output not sorted")
		}
	}
	if res.MapStats.Tasks != 2 || res.ReduceStats.Tasks != 3 {
		t.Errorf("task counts: %+v %+v", res.MapStats, res.ReduceStats)
	}
}

func TestOutputIndependentOfPolicyAndWorkers(t *testing.T) {
	job := wordCountJob([]string{"a b a", "c b a", "d d d d"}, 2)
	var baseline []KV
	configs := []Config{
		{Workers: 1, Seed: 1},
		{Workers: 8, Seed: 2, Speculation: CloningPolicy{Copies: 3}},
		{Workers: 4, Seed: 3, Speculation: DetectionPolicy{Threshold: 2},
			Straggler: StragglerModel{BaseDelay: time.Millisecond, Probability: 0.3, SlowdownFactor: 5}},
	}
	for i, cfg := range configs {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseline = res.Output
			continue
		}
		if len(res.Output) != len(baseline) {
			t.Fatalf("config %d: output size differs", i)
		}
		for k := range baseline {
			if res.Output[k] != baseline[k] {
				t.Fatalf("config %d: output differs at %d: %v vs %v",
					i, k, res.Output[k], baseline[k])
			}
		}
	}
}

func TestCloningLaunchesCopies(t *testing.T) {
	e, err := New(Config{Workers: 16, Seed: 1, Speculation: CloningPolicy{Copies: 3}})
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob([]string{"x", "y", "z"}, 1)
	res, err := e.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// 3 map tasks * 3 copies + 1 reduce * 3 copies.
	if res.MapStats.Attempts != 9 {
		t.Errorf("map attempts = %d, want 9", res.MapStats.Attempts)
	}
	if res.MapStats.Backups != 6 {
		t.Errorf("map backups = %d, want 6", res.MapStats.Backups)
	}
	if res.ReduceStats.Attempts != 3 {
		t.Errorf("reduce attempts = %d, want 3", res.ReduceStats.Attempts)
	}
}

func TestCloningMitigatesStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// Heavy straggler injection: 40% of attempts run 20x slower. Cloning
	// with 3 copies should cut wall time versus no speculation.
	straggler := StragglerModel{
		BaseDelay:      2 * time.Millisecond,
		Probability:    0.4,
		SlowdownFactor: 20,
	}
	lines := make([]string, 12)
	for i := range lines {
		lines[i] = "alpha beta gamma"
	}
	job := wordCountJob(lines, 2)

	run := func(policy SpeculationPolicy) time.Duration {
		t.Helper()
		var total time.Duration
		const reps = 3
		for seed := int64(0); seed < reps; seed++ {
			e, err := New(Config{Workers: 64, Seed: seed, Straggler: straggler, Speculation: policy})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			total += res.MapStats.WallTime
		}
		return total / reps
	}
	plain := run(NoSpeculation{})
	cloned := run(CloningPolicy{Copies: 3})
	if cloned >= plain {
		t.Fatalf("cloning did not help: plain %v, cloned %v", plain, cloned)
	}
}

func TestDetectionLaunchesBackups(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	straggler := StragglerModel{
		BaseDelay:      2 * time.Millisecond,
		Probability:    0.25,
		SlowdownFactor: 50,
	}
	lines := make([]string, 16)
	for i := range lines {
		lines[i] = "w"
	}
	job := wordCountJob(lines, 1)
	e, err := New(Config{
		Workers: 32, Seed: 7, Straggler: straggler,
		Speculation:     DetectionPolicy{Threshold: 2},
		MonitorInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapStats.Backups == 0 {
		t.Fatal("detection policy never launched a backup under heavy stragglers")
	}
}

func TestJobValidation(t *testing.T) {
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Job{
		{Name: "nosplits", Map: func(string, string, func(k, v string)) error { return nil },
			Reduce: func(string, []string, func(k, v string)) error { return nil }, Reducers: 1},
		{Name: "nomap", Splits: [][]KV{{{Key: "a"}}},
			Reduce: func(string, []string, func(k, v string)) error { return nil }, Reducers: 1},
		{Name: "noreduce", Splits: [][]KV{{{Key: "a"}}},
			Map: func(string, string, func(k, v string)) error { return nil }, Reducers: 1},
		{Name: "noreducers", Splits: [][]KV{{{Key: "a"}}},
			Map:    func(string, string, func(k, v string)) error { return nil },
			Reduce: func(string, []string, func(k, v string)) error { return nil }},
	}
	for _, j := range bad {
		if _, err := e.Run(context.Background(), j); err == nil {
			t.Errorf("job %q accepted", j.Name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := New(Config{Workers: 1, Straggler: StragglerModel{Probability: 2}}); err == nil {
		t.Error("probability=2 accepted")
	}
	if _, err := New(Config{Workers: 1, Straggler: StragglerModel{Probability: 0.5, SlowdownFactor: 0.5}}); err == nil {
		t.Error("slowdown<1 accepted")
	}
	if _, err := New(Config{Workers: 1, Straggler: StragglerModel{BaseDelay: -1}}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	e, err := New(Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	job := &Job{
		Name:   "failing",
		Splits: [][]KV{{{Key: "a", Value: "b"}}},
		Map: func(string, string, func(k, v string)) error {
			return wantErr
		},
		Reduce:   func(string, []string, func(k, v string)) error { return nil },
		Reducers: 1,
	}
	if _, err := e.Run(context.Background(), job); !errors.Is(err, wantErr) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	e, err := New(Config{
		Workers:   1,
		Seed:      1,
		Straggler: StragglerModel{BaseDelay: time.Minute}, // effectively hangs
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	job := wordCountJob([]string{"a"}, 1)
	if _, err := e.Run(ctx, job); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestPolicyNames(t *testing.T) {
	if (NoSpeculation{}).Name() != "none" {
		t.Error("NoSpeculation name")
	}
	if (CloningPolicy{Copies: 3}).Name() != "clone-3" {
		t.Error("CloningPolicy name")
	}
	if (CloningPolicy{}).InitialAttempts() != 1 {
		t.Error("zero copies should clamp to 1")
	}
	if !strings.HasPrefix((DetectionPolicy{Threshold: 2}).Name(), "detect-") {
		t.Error("DetectionPolicy name")
	}
}

func TestMedianDuration(t *testing.T) {
	if medianDuration(nil) != 0 {
		t.Error("empty median")
	}
	ds := []time.Duration{5, 1, 3}
	if medianDuration(ds) != 3 {
		t.Errorf("median = %v", medianDuration(ds))
	}
	// Input must not be reordered.
	if ds[0] != 5 || ds[1] != 1 || ds[2] != 3 {
		t.Error("median mutated input")
	}
}

func TestDetectionPolicyRule(t *testing.T) {
	d := DetectionPolicy{Threshold: 2}
	if d.ShouldBackup(10*time.Millisecond, 0, 1) {
		t.Error("backup with no completed median")
	}
	if d.ShouldBackup(10*time.Millisecond, 20*time.Millisecond, 1) {
		t.Error("backup below threshold")
	}
	if !d.ShouldBackup(50*time.Millisecond, 20*time.Millisecond, 1) {
		t.Error("no backup above threshold")
	}
	if d.ShouldBackup(50*time.Millisecond, 20*time.Millisecond, 2) {
		t.Error("second backup launched")
	}
	// Zero threshold defaults to 2x.
	z := DetectionPolicy{}
	if z.ShouldBackup(30*time.Millisecond, 20*time.Millisecond, 1) {
		t.Error("default threshold should be 2x")
	}
}
