// Package metrics computes the evaluation statistics reported in Section VI
// of the paper: weighted and unweighted averages of job flowtime, and
// cumulative distribution functions of flowtime over configurable ranges
// (Figures 1–6).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mrclone/internal/cluster"
)

// ErrNoJobs is returned when a summary is requested over zero jobs.
var ErrNoJobs = errors.New("metrics: no finished jobs")

// FlowtimeSummary aggregates flowtime statistics over a run.
type FlowtimeSummary struct {
	Jobs             int
	MeanFlowtime     float64 // unweighted average of job flowtime
	WeightedFlowtime float64 // sum(w_i f_i) / sum(w_i)
	TotalWeighted    float64 // sum(w_i f_i) — the paper's raw objective
	MinFlowtime      int64
	MaxFlowtime      int64
	P50              float64
	P90              float64
	P99              float64
}

// Summarize computes a FlowtimeSummary over the finished jobs of a result.
func Summarize(res *cluster.Result) (FlowtimeSummary, error) {
	if res == nil || len(res.Jobs) == 0 {
		return FlowtimeSummary{}, ErrNoJobs
	}
	flows := make([]float64, 0, len(res.Jobs))
	var sum, wsum, wflow float64
	minF, maxF := int64(math.MaxInt64), int64(math.MinInt64)
	for _, j := range res.Jobs {
		if j.Flowtime < 0 {
			return FlowtimeSummary{}, fmt.Errorf("metrics: job %d did not finish", j.ID)
		}
		f := float64(j.Flowtime)
		flows = append(flows, f)
		sum += f
		wsum += j.Weight
		wflow += j.Weight * f
		if j.Flowtime < minF {
			minF = j.Flowtime
		}
		if j.Flowtime > maxF {
			maxF = j.Flowtime
		}
	}
	sort.Float64s(flows)
	n := float64(len(flows))
	s := FlowtimeSummary{
		Jobs:          len(flows),
		MeanFlowtime:  sum / n,
		TotalWeighted: wflow,
		MinFlowtime:   minF,
		MaxFlowtime:   maxF,
		P50:           percentile(flows, 0.50),
		P90:           percentile(flows, 0.90),
		P99:           percentile(flows, 0.99),
	}
	if wsum > 0 {
		s.WeightedFlowtime = wflow / wsum
	}
	return s, nil
}

// percentile returns the p-quantile of sorted data using the nearest-rank
// method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CDFPoint is one point of an empirical CDF: the cumulative fraction of all
// jobs with flowtime <= X.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// FlowtimeCDF evaluates the empirical flowtime CDF of a result at evenly
// spaced points in [lo, hi] (the paper plots 0–300 s for small jobs, Fig. 4,
// and 300–4000 s for big jobs, Fig. 5). The fraction is relative to all
// finished jobs, matching the figures' "cumulative fraction of jobs" axis.
func FlowtimeCDF(res *cluster.Result, lo, hi float64, points int) ([]CDFPoint, error) {
	if res == nil || len(res.Jobs) == 0 {
		return nil, ErrNoJobs
	}
	if points < 2 || hi <= lo {
		return nil, fmt.Errorf("metrics: bad CDF range [%v, %v] x %d", lo, hi, points)
	}
	flows := make([]float64, 0, len(res.Jobs))
	for _, j := range res.Jobs {
		flows = append(flows, float64(j.Flowtime))
	}
	sort.Float64s(flows)
	n := float64(len(flows))
	out := make([]CDFPoint, points)
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		cnt := sort.SearchFloat64s(flows, x+1e-9) // jobs with flowtime <= x
		out[i] = CDFPoint{X: x, Fraction: float64(cnt) / n}
	}
	return out, nil
}

// FractionWithin returns the fraction of jobs whose flowtime is <= x.
func FractionWithin(res *cluster.Result, x float64) (float64, error) {
	if res == nil || len(res.Jobs) == 0 {
		return 0, ErrNoJobs
	}
	cnt := 0
	for _, j := range res.Jobs {
		if float64(j.Flowtime) <= x {
			cnt++
		}
	}
	return float64(cnt) / float64(len(res.Jobs)), nil
}

// Improvement returns the relative reduction of `got` versus `baseline`
// (positive means got is better/lower), e.g. 0.25 for the paper's "beats
// Mantri by nearly 25%".
func Improvement(baseline, got float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - got) / baseline
}

// MeanSlowdown returns the average of flowtime divided by the job's ideal
// critical-path time proxy (its number of tasks capped at 1 — callers with
// richer information should compute their own). Exposed mainly for ablation
// reporting.
func MeanSlowdown(res *cluster.Result, ideal func(cluster.JobRecord) float64) (float64, error) {
	if res == nil || len(res.Jobs) == 0 {
		return 0, ErrNoJobs
	}
	var sum float64
	var n int
	for _, j := range res.Jobs {
		base := ideal(j)
		if base <= 0 {
			continue
		}
		sum += float64(j.Flowtime) / base
		n++
	}
	if n == 0 {
		return 0, ErrNoJobs
	}
	return sum / float64(n), nil
}
