package metrics

import (
	"errors"
	"math"
	"testing"

	"mrclone/internal/cluster"
)

func result(jobs ...cluster.JobRecord) *cluster.Result {
	return &cluster.Result{Jobs: jobs}
}

func jr(id int, weight float64, flow int64) cluster.JobRecord {
	return cluster.JobRecord{ID: id, Weight: weight, Flowtime: flow, Finish: flow}
}

func TestSummarize(t *testing.T) {
	res := result(
		jr(0, 1, 10),
		jr(1, 3, 20),
		jr(2, 1, 60),
	)
	s, err := Summarize(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 3 {
		t.Errorf("jobs = %d", s.Jobs)
	}
	if s.MeanFlowtime != 30 {
		t.Errorf("mean = %v, want 30", s.MeanFlowtime)
	}
	// weighted: (10 + 60 + 60)/5 = 26
	if s.WeightedFlowtime != 26 {
		t.Errorf("weighted = %v, want 26", s.WeightedFlowtime)
	}
	if s.TotalWeighted != 130 {
		t.Errorf("total weighted = %v, want 130", s.TotalWeighted)
	}
	if s.MinFlowtime != 10 || s.MaxFlowtime != 60 {
		t.Errorf("min/max = %d/%d", s.MinFlowtime, s.MaxFlowtime)
	}
	if s.P50 != 20 {
		t.Errorf("p50 = %v, want 20", s.P50)
	}
	if s.P99 != 60 {
		t.Errorf("p99 = %v, want 60", s.P99)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrNoJobs) {
		t.Error("nil result accepted")
	}
	if _, err := Summarize(result()); !errors.Is(err, ErrNoJobs) {
		t.Error("empty result accepted")
	}
	if _, err := Summarize(result(cluster.JobRecord{ID: 0, Flowtime: -1})); err == nil {
		t.Error("unfinished job accepted")
	}
}

func TestFlowtimeCDF(t *testing.T) {
	res := result(jr(0, 1, 10), jr(1, 1, 20), jr(2, 1, 30), jr(3, 1, 300))
	pts, err := FlowtimeCDF(res, 0, 30, 4) // x = 0, 10, 20, 30
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75}
	for i, p := range pts {
		if math.Abs(p.Fraction-want[i]) > 1e-9 {
			t.Errorf("point %d (x=%v): %v, want %v", i, p.X, p.Fraction, want[i])
		}
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction < pts[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if _, err := FlowtimeCDF(res, 10, 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := FlowtimeCDF(res, 0, 10, 1); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FlowtimeCDF(nil, 0, 10, 3); !errors.Is(err, ErrNoJobs) {
		t.Error("nil result accepted")
	}
}

func TestFractionWithin(t *testing.T) {
	res := result(jr(0, 1, 50), jr(1, 1, 150), jr(2, 1, 250), jr(3, 1, 1000))
	got, err := FractionWithin(res, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 {
		t.Errorf("within 100 = %v, want 0.25", got)
	}
	got, _ = FractionWithin(res, 250)
	if got != 0.75 {
		t.Errorf("within 250 = %v, want 0.75", got)
	}
	if _, err := FractionWithin(nil, 1); !errors.Is(err, ErrNoJobs) {
		t.Error("nil accepted")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 75); got != 0.25 {
		t.Errorf("improvement = %v, want 0.25", got)
	}
	if got := Improvement(0, 10); got != 0 {
		t.Errorf("zero baseline = %v", got)
	}
	if got := Improvement(100, 120); got != -0.2 {
		t.Errorf("regression = %v, want -0.2", got)
	}
}

func TestMeanSlowdown(t *testing.T) {
	res := result(jr(0, 1, 20), jr(1, 1, 40))
	got, err := MeanSlowdown(res, func(cluster.JobRecord) float64 { return 10 })
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // (2 + 4) / 2
		t.Errorf("slowdown = %v, want 3", got)
	}
	if _, err := MeanSlowdown(res, func(cluster.JobRecord) float64 { return 0 }); !errors.Is(err, ErrNoJobs) {
		t.Error("all-zero ideals accepted")
	}
	if _, err := MeanSlowdown(nil, nil); !errors.Is(err, ErrNoJobs) {
		t.Error("nil accepted")
	}
}

func TestPercentileEdges(t *testing.T) {
	res := result(jr(0, 1, 5))
	s, err := Summarize(res)
	if err != nil {
		t.Fatal(err)
	}
	if s.P50 != 5 || s.P90 != 5 || s.P99 != 5 {
		t.Errorf("single-job percentiles: %+v", s)
	}
}
