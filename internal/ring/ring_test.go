package ring

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"testing"
)

// sampleKeys returns n deterministic spec-hash-shaped keys (lowercase-hex
// SHA-256 digests), matching what the gateway actually routes.
func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	return names
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("New(nil) succeeded, want error")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Error("New with empty name succeeded, want error")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("New with duplicate name succeeded, want error")
	}
	r, err := New([]string{"solo"}, -5)
	if err != nil {
		t.Fatal(err)
	}
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Errorf("VirtualNodes() = %d, want default %d", r.VirtualNodes(), DefaultVirtualNodes)
	}
	if got := r.Lookup("anything"); got != "solo" {
		t.Errorf("single-node Lookup = %q, want solo", got)
	}
}

// TestPlacementOrderIndependent proves placement depends only on the member
// set: two gateways listing the same shards in different order must route
// every key identically.
func TestPlacementOrderIndependent(t *testing.T) {
	a, err := New([]string{"s0", "s1", "s2", "s3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"s3", "s1", "s0", "s2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range sampleKeys(1000) {
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("key %s: order-dependent placement %q vs %q", key, a.Lookup(key), b.Lookup(key))
		}
	}
}

// TestRemovalRelocation is the minimal-movement property: removing one of N
// members relocates roughly 1/N of 10k sampled spec hashes — bounded by
// 1/N + ε — and never moves a key between surviving members.
func TestRemovalRelocation(t *testing.T) {
	const n = 8
	const keys = 10000
	const epsilon = 0.05 // vnode-variance allowance over the expected 1/N
	names := nodeNames(n)
	full, err := New(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	sample := sampleKeys(keys)
	owners := make([]string, keys)
	for i, key := range sample {
		owners[i] = full.Lookup(key)
	}

	for removed := 0; removed < n; removed++ {
		var rest []string
		for i, name := range names {
			if i != removed {
				rest = append(rest, name)
			}
		}
		shrunk, err := New(rest, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i, key := range sample {
			after := shrunk.Lookup(key)
			if owners[i] == names[removed] {
				moved++
				continue
			}
			if after != owners[i] {
				t.Fatalf("remove %s: key %s moved between survivors %s -> %s",
					names[removed], key, owners[i], after)
			}
		}
		frac := float64(moved) / keys
		if frac > 1.0/n+epsilon {
			t.Errorf("remove %s: %.3f of keys relocated, want <= 1/%d+%.2f", names[removed], frac, n, epsilon)
		}
		if moved == 0 {
			t.Errorf("remove %s: no keys relocated; member owned nothing", names[removed])
		}
	}
}

// TestBalance sanity-checks the virtual-node spreading: every member owns a
// share of sampled keys within a factor of two of the fair 1/N.
func TestBalance(t *testing.T) {
	const n = 5
	r, err := New(nodeNames(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	sample := sampleKeys(10000)
	for _, key := range sample {
		counts[r.Lookup(key)]++
	}
	fair := float64(len(sample)) / n
	for _, name := range r.Nodes() {
		share := float64(counts[name])
		if share < fair/2 || share > fair*2 {
			t.Errorf("node %s owns %.0f keys, want within [%.0f, %.0f]", name, share, fair/2, fair*2)
		}
	}
}

func TestReplicas(t *testing.T) {
	r, err := New(nodeNames(4), 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range sampleKeys(200) {
		all := r.Replicas(key, 0)
		if len(all) != 4 {
			t.Fatalf("Replicas(key, 0) returned %d members, want all 4", len(all))
		}
		if all[0] != r.Lookup(key) {
			t.Fatalf("Replicas[0] = %q, Lookup = %q", all[0], r.Lookup(key))
		}
		seen := make(map[string]bool)
		for _, name := range all {
			if seen[name] {
				t.Fatalf("Replicas repeats %q", name)
			}
			seen[name] = true
		}
		if two := r.Replicas(key, 2); len(two) != 2 || two[0] != all[0] || two[1] != all[1] {
			t.Fatalf("Replicas(key, 2) = %v, want prefix of %v", two, all)
		}
		if over := r.Replicas(key, 99); len(over) != 4 {
			t.Fatalf("Replicas(key, 99) returned %d members, want 4", len(over))
		}
	}
}

// TestReplicaFailoverConsistency pins the property the chaos path relies on:
// the second replica of a key equals the key's owner once the first replica
// is removed from the ring.
func TestReplicaFailoverConsistency(t *testing.T) {
	names := nodeNames(6)
	full, err := New(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range sampleKeys(500) {
		reps := full.Replicas(key, 2)
		var rest []string
		for _, n := range names {
			if n != reps[0] {
				rest = append(rest, n)
			}
		}
		shrunk, err := New(rest, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := shrunk.Lookup(key); got != reps[1] {
			t.Fatalf("key %s: owner-after-removal %q != second replica %q", key, got, reps[1])
		}
	}
}

// TestDeltaMatchesFresh is the no-history-dependence property behind the
// elastic gateway pool: applying any sequence of With/Without deltas to a
// live ring places every key exactly as a ring built fresh from the final
// member set would, so gateways that diverged in how they learned the
// membership still route identically once they agree on it.
func TestDeltaMatchesFresh(t *testing.T) {
	steps := []struct {
		add    []string
		remove []string
	}{
		{add: []string{"s3"}},
		{remove: []string{"s1"}},
		{add: []string{"s4", "s5"}},
		{add: []string{"s1"}, remove: []string{"s0"}}, // s1 re-joins as s0 departs
		{remove: []string{"s4", "s3"}},
	}
	live, err := New(nodeNames(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	sample := sampleKeys(2000)
	for si, step := range steps {
		if len(step.remove) > 0 {
			if live, err = live.Without(step.remove...); err != nil {
				t.Fatalf("step %d: Without(%v): %v", si, step.remove, err)
			}
		}
		if len(step.add) > 0 {
			if live, err = live.With(step.add...); err != nil {
				t.Fatalf("step %d: With(%v): %v", si, step.add, err)
			}
		}
		fresh, err := New(live.Nodes(), 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range sample {
			if got, want := live.Lookup(key), fresh.Lookup(key); got != want {
				t.Fatalf("step %d: key %s: delta ring places on %q, fresh ring on %q",
					si, key, got, want)
			}
		}
	}
}

// TestDownThenUpRestoresOwnership pins the recovery property: a shard that
// leaves the ring and later re-joins resumes owning exactly the keys it
// owned before, because point positions depend only on the member name and
// vnode index, never on membership history.
func TestDownThenUpRestoresOwnership(t *testing.T) {
	before, err := New(nodeNames(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	down, err := before.Without("s2")
	if err != nil {
		t.Fatal(err)
	}
	after, err := down.With("s2")
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for _, key := range sampleKeys(5000) {
		want := before.Lookup(key)
		if got := after.Lookup(key); got != want {
			t.Fatalf("key %s: owner %q before the down/up cycle, %q after", key, want, got)
		}
		if want == "s2" {
			owned++
			if interim := down.Lookup(key); interim == "s2" {
				t.Fatalf("key %s: removed shard still owns it", key)
			}
		}
	}
	if owned == 0 {
		t.Fatal("sample never landed on the cycled shard; test proves nothing")
	}
}

// TestDeltaValidation pins the error cases: duplicate adds, unknown
// removals, emptying the ring — and that a failed delta leaves the
// receiver usable.
func TestDeltaValidation(t *testing.T) {
	r, err := New([]string{"a", "b"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.With("a"); err == nil {
		t.Error("With(existing) succeeded, want error")
	}
	if _, err := r.With("c", "c"); err == nil {
		t.Error("With(dup, dup) succeeded, want error")
	}
	if _, err := r.With(""); err == nil {
		t.Error("With(empty name) succeeded, want error")
	}
	if _, err := r.Without("zz"); err == nil {
		t.Error("Without(unknown) succeeded, want error")
	}
	if _, err := r.Without("a", "b"); err == nil {
		t.Error("Without(everything) succeeded, want error")
	}
	if _, err := r.Without("a", "a"); err == nil {
		t.Error("Without(dup, dup) succeeded, want error")
	}
	if got := r.Nodes(); len(got) != 2 || !r.Contains("a") || !r.Contains("b") || r.Contains("c") {
		t.Errorf("receiver mutated by failed deltas: nodes %v", got)
	}
}

// TestLoadStdDev documents the vnode count's effect rather than asserting a
// tight bound: with the default vnodes the per-node share of 10k keys stays
// within a few percent of fair.
func TestLoadStdDev(t *testing.T) {
	const n = 8
	r, err := New(nodeNames(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	sample := sampleKeys(10000)
	for _, key := range sample {
		counts[r.Lookup(key)]++
	}
	var sq float64
	fair := float64(len(sample)) / n
	for _, c := range counts {
		d := float64(c) - fair
		sq += d * d
	}
	if rel := math.Sqrt(sq/n) / fair; rel > 0.40 {
		t.Errorf("relative load stddev %.2f, want <= 0.40", rel)
	}
}
