// Package ring implements the consistent-hash ring the sharded simulation
// tier routes on: spec content hashes (lowercase-hex SHA-256, see
// internal/service/spec) map to member nodes so that
//
//   - placement is deterministic and total — every key maps to exactly one
//     member of a non-empty ring, independent of the order members were
//     listed in, so two gateways configured with the same member set route
//     identically;
//   - membership changes move few keys — removing one of N members
//     relocates only the keys that member owned (≈ 1/N of them) and never
//     moves a key between surviving members, because a member contributes
//     only its own points to the ring; and
//   - every key has a replica list — the owner followed by the distinct
//     successors in ring order — giving a gateway a deterministic failover
//     sequence when the owner is down.
//
// Each member is hashed onto the ring at VirtualNodes positions ("virtual
// nodes"), which evens out the share of hash space per member; a key is
// owned by the member whose point is the first at or clockwise after the
// key's hash. The point positions depend only on the member name and the
// virtual-node index, never on the rest of the membership.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultVirtualNodes is the per-member point count used when a Ring is
// built with a non-positive vnodes argument. 128 keeps the per-member share
// of hash space within a few percent of 1/N.
const DefaultVirtualNodes = 128

// ErrNoNodes reports an attempt to build a ring with no members.
var ErrNoNodes = errors.New("ring: need at least one node")

// Ring is an immutable consistent-hash ring over a fixed member set. Build
// one with New; all methods are safe for concurrent use.
type Ring struct {
	nodes  []string // sorted member names
	vnodes int
	points []point // sorted by hash position
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash uint64
	node int32 // index into nodes
}

// New builds a ring over the given member names with vnodes virtual nodes
// per member (non-positive means DefaultVirtualNodes). Names must be
// non-empty and distinct; their order does not matter — placement depends
// only on the set.
func New(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, errors.New("ring: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
	}
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		points: make([]point, 0, len(sorted)*vnodes),
	}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: hash64(n + "#" + strconv.Itoa(v)),
				node: int32(i),
			})
		}
	}
	// Ties (astronomically rare 64-bit collisions) break toward the
	// lexicographically smaller member so placement stays deterministic.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// hash64 maps a string to a ring position: the first 8 bytes of its SHA-256,
// big-endian. SHA-256 keeps positions stable across builds and platforms.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// With returns a new ring over this ring's membership plus the named
// members, keeping the virtual-node count. The receiver is unchanged.
// Because a member contributes only its own points — positions derived from
// its name and vnode index, never from the rest of the membership — the
// result is identical to building a fresh ring from the final member set:
// an elastic pool that grows one shard at a time routes exactly like one
// configured with the full set from the start. Adding a member that is
// already present is an error.
func (r *Ring) With(names ...string) (*Ring, error) {
	have := make(map[string]bool, len(r.nodes))
	for _, n := range r.nodes {
		have[n] = true
	}
	merged := append([]string(nil), r.nodes...)
	for _, n := range names {
		if have[n] {
			return nil, fmt.Errorf("ring: node %q already a member", n)
		}
		have[n] = true
		merged = append(merged, n)
	}
	return New(merged, r.vnodes)
}

// Without returns a new ring with the named members removed, keeping the
// virtual-node count. The receiver is unchanged. Removal is minimal-
// movement by construction: only keys the departed members owned relocate
// (to their clockwise successors); keys between surviving members never
// move. Removing a member that is not present, or emptying the ring, is an
// error.
func (r *Ring) Without(names ...string) (*Ring, error) {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		if drop[n] {
			return nil, fmt.Errorf("ring: node %q removed twice", n)
		}
		drop[n] = true
	}
	kept := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if drop[n] {
			delete(drop, n)
			continue
		}
		kept = append(kept, n)
	}
	for n := range drop {
		return nil, fmt.Errorf("ring: node %q is not a member", n)
	}
	if len(kept) == 0 {
		return nil, ErrNoNodes
	}
	return New(kept, r.vnodes)
}

// Contains reports whether name is a member of the ring.
func (r *Ring) Contains(name string) bool {
	i := sort.SearchStrings(r.nodes, name)
	return i < len(r.nodes) && r.nodes[i] == name
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VirtualNodes returns the per-member point count the ring was built with.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Lookup returns the member that owns key: the member whose point is the
// first at or clockwise after the key's hash position.
func (r *Ring) Lookup(key string) string {
	return r.nodes[r.points[r.ownerPoint(hash64(key))].node]
}

// ownerPoint locates the first ring point at or after position h, wrapping
// past the top of the hash space back to the first point.
func (r *Ring) ownerPoint(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Replicas returns the key's failover sequence: the owning member first,
// then the distinct members encountered walking the ring clockwise. It
// returns min(n, Len()) members; n <= 0 means all members.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make([]bool, len(r.nodes))
	start := r.ownerPoint(hash64(key))
	for off := 0; off < len(r.points) && len(out) < n; off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// String renders the membership compactly for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%s; vnodes=%d)", strings.Join(r.nodes, ","), r.vnodes)
}
