package ring

import (
	"fmt"
	"testing"
)

// FuzzRingPlacement checks, for arbitrary keys and memberships, that
// placement is total (every key maps to a member), deterministic (an
// independently rebuilt ring places identically), and that the replica list
// is a duplicate-free member sequence led by the owner.
func FuzzRingPlacement(f *testing.F) {
	f.Add("deadbeef", uint8(3), uint8(16), uint8(2))
	f.Add("", uint8(1), uint8(0), uint8(0))
	f.Add("a0b1c2d3e4f5a6b7c8d9e0f1a2b3c4d5e6f7a8b9c0d1e2f3a4b5c6d7e8f9a0b1", uint8(8), uint8(64), uint8(8))
	f.Add("same", uint8(200), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, key string, nodeCount, vnodes, depth uint8) {
		n := int(nodeCount)%12 + 1
		vn := int(vnodes)%48 + 1
		names := make([]string, n)
		member := make(map[string]bool, n)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
			member[names[i]] = true
		}
		r, err := New(names, vn)
		if err != nil {
			t.Fatalf("New(%d nodes, %d vnodes): %v", n, vn, err)
		}
		owner := r.Lookup(key)
		if !member[owner] {
			t.Fatalf("Lookup(%q) = %q, not a member", key, owner)
		}
		// Rebuild from scratch (reversed input order): placement must agree.
		rev := make([]string, n)
		for i := range names {
			rev[i] = names[n-1-i]
		}
		r2, err := New(rev, vn)
		if err != nil {
			t.Fatal(err)
		}
		if got := r2.Lookup(key); got != owner {
			t.Fatalf("rebuilt ring places %q on %q, first ring on %q", key, got, owner)
		}
		want := int(depth)
		if want <= 0 || want > n {
			want = n
		}
		reps := r.Replicas(key, int(depth))
		if len(reps) != want {
			t.Fatalf("Replicas(%q, %d) returned %d members, want %d", key, depth, len(reps), want)
		}
		if reps[0] != owner {
			t.Fatalf("Replicas[0] = %q, owner %q", reps[0], owner)
		}
		seen := make(map[string]bool)
		for _, name := range reps {
			if !member[name] {
				t.Fatalf("replica %q not a member", name)
			}
			if seen[name] {
				t.Fatalf("replica list repeats %q", name)
			}
			seen[name] = true
		}
	})
}
