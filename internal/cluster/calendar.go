package cluster

import "mrclone/internal/job"

// taskRun is the engine's per-task runtime record: every live copy of the
// task (launch order, stored by value in a pointer-free slice the garbage
// collector never scans) plus the index and cached (finish, seq) key of the
// copy that will finish first. A task appears in the calendar exactly when
// it has at least one active (non-gated) copy; best is -1 while all copies
// are gated.
//
// Keying the calendar by tasks instead of copies keeps the heap size at one
// entry per running task regardless of clone factor and removes the
// lazy-deletion churn of a per-copy heap: when a task completes, its entry
// is popped once and its sibling copies never enter the heap at all.
type taskRun struct {
	task   *job.Task
	owner  *job.Job
	copies []copyRecord

	best       int32 // index of the earliest-finishing active copy; -1 if none
	pos        int32 // index within calendar.a; -1 when not enqueued
	bestFinish int64 // == copies[best].finish while best >= 0
	bestSeq    int64 // == copies[best].seq while best >= 0
}

// calEntry is one calendar slot: the owning task plus an inline copy of its
// best key, so heap comparisons touch only the heap array itself.
type calEntry struct {
	finish int64
	seq    int64
	tr     *taskRun
}

// calendar is a binary min-heap of running tasks ordered by their best
// copy's (finish, seq). It is hand-rolled rather than container/heap to
// keep the completion hot path free of interface dispatch, and supports
// only the operations the engine needs: push, pop-min, peek, and a
// decrease-key fix (a task's best copy only ever improves — copies are
// added, never individually removed — so fixing sifts up exclusively).
type calendar struct {
	a []calEntry
}

// entryBefore reports heap order between two entries.
func entryBefore(x, y calEntry) bool {
	if x.finish != y.finish {
		return x.finish < y.finish
	}
	return x.seq < y.seq
}

// push enqueues a task that just gained its first active copy.
func (c *calendar) push(tr *taskRun) {
	i := len(c.a)
	tr.pos = int32(i)
	c.a = append(c.a, calEntry{finish: tr.bestFinish, seq: tr.bestSeq, tr: tr})
	c.siftUp(i)
}

// peek returns the earliest-finishing task without removing it, or nil.
func (c *calendar) peek() *taskRun {
	if len(c.a) == 0 {
		return nil
	}
	return c.a[0].tr
}

// pop removes and returns the earliest-finishing task.
func (c *calendar) pop() *taskRun {
	top := c.a[0].tr
	last := len(c.a) - 1
	c.a[0] = c.a[last]
	c.a[0].tr.pos = 0
	c.a[last].tr = nil
	c.a = c.a[:last]
	if last > 0 {
		c.siftDown(0)
	}
	top.pos = -1
	return top
}

// decreased restores heap order after tr's best copy improved in place.
func (c *calendar) decreased(tr *taskRun) {
	i := int(tr.pos)
	c.a[i].finish, c.a[i].seq = tr.bestFinish, tr.bestSeq
	c.siftUp(i)
}

func (c *calendar) siftUp(i int) {
	a := c.a
	node := a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryBefore(node, a[parent]) {
			break
		}
		a[i] = a[parent]
		a[i].tr.pos = int32(i)
		i = parent
	}
	a[i] = node
	node.tr.pos = int32(i)
}

func (c *calendar) siftDown(i int) {
	a := c.a
	n := len(a)
	node := a[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && entryBefore(a[r], a[child]) {
			child = r
		}
		if !entryBefore(a[child], node) {
			break
		}
		a[i] = a[child]
		a[i].tr.pos = int32(i)
		i = child
	}
	a[i] = node
	node.tr.pos = int32(i)
}
