package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mrclone/internal/dist"
	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// greedyScheduler is a trivial test scheduler: launch every unscheduled task
// of every alive job in arrival order, one copy each, maps before reduces,
// gating reduces whose map phase is open.
type greedyScheduler struct {
	gateReduces bool // if true, launch reduce tasks gated before maps finish
}

func (g greedyScheduler) Name() string { return "greedy-test" }

func (g greedyScheduler) Schedule(ctx *Context) {
	for _, j := range ctx.AliveJobs() {
		for _, t := range j.UnscheduledTasks(job.PhaseMap) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, false); err != nil {
				panic(err)
			}
		}
		for _, t := range j.UnscheduledTasks(job.PhaseReduce) {
			if ctx.FreeMachines() == 0 {
				return
			}
			gated := !j.MapPhaseDone()
			if gated && !g.gateReduces {
				continue
			}
			if _, err := ctx.Launch(j, t, 1, gated); err != nil {
				panic(err)
			}
		}
	}
}

// cloneScheduler launches `clones` copies of every task (for speedup tests).
type cloneScheduler struct {
	clones int
}

func (c cloneScheduler) Name() string { return "clone-test" }

func (c cloneScheduler) Schedule(ctx *Context) {
	for _, j := range ctx.AliveJobs() {
		for _, t := range j.UnscheduledTasks(job.PhaseMap) {
			n := c.clones
			if n > ctx.FreeMachines() {
				n = ctx.FreeMachines()
			}
			if n == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, n, false); err != nil {
				panic(err)
			}
		}
		if !j.MapPhaseDone() {
			continue
		}
		for _, t := range j.UnscheduledTasks(job.PhaseReduce) {
			n := c.clones
			if n > ctx.FreeMachines() {
				n = ctx.FreeMachines()
			}
			if n == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, n, false); err != nil {
				panic(err)
			}
		}
	}
}

func det(t *testing.T, v float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func simpleSpec(t *testing.T, id int, arrival int64, maps, reduces int, mDur, rDur float64) job.Spec {
	t.Helper()
	s := job.Spec{
		ID:       id,
		Arrival:  arrival,
		Weight:   1,
		MapTasks: maps,
	}
	if maps > 0 {
		s.MapDist = det(t, mDur)
	}
	s.ReduceTask = reduces
	if reduces > 0 {
		s.ReduceDist = det(t, rDur)
	}
	return s
}

func mustRun(t *testing.T, cfg Config, sched Scheduler, specs []job.Spec) *Result {
	t.Helper()
	eng, err := New(cfg, sched, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleTaskJobFlowtime(t *testing.T) {
	// One map task of duration 10, one machine: flowtime must be exactly 10.
	res := mustRun(t, Config{Machines: 1, Seed: 1}, greedyScheduler{},
		[]job.Spec{simpleSpec(t, 0, 0, 1, 0, 10, 0)})
	if got := res.Jobs[0].Flowtime; got != 10 {
		t.Fatalf("flowtime = %d, want 10", got)
	}
	if res.FinishedJobs != 1 || res.ArrivedJobs != 1 {
		t.Fatalf("bad counts: %+v", res)
	}
}

func TestMapReducePrecedence(t *testing.T) {
	// 2 maps (10s) + 1 reduce (5s) on plenty of machines:
	// maps run [0,10), reduce runs [10,15) => flowtime 15.
	res := mustRun(t, Config{Machines: 10, Seed: 1}, greedyScheduler{},
		[]job.Spec{simpleSpec(t, 0, 0, 2, 1, 10, 5)})
	if got := res.Jobs[0].Flowtime; got != 15 {
		t.Fatalf("flowtime = %d, want 15 (maps then reduce)", got)
	}
}

func TestGatedReduceDoesNotProgressEarly(t *testing.T) {
	// With gated launching the reduce occupies a machine from slot 0 but its
	// countdown starts when maps finish: flowtime is still 15, and the busy
	// integral is higher than without gating.
	gated := mustRun(t, Config{Machines: 10, Seed: 1}, greedyScheduler{gateReduces: true},
		[]job.Spec{simpleSpec(t, 0, 0, 2, 1, 10, 5)})
	if got := gated.Jobs[0].Flowtime; got != 15 {
		t.Fatalf("gated flowtime = %d, want 15", got)
	}
	ungated := mustRun(t, Config{Machines: 10, Seed: 1}, greedyScheduler{},
		[]job.Spec{simpleSpec(t, 0, 0, 2, 1, 10, 5)})
	if gated.MachineSlots <= ungated.MachineSlots {
		t.Fatalf("gated busy=%d should exceed ungated busy=%d (idle occupied machine)",
			gated.MachineSlots, ungated.MachineSlots)
	}
}

func TestUngatedEarlyReduceLaunchFails(t *testing.T) {
	specs := []job.Spec{simpleSpec(t, 0, 0, 1, 1, 10, 5)}
	eng, err := New(Config{Machines: 4, Seed: 1}, schedulerFunc(func(ctx *Context) {
		j := ctx.AliveJobs()[0]
		rt := j.UnscheduledTasks(job.PhaseReduce)
		if len(rt) > 0 && !j.MapPhaseDone() {
			if _, err := ctx.Launch(j, rt[0], 1, false); !errors.Is(err, ErrGateViolated) {
				t.Errorf("want ErrGateViolated, got %v", err)
			}
		}
		for _, mt := range j.UnscheduledTasks(job.PhaseMap) {
			if _, err := ctx.Launch(j, mt, 1, false); err != nil {
				t.Error(err)
			}
		}
		if j.MapPhaseDone() {
			for _, rt := range j.UnscheduledTasks(job.PhaseReduce) {
				if _, err := ctx.Launch(j, rt, 1, false); err != nil {
					t.Error(err)
				}
			}
		}
	}), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// schedulerFunc adapts a func to Scheduler for tests.
type schedulerFunc func(*Context)

func (schedulerFunc) Name() string            { return "func-test" }
func (f schedulerFunc) Schedule(ctx *Context) { f(ctx) }

func TestArrivalRespected(t *testing.T) {
	// Job arrives at slot 100; with idle machines it must not start earlier.
	res := mustRun(t, Config{Machines: 5, Seed: 1}, greedyScheduler{},
		[]job.Spec{simpleSpec(t, 0, 100, 1, 0, 10, 0)})
	if got := res.Jobs[0].Finish; got != 110 {
		t.Fatalf("finish = %d, want 110", got)
	}
	if got := res.Jobs[0].Flowtime; got != 10 {
		t.Fatalf("flowtime = %d, want 10", got)
	}
}

func TestMachineCapacityIsRespected(t *testing.T) {
	// 5 unit-duration tasks, 2 machines: makespan must be ceil(5/2)=3 slots.
	res := mustRun(t, Config{Machines: 2, Seed: 1}, greedyScheduler{},
		[]job.Spec{simpleSpec(t, 0, 0, 5, 0, 1, 0)})
	if got := res.Jobs[0].Flowtime; got != 3 {
		t.Fatalf("flowtime = %d, want 3", got)
	}
}

func TestLaunchOverCapacityErrors(t *testing.T) {
	specs := []job.Spec{simpleSpec(t, 0, 0, 1, 0, 5, 0)}
	eng, err := New(Config{Machines: 2, Seed: 1}, schedulerFunc(func(ctx *Context) {
		j := ctx.AliveJobs()[0]
		ts := j.UnscheduledTasks(job.PhaseMap)
		if len(ts) == 0 {
			return
		}
		if _, err := ctx.Launch(j, ts[0], 3, false); !errors.Is(err, ErrNoFreeSlots) {
			t.Errorf("want ErrNoFreeSlots, got %v", err)
		}
		if _, err := ctx.Launch(j, ts[0], 2, false); err != nil {
			t.Error(err)
		}
	}), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCloningKillsSiblingsAndFreesMachines(t *testing.T) {
	// Heavy-tail task with 4 clones: when the earliest finishes, siblings die
	// and machines free. With deterministic durations all 4 finish together,
	// so use Pareto. We only verify accounting invariants here.
	p, err := dist.NewPareto(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := job.Spec{ID: 0, Weight: 1, MapTasks: 3, MapDist: p}
	res := mustRun(t, Config{Machines: 12, Seed: 7}, cloneScheduler{clones: 4}, []job.Spec{spec})
	if res.TotalCopies != 12 {
		t.Fatalf("total copies = %d, want 12", res.TotalCopies)
	}
	if res.CloneCopies != 9 {
		t.Fatalf("clone copies = %d, want 9", res.CloneCopies)
	}
	if res.WastedCopyWrk <= 0 {
		t.Fatal("expected nonzero wasted workload from killed clones")
	}
}

func TestCloningReducesExpectedFlowtime(t *testing.T) {
	// For Pareto tasks, running 4 clones must beat 1 copy on average
	// (alpha=2 gives s(4) = 7/4). Compare mean flowtime across many seeds.
	p, err := dist.NewPareto(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	meanFlow := func(clones int) float64 {
		var sum float64
		const runs = 60
		for seed := int64(0); seed < runs; seed++ {
			spec := job.Spec{ID: 0, Weight: 1, MapTasks: 1, MapDist: p}
			res := mustRun(t, Config{Machines: 4, Seed: seed}, cloneScheduler{clones: clones},
				[]job.Spec{spec})
			sum += float64(res.Jobs[0].Flowtime)
		}
		return sum / runs
	}
	f1, f4 := meanFlow(1), meanFlow(4)
	if f4 >= f1 {
		t.Fatalf("cloning did not help: 1 copy %.2f, 4 copies %.2f", f1, f4)
	}
	// The theoretical ratio is s(4) = 7/4 = 1.75; allow generous MC slack.
	if ratio := f1 / f4; ratio < 1.2 {
		t.Fatalf("speedup ratio %.2f, want > 1.2", ratio)
	}
}

func TestSpeedAugmentation(t *testing.T) {
	// At speed 2, a workload-10 task takes ceil(10/2)=5 slots.
	res := mustRun(t, Config{Machines: 1, Speed: 2, Seed: 1}, greedyScheduler{},
		[]job.Spec{simpleSpec(t, 0, 0, 1, 0, 10, 0)})
	if got := res.Jobs[0].Flowtime; got != 5 {
		t.Fatalf("flowtime at speed 2 = %d, want 5", got)
	}
}

func TestDeterminism(t *testing.T) {
	p, err := dist.NewPareto(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 4, MapDist: p, ReduceTask: 2, ReduceDist: p},
		{ID: 1, Arrival: 3, Weight: 2, MapTasks: 2, MapDist: p},
	}
	a := mustRun(t, Config{Machines: 3, Seed: 99}, cloneScheduler{clones: 2}, specs)
	b := mustRun(t, Config{Machines: 3, Seed: 99}, cloneScheduler{clones: 2}, specs)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job count mismatch")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	if a.Slots != b.Slots || a.TotalCopies != b.TotalCopies {
		t.Fatal("aggregate results differ across identical seeds")
	}
}

func TestConfigValidation(t *testing.T) {
	specs := []job.Spec{simpleSpec(t, 0, 0, 1, 0, 1, 0)}
	if _, err := New(Config{Machines: 0}, greedyScheduler{}, specs); !errors.Is(err, ErrNoMachines) {
		t.Errorf("machines=0: %v", err)
	}
	if _, err := New(Config{Machines: 1}, nil, specs); !errors.Is(err, ErrNoScheduler) {
		t.Errorf("nil scheduler: %v", err)
	}
	if _, err := New(Config{Machines: 1, Speed: -1}, greedyScheduler{}, specs); err == nil {
		t.Error("negative speed accepted")
	}
	bad := []job.Spec{{ID: 0, Weight: 0, MapTasks: 1}}
	if _, err := New(Config{Machines: 1}, greedyScheduler{}, bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestMaxSlotsGuard(t *testing.T) {
	// A scheduler that never launches anything trips the overflow guard.
	specs := []job.Spec{simpleSpec(t, 0, 0, 1, 0, 1, 0)}
	eng, err := New(Config{Machines: 1, MaxSlots: 100}, schedulerFunc(func(*Context) {}), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); !errors.Is(err, ErrSlotOverflow) {
		t.Fatalf("want ErrSlotOverflow, got %v", err)
	}
}

func TestProgressReports(t *testing.T) {
	specs := []job.Spec{simpleSpec(t, 0, 0, 1, 0, 10, 0)}
	var sawProgress bool
	eng, err := New(Config{Machines: 2, Seed: 1}, schedulerFunc(func(ctx *Context) {
		j := ctx.AliveJobs()[0]
		for _, mt := range j.UnscheduledTasks(job.PhaseMap) {
			if _, err := ctx.Launch(j, mt, 1, false); err != nil {
				t.Error(err)
			}
		}
		for _, mt := range j.RunningTasks(job.PhaseMap) {
			ps := ctx.Progress(mt)
			if len(ps) != 1 {
				t.Errorf("progress count = %d, want 1", len(ps))
				continue
			}
			p := ps[0]
			wantElapsed := ctx.Now() // launched at slot 0
			if p.Elapsed != wantElapsed {
				t.Errorf("elapsed = %d, want %d", p.Elapsed, wantElapsed)
			}
			wantFrac := float64(wantElapsed) / 10
			if p.Fraction != wantFrac {
				t.Errorf("fraction = %v, want %v", p.Fraction, wantFrac)
			}
			sawProgress = true
		}
	}), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawProgress {
		t.Fatal("never observed progress")
	}
}

func TestFlowtimeLowerBoundProperty(t *testing.T) {
	// Property: with deterministic durations, every job's flowtime is at
	// least mapDur + reduceDur (critical path) regardless of cluster size.
	f := func(rawM, rawR uint8, machines uint8) bool {
		maps := int(rawM%5) + 1
		reduces := int(rawR % 4)
		m := int(machines%20) + 1
		mDur, rDur := 7.0, 4.0
		spec := simpleSpec(t, 0, 0, maps, reduces, mDur, rDur)
		res := mustRun(t, Config{Machines: m, Seed: int64(machines)}, greedyScheduler{},
			[]job.Spec{spec})
		want := int64(mDur)
		if reduces > 0 {
			want += int64(rDur)
		}
		return res.Jobs[0].Flowtime >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestResultSlotsIsLastFinish pins the Result.Slots contract: the slot at
// which the LAST job finished — not the slot counter's final value, which
// the loops advance past the completion (and by different amounts, so the
// old `Slots = e.slot` reported loop-dependent, off-by-one-or-more values).
func TestResultSlotsIsLastFinish(t *testing.T) {
	specs := []job.Spec{
		simpleSpec(t, 0, 0, 1, 0, 5, 0),
		simpleSpec(t, 1, 100, 1, 0, 10, 0), // idle gap, then finishes at 110
	}
	for _, loop := range []LoopMode{LoopNaive, LoopSlots, LoopAuto} {
		res := mustRun(t, Config{Machines: 1, Seed: 1, Loop: loop}, greedyScheduler{}, specs)
		var finMax int64
		for _, j := range res.Jobs {
			if j.Finish > finMax {
				finMax = j.Finish
			}
		}
		if finMax != 110 {
			t.Fatalf("loop %v: last finish = %d, want 110", loop, finMax)
		}
		if res.Slots != finMax {
			t.Errorf("loop %v: Slots = %d, want last finish slot %d", loop, res.Slots, finMax)
		}
	}
}

// nonFiniteDist passes Spec validation (finite moments) but samples NaN
// after a configurable number of good draws.
type nonFiniteDist struct {
	good int // finite samples to produce before the bad one
	bad  float64
}

func (d *nonFiniteDist) Sample(*rng.Source) float64 {
	if d.good > 0 {
		d.good--
		return 3
	}
	return d.bad
}
func (d *nonFiniteDist) Mean() float64   { return 3 }
func (d *nonFiniteDist) StdDev() float64 { return 0 }

func TestNonFiniteWorkloadFailsRun(t *testing.T) {
	// The scheduler deliberately swallows Launch errors: the engine must
	// still fail the run (the first fatal error is recorded and surfaced
	// from Run even when the scheduler ignores it).
	swallowing := schedulerFunc(func(ctx *Context) {
		for _, j := range ctx.AliveJobs() {
			for _, mt := range j.UnscheduledTasks(job.PhaseMap) {
				if ctx.FreeMachines() == 0 {
					return
				}
				_, _ = ctx.Launch(j, mt, 1, false)
			}
		}
	})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, loop := range []LoopMode{LoopNaive, LoopAuto} {
			spec := job.Spec{ID: 0, Weight: 1, MapTasks: 2,
				MapDist: &nonFiniteDist{good: 1, bad: bad}}
			eng, err := New(Config{Machines: 4, Seed: 1, Loop: loop}, swallowing,
				[]job.Spec{spec})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(); !errors.Is(err, ErrNonFiniteWorkload) {
				t.Errorf("bad=%v loop=%v: want ErrNonFiniteWorkload, got %v", bad, loop, err)
			}
		}
	}
}

// gatedOnlyScheduler launches every reduce task gated and never launches a
// map task, starving the run: the gate can never open. It opts into both
// event-driven execution and gated launches so the event loop exercises its
// starvation detection rather than being bypassed.
type gatedOnlyScheduler struct{}

func (gatedOnlyScheduler) Name() string              { return "gated-only-test" }
func (gatedOnlyScheduler) EventDriven() bool         { return true }
func (gatedOnlyScheduler) LaunchesGatedCopies() bool { return true }
func (gatedOnlyScheduler) Schedule(ctx *Context) {
	for _, j := range ctx.AliveJobs() {
		for _, t := range j.UnscheduledTasks(job.PhaseReduce) {
			if ctx.FreeMachines() == 0 {
				return
			}
			if _, err := ctx.Launch(j, t, 1, !j.MapPhaseDone()); err != nil {
				panic(err)
			}
		}
	}
}

// TestGatedStarvationDetectedImmediately pins the starvation path: when only
// gated copies remain (no future arrival, nothing in the calendar), every
// loop must report ErrSlotOverflow right away instead of stepping silently
// through the MaxSlots horizon. The default 50M-slot horizon doubles as the
// proof of immediacy — walking it slot by slot would time the test out.
func TestGatedStarvationDetectedImmediately(t *testing.T) {
	specs := []job.Spec{simpleSpec(t, 0, 0, 1, 1, 10, 5)}
	for _, loop := range []LoopMode{LoopSlots, LoopAuto} {
		eng, err := New(Config{Machines: 2, Seed: 1, Loop: loop}, gatedOnlyScheduler{}, specs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); !errors.Is(err, ErrSlotOverflow) {
			t.Errorf("loop %v: want ErrSlotOverflow, got %v", loop, err)
		}
	}
}

func TestMultiJobInterleaving(t *testing.T) {
	// Two jobs on one machine, arrival order A then B: greedy runs A first.
	specs := []job.Spec{
		simpleSpec(t, 0, 0, 1, 0, 5, 0),
		simpleSpec(t, 1, 0, 1, 0, 5, 0),
	}
	res := mustRun(t, Config{Machines: 1, Seed: 1}, greedyScheduler{}, specs)
	if res.Jobs[0].Flowtime != 5 {
		t.Errorf("job A flowtime = %d, want 5", res.Jobs[0].Flowtime)
	}
	if res.Jobs[1].Flowtime != 10 {
		t.Errorf("job B flowtime = %d, want 10", res.Jobs[1].Flowtime)
	}
}
