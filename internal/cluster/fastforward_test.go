package cluster_test

// Equivalence proof for the idle-slot fast-forward: for every registered
// scheduler — event-driven (SRPTMS+C, SCA, Fair, SRPT, Offline, Dolly) and
// time-driven (Mantri, LATE) alike — the accelerated engine must produce a
// Result identical field-for-field (per-job finish slots, busy integral,
// copy counts, final slot) to the naive slot-by-slot loop on a mixed
// map/reduce trace with staggered arrivals.

import (
	"reflect"
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// mixedTrace builds a small Google-calibrated workload containing both map
// and reduce tasks with staggered arrivals.
func mixedTrace(t *testing.T, jobs int) *trace.Trace {
	t.Helper()
	p := trace.GoogleParams()
	p.Jobs = jobs
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var reduces int
	for _, row := range tr.Rows {
		reduces += row.ReduceTasks
	}
	if reduces == 0 {
		t.Fatal("trace has no reduce tasks; equivalence test needs a mixed workload")
	}
	return tr
}

func runWith(t *testing.T, name string, disableFF bool, machines int, seed int64,
	tr *trace.Trace) *cluster.Result {
	t.Helper()
	s, err := sched.Build(name, sched.Params{
		Epsilon:         0.9,
		DeviationFactor: 3,
		GateReduces:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Machines:           machines,
		Seed:               seed,
		DisableFastForward: disableFF,
	}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFastForwardEquivalence(t *testing.T) {
	tr := mixedTrace(t, 40)
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			naive := runWith(t, name, true, 100, 7, tr)
			fast := runWith(t, name, false, 100, 7, tr)
			if naive.Slots != fast.Slots {
				t.Errorf("final slot differs: naive %d, fast %d", naive.Slots, fast.Slots)
			}
			if naive.MachineSlots != fast.MachineSlots {
				t.Errorf("busy integral differs: naive %d, fast %d",
					naive.MachineSlots, fast.MachineSlots)
			}
			if !reflect.DeepEqual(naive, fast) {
				t.Errorf("results differ:\nnaive: %+v\nfast:  %+v", naive, fast)
			}
		})
	}
}

// TestFastForwardEquivalenceUnderload exercises the regime where the
// fast-forward matters most: a lightly loaded cluster with long stretches
// of empty slots between arrivals.
func TestFastForwardEquivalenceUnderload(t *testing.T) {
	tr := mixedTrace(t, 12)
	for _, name := range []string{"srptms+c", "mantri"} {
		naive := runWith(t, name, true, 2000, 3, tr)
		fast := runWith(t, name, false, 2000, 3, tr)
		if !reflect.DeepEqual(naive, fast) {
			t.Errorf("%s: underloaded results differ", name)
		}
	}
}
