package cluster_test

// Equivalence harness for the engine's three execution loops. For every
// registered scheduler — event-driven (SRPTMS+C, SCA, Fair, SRPT, Offline,
// Dolly) and time-driven (Mantri, LATE) alike — the event calendar
// (LoopAuto), the slot loop with idle fast-forward (LoopSlots), and the
// naive slot-by-slot reference (LoopNaive) must produce Results identical
// field-for-field: per-job finish slots, busy integral, copy counts,
// wasted workload, final slot.
//
// On top of pairwise loop agreement, TestPinnedAggregates pins the absolute
// values these workloads produced before the discrete-event core landed
// (captured from the per-slot engine of the previous revision), so a change
// that breaks all loops identically — or perturbs the sampling stream —
// still fails.

import (
	"reflect"
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// mixedTrace builds a small Google-calibrated workload containing both map
// and reduce tasks with staggered arrivals.
func mixedTrace(t *testing.T, jobs int) *trace.Trace {
	t.Helper()
	p := trace.GoogleParams()
	p.Jobs = jobs
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var reduces int
	for _, row := range tr.Rows {
		reduces += row.ReduceTasks
	}
	if reduces == 0 {
		t.Fatal("trace has no reduce tasks; equivalence test needs a mixed workload")
	}
	return tr
}

func runLoop(t *testing.T, name string, loop cluster.LoopMode, machines int, seed int64,
	tr *trace.Trace) *cluster.Result {
	t.Helper()
	s, err := sched.Build(name, sched.Params{
		Epsilon:         0.9,
		DeviationFactor: 3,
		GateReduces:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Machines: machines,
		Seed:     seed,
		Loop:     loop,
	}, s, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// loopModes is every execution loop, reference first.
var loopModes = []struct {
	name string
	mode cluster.LoopMode
}{
	{"naive", cluster.LoopNaive},
	{"slots", cluster.LoopSlots},
	{"events", cluster.LoopAuto},
}

func TestLoopEquivalence(t *testing.T) {
	tr := mixedTrace(t, 40)
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ref := runLoop(t, name, cluster.LoopNaive, 100, 7, tr)
			for _, lm := range loopModes[1:] {
				got := runLoop(t, name, lm.mode, 100, 7, tr)
				if ref.Slots != got.Slots {
					t.Errorf("%s: final slot differs: naive %d, %s %d",
						lm.name, ref.Slots, lm.name, got.Slots)
				}
				if ref.MachineSlots != got.MachineSlots {
					t.Errorf("%s: busy integral differs: naive %d, %s %d",
						lm.name, ref.MachineSlots, lm.name, got.MachineSlots)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("%s: results differ:\nnaive: %+v\n%s: %+v",
						lm.name, ref, lm.name, got)
				}
			}
		})
	}
}

// TestLoopEquivalenceUnderload exercises the regime where event skipping
// matters most: a lightly loaded cluster with long stretches of empty slots
// between arrivals.
func TestLoopEquivalenceUnderload(t *testing.T) {
	tr := mixedTrace(t, 12)
	for _, name := range []string{"srptms+c", "mantri"} {
		ref := runLoop(t, name, cluster.LoopNaive, 2000, 3, tr)
		for _, lm := range loopModes[1:] {
			got := runLoop(t, name, lm.mode, 2000, 3, tr)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s/%s: underloaded results differ", name, lm.name)
			}
		}
	}
}

// aggregate reduces a Result to the pinned scalar fingerprint.
type aggregate struct {
	finMax int64
	flow   int64
	total  int64
	clone  int64
	busy   int64
	wasted float64
}

func aggregateOf(res *cluster.Result) aggregate {
	a := aggregate{
		total:  res.TotalCopies,
		clone:  res.CloneCopies,
		busy:   res.MachineSlots,
		wasted: res.WastedCopyWrk,
	}
	for _, j := range res.Jobs {
		a.flow += j.Flowtime
		if j.Finish > a.finMax {
			a.finMax = j.Finish
		}
	}
	return a
}

// Pinned aggregates captured from the pre-event-core engine (per-slot loop)
// on mixedTrace(40 jobs), 100 machines, seed 7. Wasted workload is compared
// to 1e-6 absolute: the accumulation order of killed-copy remainders is part
// of the contract.
var pinnedAggregates = map[string]aggregate{
	"dolly":    {finMax: 45515, flow: 69501, total: 1662, clone: 99, busy: 1835154, wasted: 3950.003775},
	"fair":     {finMax: 45870, flow: 63065, total: 1563, clone: 0, busy: 1830414, wasted: 0.000000},
	"late":     {finMax: 42277, flow: 52716, total: 1675, clone: 112, busy: 1877352, wasted: 82461.147756},
	"mantri":   {finMax: 45720, flow: 68080, total: 1572, clone: 9, busy: 1820851, wasted: 17679.189042},
	"offline":  {finMax: 45902, flow: 65519, total: 1563, clone: 0, busy: 2809802, wasted: 0.000000},
	"sca":      {finMax: 45650, flow: 61157, total: 2855, clone: 1292, busy: 2113633, wasted: 175854.464956},
	"srpt":     {finMax: 45902, flow: 63232, total: 1563, clone: 0, busy: 1824515, wasted: 0.000000},
	"srptms+c": {finMax: 46594, flow: 57034, total: 2763, clone: 1200, busy: 2053334, wasted: 118409.364751},
}

// Same capture on the underloaded workload: mixedTrace(12 jobs), 2000
// machines, seed 3.
var pinnedUnderload = map[string]aggregate{
	"srptms+c": {finMax: 33975, flow: 11322, total: 872, clone: 763, busy: 694920, wasted: 350189.276569},
	"mantri":   {finMax: 36441, flow: 21259, total: 109, clone: 0, busy: 126522, wasted: 0.000000},
}

func assertAggregate(t *testing.T, name string, got, want aggregate) {
	t.Helper()
	gw, ww := got.wasted, want.wasted
	got.wasted, want.wasted = 0, 0
	if got != want {
		t.Errorf("%s: aggregate drifted from pinned capture:\ngot  %+v\nwant %+v", name, got, want)
	}
	if d := gw - ww; d > 1e-6 || d < -1e-6 {
		t.Errorf("%s: wasted workload drifted: got %.6f, want %.6f", name, gw, ww)
	}
}

// TestPinnedAggregates asserts that the production loop still reproduces the
// exact aggregates of the pre-event-core engine. A deliberate
// semantics-changing commit must re-pin these tables (the failure message
// prints the new values); anything else that trips this test has changed
// simulation results and is a bug.
func TestPinnedAggregates(t *testing.T) {
	tr := mixedTrace(t, 40)
	for _, name := range sched.Names() {
		want, ok := pinnedAggregates[name]
		if !ok {
			t.Errorf("%s: no pinned aggregate; capture one for new schedulers", name)
			continue
		}
		got := aggregateOf(runLoop(t, name, cluster.LoopAuto, 100, 7, tr))
		assertAggregate(t, name, got, want)
	}
	tr12 := mixedTrace(t, 12)
	for name, want := range pinnedUnderload {
		got := aggregateOf(runLoop(t, name, cluster.LoopAuto, 2000, 3, tr12))
		assertAggregate(t, "underload/"+name, got, want)
	}
}
