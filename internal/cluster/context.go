package cluster

import (
	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// Context is the per-slot view a Scheduler receives. It exposes exactly the
// information the paper's model allows: alive jobs with their (E, sigma)
// workload statistics and task states, the free-machine count, and — for
// detection-based baselines such as Mantri — per-copy progress fractions as
// a progress-reporting MapReduce system would surface them. Ground-truth
// sampled durations are never exposed.
//
// The Context (and every slice it returns) is only valid for the duration of
// the Schedule call it was passed to; schedulers must not retain either
// across invocations.
type Context struct {
	engine *Engine
}

// Now returns the current time slot l.
func (c *Context) Now() int64 { return c.engine.slot }

// Machines returns M, the cluster size.
func (c *Context) Machines() int { return c.engine.cfg.Machines }

// FreeMachines returns the number of machines available this slot.
func (c *Context) FreeMachines() int { return c.engine.free }

// AliveJobs returns the jobs that have arrived and not finished, in arrival
// order. The returned slice is scratch reused by the next AliveJobs call —
// callers may reorder or filter it in place but must not retain it past the
// Schedule invocation; the *job.Job values are shared with the engine and
// must not be mutated except through Launch.
func (c *Context) AliveJobs() []*job.Job {
	e := c.engine
	out := e.aliveScratch[:0]
	if cap(out) < e.aliveCount {
		out = make([]*job.Job, 0, 2*e.aliveCount+8)
	}
	for _, j := range e.alive {
		if j != nil {
			out = append(out, j)
		}
	}
	e.aliveScratch = out
	return out
}

// Launch starts n copies of task t of job j this slot. Launching a reduce
// task before the job's map phase has completed requires gated=true: the
// copies occupy machines immediately but begin progress only when the map
// phase finishes (the paper's constraint 1g). It returns the number of
// copies actually launched.
func (c *Context) Launch(j *job.Job, t *job.Task, n int, gated bool) (int, error) {
	return c.engine.launch(j, t, n, gated)
}

// Rand returns a deterministic random stream for scheduler tie-breaking
// (for example, "choose one unscheduled task at random"). Accessing the
// stream marks the slot as randomized, which disables the engine's
// idle-slot acceleration for the slot: skipping invocations that consume
// randomness would shift every later draw. Schedulers must obtain the
// stream through this method each slot rather than caching it.
func (c *Context) Rand() *rng.Source {
	c.engine.randUsed = true
	return c.engine.schedRand
}

// CopyProgress describes one live copy of a task as a progress-reporting
// execution layer would: how long it has been running and what fraction of
// its work is complete. Gated copies report zero progress.
type CopyProgress struct {
	Elapsed  int64   // slots since the countdown started
	Fraction float64 // completed fraction in [0, 1)
	Gated    bool
}

// Progress returns progress reports for the live copies of t, oldest first.
// It returns nil for tasks with no live copies.
func (c *Context) Progress(t *job.Task) []CopyProgress {
	tr, _ := t.Runtime.(*taskRun)
	if tr == nil || len(tr.copies) == 0 {
		return nil
	}
	out := make([]CopyProgress, 0, len(tr.copies))
	for _, cp := range tr.copies {
		if cp.gated {
			out = append(out, CopyProgress{Gated: true})
			continue
		}
		elapsed := c.engine.slot - cp.started
		total := float64(cp.finish - cp.started)
		frac := 0.0
		if total > 0 {
			frac = float64(elapsed) / total
		}
		if frac > 1 {
			frac = 1
		}
		out = append(out, CopyProgress{Elapsed: elapsed, Fraction: frac})
	}
	return out
}

// BestProgress returns, without allocating, the progress report of the live
// copy of t with the smallest progress-based remaining-time estimate
// elapsed*(1-f)/f — the copy expected to finish first. Copies with zero
// reported progress are returned only when no copy has made progress. ok is
// false when t has no observable live copy.
func (c *Context) BestProgress(t *job.Task) (best CopyProgress, ok bool) {
	tr, _ := t.Runtime.(*taskRun)
	if tr == nil {
		return CopyProgress{}, false
	}
	bestRem := 0.0
	for _, cp := range tr.copies {
		if cp.gated {
			continue
		}
		elapsed := c.engine.slot - cp.started
		total := float64(cp.finish - cp.started)
		frac := 0.0
		if total > 0 {
			frac = float64(elapsed) / total
		}
		if frac > 1 {
			frac = 1
		}
		p := CopyProgress{Elapsed: elapsed, Fraction: frac}
		switch {
		case !ok:
			best, ok = p, true
			if frac > 0 {
				bestRem = float64(elapsed) * (1 - frac) / frac
			}
		case frac > 0:
			rem := float64(elapsed) * (1 - frac) / frac
			if best.Fraction == 0 || rem < bestRem {
				best, bestRem = p, rem
			}
		}
	}
	return best, ok
}

// Speed returns the configured machine speed (resource augmentation factor).
func (c *Context) Speed() float64 { return c.engine.cfg.Speed }
