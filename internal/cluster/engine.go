// Package cluster implements the time-slotted MapReduce cluster simulator of
// Section III of Xu & Lau (ICDCS 2015): M identical unit-speed machines, one
// task copy per machine per slot, Map→Reduce precedence within each job, and
// task cloning where a task completes as soon as its earliest copy does.
//
// Cloning speedup is emergent: every copy draws an independent workload from
// the task's duration distribution and the task takes the minimum, exactly as
// in the paper's trace-driven evaluation ("the workload for this clone is
// just drawn independently from the estimated distribution").
//
// # Execution loops
//
// The engine has two execution loops over the same event machinery (a
// priority-heap calendar of copy completions plus an arrival cursor):
//
//   - The event loop (EventDriven schedulers, the default) advances directly
//     from event to event. Between an arrival and the next completion the
//     observable state cannot change, so the scheduler is invoked only when
//     an event just fired or launchable unscheduled work remains; quiet
//     stretches cost O(1) regardless of length.
//   - The slot loop (Mantri, LATE, and any scheduler with time-based
//     triggers) steps slot by slot so progress-polling rules observe every
//     tick, with the idle-slot fast-forward of earlier revisions jumping
//     stretches where the scheduler provably cannot act.
//
// Both loops produce results slot-for-slot identical to the naive
// slot-by-slot reference loop (Config.Loop = LoopNaive); the equivalence
// harness in equivalence_test.go pins this for every registered scheduler.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// Scheduler is invoked once per time slot to assign free machines to task
// copies. Implementations live in internal/sched/...
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Schedule may call ctx.Launch until ctx.FreeMachines() reaches zero.
	Schedule(ctx *Context)
}

// EventDriven marks schedulers whose Schedule is a pure function of the
// observable cluster state — alive jobs' task states, free-machine count,
// cluster size — so their decisions can only change when a completion or an
// arrival changes that state. The engine runs such schedulers on the event
// calendar: slots between events are never materialized, and the scheduler
// is not invoked at all while no alive job has an unscheduled task it could
// launch (see GatedLauncher for the one exception).
//
// Implementations therefore promise, in addition to state-purity:
//
//   - Schedule launches copies of *unscheduled* tasks only (every scheduler
//     in internal/sched does: speculative backups in Mantri/LATE are the
//     counterexample, and those schedulers are not event-driven);
//   - Schedule draws from ctx.Rand() only on invocations that launch at
//     least one copy (randomness is used to pick among launch candidates).
//
// Schedulers with time-based triggers — polling cadences keyed on Now(),
// progress-age thresholds as in Mantri or LATE, or any internal mutable
// state — must NOT implement this interface (or must return false): they can
// legitimately launch a copy on a slot where nothing else happened.
type EventDriven interface {
	// EventDriven reports whether event-calendar execution is safe.
	EventDriven() bool
}

// GatedLauncher marks schedulers that may launch gated reduce copies —
// copies of reduce tasks whose job's map phase has not completed (the
// paper's constraint 1g, used by the offline Algorithm 1). The event loop
// counts unscheduled reduce tasks behind a closed map gate as launchable
// work only for schedulers implementing this interface; all others are
// skipped while only gated work remains.
type GatedLauncher interface {
	// LaunchesGatedCopies reports whether Schedule may gate-launch reduces.
	LaunchesGatedCopies() bool
}

// LoopMode selects the engine's execution loop.
type LoopMode int

const (
	// LoopAuto (the default) runs EventDriven schedulers on the event
	// calendar and everything else on the slot loop with the idle-slot
	// fast-forward.
	LoopAuto LoopMode = iota
	// LoopSlots forces slot stepping with the idle-slot fast-forward, even
	// for EventDriven schedulers. Used by the equivalence tests.
	LoopSlots
	// LoopNaive forces the naive slot-by-slot reference loop with no
	// acceleration at all.
	LoopNaive
)

// String implements fmt.Stringer.
func (m LoopMode) String() string {
	switch m {
	case LoopAuto:
		return "auto"
	case LoopSlots:
		return "slots"
	case LoopNaive:
		return "naive"
	default:
		return fmt.Sprintf("LoopMode(%d)", int(m))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Machines is M, the number of machines in the cluster. Required > 0.
	Machines int
	// Speed is the machine speed for resource-augmentation experiments
	// (Definition 1). A copy with workload p takes ceil(p/Speed) slots.
	// Zero means 1.0 (unit speed).
	Speed float64
	// MaxSlots aborts a run that exceeds this many slots (safety net against
	// scheduler starvation bugs). Zero means a generous default.
	MaxSlots int64
	// Seed drives all stochastic choices (copy workloads, scheduler
	// tie-breaking). Runs with equal seeds and schedulers are identical.
	Seed int64
	// Loop selects the execution loop; LoopAuto is correct for production
	// runs. The slower modes exist so tests and validation runs can compare
	// the loops pairwise.
	Loop LoopMode
	// DisableFastForward is the pre-LoopMode spelling of Loop = LoopNaive,
	// honored when Loop is LoopAuto.
	//
	// Deprecated: set Loop instead.
	DisableFastForward bool
}

const defaultMaxSlots = 50_000_000

// maxMaxSlots bounds Config.MaxSlots so slot arithmetic (finish = slot +
// duration, with duration clamped to MaxSlots+1) cannot overflow int64.
const maxMaxSlots = int64(1) << 61

// Errors reported by the engine.
var (
	ErrNoMachines   = errors.New("cluster: config needs at least one machine")
	ErrNoScheduler  = errors.New("cluster: nil scheduler")
	ErrSlotOverflow = errors.New("cluster: exceeded MaxSlots without finishing all jobs")
	ErrNoFreeSlots  = errors.New("cluster: launch exceeds free machines")
	ErrGateViolated = errors.New("cluster: reduce copy launched before map phase done without gating")
	// ErrNonFiniteWorkload reports a duration distribution that produced a
	// NaN or infinite sample. Converting such a value to slots would be
	// platform-defined (out-of-range float→int conversion), so the engine
	// fails the run instead of guessing.
	ErrNonFiniteWorkload = errors.New("cluster: duration distribution produced a non-finite workload")
)

// copyRecord is one running (or gated) copy of a task occupying a machine.
// It is a pointer-free value stored inside its taskRun's copies slice (the
// owning task and job live on the taskRun), so the copy arena is invisible
// to the garbage collector's scan and write-barrier machinery.
type copyRecord struct {
	seq      int64 // launch sequence, for deterministic ordering
	workload float64
	finish   int64 // completion slot; -1 while gated
	started  int64 // slot at which the countdown began (-1 while gated)
	launched int64 // slot at which the copy occupied its machine
	gated    bool  // waiting for the owner's map phase to finish
}

// gatedRef locates one gated copy awaiting its job's map gate: the copy at
// tr.copies[idx]. Indices stay valid across copies-slice growth, unlike
// element pointers.
type gatedRef struct {
	tr  *taskRun
	idx int32
}

// JobRecord is the per-job outcome of a run.
type JobRecord struct {
	ID          int
	Weight      float64
	Arrival     int64
	Finish      int64
	Flowtime    int64
	Tasks       int
	TotalCopies int // copies ever launched, including clones
}

// Result summarizes a completed simulation.
type Result struct {
	Scheduler     string
	Machines      int
	Speed         float64
	Slots         int64 // slot at which the last job finished (0 if no jobs)
	Jobs          []JobRecord
	TotalCopies   int64 // all copies launched
	CloneCopies   int64 // copies beyond the first per task
	MachineSlots  int64 // busy machine-slots consumed (occupancy integral)
	ArrivedJobs   int
	FinishedJobs  int
	WastedCopyWrk float64 // workload of killed copies (cloning overhead)
}

// Engine runs one simulation.
type Engine struct {
	cfg           Config
	sched         Scheduler
	eventDriven   bool // sched implements EventDriven and opted in
	gatedLaunches bool // sched implements GatedLauncher and opted in
	useEvents     bool // resolved loop: event calendar vs slot stepping

	slot    int64
	free    int
	seq     int64
	arrived int

	pending     []job.Spec // sorted by arrival; consumed via nextPending
	nextPending int        // cursor into pending: first spec not yet admitted
	jobs        []*job.Job // all materialized jobs, arrival order

	// alive holds arrived-and-unfinished jobs in arrival order. Retired jobs
	// leave nil holes (O(1) removal via alivePos); the slice is compacted
	// once holes outnumber live entries, so per-retire cost is amortized
	// O(1) while iteration order stays arrival order.
	alive      []*job.Job
	alivePos   map[*job.Job]int // index of each live job within alive
	aliveCount int

	cal       calendar
	gatedJobs map[*job.Job][]gatedRef // gated reduce copies per job

	// Launchable-work counters: unscheduled tasks across alive jobs, split
	// by what the gate allows. The event loop skips scheduler invocations
	// while every counter relevant to the scheduler is zero — by the
	// EventDriven contract such an invocation could neither launch nor draw
	// randomness.
	unschedMap   int // unscheduled map tasks
	unschedOpen  int // unscheduled reduce tasks with the map gate open
	unschedGated int // unscheduled reduce tasks behind a closed map gate

	durations *rng.Source // stream for copy workload sampling
	schedRand *rng.Source // stream handed to the scheduler
	randUsed  bool        // scheduler touched schedRand this slot

	ctx Context // reused scheduler view (avoids a per-slot allocation)
	err error   // first fatal error raised inside a scheduler callback

	// Scratch and pooling for the hot paths: the AliveJobs backing array,
	// the batched workload-sample buffer, and a freelist of task-run records
	// (each carrying its grown copies backing) to keep the per-launch path
	// allocation-free in steady state.
	aliveScratch []*job.Job
	sampleBuf    []float64
	runFree      []*taskRun

	busy         int64
	totalCopies  int64
	cloneCopies  int64
	wastedWrk    float64
	finishedJobs int
	lastFinish   int64 // slot of the latest job completion
}

// New prepares an engine over the given job specs. Specs are copied and
// sorted by arrival time; they must each validate.
func New(cfg Config, sched Scheduler, specs []job.Spec) (*Engine, error) {
	if cfg.Machines <= 0 {
		return nil, ErrNoMachines
	}
	if sched == nil {
		return nil, ErrNoScheduler
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if cfg.Speed < 0 || math.IsNaN(cfg.Speed) {
		return nil, fmt.Errorf("cluster: invalid speed %v", cfg.Speed)
	}
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = defaultMaxSlots
	}
	if cfg.MaxSlots < 0 || cfg.MaxSlots > maxMaxSlots {
		return nil, fmt.Errorf("cluster: MaxSlots %d outside (0, 2^61]", cfg.MaxSlots)
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	pending := make([]job.Spec, len(specs))
	copy(pending, specs)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].Arrival < pending[j].Arrival
	})
	root := rng.New(cfg.Seed)
	ed, _ := sched.(EventDriven)
	gl, _ := sched.(GatedLauncher)
	e := &Engine{
		cfg:           cfg,
		sched:         sched,
		eventDriven:   ed != nil && ed.EventDriven(),
		gatedLaunches: gl != nil && gl.LaunchesGatedCopies(),
		free:          cfg.Machines,
		pending:       pending,
		alivePos:      make(map[*job.Job]int),
		gatedJobs:     make(map[*job.Job][]gatedRef),
		durations:     root.Split("durations"),
		schedRand:     root.Split("scheduler"),
	}
	mode := cfg.Loop
	if mode == LoopAuto && cfg.DisableFastForward {
		mode = LoopNaive
	}
	e.useEvents = mode == LoopAuto && e.eventDriven
	e.ctx = Context{engine: e}
	return e, nil
}

// Run executes the simulation to completion and returns the result. The
// execution loop is selected by Config.Loop (see the package comment); every
// loop produces the identical Result for a given scheduler, seed, and spec
// set.
func (e *Engine) Run() (*Result, error) {
	if e.useEvents {
		return e.runEvents()
	}
	mode := e.cfg.Loop
	if mode == LoopAuto && e.cfg.DisableFastForward {
		mode = LoopNaive
	}
	return e.runSlots(mode != LoopNaive)
}

// runEvents is the discrete-event loop: the calendar of copy completions and
// the arrival cursor define the only slots at which the observable state can
// change, and the scheduler is invoked only when it might act — an event
// just fired, or launchable unscheduled work remains from a slot on which it
// launched something. All intervening slots are accounted in bulk.
func (e *Engine) runEvents() (*Result, error) {
	total := len(e.pending)
	for e.finishedJobs < total {
		if e.slot > e.cfg.MaxSlots {
			return nil, fmt.Errorf("%w: slot %d, %d/%d jobs finished",
				ErrSlotOverflow, e.slot, e.finishedJobs, total)
		}
		e.admitArrivals()
		e.processCompletions()
		quiet := true
		if e.free > 0 && e.aliveCount > 0 && e.launchableWork() {
			launchedBefore := e.totalCopies
			e.randUsed = false
			e.sched.Schedule(&e.ctx)
			if e.err != nil {
				return nil, e.err
			}
			quiet = e.totalCopies == launchedBefore && !e.randUsed
		}
		e.busy += int64(e.cfg.Machines - e.free)
		next := e.slot + 1
		if e.finishedJobs < total && quiet {
			if t, ok := e.nextEventSlot(); !ok {
				// No future arrival or completion can ever occur while jobs
				// remain unfinished: the run is starved (for example, only
				// gated copies are left). Jump past MaxSlots so the overflow
				// guard reports it immediately.
				next = e.cfg.MaxSlots + 1
			} else if t > next {
				// Slots next..t-1 are eventless; account their occupancy in
				// bulk (the busy level cannot change between events) and
				// land exactly on the next event.
				e.busy += int64(e.cfg.Machines-e.free) * (t - next)
				next = t
			}
		}
		e.slot = next
	}
	return e.result(), nil
}

// launchableWork reports whether any alive job has an unscheduled task the
// scheduler is permitted to launch right now.
func (e *Engine) launchableWork() bool {
	return e.unschedMap > 0 || e.unschedOpen > 0 ||
		(e.gatedLaunches && e.unschedGated > 0)
}

// runSlots is the slot-stepping loop: the scheduler is invoked on every slot
// with a free machine and an alive job, so time-based rules (progress
// polling, check intervals) observe each tick. With fastForward, slots on
// which provably nothing can happen are skipped in one jump to min(next
// arrival, next completion): a slot is skippable when no machine is free,
// when no job is alive, or when an EventDriven scheduler was invoked but
// launched nothing and drew no randomness — by the EventDriven contract it
// would keep deciding the same until the state changes.
func (e *Engine) runSlots(fastForward bool) (*Result, error) {
	total := len(e.pending)
	for e.finishedJobs < total {
		if e.slot > e.cfg.MaxSlots {
			return nil, fmt.Errorf("%w: slot %d, %d/%d jobs finished",
				ErrSlotOverflow, e.slot, e.finishedJobs, total)
		}
		e.admitArrivals()
		e.processCompletions()
		launchedBefore := e.totalCopies
		e.randUsed = false
		if e.free > 0 && e.aliveCount > 0 {
			e.sched.Schedule(&e.ctx)
			if e.err != nil {
				return nil, e.err
			}
		}
		e.busy += int64(e.cfg.Machines - e.free)
		next := e.slot + 1
		if e.finishedJobs < total && fastForward {
			idle := e.free == 0 || e.aliveCount == 0 ||
				(e.eventDriven && e.totalCopies == launchedBefore && !e.randUsed)
			if idle {
				if t, ok := e.nextEventSlot(); !ok {
					next = e.cfg.MaxSlots + 1 // starved: report via the guard
				} else if t > next {
					e.busy += int64(e.cfg.Machines-e.free) * (t - next)
					next = t
				}
			}
		}
		e.slot = next
	}
	return e.result(), nil
}

// nextEventSlot returns the earliest future slot at which the cluster state
// can change: the next pending arrival or the next live copy completion.
// ok is false when neither exists.
func (e *Engine) nextEventSlot() (int64, bool) {
	t, ok := int64(0), false
	if e.nextPending < len(e.pending) {
		t, ok = e.pending[e.nextPending].Arrival, true
	}
	if tr := e.cal.peek(); tr != nil {
		if f := tr.bestFinish; !ok || f < t {
			t, ok = f, true
		}
	}
	return t, ok
}

// admitArrivals materializes jobs whose arrival slot has come. The cursor
// walk keeps per-arrival work O(1) without re-slicing pending (which would
// pin the backing array's head while shifting the window one spec at a
// time).
func (e *Engine) admitArrivals() {
	for e.nextPending < len(e.pending) && e.pending[e.nextPending].Arrival <= e.slot {
		spec := e.pending[e.nextPending]
		e.nextPending++
		j, err := job.New(spec)
		if err != nil {
			// Specs were validated in New; this is unreachable in practice.
			panic(fmt.Sprintf("cluster: invalid spec slipped through: %v", err))
		}
		e.jobs = append(e.jobs, j)
		e.alivePos[j] = len(e.alive)
		e.alive = append(e.alive, j)
		e.aliveCount++
		e.arrived++
		e.unschedMap += spec.MapTasks
		if j.MapPhaseDone() { // no map tasks: the reduce gate starts open
			e.unschedOpen += spec.ReduceTask
		} else {
			e.unschedGated += spec.ReduceTask
		}
	}
}

// processCompletions completes every task whose earliest copy finishes at
// the current slot, in deterministic (finish, seq) order of those copies.
func (e *Engine) processCompletions() {
	for {
		tr := e.cal.peek()
		if tr == nil || tr.bestFinish > e.slot {
			return
		}
		e.cal.pop()
		e.completeTask(tr)
	}
}

// completeTask finishes tr's task at the current slot: the best copy wins,
// sibling copies are killed (their remaining workload is wasted cloning
// overhead), machines are freed, reduce gates open, finished jobs retire.
func (e *Engine) completeTask(tr *taskRun) {
	winner := int(tr.best)
	t := tr.task
	owner := tr.owner
	for i := range tr.copies {
		owner.MarkCopyStopped(t)
		e.free++
		if i == winner {
			continue
		}
		c := &tr.copies[i]
		if c.started >= 0 {
			done := float64(e.slot-c.started) * e.cfg.Speed
			if rem := c.workload - done; rem > 0 {
				e.wastedWrk += rem
			}
		} else {
			e.wastedWrk += c.workload
		}
	}
	t.Runtime = nil
	e.releaseRun(tr)
	owner.MarkDone(t, e.slot)

	if t.ID.Phase == job.PhaseMap && owner.MapPhaseDone() {
		// The map gate just opened: pending unscheduled reduces become
		// launchable and already-launched gated copies start their countdown.
		n := owner.Unscheduled(job.PhaseReduce)
		e.unschedGated -= n
		e.unschedOpen += n
		e.openGate(owner)
	}
	if owner.Done() {
		e.retireJob(owner)
	}
}

// openGate starts the countdown of any gated reduce copies of j, in launch
// order.
func (e *Engine) openGate(j *job.Job) {
	gated, ok := e.gatedJobs[j]
	if !ok {
		return
	}
	for _, g := range gated {
		c := &g.tr.copies[g.idx]
		c.gated = false
		c.started = e.slot
		c.finish = e.slot + e.durationSlots(c.workload)
		e.activate(g.tr, int(g.idx))
	}
	delete(e.gatedJobs, j)
}

// activate enters the active copy tr.copies[idx] into the calendar: it
// becomes its task's best copy if it finishes before the current one (ties
// by launch sequence), pushing the task when this is its first active copy.
func (e *Engine) activate(tr *taskRun, idx int) {
	c := &tr.copies[idx]
	switch {
	case tr.best < 0:
		tr.best, tr.bestFinish, tr.bestSeq = int32(idx), c.finish, c.seq
		e.cal.push(tr)
	case c.finish < tr.bestFinish || (c.finish == tr.bestFinish && c.seq < tr.bestSeq):
		tr.best, tr.bestFinish, tr.bestSeq = int32(idx), c.finish, c.seq
		e.cal.decreased(tr)
	}
}

// retireJob removes a finished job from the alive set in amortized O(1):
// the job's slot (found via alivePos) becomes a nil hole, and the slice is
// compacted — preserving arrival order — once holes outnumber live jobs.
func (e *Engine) retireJob(j *job.Job) {
	if i, ok := e.alivePos[j]; ok {
		e.alive[i] = nil
		delete(e.alivePos, j)
		e.aliveCount--
		if len(e.alive) >= 32 && e.aliveCount*2 < len(e.alive) {
			e.compactAlive()
		}
	}
	e.finishedJobs++
	e.lastFinish = e.slot
}

// compactAlive rewrites alive without holes and refreshes alivePos.
func (e *Engine) compactAlive() {
	live := e.alive[:0]
	for _, a := range e.alive {
		if a != nil {
			e.alivePos[a] = len(live)
			live = append(live, a)
		}
	}
	for i := len(live); i < len(e.alive); i++ {
		e.alive[i] = nil // release references past the new length
	}
	e.alive = live
}

// durationSlots converts a finite workload into occupied slots at the
// configured machine speed. Every copy takes at least one slot; durations
// beyond the MaxSlots horizon are clamped to MaxSlots+1, which cannot
// complete within any legal run and therefore trips the overflow guard
// instead of overflowing int64 slot arithmetic.
func (e *Engine) durationSlots(workload float64) int64 {
	f := math.Ceil(workload / e.cfg.Speed)
	if f < 1 {
		return 1
	}
	if f > float64(e.cfg.MaxSlots) {
		return e.cfg.MaxSlots + 1
	}
	return int64(f)
}

// launch starts n copies of task t owned by j. Reduce copies launched before
// the owner's map phase completes must set gated; they occupy machines
// immediately but progress only after the gate opens (constraint 1g).
//
// The n workloads are drawn in one batched call per launch — bit-identical
// to n successive Sample calls on the same stream — and validated before
// any engine state changes; a non-finite sample fails the run with
// ErrNonFiniteWorkload.
func (e *Engine) launch(j *job.Job, t *job.Task, n int, gated bool) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if n > e.free {
		return 0, fmt.Errorf("%w: want %d, free %d", ErrNoFreeSlots, n, e.free)
	}
	if t.ID.Phase == job.PhaseReduce && !j.MapPhaseDone() && !gated {
		return 0, ErrGateViolated
	}
	if t.ID.Phase == job.PhaseMap {
		gated = false // map tasks are never gated
	}
	if gated && j.MapPhaseDone() {
		gated = false // gate already open
	}
	if cap(e.sampleBuf) < n {
		e.sampleBuf = make([]float64, n+16)
	}
	buf := e.sampleBuf[:n]
	sampleInto(e.taskDist(j, t), buf, e.durations)
	for _, w := range buf {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, e.fail(fmt.Errorf("%w: task %v sampled %v", ErrNonFiniteWorkload, t.ID, w))
		}
	}
	wasUnscheduled := t.State == job.TaskUnscheduled
	launched := 0
	for i := 0; i < n; i++ {
		if err := j.MarkLaunched(t, e.slot); err != nil {
			return launched, err
		}
		tr, _ := t.Runtime.(*taskRun)
		if tr == nil {
			tr = e.newRun()
			tr.task, tr.owner = t, j
			t.Runtime = tr
		}
		idx := len(tr.copies)
		tr.copies = append(tr.copies, copyRecord{
			seq:      e.seq,
			workload: buf[i],
			launched: e.slot,
			started:  -1,
			finish:   -1,
			gated:    gated,
		})
		e.seq++
		e.free--
		e.totalCopies++
		if t.TotalCopies > 1 {
			e.cloneCopies++
		}
		if gated {
			e.gatedJobs[j] = append(e.gatedJobs[j], gatedRef{tr: tr, idx: int32(idx)})
		} else {
			c := &tr.copies[idx]
			c.started = e.slot
			c.finish = e.slot + e.durationSlots(c.workload)
			e.activate(tr, idx)
		}
		launched++
	}
	if wasUnscheduled && launched > 0 {
		switch {
		case t.ID.Phase == job.PhaseMap:
			e.unschedMap--
		case j.MapPhaseDone():
			e.unschedOpen--
		default:
			e.unschedGated--
		}
	}
	return launched, nil
}

// fail records the first fatal engine error so Run can surface it even when
// the scheduler swallows the Launch error, and returns err for the caller.
func (e *Engine) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return err
}

// newRun returns a recycled or fresh task-run record. Fresh records start
// with room for a handful of copies so the common clone counts never grow
// the slice (recycled records keep their grown backing).
func (e *Engine) newRun() *taskRun {
	if k := len(e.runFree) - 1; k >= 0 {
		tr := e.runFree[k]
		e.runFree[k] = nil
		e.runFree = e.runFree[:k]
		return tr
	}
	return &taskRun{pos: -1, best: -1, copies: make([]copyRecord, 0, 8)}
}

// releaseRun recycles a completed task's run record, keeping its grown
// copies backing (the elements are pointer-free, so truncating retains
// nothing the collector cares about).
func (e *Engine) releaseRun(tr *taskRun) {
	tr.copies = tr.copies[:0]
	tr.task, tr.owner = nil, nil
	tr.best = -1
	tr.pos = -1
	e.runFree = append(e.runFree, tr)
}

// taskDist returns the ground-truth duration distribution for t.
func (e *Engine) taskDist(j *job.Job, t *job.Task) distSampler {
	if t.ID.Phase == job.PhaseMap {
		return j.Spec.MapDist
	}
	return j.Spec.ReduceDist
}

// distSampler is the subset of dist.Distribution the engine needs.
type distSampler interface {
	Sample(*rng.Source) float64
}

// batchSampler matches dist.BatchSampler without importing the package.
type batchSampler interface {
	SampleN(dst []float64, src *rng.Source)
}

// sampleInto fills dst with successive draws from d, using the batched path
// when the distribution provides one.
func sampleInto(d distSampler, dst []float64, src *rng.Source) {
	if b, ok := d.(batchSampler); ok {
		b.SampleN(dst, src)
		return
	}
	for i := range dst {
		dst[i] = d.Sample(src)
	}
}

// result builds the final Result.
func (e *Engine) result() *Result {
	res := &Result{
		Scheduler:     e.sched.Name(),
		Machines:      e.cfg.Machines,
		Speed:         e.cfg.Speed,
		Slots:         e.lastFinish,
		Jobs:          make([]JobRecord, 0, len(e.jobs)),
		TotalCopies:   e.totalCopies,
		CloneCopies:   e.cloneCopies,
		MachineSlots:  e.busy,
		ArrivedJobs:   e.arrived,
		FinishedJobs:  e.finishedJobs,
		WastedCopyWrk: e.wastedWrk,
	}
	for _, j := range e.jobs {
		var copies int
		for _, t := range j.Tasks {
			copies += t.TotalCopies
		}
		res.Jobs = append(res.Jobs, JobRecord{
			ID:          j.Spec.ID,
			Weight:      j.Spec.Weight,
			Arrival:     j.Spec.Arrival,
			Finish:      j.FinishSlot,
			Flowtime:    j.Flowtime(),
			Tasks:       j.Spec.TotalTasks(),
			TotalCopies: copies,
		})
	}
	return res
}
