// Package cluster implements the time-slotted MapReduce cluster simulator of
// Section III of Xu & Lau (ICDCS 2015): M identical unit-speed machines, one
// task copy per machine per slot, Map→Reduce precedence within each job, and
// task cloning where a task completes as soon as its earliest copy does.
//
// Cloning speedup is emergent: every copy draws an independent workload from
// the task's duration distribution and the task takes the minimum, exactly as
// in the paper's trace-driven evaluation ("the workload for this clone is
// just drawn independently from the estimated distribution").
package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// Scheduler is invoked once per time slot to assign free machines to task
// copies. Implementations live in internal/sched/...
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Schedule may call ctx.Launch until ctx.FreeMachines() reaches zero.
	Schedule(ctx *Context)
}

// EventDriven marks schedulers whose Schedule is a pure function of the
// observable cluster state — alive jobs' task states, free-machine count,
// cluster size — so their decisions can only change when a completion or an
// arrival changes that state. The engine fast-forwards idle slots for such
// schedulers: whenever an event-driven scheduler launches nothing and draws
// no randomness, the simulation jumps straight to the next arrival or copy
// completion instead of re-invoking it slot by slot.
//
// Schedulers with time-based triggers — polling cadences keyed on Now(),
// progress-age thresholds as in Mantri or LATE, or any internal mutable
// state — must NOT implement this interface (or must return false): they can
// legitimately launch a copy on a slot where nothing else happened.
type EventDriven interface {
	// EventDriven reports whether the idle-slot fast-forward is safe.
	EventDriven() bool
}

// Config parameterizes a simulation run.
type Config struct {
	// Machines is M, the number of machines in the cluster. Required > 0.
	Machines int
	// Speed is the machine speed for resource-augmentation experiments
	// (Definition 1). A copy with workload p takes ceil(p/Speed) slots.
	// Zero means 1.0 (unit speed).
	Speed float64
	// MaxSlots aborts a run that exceeds this many slots (safety net against
	// scheduler starvation bugs). Zero means a generous default.
	MaxSlots int64
	// Seed drives all stochastic choices (copy workloads, scheduler
	// tie-breaking). Runs with equal seeds and schedulers are identical.
	Seed int64
	// DisableFastForward forces the naive slot-by-slot loop even where the
	// idle-slot fast-forward is provably equivalent. It exists so tests and
	// validation runs can compare the two paths; production runs should
	// leave it false.
	DisableFastForward bool
}

const defaultMaxSlots = 50_000_000

// Errors reported by the engine.
var (
	ErrNoMachines   = errors.New("cluster: config needs at least one machine")
	ErrNoScheduler  = errors.New("cluster: nil scheduler")
	ErrSlotOverflow = errors.New("cluster: exceeded MaxSlots without finishing all jobs")
	ErrNoFreeSlots  = errors.New("cluster: launch exceeds free machines")
	ErrGateViolated = errors.New("cluster: reduce copy launched before map phase done without gating")
)

// copyRecord is one running (or gated) copy of a task occupying a machine.
type copyRecord struct {
	seq      int64 // launch sequence, for deterministic ordering
	task     *job.Task
	owner    *job.Job
	workload float64
	finish   int64 // completion slot; -1 while gated
	dead     bool  // killed (sibling finished first) or completed
	gated    bool  // waiting for the owner's map phase to finish
	started  int64 // slot at which the countdown began (-1 while gated)
	launched int64 // slot at which the copy occupied its machine
}

// copyHeap is a min-heap of copies ordered by (finish, seq).
type copyHeap []*copyRecord

func (h copyHeap) Len() int { return len(h) }
func (h copyHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h copyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *copyHeap) Push(x interface{}) { *h = append(*h, x.(*copyRecord)) }
func (h *copyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return item
}

// JobRecord is the per-job outcome of a run.
type JobRecord struct {
	ID          int
	Weight      float64
	Arrival     int64
	Finish      int64
	Flowtime    int64
	Tasks       int
	TotalCopies int // copies ever launched, including clones
}

// Result summarizes a completed simulation.
type Result struct {
	Scheduler     string
	Machines      int
	Speed         float64
	Slots         int64 // slot at which the last job finished
	Jobs          []JobRecord
	TotalCopies   int64 // all copies launched
	CloneCopies   int64 // copies beyond the first per task
	MachineSlots  int64 // busy machine-slots consumed (occupancy integral)
	ArrivedJobs   int
	FinishedJobs  int
	WastedCopyWrk float64 // workload of killed copies (cloning overhead)
}

// Engine runs one simulation.
type Engine struct {
	cfg         Config
	sched       Scheduler
	eventDriven bool // sched implements EventDriven and opted in

	slot    int64
	free    int
	seq     int64
	arrived int

	pending     []job.Spec // sorted by arrival; consumed via nextPending
	nextPending int        // cursor into pending: first spec not yet admitted
	jobs        []*job.Job // all materialized jobs, arrival order

	// alive holds arrived-and-unfinished jobs in arrival order. Retired jobs
	// leave nil holes (O(1) removal via alivePos); the slice is compacted
	// once holes outnumber live entries, so per-retire cost is amortized
	// O(1) while iteration order stays arrival order.
	alive      []*job.Job
	alivePos   map[*job.Job]int // index of each live job within alive
	aliveCount int

	heap      copyHeap
	taskCopy  map[*job.Task][]*copyRecord // live copies per task
	gatedJobs map[*job.Job][]*copyRecord  // gated reduce copies per job

	durations *rng.Source // stream for copy workload sampling
	schedRand *rng.Source // stream handed to the scheduler
	randUsed  bool        // scheduler touched schedRand this slot

	busy         int64
	totalCopies  int64
	cloneCopies  int64
	wastedWrk    float64
	finishedJobs int
}

// New prepares an engine over the given job specs. Specs are copied and
// sorted by arrival time; they must each validate.
func New(cfg Config, sched Scheduler, specs []job.Spec) (*Engine, error) {
	if cfg.Machines <= 0 {
		return nil, ErrNoMachines
	}
	if sched == nil {
		return nil, ErrNoScheduler
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if cfg.Speed < 0 || math.IsNaN(cfg.Speed) {
		return nil, fmt.Errorf("cluster: invalid speed %v", cfg.Speed)
	}
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = defaultMaxSlots
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	pending := make([]job.Spec, len(specs))
	copy(pending, specs)
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].Arrival < pending[j].Arrival
	})
	root := rng.New(cfg.Seed)
	ed, _ := sched.(EventDriven)
	return &Engine{
		cfg:         cfg,
		sched:       sched,
		eventDriven: ed != nil && ed.EventDriven(),
		free:        cfg.Machines,
		pending:     pending,
		alivePos:    make(map[*job.Job]int),
		taskCopy:    make(map[*job.Task][]*copyRecord),
		gatedJobs:   make(map[*job.Job][]*copyRecord),
		durations:   root.Split("durations"),
		schedRand:   root.Split("scheduler"),
	}, nil
}

// Run executes the simulation to completion and returns the result.
//
// The loop is event-accelerated: slots on which provably nothing can happen
// are skipped in one jump to min(next arrival, next copy completion). A slot
// is skippable when no machine is free (the scheduler is never invoked
// then), when no job is alive, or when an EventDriven scheduler was invoked
// but launched nothing and drew no randomness — by the EventDriven contract
// it would keep deciding the same until the state changes. Results are
// slot-for-slot identical to the naive loop (see Config.DisableFastForward
// and TestFastForwardEquivalence).
func (e *Engine) Run() (*Result, error) {
	total := len(e.pending)
	for e.finishedJobs < total {
		if e.slot > e.cfg.MaxSlots {
			return nil, fmt.Errorf("%w: slot %d, %d/%d jobs finished",
				ErrSlotOverflow, e.slot, e.finishedJobs, total)
		}
		e.admitArrivals()
		e.processCompletions()
		launchedBefore := e.totalCopies
		e.randUsed = false
		if e.free > 0 && e.aliveCount > 0 {
			ctx := &Context{engine: e}
			e.sched.Schedule(ctx)
		}
		e.busy += int64(e.cfg.Machines - e.free)
		next := e.slot + 1
		if e.finishedJobs < total && !e.cfg.DisableFastForward {
			idle := e.free == 0 || e.aliveCount == 0 ||
				(e.eventDriven && e.totalCopies == launchedBefore && !e.randUsed)
			if idle {
				if t, ok := e.nextEventSlot(); !ok {
					// No future arrival or completion can ever occur while
					// jobs remain unfinished: the run is starved (for
					// example, only gated copies are left). Jump past
					// MaxSlots so the overflow guard reports it rather than
					// grinding there one slot at a time.
					next = e.cfg.MaxSlots + 1
				} else if t > next {
					// Slots next..t-1 are identical no-ops; account their
					// occupancy in bulk (busy level cannot change between
					// events) and land exactly on the next event.
					e.busy += int64(e.cfg.Machines-e.free) * (t - next)
					next = t
				}
			}
		}
		e.slot = next
	}
	return e.result(), nil
}

// nextEventSlot returns the earliest future slot at which the cluster state
// can change: the next pending arrival or the next live copy completion.
// ok is false when neither exists.
func (e *Engine) nextEventSlot() (int64, bool) {
	t, ok := int64(0), false
	if e.nextPending < len(e.pending) {
		t, ok = e.pending[e.nextPending].Arrival, true
	}
	// Drop dead heap tops so the peek sees a live completion.
	for len(e.heap) > 0 && e.heap[0].dead {
		heap.Pop(&e.heap)
	}
	if len(e.heap) > 0 && e.heap[0].finish >= 0 {
		if f := e.heap[0].finish; !ok || f < t {
			t, ok = f, true
		}
	}
	return t, ok
}

// admitArrivals materializes jobs whose arrival slot has come. The cursor
// walk keeps per-arrival work O(1) without re-slicing pending (which would
// pin the backing array's head while shifting the window one spec at a
// time).
func (e *Engine) admitArrivals() {
	for e.nextPending < len(e.pending) && e.pending[e.nextPending].Arrival <= e.slot {
		spec := e.pending[e.nextPending]
		e.nextPending++
		j, err := job.New(spec)
		if err != nil {
			// Specs were validated in New; this is unreachable in practice.
			panic(fmt.Sprintf("cluster: invalid spec slipped through: %v", err))
		}
		e.jobs = append(e.jobs, j)
		e.alivePos[j] = len(e.alive)
		e.alive = append(e.alive, j)
		e.aliveCount++
		e.arrived++
	}
}

// processCompletions pops every copy finishing at the current slot, completes
// its task (first copy wins), kills sibling copies, opens Reduce gates, and
// retires finished jobs.
func (e *Engine) processCompletions() {
	for len(e.heap) > 0 {
		top := e.heap[0]
		if top.dead {
			heap.Pop(&e.heap)
			continue
		}
		if top.finish < 0 || top.finish > e.slot {
			break
		}
		heap.Pop(&e.heap)
		e.completeCopy(top)
	}
}

// completeCopy finishes the task owned by c at the current slot.
func (e *Engine) completeCopy(c *copyRecord) {
	if c.dead || c.task.State == job.TaskDone {
		return
	}
	owner := c.owner
	// Free the finishing copy's machine.
	c.dead = true
	owner.MarkCopyStopped(c.task)
	e.free++
	// Kill all sibling copies and free their machines; their remaining
	// workload is wasted cloning overhead.
	for _, sib := range e.taskCopy[c.task] {
		if sib == c || sib.dead {
			continue
		}
		sib.dead = true
		owner.MarkCopyStopped(c.task)
		e.free++
		if sib.started >= 0 {
			done := float64(e.slot-sib.started) * e.cfg.Speed
			if rem := sib.workload - done; rem > 0 {
				e.wastedWrk += rem
			}
		} else {
			e.wastedWrk += sib.workload
		}
	}
	delete(e.taskCopy, c.task)
	owner.MarkDone(c.task, e.slot)

	if c.task.ID.Phase == job.PhaseMap && owner.MapPhaseDone() {
		e.openGate(owner)
	}
	if owner.Done() {
		e.retireJob(owner)
	}
}

// openGate starts the countdown of any gated reduce copies of j.
func (e *Engine) openGate(j *job.Job) {
	for _, c := range e.gatedJobs[j] {
		if c.dead {
			continue
		}
		c.gated = false
		c.started = e.slot
		c.finish = e.slot + e.durationSlots(c.workload)
		heap.Push(&e.heap, c)
	}
	delete(e.gatedJobs, j)
}

// retireJob removes a finished job from the alive set in amortized O(1):
// the job's slot (found via alivePos) becomes a nil hole, and the slice is
// compacted — preserving arrival order — once holes outnumber live jobs.
func (e *Engine) retireJob(j *job.Job) {
	if i, ok := e.alivePos[j]; ok {
		e.alive[i] = nil
		delete(e.alivePos, j)
		e.aliveCount--
		if len(e.alive) >= 32 && e.aliveCount*2 < len(e.alive) {
			e.compactAlive()
		}
	}
	e.finishedJobs++
}

// compactAlive rewrites alive without holes and refreshes alivePos.
func (e *Engine) compactAlive() {
	live := e.alive[:0]
	for _, a := range e.alive {
		if a != nil {
			e.alivePos[a] = len(live)
			live = append(live, a)
		}
	}
	for i := len(live); i < len(e.alive); i++ {
		e.alive[i] = nil // release references past the new length
	}
	e.alive = live
}

// durationSlots converts a workload into occupied slots at the configured
// machine speed; every copy takes at least one slot.
func (e *Engine) durationSlots(workload float64) int64 {
	s := int64(math.Ceil(workload / e.cfg.Speed))
	if s < 1 {
		s = 1
	}
	return s
}

// launch starts n copies of task t owned by j. Reduce copies launched before
// the owner's map phase completes must set gated; they occupy machines
// immediately but progress only after the gate opens (constraint 1g).
func (e *Engine) launch(j *job.Job, t *job.Task, n int, gated bool) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if n > e.free {
		return 0, fmt.Errorf("%w: want %d, free %d", ErrNoFreeSlots, n, e.free)
	}
	if t.ID.Phase == job.PhaseReduce && !j.MapPhaseDone() && !gated {
		return 0, ErrGateViolated
	}
	if t.ID.Phase == job.PhaseMap {
		gated = false // map tasks are never gated
	}
	if gated && j.MapPhaseDone() {
		gated = false // gate already open
	}
	var d = e.taskDist(j, t)
	launched := 0
	for i := 0; i < n; i++ {
		if err := j.MarkLaunched(t, e.slot); err != nil {
			return launched, err
		}
		c := &copyRecord{
			seq:      e.seq,
			task:     t,
			owner:    j,
			workload: d.Sample(e.durations),
			launched: e.slot,
			started:  -1,
			finish:   -1,
			gated:    gated,
		}
		e.seq++
		e.free--
		e.totalCopies++
		if t.TotalCopies > 1 {
			e.cloneCopies++
		}
		e.taskCopy[t] = append(e.taskCopy[t], c)
		if gated {
			e.gatedJobs[j] = append(e.gatedJobs[j], c)
		} else {
			c.started = e.slot
			c.finish = e.slot + e.durationSlots(c.workload)
			heap.Push(&e.heap, c)
		}
		launched++
	}
	return launched, nil
}

// taskDist returns the ground-truth duration distribution for t.
func (e *Engine) taskDist(j *job.Job, t *job.Task) distSampler {
	if t.ID.Phase == job.PhaseMap {
		return j.Spec.MapDist
	}
	return j.Spec.ReduceDist
}

// distSampler is the subset of dist.Distribution the engine needs.
type distSampler interface {
	Sample(*rng.Source) float64
}

// result builds the final Result.
func (e *Engine) result() *Result {
	res := &Result{
		Scheduler:     e.sched.Name(),
		Machines:      e.cfg.Machines,
		Speed:         e.cfg.Speed,
		Slots:         e.slot,
		Jobs:          make([]JobRecord, 0, len(e.jobs)),
		TotalCopies:   e.totalCopies,
		CloneCopies:   e.cloneCopies,
		MachineSlots:  e.busy,
		ArrivedJobs:   e.arrived,
		FinishedJobs:  e.finishedJobs,
		WastedCopyWrk: e.wastedWrk,
	}
	for _, j := range e.jobs {
		var copies int
		for _, t := range j.Tasks {
			copies += t.TotalCopies
		}
		res.Jobs = append(res.Jobs, JobRecord{
			ID:          j.Spec.ID,
			Weight:      j.Spec.Weight,
			Arrival:     j.Spec.Arrival,
			Finish:      j.FinishSlot,
			Flowtime:    j.Flowtime(),
			Tasks:       j.Spec.TotalTasks(),
			TotalCopies: copies,
		})
	}
	return res
}
