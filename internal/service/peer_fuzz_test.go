package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzPeerArtifactResponse hammers the peer-response decoders with arbitrary
// bytes — the exact surface a compromised or corrupted peer controls. The
// decoders must never panic, and whenever they accept a payload the
// acceptance must be sound: the envelope names the requested hash and every
// byte the caller will install verifies against the checksums declared in
// the wire form itself.
func FuzzPeerArtifactResponse(f *testing.F) {
	const hash = "a3f1c2d4e5b6978081726354453627184950a1b2c3d4e5f60718293a4b5c6d7e"
	valid := peerArtifactsWire{
		Hash:         hash,
		Cells:        2,
		CreatedAtMs:  1700000000000,
		JSON:         []byte(`{"cells":[1,2]}`),
		CSV:          []byte("a,b\n1,2\n"),
		AggregateCSV: []byte("x,y\n3,4\n"),
	}
	valid.Sums = map[string]string{
		"json":          sha256Hex(valid.JSON),
		"csv":           sha256Hex(valid.CSV),
		"aggregate_csv": sha256Hex(valid.AggregateCSV),
	}
	validBytes, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hash, validBytes)
	f.Add(hash, validBytes[:len(validBytes)/2])
	f.Add(hash, bytes.Replace(validBytes, []byte("cells"), []byte("cellz"), 1))
	f.Add("otherhash0123456", validBytes)
	f.Add(hash, []byte(`{"hash":"`+hash+`","sums":{}}`))
	f.Add(hash, []byte(`{"hash":"`+hash+`","cells":-1}`))
	cellPayload := []byte(`{"v":1}`)
	cellValid, err := json.Marshal(peerCellWire{
		Hash:    hash,
		Size:    int64(len(cellPayload)),
		SHA256:  sha256Hex(cellPayload),
		Payload: json.RawMessage(cellPayload),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hash, cellValid)
	f.Add(hash, []byte(`{"hash":"`+hash+`","size":7,"sha256":"00","payload":{"v":1}}`))

	f.Fuzz(func(t *testing.T, reqHash string, data []byte) {
		art, err := decodePeerArtifacts(reqHash, data)
		if err == nil {
			if art.Hash != reqHash {
				t.Fatalf("accepted artifacts named %q, requested %q", art.Hash, reqHash)
			}
			if art.Cells < 0 {
				t.Fatalf("accepted negative cell count %d", art.Cells)
			}
			// Re-derive the declared sums from the raw wire form: the decoder
			// must only accept parts that hash to exactly what the envelope
			// declared, so corruption of either side is always caught.
			var wire peerArtifactsWire
			if uerr := json.Unmarshal(data, &wire); uerr != nil {
				t.Fatalf("decoder accepted bytes json.Unmarshal rejects: %v", uerr)
			}
			for name, part := range map[string][]byte{
				"json":          art.JSON,
				"csv":           art.CSV,
				"aggregate_csv": art.AggregateCSV,
			} {
				if sha256Hex(part) != wire.Sums[name] {
					t.Fatalf("accepted %s part does not match its declared checksum", name)
				}
			}
		}
		payload, err := decodePeerCell(reqHash, data)
		if err == nil {
			var wire peerCellWire
			if uerr := json.Unmarshal(data, &wire); uerr != nil {
				t.Fatalf("cell decoder accepted bytes json.Unmarshal rejects: %v", uerr)
			}
			if wire.Hash != reqHash {
				t.Fatalf("accepted cell named %q, requested %q", wire.Hash, reqHash)
			}
			if int64(len(payload)) != wire.Size || sha256Hex(payload) != wire.SHA256 {
				t.Fatal("accepted cell payload does not verify against its declared envelope")
			}
		}
	})
}
