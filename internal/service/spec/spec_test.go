package spec

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// tinyParams is a fast generator workload shared by the tests.
func tinyParams() trace.Params {
	p := trace.GoogleParams()
	p.Jobs = 12
	p.Span = 600
	return p
}

func tinySpec() Spec {
	p := tinyParams()
	return Spec{
		Workload:   Workload{Trace: &p},
		Schedulers: []Scheduler{{Name: "srptms+c", Params: sched.DefaultParams()}},
		Points:     []Point{{X: 1, Machines: 40}},
		Runs:       2,
		BaseSeed:   7,
	}
}

func TestParseRoundTrip(t *testing.T) {
	canon, err := tinySpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(canon)
	if err != nil {
		t.Fatalf("Parse(canonical): %v", err)
	}
	canon2, err := parsed.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, canon2) {
		t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", canon, canon2)
	}
}

// TestHashGoldenPin pins the canonical bytes and hash of a fixed spec.
// The hash is the on-disk artifact key of internal/store (see the package
// comment's stability contract): if this test breaks, a persisted data
// directory written by the previous build just became unreadable — bump
// Version instead of changing version-1 canonicalization.
func TestHashGoldenPin(t *testing.T) {
	sp := Spec{
		Workload: Workload{Rows: []trace.JobRow{{
			ID: 1, Arrival: 0, Priority: 2,
			MapTasks: 3, MapScale: 100, ReduceTasks: 1, ReduceScale: 50,
			Ratio: 5, Alpha: 2.5,
		}}},
		Schedulers: []Scheduler{{Name: "fair"}},
		Points:     []Point{{X: 10, Machines: 25}},
		Runs:       2,
		BaseSeed:   7,
	}
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	const wantCanon = `{"version":1,"workload":{"rows":[{"id":1,"arrival":0,"priority":2,"map_tasks":3,"reduce_tasks":1,"map_scale":100,"reduce_scale":50,"ratio":5,"alpha":2.5}]},"schedulers":[{"name":"fair"}],"points":[{"x":10,"machines":25}],"runs":2,"base_seed":7}`
	if string(canon) != wantCanon {
		t.Errorf("canonical bytes drifted:\n got %s\nwant %s", canon, wantCanon)
	}
	h, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	const wantHash = "381dd03e7021b52392b173c4dbaf79b917c2d5e32c0905d6f5f64d678b8063b2"
	if h != wantHash {
		t.Errorf("golden hash drifted:\n got %s\nwant %s", h, wantHash)
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	h1, err := tinySpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := tinySpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash unstable: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}

	changed := tinySpec()
	changed.BaseSeed++
	h3, err := changed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("hash ignores base seed")
	}
}

func TestNormalizeEquivalenceClasses(t *testing.T) {
	// Runs 0 and 1 describe the same matrix; explicit default stride and 0
	// describe the same seeding.
	a, b := tinySpec(), tinySpec()
	a.Runs = 1
	b.Runs = 0
	b.SeedStride = runner.DefaultSeedStride
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("normalization does not collapse equivalent specs")
	}
	// Version 0 pins to the current version.
	if v := (Spec{}).Normalize().Version; v != Version {
		t.Fatalf("normalized version %d, want %d", v, Version)
	}

	// Speed 1 and omitted speed mean the same engine (unit speed) and must
	// share a hash — that is what makes dedup and caching hit across the
	// two spellings. The caller's Points slice must stay untouched.
	c, d := tinySpec(), tinySpec()
	c.Points = []Point{{X: 1, Machines: 40, Speed: 1}}
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hd, err := d.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc != hd {
		t.Fatal("speed 1 and omitted speed hash differently")
	}
	if c.Points[0].Speed != 1 {
		t.Fatal("Normalize mutated the caller's Points slice")
	}
}

func TestParseRejects(t *testing.T) {
	base := tinySpec()
	cases := []struct {
		name   string
		mutate func(*Spec)
		raw    string // overrides mutate when non-empty
		want   string
	}{
		{name: "unknown field", raw: `{"version":1,"bogus":3}`, want: "bogus"},
		{name: "trailing data", raw: `{"version":1} {}`, want: "trailing"},
		{name: "trailing garbage", raw: `{"version":1} !!not json`, want: "trailing"},
		{name: "bad version", mutate: func(s *Spec) { s.Version = 99 }, want: "version"},
		{name: "no workload", mutate: func(s *Spec) { s.Workload = Workload{} }, want: "workload"},
		{name: "both workloads", mutate: func(s *Spec) {
			s.Workload.Rows = []trace.JobRow{{Priority: 1, MapTasks: 1, MapScale: 5, Ratio: 2, Alpha: 2}}
		}, want: "workload"},
		{name: "jobs without trace", mutate: func(s *Spec) {
			s.Workload = Workload{Jobs: 3, Rows: []trace.JobRow{{Priority: 1, MapTasks: 1, MapScale: 5, Ratio: 2, Alpha: 2}}}
		}, want: "truncation"},
		{name: "no schedulers", mutate: func(s *Spec) { s.Schedulers = nil }, want: "scheduler"},
		{name: "unknown scheduler", mutate: func(s *Spec) { s.Schedulers[0].Name = "nope" }, want: "unknown name"},
		{name: "no points", mutate: func(s *Spec) { s.Points = nil }, want: "point"},
		{name: "bad machines", mutate: func(s *Spec) { s.Points[0].Machines = 0 }, want: "machines"},
		{name: "negative speed", mutate: func(s *Spec) { s.Points[0].Speed = -1 }, want: "speed"},
		{name: "negative runs", mutate: func(s *Spec) { s.Runs = -1 }, want: "runs"},
		{name: "negative stride", mutate: func(s *Spec) { s.SeedStride = -2 }, want: "stride"},
		{name: "bad trace params", mutate: func(s *Spec) { s.Workload.Trace.Jobs = -1 }, want: "jobs"},
		{name: "bad row", mutate: func(s *Spec) {
			s.Workload.Trace = nil
			s.Workload.Rows = []trace.JobRow{{Priority: 1}} // no tasks
		}, want: "rows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.raw)
			if tc.raw == "" {
				s := base
				// Deep-enough copy for the fields the mutations touch.
				p := *base.Workload.Trace
				s.Workload.Trace = &p
				s.Schedulers = append([]Scheduler(nil), base.Schedulers...)
				s.Points = append([]Point(nil), base.Points...)
				tc.mutate(&s)
				var err error
				if data, err = json.Marshal(s.Normalize()); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := Parse(data); err == nil {
				t.Fatalf("Parse accepted %s", data)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunnerExpansionMatchesDirect proves the wire spec expands to the same
// matrix a direct in-process runner call would execute: equal artifacts.
func TestRunnerExpansionMatchesDirect(t *testing.T) {
	sp := tinySpec()
	rs, err := sp.Runner()
	if err != nil {
		t.Fatal(err)
	}

	tr, err := trace.Generate(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	direct := runner.Spec{
		Specs:      specs,
		Schedulers: []runner.SchedulerSpec{{Name: "srptms+c", Params: sched.DefaultParams()}},
		Points:     []runner.Point{{X: 1, Machines: 40}},
		Runs:       2,
		BaseSeed:   7,
	}

	got, err := runner.Run(context.Background(), rs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(context.Background(), direct, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := got.WriteJSON(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Fatal("spec expansion and direct runner call produced different artifacts")
	}
}

// TestRowWorkloadRoundTrip covers the explicit-rows workload and FromRunner.
func TestRowWorkloadRoundTrip(t *testing.T) {
	tr, err := trace.Generate(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	rs := runner.Spec{
		Schedulers: []runner.SchedulerSpec{{Name: "fair"}},
		Points:     []runner.Point{{X: 0, Machines: 25, Params: &sched.Params{DeviationFactor: 2}}},
		Runs:       1,
		BaseSeed:   3,
	}
	sp := FromRunner(tr.Rows, rs)
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(canon)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.Runner()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Specs) != len(tr.Rows) {
		t.Fatalf("round-trip lost jobs: %d vs %d", len(back.Specs), len(tr.Rows))
	}
	if back.Points[0].Params == nil || back.Points[0].Params.DeviationFactor != 2 {
		t.Fatal("round-trip lost point params")
	}
	h1, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := parsed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("hash changed across round-trip")
	}
}

// TestHashSubmission proves the routing tier's hash extraction agrees with
// the hash an owning shard computes, without expanding the workload.
func TestHashSubmission(t *testing.T) {
	sp := tinySpec()
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	got, err := HashSubmission(canon)
	if err != nil {
		t.Fatalf("HashSubmission: %v", err)
	}
	if got != want {
		t.Fatalf("HashSubmission = %s, Spec.Hash = %s", got, want)
	}
	// Non-canonical but equivalent bodies (reordered fields, defaults
	// spelled out) hash identically: routing normalizes like the shard does.
	loose := `{"runs":2,"base_seed":7,"points":[{"x":1,"machines":40,"speed":1}],` +
		`"schedulers":[{"name":"srptms+c","params":` + mustJSON(t, sched.DefaultParams()) + `}],` +
		`"workload":{"trace":` + mustJSON(t, *sp.Workload.Trace) + `},"version":1}`
	got2, err := HashSubmission([]byte(loose))
	if err != nil {
		t.Fatalf("HashSubmission(loose): %v", err)
	}
	if got2 != want {
		t.Fatalf("equivalent body hashed differently: %s vs %s", got2, want)
	}
	if _, err := HashSubmission([]byte(`{"version":1}`)); err == nil {
		t.Error("HashSubmission accepted a spec with no workload")
	}
	if _, err := HashSubmission([]byte(`not json`)); err == nil {
		t.Error("HashSubmission accepted garbage")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAxesMatchesRunnerSansWorkload(t *testing.T) {
	s := tinySpec()
	axes, err := s.Axes()
	if err != nil {
		t.Fatal(err)
	}
	if axes.Specs != nil {
		t.Fatal("Axes expanded the workload")
	}
	full, err := s.Runner()
	if err != nil {
		t.Fatal(err)
	}
	full.Specs = nil
	if got, want := mustJSON(t, axes), mustJSON(t, full); got != want {
		t.Fatalf("Axes = %s\nwant Runner sans workload = %s", got, want)
	}
	if axes.Total() != full.Total() {
		t.Fatalf("Total mismatch: %d vs %d", axes.Total(), full.Total())
	}
	bad := s
	bad.Schedulers = nil
	if _, err := bad.Axes(); err == nil {
		t.Fatal("Axes accepted a spec with no schedulers")
	}
}

func TestWorkloadJobs(t *testing.T) {
	s := tinySpec() // trace workload, 12 jobs
	if got := s.WorkloadJobs(); got != 12 {
		t.Fatalf("trace WorkloadJobs = %d, want 12", got)
	}
	s.Workload.Jobs = 5 // truncation wins when smaller
	if got := s.WorkloadJobs(); got != 5 {
		t.Fatalf("truncated WorkloadJobs = %d, want 5", got)
	}
	s.Workload.Jobs = 50 // larger than the trace: no effect
	if got := s.WorkloadJobs(); got != 12 {
		t.Fatalf("over-truncated WorkloadJobs = %d, want 12", got)
	}
	rows := Spec{Workload: Workload{Rows: make([]trace.JobRow, 7)}}
	if got := rows.WorkloadJobs(); got != 7 {
		t.Fatalf("rows WorkloadJobs = %d, want 7", got)
	}
}
