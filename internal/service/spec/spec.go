// Package spec defines the canonical, versioned wire format for run-matrix
// specifications: everything a client must send to reproduce a
// runner.Run call — the workload (trace generator parameters or explicit
// trace rows), the scheduler axis with tunables, the sweep-point axis, and
// the seeding scheme.
//
// The format is designed for content addressing. Parse is strict (unknown
// fields and duplicate workloads are rejected), Normalize maps every spec
// to a unique representative of its equivalence class (defaults filled,
// version pinned), and Canonical marshals that representative with a fixed
// field order and shortest round-trip float encoding. Hash is the SHA-256
// of the canonical bytes, so two specs share a hash exactly when they
// describe the same simulation — the key property that lets the service
// layer deduplicate in-flight work and cache results: the runner guarantees
// byte-identical artifacts for equal specs at any parallelism.
//
// # Hash stability contract
//
// The hash is not just an in-process cache key: internal/store uses it as
// the on-disk directory name of persisted artifacts, so a hash computed by
// one build must match the hash computed by every later build or warm disk
// caches silently die on upgrade. Concretely, the following are frozen for
// spec version 1:
//
//   - the canonical JSON field order (the Spec/Workload/Scheduler/Point
//     struct field order below) and their json tags;
//   - the normalization rules (version pinned, Runs defaulted to 1, default
//     seed stride and unit machine speed collapsed to their omitted forms);
//   - encoding/json's shortest round-trip float encoding; and
//   - SHA-256 over the canonical bytes, rendered as lowercase hex.
//
// Any change that alters canonical bytes for an existing spec — a new
// field with a non-omitted zero value, a reordered field, a changed
// normalization — MUST bump Version instead of mutating version 1; old
// hashes then remain valid names for old artifacts. Adding a field that is
// omitted when unset (omitempty/omitzero) keeps existing hashes intact and
// is allowed. spec_test.go pins a golden hash to catch accidental drift.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"mrclone/internal/job"
	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// Version is the current (and only) spec schema version.
const Version = 1

// Errors reported by spec parsing and validation.
var (
	ErrVersion      = errors.New("spec: unsupported version")
	ErrNoWorkload   = errors.New("spec: workload needs exactly one of trace params or rows")
	ErrNoSchedulers = errors.New("spec: need at least one scheduler")
	ErrNoPoints     = errors.New("spec: need at least one sweep point")
)

// Workload is the job source of a matrix: either synthetic-trace generator
// parameters (expanded deterministically server-side) or explicit trace
// rows. Exactly one of Trace and Rows must be set.
type Workload struct {
	// Trace, when non-nil, generates the workload from parameters; the
	// expansion is deterministic, so equal parameters mean equal jobs.
	Trace *trace.Params `json:"trace,omitempty"`
	// Jobs truncates a generated trace to its first n arrivals (0 = all).
	// Only meaningful with Trace.
	Jobs int `json:"jobs,omitempty"`
	// Rows is an explicit workload, one row per job (the CSV trace schema).
	Rows []trace.JobRow `json:"rows,omitempty"`
}

// Scheduler is one row of the matrix: a registered scheduler name plus its
// tunables.
type Scheduler struct {
	Name   string       `json:"name"`
	Params sched.Params `json:"params,omitzero"`
}

// Point is one column of the matrix: a sweep coordinate and the cluster
// shape it maps to, optionally overriding the scheduler tunables.
type Point struct {
	X        float64       `json:"x"`
	Machines int           `json:"machines"`
	Speed    float64       `json:"speed,omitempty"`
	Params   *sched.Params `json:"params,omitempty"`
}

// Spec is the versioned wire form of a run matrix.
type Spec struct {
	Version    int         `json:"version"`
	Workload   Workload    `json:"workload"`
	Schedulers []Scheduler `json:"schedulers"`
	Points     []Point     `json:"points"`
	// Runs is the number of seed replicates per (scheduler, point) pair
	// (0 = 1).
	Runs int `json:"runs,omitempty"`
	// BaseSeed anchors replicate seeds (runner.CellSeed).
	BaseSeed int64 `json:"base_seed,omitempty"`
	// SeedStride overrides the replicate seed spacing
	// (0 = runner.DefaultSeedStride).
	SeedStride int64 `json:"seed_stride,omitempty"`
	// MaxSlots bounds simulated time (0 = engine default).
	MaxSlots int64 `json:"max_slots,omitempty"`
}

// Parse decodes a spec strictly: unknown fields are rejected, trailing
// garbage is rejected, and the result is validated.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: decode: %w", err)
	}
	// Anything after the spec object — valid JSON or garbage — is an error;
	// only clean EOF is acceptable.
	if err := dec.Decode(&json.RawMessage{}); !errors.Is(err, io.EOF) {
		return Spec{}, errors.New("spec: trailing data after spec object")
	}
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Normalize maps the spec to the unique representative of its equivalence
// class so equivalent specs hash identically: the version is pinned, Runs
// defaults to 1, the default seed stride is collapsed to 0 (omitted from
// the canonical encoding), and unit machine speed is collapsed to the
// omitted default 0 (the engine treats both as speed 1; its reported Speed
// is the normalized value, so artifacts are identical too). A zero-valued
// point Params override is NOT collapsed to nil — nil keeps the scheduler
// row's tunables while an explicit zero replaces them.
func (s Spec) Normalize() Spec {
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Runs == 0 {
		s.Runs = 1 // negative values are rejected by Validate, not defaulted
	}
	if s.SeedStride == runner.DefaultSeedStride {
		s.SeedStride = 0
	}
	for i, p := range s.Points {
		if p.Speed != 1 {
			continue
		}
		// Copy-on-write: callers keep their original Points slice.
		points := make([]Point, len(s.Points))
		copy(points, s.Points)
		for j := i; j < len(points); j++ {
			if points[j].Speed == 1 {
				points[j].Speed = 0
			}
		}
		s.Points = points
		break
	}
	return s
}

// Validate checks the spec deeply: schema version, workload shape and
// generator parameters, registered scheduler names, and the runner-level
// matrix invariants.
func (s Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("%w: %d (want %d)", ErrVersion, s.Version, Version)
	}
	switch {
	case s.Workload.Trace == nil && len(s.Workload.Rows) == 0:
		return ErrNoWorkload
	case s.Workload.Trace != nil && len(s.Workload.Rows) > 0:
		return ErrNoWorkload
	case s.Workload.Trace == nil && s.Workload.Jobs != 0:
		return errors.New("spec: workload jobs truncation requires trace params")
	case s.Workload.Jobs < 0:
		return fmt.Errorf("spec: workload jobs %d", s.Workload.Jobs)
	}
	if s.Workload.Trace != nil {
		if err := s.Workload.Trace.Validate(); err != nil {
			return fmt.Errorf("spec: workload: %w", err)
		}
	}
	if len(s.Schedulers) == 0 {
		return ErrNoSchedulers
	}
	for i, sc := range s.Schedulers {
		if !sched.Has(sc.Name) {
			return fmt.Errorf("spec: scheduler %d: unknown name %q (have %v)",
				i, sc.Name, sched.Names())
		}
	}
	if len(s.Points) == 0 {
		return ErrNoPoints
	}
	for i, p := range s.Points {
		if p.Machines <= 0 {
			return fmt.Errorf("spec: point %d (x=%v): machines %d, need > 0", i, p.X, p.Machines)
		}
		if p.Speed < 0 {
			return fmt.Errorf("spec: point %d (x=%v): speed %v", i, p.X, p.Speed)
		}
	}
	if s.Runs < 0 {
		return fmt.Errorf("spec: runs %d", s.Runs)
	}
	if s.SeedStride < 0 {
		return fmt.Errorf("spec: seed stride %d", s.SeedStride)
	}
	if s.MaxSlots < 0 {
		return fmt.Errorf("spec: max slots %d", s.MaxSlots)
	}
	// Explicit rows are checked structurally (mirroring the job.Spec and
	// dist constructor invariants) without building the per-job
	// distributions — Validate runs several times on the submission path
	// and a full expansion of a 6000-row workload is wasted work here;
	// Runner's jobSpecs expansion remains the authoritative check.
	for i, r := range s.Workload.Rows {
		if err := validateRow(r); err != nil {
			return fmt.Errorf("spec: workload rows: row %d (id %d): %w", i, r.ID, err)
		}
	}
	return nil
}

// validateRow mirrors the structural invariants JobRow.Spec enforces via
// job.Spec.Validate and the dist constructors. Strict inequalities on the
// float fields double as NaN rejection.
func validateRow(r trace.JobRow) error {
	switch {
	case r.Arrival < 0:
		return fmt.Errorf("arrival %d", r.Arrival)
	case r.Priority < 0 || r.Priority > trace.GoogleMaxPriority:
		return fmt.Errorf("priority %d outside 0..%d", r.Priority, trace.GoogleMaxPriority)
	case r.MapTasks < 0 || r.ReduceTasks < 0:
		return fmt.Errorf("negative task counts (%d map, %d reduce)", r.MapTasks, r.ReduceTasks)
	case r.MapTasks == 0 && r.ReduceTasks == 0:
		return errors.New("no tasks")
	case r.MapTasks > 0 && !(r.MapScale > 0 && !math.IsInf(r.MapScale, 0)):
		return fmt.Errorf("map scale %v", r.MapScale)
	case r.ReduceTasks > 0 && !(r.ReduceScale > 0 && !math.IsInf(r.ReduceScale, 0)):
		return fmt.Errorf("reduce scale %v", r.ReduceScale)
	case !(r.Ratio > 1 && !math.IsInf(r.Ratio, 0)):
		return fmt.Errorf("ratio %v (need > 1)", r.Ratio)
	case !(r.Alpha > 0 && !math.IsInf(r.Alpha, 0)):
		return fmt.Errorf("alpha %v (need > 0)", r.Alpha)
	}
	return nil
}

// Canonical returns the canonical encoding: the normalized spec marshaled
// compactly with the fixed struct field order. Two specs are equivalent
// exactly when their canonical bytes are equal.
func (s Spec) Canonical() ([]byte, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// Hash returns the content address of the spec: the lowercase-hex SHA-256
// of its canonical encoding.
func (s Spec) Hash() (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// HashSubmission parses a raw submission body strictly and returns the
// spec content hash without building any execution context: the workload is
// validated structurally but never expanded into job specs, so a routing
// tier (internal/gateway) can compute the placement key of a 6000-row trace
// submission for the cost of one JSON decode. The hash is identical to what
// the owning shard computes for the same bytes — the property that makes
// hash routing a pure placement decision.
func HashSubmission(data []byte) (string, error) {
	s, err := Parse(data)
	if err != nil {
		return "", err
	}
	return s.Hash()
}

// jobSpecs expands the workload into engine-ready job specs.
func (s Spec) jobSpecs() ([]job.Spec, error) {
	if s.Workload.Trace != nil {
		tr, err := trace.Generate(*s.Workload.Trace)
		if err != nil {
			return nil, fmt.Errorf("spec: workload: %w", err)
		}
		if s.Workload.Jobs > 0 && s.Workload.Jobs < len(tr.Rows) {
			tr = tr.Subset(s.Workload.Jobs)
		}
		return tr.Specs()
	}
	tr := &trace.Trace{Rows: s.Workload.Rows}
	specs, err := tr.Specs()
	if err != nil {
		return nil, fmt.Errorf("spec: workload rows: %w", err)
	}
	return specs, nil
}

// Axes expands everything about the spec except its workload: the
// scheduler axis, sweep axis, and seeding scheme of the runner.Spec, with
// Specs left nil. The result is enough to enumerate cell coordinates (for
// runner.Assemble and cell-count estimates) without paying for trace
// generation and per-job distribution construction; callers that will
// actually simulate use Runner, which fills the workload in.
func (s Spec) Axes() (runner.Spec, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return runner.Spec{}, err
	}
	rs := runner.Spec{
		Schedulers: make([]runner.SchedulerSpec, len(s.Schedulers)),
		Points:     make([]runner.Point, len(s.Points)),
		Runs:       s.Runs,
		BaseSeed:   s.BaseSeed,
		SeedStride: s.SeedStride,
		MaxSlots:   s.MaxSlots,
	}
	for i, sc := range s.Schedulers {
		rs.Schedulers[i] = runner.SchedulerSpec{Name: sc.Name, Params: sc.Params}
	}
	for i, p := range s.Points {
		pt := runner.Point{X: p.X, Machines: p.Machines, Speed: p.Speed}
		if p.Params != nil {
			params := *p.Params
			pt.Params = &params
		}
		rs.Points[i] = pt
	}
	return rs, nil
}

// WorkloadJobs returns the number of jobs every cell of the matrix
// simulates, without expanding the workload: the row count for explicit
// workloads, the (possibly truncated) generator job count for trace
// workloads. Together with the uncached cell count it estimates a job's
// remaining work for the SRPT dequeue policy.
func (s Spec) WorkloadJobs() int {
	if s.Workload.Trace == nil {
		return len(s.Workload.Rows)
	}
	n := s.Workload.Trace.Jobs
	if s.Workload.Jobs > 0 && s.Workload.Jobs < n {
		n = s.Workload.Jobs
	}
	return n
}

// Runner expands the spec into the runner.Spec it describes. The expansion
// is deterministic: equal canonical specs yield matrices with byte-identical
// artifacts (see internal/runner).
func (s Spec) Runner() (runner.Spec, error) {
	rs, err := s.Axes()
	if err != nil {
		return runner.Spec{}, err
	}
	jobs, err := s.Normalize().jobSpecs()
	if err != nil {
		return runner.Spec{}, err
	}
	rs.Specs = jobs
	if err := rs.Validate(); err != nil {
		return runner.Spec{}, err
	}
	return rs, nil
}

// FromRunner lifts a runner-level matrix description (with an explicit
// trace workload) into the wire form. It is the inverse of Runner for
// row-based workloads and exists so in-process callers can obtain the
// content hash of a matrix they already built.
func FromRunner(rows []trace.JobRow, rs runner.Spec) Spec {
	s := Spec{
		Version:    Version,
		Workload:   Workload{Rows: rows},
		Schedulers: make([]Scheduler, len(rs.Schedulers)),
		Points:     make([]Point, len(rs.Points)),
		Runs:       rs.Runs,
		BaseSeed:   rs.BaseSeed,
		SeedStride: rs.SeedStride,
		MaxSlots:   rs.MaxSlots,
	}
	for i, sc := range rs.Schedulers {
		s.Schedulers[i] = Scheduler{Name: sc.Name, Params: sc.Params}
	}
	for i, p := range rs.Points {
		pt := Point{X: p.X, Machines: p.Machines, Speed: p.Speed}
		if p.Params != nil {
			params := *p.Params
			pt.Params = &params
		}
		s.Points[i] = pt
	}
	return s.Normalize()
}
