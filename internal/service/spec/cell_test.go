package spec

import (
	"bytes"
	"testing"

	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// cellPinSpec is a fixed 2×2×2 matrix with an explicit workload, a
// point-level params override, and MaxSlots — every input the cell hash
// derivation touches.
func cellPinSpec() Spec {
	eps := sched.Params{Epsilon: 0.6, DeviationFactor: 3}
	return Spec{
		Workload: Workload{Rows: []trace.JobRow{{
			ID: 1, Arrival: 0, Priority: 2,
			MapTasks: 3, MapScale: 100, ReduceTasks: 1, ReduceScale: 50,
			Ratio: 5, Alpha: 2.5,
		}}},
		Schedulers: []Scheduler{
			{Name: "fair"},
			{Name: "srptms+c", Params: sched.Params{Epsilon: 0.9, DeviationFactor: 3}},
		},
		Points: []Point{
			{X: 10, Machines: 25},
			{X: 20, Machines: 50, Params: &eps},
		},
		Runs:     2,
		BaseSeed: 7,
		MaxSlots: 100000,
	}
}

// TestCellHashGoldenPin pins the hash of one fixed cell. Cell hashes are
// the on-disk keys of internal/store's cells/ tier (see the cell-hash
// stability contract in this package's cell.go): if this test breaks, every
// persisted cell record just became unreachable — bump CellVersion instead
// of changing the version-1 derivation.
func TestCellHashGoldenPin(t *testing.T) {
	sp := cellPinSpec()
	// Cell (1,1,1): the override point, the parameterized scheduler, the
	// second replicate — every frozen rule (params collapse, seed
	// derivation, MaxSlots carry-through) shapes this hash.
	h, err := sp.CellHash(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const wantHash = "5b91f78e7fc645d8f5d639357f7aecbcbc8e63788c6f6b0d897f90ce5101e160"
	if h != wantHash {
		t.Errorf("golden cell hash drifted:\n got %s\nwant %s", h, wantHash)
	}
}

// TestCellHashAxisPermutation: permuting matrix axes must never change a
// cell's hash — the hash depends on what the cell simulates, not where it
// sits in its matrix. This is the property that makes cells reusable across
// overlapping sweeps.
func TestCellHashAxisPermutation(t *testing.T) {
	orig := cellPinSpec()
	perm := cellPinSpec()
	perm.Schedulers[0], perm.Schedulers[1] = perm.Schedulers[1], perm.Schedulers[0]
	perm.Points[0], perm.Points[1] = perm.Points[1], perm.Points[0]

	for si := 0; si < 2; si++ {
		for pi := 0; pi < 2; pi++ {
			for run := 0; run < 2; run++ {
				want, err := orig.CellHash(si, pi, run)
				if err != nil {
					t.Fatal(err)
				}
				got, err := perm.CellHash(1-si, 1-pi, run)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("cell (%d,%d,%d): hash changed under axis permutation", si, pi, run)
				}
			}
		}
	}

	// Growing the matrix must not move existing cells either.
	grown := cellPinSpec()
	grown.Schedulers = append(grown.Schedulers, Scheduler{Name: "dolly"})
	grown.Points = append(grown.Points, Point{X: 40, Machines: 80})
	grown.Runs = 3
	for si := 0; si < 2; si++ {
		for pi := 0; pi < 2; pi++ {
			for run := 0; run < 2; run++ {
				want, err := orig.CellHash(si, pi, run)
				if err != nil {
					t.Fatal(err)
				}
				got, err := grown.CellHash(si, pi, run)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("cell (%d,%d,%d): hash changed when the matrix grew", si, pi, run)
				}
			}
		}
	}
}

// TestCellHashOverrideCollapse: a point-level params override and the same
// params spelled on the scheduler row describe the same simulation, so
// their cells must share a hash across matrices.
func TestCellHashOverrideCollapse(t *testing.T) {
	eps := sched.Params{Epsilon: 0.6, DeviationFactor: 3}
	overridden := cellPinSpec() // point 1 overrides scheduler params with eps
	direct := cellPinSpec()
	direct.Schedulers[1].Params = eps
	direct.Points[1].Params = nil

	want, err := overridden.CellHash(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := direct.CellHash(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("override-collapsed cell does not match the directly parameterized cell")
	}
}

// TestCellHashSensitivity: coordinates that change what a cell simulates
// must change its hash.
func TestCellHashSensitivity(t *testing.T) {
	sp := cellPinSpec()
	base, err := sp.CellHash(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{base: "cell (0,0,0)"}
	for _, tc := range []struct {
		name       string
		si, pi, rn int
		mutate     func(*Spec)
	}{
		{"other scheduler", 1, 0, 0, nil},
		{"other point", 0, 1, 0, nil},
		{"other replicate", 0, 0, 1, nil},
		{"changed base seed", 0, 0, 0, func(s *Spec) { s.BaseSeed++ }},
		{"changed workload", 0, 0, 0, func(s *Spec) { s.Workload.Rows[0].Ratio++ }},
		{"changed max slots", 0, 0, 0, func(s *Spec) { s.MaxSlots++ }},
	} {
		mutated := cellPinSpec()
		if tc.mutate != nil {
			tc.mutate(&mutated)
		}
		h, err := mutated.CellHash(tc.si, tc.pi, tc.rn)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", tc.name, prev)
		}
		seen[h] = tc.name
	}
}

// TestCellSpecProjection: the single-cell projection is a valid spec, a
// fixed point of further projection, and hashes (as a cell) to the same
// address as the cell it projects.
func TestCellSpecProjection(t *testing.T) {
	sp := cellPinSpec()
	for si := 0; si < 2; si++ {
		for pi := 0; pi < 2; pi++ {
			for run := 0; run < 2; run++ {
				proj, err := sp.CellSpec(si, pi, run)
				if err != nil {
					t.Fatal(err)
				}
				canon, err := proj.Canonical()
				if err != nil {
					t.Fatalf("projection (%d,%d,%d) not canonicalizable: %v", si, pi, run, err)
				}
				if _, err := Parse(canon); err != nil {
					t.Fatalf("projection (%d,%d,%d) does not reparse: %v", si, pi, run, err)
				}
				again, err := proj.CellSpec(0, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				canon2, err := again.Canonical()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(canon, canon2) {
					t.Fatalf("projection (%d,%d,%d) is not a fixed point:\n%s\nvs\n%s",
						si, pi, run, canon, canon2)
				}
				want, err := sp.CellHash(si, pi, run)
				if err != nil {
					t.Fatal(err)
				}
				got, err := proj.CellHash(0, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("projection (%d,%d,%d) hashes to %s as a cell, want %s", si, pi, run, got, want)
				}
			}
		}
	}
}

// TestCellHashDomainSeparation: a single-cell matrix and its own cell
// projection share canonical bytes, yet their hashes key different store
// tiers and must not alias.
func TestCellHashDomainSeparation(t *testing.T) {
	proj, err := cellPinSpec().CellSpec(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	matrixHash, err := proj.Hash()
	if err != nil {
		t.Fatal(err)
	}
	cellHash, err := proj.CellHash(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if matrixHash == cellHash {
		t.Fatal("cell hash aliases the matrix hash")
	}
}

// TestCellHashBounds: out-of-range coordinates and invalid specs error.
func TestCellHashBounds(t *testing.T) {
	sp := cellPinSpec()
	for _, c := range [][3]int{{-1, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}} {
		if _, err := sp.CellHash(c[0], c[1], c[2]); err == nil {
			t.Errorf("cell %v accepted outside the matrix", c)
		}
		if _, err := sp.CellSpec(c[0], c[1], c[2]); err == nil {
			t.Errorf("projection %v accepted outside the matrix", c)
		}
	}
	if _, err := (Spec{}).CellHash(0, 0, 0); err == nil {
		t.Error("invalid spec hashed")
	}
}

// FuzzCellHashProjection: for any spec that parses and validates, the cell
// projection of its first and last cells must itself parse as a valid
// single-cell spec, be a fixed point of projection, and hash to the same
// cell address as the original coordinates.
func FuzzCellHashProjection(f *testing.F) {
	for _, sp := range []Spec{cellPinSpec(), tinySpec()} {
		canon, err := sp.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(canon)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			t.Skip()
		}
		norm := sp.Normalize()
		if err := norm.Validate(); err != nil {
			t.Skip()
		}
		last := [3]int{len(norm.Schedulers) - 1, len(norm.Points) - 1, norm.Runs - 1}
		for _, c := range [][3]int{{0, 0, 0}, last} {
			proj, err := norm.CellSpec(c[0], c[1], c[2])
			if err != nil {
				t.Fatalf("projection %v of a valid spec failed: %v", c, err)
			}
			canon, err := proj.Canonical()
			if err != nil {
				t.Fatalf("projection %v not canonicalizable: %v", c, err)
			}
			reparsed, err := Parse(canon)
			if err != nil {
				t.Fatalf("projection %v does not reparse: %v", c, err)
			}
			if err := reparsed.Validate(); err != nil {
				t.Fatalf("projection %v reparses invalid: %v", c, err)
			}
			if n := len(reparsed.Schedulers) * len(reparsed.Points) * reparsed.Normalize().Runs; n != 1 {
				t.Fatalf("projection %v describes %d cells, want 1", c, n)
			}
			again, err := proj.CellSpec(0, 0, 0)
			if err != nil {
				t.Fatalf("re-projection of %v failed: %v", c, err)
			}
			canon2, err := again.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canon, canon2) {
				t.Fatalf("projection %v is not a fixed point", c)
			}
			want, err := norm.CellHash(c[0], c[1], c[2])
			if err != nil {
				t.Fatal(err)
			}
			got, err := proj.CellHash(0, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("projection %v hashes to %s as a cell, want %s", c, got, want)
			}
		}
	})
}
