package spec

// Cell-level content addressing. A matrix is a deterministic reduce over its
// cells — one (scheduler, sweep point, seed replicate) simulation each — and
// every cell's outcome is a pure function of the single-cell projection of
// the spec: the shared workload, one scheduler row with its effective
// tunables, one point, and the replicate's derived seed. Two cells in two
// different matrices that project to the same single-cell spec therefore
// produce the same payload, which is what lets internal/store cache cell
// results across overlapping sweeps and lets a crashed matrix resume from
// the cells it already persisted.
//
// # Cell-hash stability contract (cell schema version 1)
//
// Like the matrix hash, the cell hash is an on-disk key (internal/store's
// cells/ tier), so its derivation is frozen: a hash computed by one build
// must match the hash computed by every later build. Frozen for cell schema
// version 1:
//
//   - the single-cell projection rules of CellSpec below (point-level Params
//     overrides collapsed into the scheduler row, Runs pinned to 1, BaseSeed
//     replaced by the replicate's CellSeed, SeedStride omitted);
//   - the cellKey struct's field order and json tags, with the workload
//     replaced by the SHA-256 of its canonical encoding so per-cell hashing
//     costs O(axes), not O(workload);
//   - the cellDomain prefix that separates cell hashes from matrix hashes;
//   - SHA-256 over prefix+key bytes, rendered as lowercase hex.
//
// Any change that alters the hash of an existing cell MUST bump CellVersion
// instead of mutating version 1. cell_test.go pins a golden hash.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mrclone/internal/runner"
)

// CellVersion is the current (and only) cell-addressing schema version.
const CellVersion = 1

// cellDomain separates the cell-hash namespace from the matrix-hash
// namespace: a single-cell matrix spec and its own cell projection share
// canonical bytes, and the prefix keeps their hashes from aliasing across
// the two store tiers.
const cellDomain = "mrclone-cell-v1\n"

// cellKey is the hashed identity of one cell. It is equivalent to the full
// single-cell projection (CellSpec): two cells have equal keys exactly when
// their projections have equal canonical bytes — the workload is represented
// by the digest of its canonical encoding, everything else verbatim.
type cellKey struct {
	Cell      int       `json:"cell"`     // CellVersion
	Workload  string    `json:"workload"` // SHA-256 hex of canonical workload JSON
	Scheduler Scheduler `json:"scheduler"`
	Point     Point     `json:"point"`
	Seed      int64     `json:"seed"`
	MaxSlots  int64     `json:"max_slots,omitempty"`
}

// cellAxes resolves cell coordinates against the normalized spec: the
// scheduler row with its effective params (a point-level override replaces
// the row's tunables) and the point stripped of that override. Callers have
// validated the spec; only the coordinates are checked here.
func (s Spec) cellAxes(si, pi, run int) (Scheduler, Point, error) {
	if si < 0 || si >= len(s.Schedulers) || pi < 0 || pi >= len(s.Points) ||
		run < 0 || run >= s.Runs {
		return Scheduler{}, Point{}, fmt.Errorf(
			"spec: cell (%d,%d,%d) outside %dx%dx%d matrix",
			si, pi, run, len(s.Schedulers), len(s.Points), s.Runs)
	}
	sc := s.Schedulers[si]
	pt := s.Points[pi]
	if pt.Params != nil {
		sc.Params = *pt.Params
		pt.Params = nil
	}
	return sc, pt, nil
}

// CellSpec returns the single-cell projection of cell (si, pi, run): a valid
// spec describing exactly that simulation — the same workload, the one
// scheduler with its effective tunables, the one point, one run, and the
// replicate's derived seed as the base seed. Identical cells in different
// matrices project to identical specs, and a projection is a fixed point:
// proj.CellSpec(0, 0, 0) equals proj.
func (s Spec) CellSpec(si, pi, run int) (Spec, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	sc, pt, err := s.cellAxes(si, pi, run)
	if err != nil {
		return Spec{}, err
	}
	proj := Spec{
		Version:    Version,
		Workload:   s.Workload,
		Schedulers: []Scheduler{sc},
		Points:     []Point{pt},
		Runs:       1,
		BaseSeed:   runner.CellSeed(s.BaseSeed, s.SeedStride, run),
		MaxSlots:   s.MaxSlots,
	}
	return proj.Normalize(), nil
}

// CellHasher hashes the cells of one matrix. The workload digest — the
// expensive part for explicit multi-thousand-row workloads — is computed
// once at construction, so Hash costs one small JSON marshal per cell.
type CellHasher struct {
	spec     Spec   // normalized and validated
	workload string // SHA-256 hex of the canonical workload encoding
}

// CellHasher validates the spec and precomputes its workload digest.
func (s Spec) CellHasher() (*CellHasher, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	wb, err := json.Marshal(s.Workload)
	if err != nil {
		return nil, fmt.Errorf("spec: encode workload: %w", err)
	}
	sum := sha256.Sum256(wb)
	return &CellHasher{spec: s, workload: hex.EncodeToString(sum[:])}, nil
}

// Hash returns the content address of cell (si, pi, run): the lowercase-hex
// SHA-256 of the domain-prefixed cellKey encoding. Equal across matrices
// exactly when the cells' single-cell projections are equal.
func (h *CellHasher) Hash(si, pi, run int) (string, error) {
	sc, pt, err := h.spec.cellAxes(si, pi, run)
	if err != nil {
		return "", err
	}
	key, err := json.Marshal(cellKey{
		Cell:      CellVersion,
		Workload:  h.workload,
		Scheduler: sc,
		Point:     pt,
		Seed:      runner.CellSeed(h.spec.BaseSeed, h.spec.SeedStride, run),
		MaxSlots:  h.spec.MaxSlots,
	})
	if err != nil {
		return "", fmt.Errorf("spec: encode cell key: %w", err)
	}
	sum := sha256.New()
	sum.Write([]byte(cellDomain))
	sum.Write(key)
	return hex.EncodeToString(sum.Sum(nil)), nil
}

// Total returns the matrix size the hasher addresses (schedulers × points ×
// runs of the normalized spec).
func (h *CellHasher) Total() int {
	return len(h.spec.Schedulers) * len(h.spec.Points) * h.spec.Runs
}

// CellHash is the one-shot form of CellHasher().Hash for callers addressing
// a single cell; loops over many cells should hold a CellHasher instead.
func (s Spec) CellHash(si, pi, run int) (string, error) {
	h, err := s.CellHasher()
	if err != nil {
		return "", err
	}
	return h.Hash(si, pi, run)
}
