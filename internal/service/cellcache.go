package service

import (
	"encoding/json"
	"errors"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
)

// storeCellCache adapts the store's cells/ tier to runner.CellCache for one
// flight. Coordinates are translated to content addresses by the flight's
// CellHasher, so a cell computed by any earlier matrix — same workload,
// scheduler row, point, and derived seed — resolves here regardless of where
// it sat in that matrix. Lookup and Publish run on runner worker goroutines;
// the store is safe for concurrent use, and counter updates take Service.mu
// briefly per cell.
//
// Every path degrades to recomputation: a missing, corrupt, or undecodable
// record is a miss, and a failed Publish only costs the next matrix a rerun
// of that cell. Neither can fail the flight.
type storeCellCache struct {
	svc    *Service
	st     *store.Store
	hasher *spec.CellHasher
}

// Lookup resolves cell (si, pi, run) from the cells tier.
func (c *storeCellCache) Lookup(si, pi, run int) (runner.CellPayload, bool) {
	hash, err := c.hasher.Hash(si, pi, run)
	if err != nil {
		// Unreachable for a flight built from a validated spec; count the
		// miss and recompute rather than guess.
		c.svc.countCellLookup(false, false, false)
		return runner.CellPayload{}, false
	}
	cell, err := c.st.GetCell(hash)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrCorrupt):
		c.svc.countCellLookup(false, true, false)
		return runner.CellPayload{}, false
	case errors.Is(err, store.ErrNotFound):
		c.svc.countCellLookup(false, false, false)
		return runner.CellPayload{}, false
	default:
		c.svc.countCellLookup(false, false, true)
		return runner.CellPayload{}, false
	}
	var p runner.CellPayload
	if err := json.Unmarshal(cell.Payload, &p); err != nil {
		// The record's envelope checksum held but the payload is not a cell
		// payload — a foreign or damaged write. Drop it so it cannot miss
		// again and recompute.
		_ = c.st.DeleteCell(hash)
		c.svc.countCellLookup(false, false, true)
		return runner.CellPayload{}, false
	}
	c.svc.countCellLookup(true, false, false)
	return p, true
}

// Publish stores a freshly computed cell payload under its content address.
func (c *storeCellCache) Publish(si, pi, run int, p runner.CellPayload) {
	hash, err := c.hasher.Hash(si, pi, run)
	if err != nil {
		return
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return
	}
	if err := c.st.PutCell(store.Cell{
		Hash:      hash,
		Payload:   payload,
		CreatedAt: time.Now(),
	}); err != nil {
		c.svc.countCellPublish(0, true)
		return
	}
	c.svc.countCellPublish(int64(len(payload)), false)
}

// countCellLookup records one cell-cache lookup outcome.
func (s *Service) countCellLookup(hit, corrupt, ioErr bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.cellHits++
		return
	}
	s.cellMisses++
	if corrupt {
		s.quarantined++
	}
	if ioErr {
		s.storeErrors++
	}
}

// countCellPublish records one cell-cache publish outcome.
func (s *Service) countCellPublish(bytes int64, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if failed {
		s.storeErrors++
		return
	}
	s.cellBytes += bytes
}

// cellCacheEnabled reports whether this service persists and reuses
// per-cell results: a disk store is configured and cell caching was not
// disabled.
func (s *Service) cellCacheEnabled() bool {
	return s.storeHandle != nil && !s.cfg.DisableCellCache
}

// cellCacheFor builds the runner cell-cache hook for one flight, or nil when
// cell caching is off. A spec that cannot be hashed (unreachable for specs
// that passed Submit validation) runs uncached rather than failing.
func (s *Service) cellCacheFor(fl *flight) runner.CellCache {
	if !s.cellCacheEnabled() {
		return nil
	}
	h, err := fl.sp.CellHasher()
	if err != nil {
		return nil
	}
	return &storeCellCache{svc: s, st: s.storeHandle, hasher: h}
}
