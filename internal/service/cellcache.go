package service

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
)

// storeCellCache adapts the store's cells/ tier to runner.CellCache for one
// flight. Coordinates are translated to content addresses by the flight's
// CellHasher, so a cell computed by any earlier matrix — same workload,
// scheduler row, point, and derived seed — resolves here regardless of where
// it sat in that matrix. Lookup and Publish run on runner worker goroutines;
// the store is safe for concurrent use, and counter updates take Service.mu
// briefly per cell.
//
// Every path degrades to recomputation: a missing, corrupt, or undecodable
// record is a miss, and a failed Publish only costs the next matrix a rerun
// of that cell. Neither can fail the flight.
type storeCellCache struct {
	svc    *Service
	st     *store.Store
	hasher *spec.CellHasher
}

// Lookup resolves cell (si, pi, run) from the cells tier.
func (c *storeCellCache) Lookup(si, pi, run int) (runner.CellPayload, bool) {
	hash, err := c.hasher.Hash(si, pi, run)
	if err != nil {
		// Unreachable for a flight built from a validated spec; count the
		// miss and recompute rather than guess.
		c.svc.countCellLookup(false, false, false)
		return runner.CellPayload{}, false
	}
	cell, err := c.st.GetCell(hash)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrCorrupt):
		c.svc.countCellLookup(false, true, false)
		return runner.CellPayload{}, false
	case errors.Is(err, store.ErrNotFound):
		c.svc.countCellLookup(false, false, false)
		return runner.CellPayload{}, false
	default:
		c.svc.countCellLookup(false, false, true)
		return runner.CellPayload{}, false
	}
	var p runner.CellPayload
	if err := json.Unmarshal(cell.Payload, &p); err != nil {
		// The record's envelope checksum held but the payload is not a cell
		// payload — a foreign or damaged write. Drop it so it cannot miss
		// again and recompute.
		_ = c.st.DeleteCell(hash)
		c.svc.countCellLookup(false, false, true)
		return runner.CellPayload{}, false
	}
	c.svc.countCellLookup(true, false, false)
	return p, true
}

// Publish stores a freshly computed cell payload under its content address.
func (c *storeCellCache) Publish(si, pi, run int, p runner.CellPayload) {
	hash, err := c.hasher.Hash(si, pi, run)
	if err != nil {
		return
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return
	}
	if err := c.st.PutCell(store.Cell{
		Hash:      hash,
		Payload:   payload,
		CreatedAt: time.Now(),
	}); err != nil {
		c.svc.countCellPublish(0, true)
		return
	}
	c.svc.countCellPublish(int64(len(payload)), false)
}

// countCellLookup records one cell-cache lookup outcome.
func (s *Service) countCellLookup(hit, corrupt, ioErr bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.cellHits++
		return
	}
	s.cellMisses++
	if corrupt {
		s.quarantined++
	}
	if ioErr {
		s.storeErrors++
	}
}

// countCellPublish records one cell-cache publish outcome.
func (s *Service) countCellPublish(bytes int64, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if failed {
		s.storeErrors++
		return
	}
	s.cellBytes += bytes
}

// cellCacheEnabled reports whether this service persists and reuses
// per-cell results: a disk store is configured and cell caching was not
// disabled.
func (s *Service) cellCacheEnabled() bool {
	return s.storeHandle != nil && !s.cfg.DisableCellCache
}

// cellCacheFor builds the runner cell-cache hook for one flight, or nil when
// cell caching is off. A spec that cannot be hashed (unreachable for specs
// that passed Submit validation) runs uncached rather than failing. A flight
// carrying a peer hint (its hash was relocated by a pool membership change)
// gets the peer-backed cache: local misses try the previous ring owner
// before falling back to simulation.
func (s *Service) cellCacheFor(fl *flight) runner.CellCache {
	if !s.cellCacheEnabled() {
		return nil
	}
	h, err := fl.sp.CellHasher()
	if err != nil {
		return nil
	}
	local := &storeCellCache{svc: s, st: s.storeHandle, hasher: h}
	if fl.peer != "" {
		return &peerCellCache{local: local, peer: fl.peer, ctx: fl.ctx}
	}
	return local
}

// peerCellCache layers a peer shard behind the local cells tier for one
// relocated flight: a cell the local store misses is fetched from the
// previous ring owner, verified against its envelope checksum, installed
// through the store's crash-atomic cell write path, and only then served as
// a hit. Every failure — transport, 404, verification — degrades to the
// local miss the runner was about to take anyway.
type peerCellCache struct {
	local *storeCellCache
	peer  string
	ctx   context.Context // flight context: cancelling the flight stops fetches
}

func (c *peerCellCache) Lookup(si, pi, run int) (runner.CellPayload, bool) {
	if p, ok := c.local.Lookup(si, pi, run); ok {
		return p, true
	}
	hash, err := c.local.hasher.Hash(si, pi, run)
	if err != nil {
		return runner.CellPayload{}, false
	}
	payload, err := c.local.svc.fetchPeerCell(c.ctx, c.peer, hash)
	if err != nil {
		c.local.svc.countPeerFetch(false, 0)
		return runner.CellPayload{}, false
	}
	var p runner.CellPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		c.local.svc.countPeerFetch(false, 0)
		return runner.CellPayload{}, false
	}
	// Install locally so the next matrix sharing this cell finds it without
	// a network hop; a failed install only costs that future lookup.
	_ = c.local.st.PutCell(store.Cell{Hash: hash, Payload: payload, CreatedAt: time.Now()})
	c.local.svc.countPeerFetch(true, int64(len(payload)))
	return p, true
}

func (c *peerCellCache) Publish(si, pi, run int, p runner.CellPayload) {
	c.local.Publish(si, pi, run, p)
}

// probeCellCache is the read-only cousin of storeCellCache used by the
// assembly fast path: lookups are silent (a probe that aborts on its first
// miss would otherwise skew the hit-rate counters) and Publish is a no-op —
// every cell it reads is already persisted.
type probeCellCache struct {
	st     *store.Store
	hasher *spec.CellHasher
}

func (c *probeCellCache) Lookup(si, pi, run int) (runner.CellPayload, bool) {
	hash, err := c.hasher.Hash(si, pi, run)
	if err != nil {
		return runner.CellPayload{}, false
	}
	cell, err := c.st.GetCell(hash)
	if err != nil {
		return runner.CellPayload{}, false
	}
	var p runner.CellPayload
	if err := json.Unmarshal(cell.Payload, &p); err != nil {
		return runner.CellPayload{}, false
	}
	return p, true
}

func (c *probeCellCache) Publish(si, pi, run int, p runner.CellPayload) {}

// tryAssemble attempts the worker-free completion path for a freshly
// reserved flight: when every cell of the matrix is already in the cells
// tier, the artifact is stitched together from them directly and the flight
// completes without ever occupying a queue slot or a worker. Called off the
// lock while s.reserved holds the flight's slot; on success (or a cancel
// that raced the assembly) it settles the reservation itself and the caller
// returns the status. On a miss it leaves the reservation for the caller's
// normal enqueue path.
func (s *Service) tryAssemble(fl *flight, j *jobState) (JobStatus, bool) {
	if !s.cellCacheEnabled() {
		return JobStatus{}, false
	}
	h, err := fl.sp.CellHasher()
	if err != nil {
		return JobStatus{}, false
	}
	axes, err := fl.sp.Axes()
	if err != nil {
		return JobStatus{}, false
	}
	res, ok := runner.Assemble(axes, &probeCellCache{st: s.storeHandle, hasher: h})
	if !ok {
		return JobStatus{}, false
	}
	cached, err := encodeResult(fl.hash, res)
	if err != nil {
		// Deterministic encoding failing means the payloads are unusable;
		// treat as a miss and recompute.
		return JobStatus{}, false
	}
	// Same persist-before-announce rule as runFlight: once a client sees
	// done, a crash must not lose the artifact it was promised.
	persistFailed := s.storeHandle.PutArtifacts(store.Artifacts{
		Hash:         cached.Hash,
		JSON:         cached.JSON,
		CSV:          cached.CSV,
		AggregateCSV: cached.AggregateCSV,
		Cells:        cached.Cells,
		CreatedAt:    cached.CreatedAt,
	}) != nil

	s.mu.Lock()
	defer s.mu.Unlock()
	if persistFailed {
		s.storeErrors++
	}
	s.reserved--
	if fl.cancelled {
		// Cancel already detached every job and removed the flight; the
		// assembled artifact stays persisted for the next submission.
		return j.status(), true
	}
	if s.inflight[fl.hash] == fl {
		delete(s.inflight, fl.hash)
	}
	fl.cancel()
	s.cache.add(cached)
	s.assembled++
	total := int64(fl.total)
	s.cellsDone += total
	s.cellHits += total
	jobs := fl.jobs
	fl.jobs = nil
	for _, jb := range jobs {
		s.tenantAcctTerminal(jb, StateQueued)
		jb.state = StateDone
		jb.cached = true
		jb.result = cached
		jb.done, jb.cachedCells = jb.total, jb.total
		jb.flight = nil
		jb.terminalAt = time.Now()
		s.jobsDone++
		jb.emit(Event{Type: EventCells, Done: jb.total, CachedCells: jb.total, Total: jb.total})
		jb.emit(Event{Type: EventDone, Done: jb.done, Total: jb.total, Cached: true})
		s.persistJob(jb)
		s.obsv.log.Info("job done", append(jobAttrs(jb), "cached", true, "source", "cells")...)
	}
	return j.status(), true
}
