package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"mrclone/internal/service/spec"
)

// assertQuarantineEmpty fails the test if the store's quarantine directory
// holds anything: peer verification must reject bad bytes before any disk
// write, so a hostile peer can never populate the local quarantine.
func assertQuarantineEmpty(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("quarantine holds %d entries after a rejected peer fetch, want none", len(entries))
	}
}

// peerCtx attaches a peer base URL the way the HTTP layer does for a
// relocated submission.
func peerCtx(base string) context.Context {
	return ContextWithPeer(context.Background(), base)
}

// TestPeerFetchAdoptsRelocatedArtifacts is the happy path: a shard that
// misses its disk for a peer-hinted submission pulls the verified artifacts
// from the previous owner, installs them, and completes the job as a cache
// hit — zero flights, byte-identical artifacts.
func TestPeerFetchAdoptsRelocatedArtifacts(t *testing.T) {
	sp := overlapSpec([]spec.Point{pointA})
	want := coldArtifacts(t, sp)

	owner := New(Config{Workers: 1, Store: openTestStore(t, t.TempDir()), GCInterval: -1})
	defer closeService(t, owner)
	st, err := owner.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, owner, st.ID, StateDone)
	peerSrv := httptest.NewServer(owner.Handler())
	defer peerSrv.Close()

	dirB := t.TempDir()
	adopter := New(Config{Workers: 1, Store: openTestStore(t, dirB), GCInterval: -1})
	defer closeService(t, adopter)
	st2, err := adopter.SubmitContext(peerCtx(peerSrv.URL), sp)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("peer-hinted submission = %+v, want done and cached on arrival", st2)
	}
	res, err := adopter.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, res, want, "peer-fetched matrix")

	m := adopter.Metrics()
	if m.Flights != 0 {
		t.Errorf("adopter ran %d flights, want 0 (peer fetch, not recompute)", m.Flights)
	}
	if m.PeerFetchHits != 1 || m.PeerFetchMisses != 0 {
		t.Errorf("peer fetch hits/misses = %d/%d, want 1/0", m.PeerFetchHits, m.PeerFetchMisses)
	}
	if m.PeerFetchBytes <= 0 {
		t.Errorf("peer fetch bytes = %d, want > 0", m.PeerFetchBytes)
	}
	if m.DiskHits != 0 {
		t.Errorf("peer adoption counted %d disk hits, want 0 (separate counters)", m.DiskHits)
	}
	// The install went through the normal write path: a plain resubmission
	// now completes from the local tier without touching the peer.
	peerSrv.Close()
	st3, err := adopter.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateDone || !st3.Cached {
		t.Fatalf("post-install resubmission = %+v, want done and cached locally", st3)
	}
}

// TestPeerCellFetchCoversOverlap: when the peer lacks the artifact itself
// (it never ran this exact matrix) the flight still executes, but the cell
// tier consults the peer per cell — the overlap arrives over the wire, only
// the disjoint cells simulate, and the artifact matches a cold run.
func TestPeerCellFetchCoversOverlap(t *testing.T) {
	owner := New(Config{Workers: 1, Store: openTestStore(t, t.TempDir()), GCInterval: -1})
	defer closeService(t, owner)
	stA, err := owner.Submit(overlapSpec([]spec.Point{pointA, pointB})) // 4 cells
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, owner, stA.ID, StateDone)
	peerSrv := httptest.NewServer(owner.Handler())
	defer peerSrv.Close()

	adopter := New(Config{Workers: 1, Store: openTestStore(t, t.TempDir()), GCInterval: -1})
	defer closeService(t, adopter)
	matrixB := overlapSpec([]spec.Point{pointB, pointC}) // 4 cells, 2 shared
	stB, err := adopter.SubmitContext(peerCtx(peerSrv.URL), matrixB)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, adopter, stB.ID, StateDone)
	if final.CachedCells != 2 {
		t.Errorf("peer-hinted matrix reports %d cached cells, want the overlap (2)", final.CachedCells)
	}
	res, err := adopter.Result(stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, res, coldArtifacts(t, matrixB), "peer-cell matrix")

	m := adopter.Metrics()
	if m.Flights != 1 {
		t.Errorf("adopter ran %d flights, want 1", m.Flights)
	}
	if m.PeerFetchHits != 2 {
		t.Errorf("peer cell hits = %d, want 2 (the overlap)", m.PeerFetchHits)
	}
	// The artifact probe missed on the peer (it never ran matrix B), and the
	// two disjoint cells missed too.
	if m.PeerFetchMisses < 1 {
		t.Errorf("peer fetch misses = %d, want >= 1 (the artifact probe)", m.PeerFetchMisses)
	}
}

// TestPeerFetchRejectsCorruptArtifacts is the corruption satellite: a peer
// serving truncated, bit-flipped, or mislabeled artifact payloads must be
// rejected by checksum verification before anything touches disk — the local
// quarantine stays empty (nothing was installed to quarantine), the job
// falls back to recomputation, and the recomputed artifact is byte-identical
// to the ground truth.
func TestPeerFetchRejectsCorruptArtifacts(t *testing.T) {
	sp := overlapSpec([]spec.Point{pointA})
	want := coldArtifacts(t, sp)
	goodWire := func() peerArtifactsWire {
		return peerArtifactsWire{
			Hash:         want.Hash,
			Cells:        want.Cells,
			CreatedAtMs:  want.CreatedAt.UnixMilli(),
			JSON:         append([]byte(nil), want.JSON...),
			CSV:          append([]byte(nil), want.CSV...),
			AggregateCSV: append([]byte(nil), want.AggregateCSV...),
			Sums: map[string]string{
				"json":          sha256Hex(want.JSON),
				"csv":           sha256Hex(want.CSV),
				"aggregate_csv": sha256Hex(want.AggregateCSV),
			},
		}
	}
	for _, tc := range []struct {
		name string
		body func(t *testing.T) []byte
	}{
		{"truncated", func(t *testing.T) []byte {
			b, err := json.Marshal(goodWire())
			if err != nil {
				t.Fatal(err)
			}
			return b[:len(b)/2]
		}},
		{"bit-flipped-part", func(t *testing.T) []byte {
			w := goodWire()
			w.JSON[len(w.JSON)/2] ^= 0x40 // declared sums no longer match
			b, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"foreign-hash", func(t *testing.T) []byte {
			w := goodWire()
			w.Hash = "deadbeefdeadbeefdeadbeefdeadbeef"
			b, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"missing-sum", func(t *testing.T) []byte {
			w := goodWire()
			delete(w.Sums, "csv")
			b, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body := tc.body(t)
			fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if bytes.Contains([]byte(r.URL.Path), []byte("/v1/peer/artifacts/")) {
					w.Header().Set("Content-Type", "application/json")
					_, _ = w.Write(body)
					return
				}
				http.NotFound(w, r)
			}))
			defer fake.Close()

			dir := t.TempDir()
			svc := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
			defer closeService(t, svc)
			st, err := svc.SubmitContext(peerCtx(fake.URL), sp)
			if err != nil {
				t.Fatal(err)
			}
			final := waitState(t, svc, st.ID, StateDone)
			if final.Cached {
				t.Error("corrupt peer bytes were served as a cache hit")
			}
			res, err := svc.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			sameArtifacts(t, res, want, "recomputed after corrupt peer")

			m := svc.Metrics()
			if m.Flights != 1 {
				t.Errorf("flights = %d, want 1 (fallback to recomputation)", m.Flights)
			}
			if m.PeerFetchHits != 0 {
				t.Errorf("peer fetch hits = %d, want 0 — corrupt bytes must never verify", m.PeerFetchHits)
			}
			if m.PeerFetchMisses < 1 {
				t.Errorf("peer fetch misses = %d, want >= 1", m.PeerFetchMisses)
			}
			assertQuarantineEmpty(t, dir)
		})
	}
}

// TestPeerCellFetchRejectsCorruptCells: the per-cell wire has the same
// verify-before-install rule — a peer serving cell envelopes whose payload
// does not match its declared checksum contributes nothing, every cell
// recomputes, and the quarantine stays empty.
func TestPeerCellFetchRejectsCorruptCells(t *testing.T) {
	sp := overlapSpec([]spec.Point{pointA}) // 2 cells
	want := coldArtifacts(t, sp)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hash := filepath.Base(r.URL.Path)
		if !bytes.Contains([]byte(r.URL.Path), []byte("/v1/peer/cells/")) {
			http.NotFound(w, r) // no artifact entry: force the cell path
			return
		}
		payload := []byte(`{"looks":"plausible"}`)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(peerCellWire{
			Hash:    hash,
			Size:    int64(len(payload)),
			SHA256:  sha256Hex([]byte("entirely different bytes")),
			Payload: json.RawMessage(payload),
		})
	}))
	defer fake.Close()

	dir := t.TempDir()
	svc := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, svc)
	st, err := svc.SubmitContext(peerCtx(fake.URL), sp)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, svc, st.ID, StateDone)
	if final.CachedCells != 0 {
		t.Errorf("corrupt peer cells counted as %d cached cells, want 0", final.CachedCells)
	}
	res, err := svc.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, res, want, "recomputed after corrupt peer cells")

	m := svc.Metrics()
	if m.PeerFetchHits != 0 {
		t.Errorf("peer fetch hits = %d, want 0", m.PeerFetchHits)
	}
	if m.PeerFetchMisses < 3 { // artifact probe + both cells
		t.Errorf("peer fetch misses = %d, want >= 3", m.PeerFetchMisses)
	}
	assertQuarantineEmpty(t, dir)
}
