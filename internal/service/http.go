package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"

	"mrclone/internal/obs"
	"mrclone/internal/service/spec"
	"mrclone/internal/tenant"
)

// MaxSpecBytes bounds the accepted request body: large enough for a full
// 6064-row explicit trace, small enough to shed abusive payloads. Exported
// so the gateway tier enforces the same cap as the shards it fronts.
const MaxSpecBytes = 32 << 20

// Handler returns the HTTP/JSON API of the service:
//
//	POST   /v1/matrices              submit a spec; 200 on a cache hit, 202 otherwise
//	GET    /v1/matrices/{id}         job status
//	GET    /v1/matrices/{id}/result  artifact (?format=json|csv|aggregate)
//	DELETE /v1/matrices/{id}         cancel
//	GET    /v1/matrices/{id}/events  lifecycle + progress as Server-Sent Events
//	GET    /v1/peer/artifacts/{hash} stored artifacts, for peer shards (no tenant auth)
//	GET    /v1/peer/cells/{hash}     stored cell record, for peer shards (no tenant auth)
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus-style counters
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.handleSubmit)
	mux.HandleFunc("GET /v1/matrices/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/matrices/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/matrices/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/matrices/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/peer/artifacts/{hash}", s.handlePeerArtifacts)
	mux.HandleFunc("GET /v1/peer/cells/{hash}", s.handlePeerCells)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.instrument(mux)
}

// writeJSON renders v with a status code; encoding failures are ignored
// (the status line is already out).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// retryAfterSeconds renders a wait as a whole-second Retry-After value,
// rounded up so a client that honors it exactly does not immediately trip
// the limiter again. Zero (quota rejections, full queue) reads as "soon".
func retryAfterSeconds(d float64) string {
	secs := int(math.Ceil(d))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeAuthError maps a tenant authentication/admission failure onto HTTP:
// missing or unknown credentials are 401 with a challenge, a disabled
// tenant is 403, and a rate-limited one is 429 with Retry-After.
func writeAuthError(w http.ResponseWriter, err error) {
	var rl *tenant.RateLimitError
	switch {
	case errors.As(err, &rl):
		w.Header().Set("Retry-After", retryAfterSeconds(rl.RetryAfter.Seconds()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, tenant.ErrDisabled):
		writeError(w, http.StatusForbidden, err)
	default:
		w.Header().Set("WWW-Authenticate", `Bearer realm="mrclone"`)
		writeError(w, http.StatusUnauthorized, err)
	}
}

// authorize resolves the request's tenant for read/cancel routes. Without a
// registry every request is the anonymous tenant; with one, a valid token is
// required (but no submission rate is consumed — only POST pays the bucket).
// On failure the response has been written and ok is false.
func (s *Service) authorize(w http.ResponseWriter, r *http.Request) (string, bool) {
	reg := s.registry()
	if reg == nil {
		return "", true
	}
	t, err := reg.Authenticate(tenant.BearerToken(r))
	if err != nil {
		s.mu.Lock()
		s.unauthorized++
		s.mu.Unlock()
		writeAuthError(w, err)
		return "", false
	}
	return t.Name, true
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > MaxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec exceeds %d bytes", MaxSpecBytes))
		return
	}
	sp, err := spec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if peer := r.Header.Get(PeerHeader); peer != "" && validPeerURL(peer) {
		ctx = ContextWithPeer(ctx, peer)
	}
	st, err := s.SubmitTokenContext(ctx, tenant.BearerToken(r), sp)
	switch {
	case errors.Is(err, tenant.ErrRateLimited), errors.Is(err, tenant.ErrDisabled),
		errors.Is(err, tenant.ErrNoToken), errors.Is(err, tenant.ErrUnknownToken):
		writeAuthError(w, err)
	case errors.Is(err, ErrTenantQuota), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(0))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case st.State == StateDone:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	res, err := s.Result(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotReady):
			writeError(w, http.StatusConflict, err)
		default: // failed or cancelled
			writeError(w, http.StatusGone, err)
		}
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(res.JSON)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_, _ = w.Write(res.CSV)
	case "aggregate":
		w.Header().Set("Content-Type", "text/csv")
		_, _ = w.Write(res.AggregateCSV)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, csv, or aggregate)", format))
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.authorize(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	if s.registry() != nil {
		// Cancellation is destructive, so it is owner-only: a job submitted
		// under one token cannot be torn down by another tenant.
		st, err := s.Get(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if st.Tenant != "" && st.Tenant != tn {
			writeError(w, http.StatusForbidden,
				fmt.Errorf("job %s belongs to another tenant", id))
			return
		}
	}
	cancelled, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st, err := s.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Cancelled bool `json:"cancelled"`
		JobStatus
	}{cancelled, st})
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authorize(w, r); !ok {
		return
	}
	sub, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		e, ok := sub.Next(r.Context())
		if !ok {
			return
		}
		data, err := json.Marshal(e)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
			return
		}
		flusher.Flush()
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", obs.ExpoContentType)
	e := obs.NewExpoWriter(w)
	for _, row := range []struct {
		name  string
		help  string
		typ   string
		value float64
	}{
		{"mrclone_submissions_total", "Matrix submissions accepted.", "counter", float64(m.Submissions)},
		{"mrclone_cache_hits_total", "Submissions served from the in-memory result cache.", "counter", float64(m.CacheHits)},
		{"mrclone_disk_hits_total", "Artifact reads served from the disk store.", "counter", float64(m.DiskHits)},
		{"mrclone_dedup_hits_total", "Submissions attached to an in-flight computation.", "counter", float64(m.DedupHits)},
		{"mrclone_flights_total", "Distinct matrix computations registered.", "counter", float64(m.Flights)},
		{"mrclone_jobs_done_total", "Jobs finished successfully.", "counter", float64(m.JobsDone)},
		{"mrclone_jobs_failed_total", "Jobs finished in failure.", "counter", float64(m.JobsFailed)},
		{"mrclone_jobs_cancelled_total", "Jobs cancelled by clients or shutdown.", "counter", float64(m.JobsCancelled)},
		{"mrclone_gc_jobs_total", "Terminal jobs aged out of the job table.", "counter", float64(m.JobsGCed)},
		{"mrclone_gc_artifacts_total", "TTL-expired artifacts deleted from the disk store.", "counter", float64(m.ArtifactsGCed)},
		{"mrclone_quarantined_total", "Corrupt disk entries moved to quarantine.", "counter", float64(m.Quarantined)},
		{"mrclone_store_errors_total", "Disk store operations that failed.", "counter", float64(m.StoreErrors)},
		{"mrclone_queue_depth", "Matrices waiting for a worker.", "gauge", float64(m.QueueDepth)},
		{"mrclone_queue_capacity", "Bounded queue capacity.", "gauge", float64(m.QueueCapacity)},
		{"mrclone_cache_entries", "Matrices held in the in-memory result cache.", "gauge", float64(m.CacheEntries)},
		{"mrclone_cache_bytes", "Artifact bytes held in the in-memory result cache.", "gauge", float64(m.CacheBytes)},
		{"mrclone_jobs_tracked", "Job records currently in the job table.", "gauge", float64(m.JobsTracked)},
		{"mrclone_persistent", "1 when a disk store is configured.", "gauge", boolGauge(m.Persistent)},
		{"mrclone_cells_done_total", "Matrix cells landed (simulated or resolved from the cell cache).", "counter", float64(m.CellsDone)},
		{"mrclone_cell_hits_total", "Cells resolved from the content-addressed cell cache.", "counter", float64(m.CellHits)},
		{"mrclone_cell_misses_total", "Cell lookups that missed the cell cache.", "counter", float64(m.CellMisses)},
		{"mrclone_cell_bytes_total", "Cell payload bytes written to the cell store.", "counter", float64(m.CellBytes)},
		{"mrclone_gc_cells_total", "Expired or evicted cell records deleted from the disk store.", "counter", float64(m.CellsGCed)},
		{"mrclone_assembled_total", "Matrices assembled entirely from cached cells without a worker slot.", "counter", float64(m.Assembled)},
		{"mrclone_peer_fetch_hits_total", "Artifacts and cells adopted from a peer shard after a pool membership change.", "counter", float64(m.PeerFetchHits)},
		{"mrclone_peer_fetch_misses_total", "Peer fetches that missed or failed verification and fell back to recomputation.", "counter", float64(m.PeerFetchMisses)},
		{"mrclone_peer_fetch_bytes_total", "Payload bytes installed from verified peer fetches.", "counter", float64(m.PeerFetchBytes)},
		{"mrclone_unauthorized_total", "Requests rejected for missing or invalid credentials.", "counter", float64(m.Unauthorized)},
		{"mrclone_uptime_seconds", "Service uptime.", "gauge", m.UptimeSeconds},
		{"mrclone_cells_per_second", "Lifetime mean simulation throughput.", "gauge", m.CellsPerSecond},
	} {
		e.Header(row.name, row.help, row.typ)
		e.Sample(row.name, nil, row.value)
	}
	s.obsv.writeHistograms(e)
	obs.WriteRuntimeMetrics(e)
	if len(m.Tenants) == 0 {
		return
	}
	names := make([]string, 0, len(m.Tenants))
	for name := range m.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, row := range []struct {
		name string
		help string
		typ  string
		get  func(TenantMetrics) float64
	}{
		{"mrclone_tenant_submitted_total", "Submissions accepted, by tenant.", "counter", func(t TenantMetrics) float64 { return float64(t.Submitted) }},
		{"mrclone_tenant_rejected_total", "Submissions rejected by quota or rate limit, by tenant.", "counter", func(t TenantMetrics) float64 { return float64(t.Rejected) }},
		{"mrclone_tenant_queued", "Jobs waiting for a worker, by tenant.", "gauge", func(t TenantMetrics) float64 { return float64(t.Queued) }},
		{"mrclone_tenant_running", "Jobs occupying a worker, by tenant.", "gauge", func(t TenantMetrics) float64 { return float64(t.Running) }},
		{"mrclone_tenant_cell_seconds_total", "Worker wall-clock seconds consumed, by tenant.", "counter", func(t TenantMetrics) float64 { return t.CellSeconds }},
	} {
		e.Header(row.name, row.help, row.typ)
		for _, name := range names {
			e.Sample(row.name, []obs.Label{{Name: "tenant", Value: name}}, row.get(m.Tenants[name]))
		}
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
