package service

import (
	"context"
	"sync"
)

// EventType discriminates job lifecycle events.
type EventType string

// Event types emitted over a job's event stream. State transitions are
// replayed to late subscribers; progress events are live-only.
const (
	EventQueued    EventType = "queued"
	EventRunning   EventType = "running"
	EventProgress  EventType = "progress"
	EventCells     EventType = "cells"
	EventDone      EventType = "done"
	EventFailed    EventType = "failed"
	EventCancelled EventType = "cancelled"
)

// Event is one entry of a job's event stream.
type Event struct {
	Type EventType `json:"type"`
	// Job is the subscriber's job ID.
	Job string `json:"job"`
	// Done/Total report matrix-cell progress; set on progress and cells
	// events and on the running event (0/Total).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Cached marks a done event served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// CachedCells is the count of landed cells that were resolved from the
	// cell cache rather than simulated; set on cells events.
	CachedCells int `json:"cached_cells,omitempty"`
	// Error carries the failure message on failed events.
	Error string `json:"error,omitempty"`
	// Tenant names the tenant that owns the job; empty for anonymous
	// submissions, keeping single-tenant streams byte-identical.
	Tenant string `json:"tenant,omitempty"`
	// Lifecycle timestamps (RFC 3339, millisecond precision, UTC), stamped
	// on terminal frames so an SSE consumer learns the job's full timing —
	// queue wait and run duration fall out of the three — without a second
	// status fetch. Empty on non-terminal frames and for phases never
	// reached (e.g. StartedAt on a cache hit).
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// Terminal reports whether the event ends the stream.
func (e Event) Terminal() bool {
	switch e.Type {
	case EventDone, EventFailed, EventCancelled:
		return true
	}
	return false
}

// Subscription is an unbounded, ordered event stream for one job. Producers
// never block (events accumulate in a slice), so a slow SSE client cannot
// stall the scheduler; the stream closes itself after a terminal event.
type Subscription struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

func newSubscription() *Subscription {
	s := &Subscription{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// publish appends an event; terminal events close the stream.
func (s *Subscription) publish(e Event) {
	s.mu.Lock()
	if !s.closed {
		// Coalesce back-to-back pending progress and cells events so a slow
		// consumer of a large matrix holds O(1) backlog per stream, not
		// O(cells). Only newest-wins streams coalesce: every frame carries
		// the full running counts, so dropping the stale one loses nothing.
		if n := len(s.events); n > 0 && coalescable(e.Type) && s.events[n-1].Type == e.Type {
			s.events[n-1] = e
		} else {
			s.events = append(s.events, e)
		}
		if e.Terminal() {
			s.closed = true
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// coalescable reports whether back-to-back events of this type carry full
// running counts, making newest-wins coalescing lossless.
func coalescable(t EventType) bool {
	return t == EventProgress || t == EventCells
}

// Next blocks until an event is available, the stream has drained past its
// terminal event, or ctx is done. The second return is false when no more
// events will arrive.
func (s *Subscription) Next(ctx context.Context) (Event, bool) {
	// Wake the cond wait when the caller gives up.
	stop := context.AfterFunc(ctx, s.cond.Broadcast)
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.events) > 0 {
			e := s.events[0]
			s.events = s.events[1:]
			return e, true
		}
		if s.closed || ctx.Err() != nil {
			return Event{}, false
		}
		s.cond.Wait()
	}
}
