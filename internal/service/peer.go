package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mrclone/internal/store"
)

// Peer artifact fetch: when a gateway membership change relocates a spec
// hash to a new owner shard, the gateway stamps the submission with the
// previous owner's base URL (PeerHeader). A shard that misses its own disk
// store for such a submission first asks that peer for the already-computed
// artifacts — GET /v1/peer/artifacts/{hash}, and per cell
// /v1/peer/cells/{hash} for the cell tier — verifies every byte against the
// checksums it computes itself, installs the result through the store's
// crash-atomic write path, and only then completes the job as a cache hit.
// Any miss, transport failure, or verification mismatch falls back to
// recomputation: the deterministic runner makes recompute and fetch
// byte-equivalent, so peer fetch is purely an optimization and never a
// correctness dependency.
//
// The peer routes are an internal shard-to-shard surface: they bypass tenant
// authentication (shards hold no tenant tokens for each other) and serve
// only content-addressed reads, so the worst a caller can do is read bytes
// it could compute itself from the public API.

// PeerHeader names the request header carrying the previous ring owner's
// base URL on submissions relocated by a pool membership change. Exported
// for the gateway tier, which stamps it.
const PeerHeader = "X-Mrclone-Peer"

// maxPeerFetchBytes caps a peer response body. Artifacts of the largest
// accepted specs stay well under this; anything bigger is a broken or
// hostile peer.
const maxPeerFetchBytes = 256 << 20

type peerCtxKey struct{}

// ContextWithPeer attaches a peer base URL (the previous ring owner of the
// submission's spec hash) for submit to consult on a disk miss.
func ContextWithPeer(ctx context.Context, baseURL string) context.Context {
	return context.WithValue(ctx, peerCtxKey{}, baseURL)
}

// peerFrom returns the peer hint attached by ContextWithPeer, or "".
func peerFrom(ctx context.Context) string {
	s, _ := ctx.Value(peerCtxKey{}).(string)
	return s
}

// validPeerURL accepts only an absolute http(s) base URL — the same shape
// the gateway validates for shard URLs — so a forged header cannot steer
// fetches at arbitrary schemes.
func validPeerURL(raw string) bool {
	u, err := url.Parse(raw)
	return err == nil && (u.Scheme == "http" || u.Scheme == "https") && u.Host != ""
}

// peerArtifactsWire is the /v1/peer/artifacts/{hash} payload: the three
// artifact renderings (base64 over JSON) plus per-part SHA-256 sums. The
// receiver recomputes every sum over the bytes it actually received and
// compares — transport truncation or corruption is rejected before any disk
// write happens.
type peerArtifactsWire struct {
	Hash         string            `json:"hash"`
	Cells        int               `json:"cells"`
	CreatedAtMs  int64             `json:"created_at_ms"`
	JSON         []byte            `json:"json"`
	CSV          []byte            `json:"csv"`
	AggregateCSV []byte            `json:"aggregate_csv"`
	Sums         map[string]string `json:"sums"`
}

// peerCellWire is the /v1/peer/cells/{hash} payload, mirroring the store's
// cell record envelope: size and SHA-256 over the canonical cell payload.
type peerCellWire struct {
	Hash        string          `json:"hash"`
	CreatedAtMs int64           `json:"created_at_ms"`
	Size        int64           `json:"size"`
	SHA256      string          `json:"sha256"`
	Payload     json.RawMessage `json:"payload"`
}

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// handlePeerArtifacts serves one stored artifact entry to a peer shard.
// Misses and quarantined entries are both 404 — the fetching side falls back
// to recomputation either way, and a corrupt entry has already been moved
// aside by the store.
func (s *Service) handlePeerArtifacts(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if s.storeHandle == nil {
		writeError(w, http.StatusNotFound, errors.New("service: no artifact store"))
		return
	}
	art, err := s.storeHandle.GetArtifacts(hash)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrCorrupt):
		s.mu.Lock()
		s.quarantined++
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	default:
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, peerArtifactsWire{
		Hash:         art.Hash,
		Cells:        art.Cells,
		CreatedAtMs:  art.CreatedAt.UnixMilli(),
		JSON:         art.JSON,
		CSV:          art.CSV,
		AggregateCSV: art.AggregateCSV,
		Sums: map[string]string{
			"json":          sha256Hex(art.JSON),
			"csv":           sha256Hex(art.CSV),
			"aggregate_csv": sha256Hex(art.AggregateCSV),
		},
	})
}

// handlePeerCells serves one stored cell record to a peer shard. The
// envelope checksum must hold over the bytes as transmitted, so the payload
// is compacted first (JSON encoders are free to reflow embedded raw
// messages) and the declared size and SHA-256 are computed over that exact
// form, which writeJSONCompact then emits verbatim.
func (s *Service) handlePeerCells(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if s.storeHandle == nil {
		writeError(w, http.StatusNotFound, errors.New("service: no artifact store"))
		return
	}
	cell, err := s.storeHandle.GetCell(hash)
	if err != nil {
		if errors.Is(err, store.ErrCorrupt) {
			s.mu.Lock()
			s.quarantined++
			s.mu.Unlock()
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	payload := cell.Payload
	var compacted bytes.Buffer
	if cerr := json.Compact(&compacted, cell.Payload); cerr == nil {
		payload = compacted.Bytes()
	}
	writeJSONCompact(w, http.StatusOK, peerCellWire{
		Hash:        cell.Hash,
		CreatedAtMs: cell.CreatedAt.UnixMilli(),
		Size:        int64(len(payload)),
		SHA256:      sha256Hex(payload),
		Payload:     json.RawMessage(payload),
	})
}

// writeJSONCompact writes a peer response without re-indentation: embedded
// raw payloads must cross the wire byte-exact so the receiver's recomputed
// checksums can match the declared ones.
func writeJSONCompact(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// peerHTTPClient returns the client peer fetches ride on.
func (s *Service) peerHTTPClient() *http.Client {
	if s.cfg.PeerClient != nil {
		return s.cfg.PeerClient
	}
	return http.DefaultClient
}

// peerGet fetches one peer route under the peer timeout and the response
// size cap.
func (s *Service) peerGet(ctx context.Context, base, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(base, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerHTTPClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerFetchBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxPeerFetchBytes {
		return nil, fmt.Errorf("peer response exceeds %d bytes", maxPeerFetchBytes)
	}
	return data, nil
}

// fetchPeerArtifacts asks the peer for the artifacts of hash and verifies
// them. The returned entry is ready for store.PutArtifacts; any error means
// the caller should recompute.
func (s *Service) fetchPeerArtifacts(ctx context.Context, peer, hash string) (store.Artifacts, error) {
	if !validPeerURL(peer) {
		return store.Artifacts{}, fmt.Errorf("invalid peer URL %q", peer)
	}
	data, err := s.peerGet(ctx, peer, "/v1/peer/artifacts/"+hash)
	if err != nil {
		return store.Artifacts{}, err
	}
	return decodePeerArtifacts(hash, data)
}

// decodePeerArtifacts decodes and verifies one peer artifact response
// against the hash the caller asked for: the envelope must name that hash,
// and every part's SHA-256 — recomputed here over the received bytes — must
// match the declared sum. On success the entry is exactly what the peer's
// disk holds; any mismatch is an error and nothing is installed. Factored
// from the fetch path so it can be fuzzed directly against malformed
// payloads.
func decodePeerArtifacts(hash string, data []byte) (store.Artifacts, error) {
	var wire peerArtifactsWire
	if err := json.Unmarshal(data, &wire); err != nil {
		return store.Artifacts{}, fmt.Errorf("undecodable peer artifacts: %w", err)
	}
	if wire.Hash != hash {
		return store.Artifacts{}, fmt.Errorf("peer artifacts name hash %.12s…, want %.12s…", wire.Hash, hash)
	}
	if wire.Cells < 0 {
		return store.Artifacts{}, fmt.Errorf("peer artifacts carry negative cell count %d", wire.Cells)
	}
	for _, part := range []struct {
		name string
		data []byte
	}{
		{"json", wire.JSON},
		{"csv", wire.CSV},
		{"aggregate_csv", wire.AggregateCSV},
	} {
		want, ok := wire.Sums[part.name]
		if !ok {
			return store.Artifacts{}, fmt.Errorf("peer artifacts missing %s checksum", part.name)
		}
		if got := sha256Hex(part.data); got != want {
			return store.Artifacts{}, fmt.Errorf("peer artifacts %s checksum mismatch", part.name)
		}
	}
	return store.Artifacts{
		Hash:         hash,
		JSON:         wire.JSON,
		CSV:          wire.CSV,
		AggregateCSV: wire.AggregateCSV,
		Cells:        wire.Cells,
		CreatedAt:    time.UnixMilli(wire.CreatedAtMs),
	}, nil
}

// fetchPeerCell asks the peer for one cell payload and verifies it; the
// returned bytes are the canonical cell payload, ready for store.PutCell.
func (s *Service) fetchPeerCell(ctx context.Context, peer, hash string) ([]byte, error) {
	if !validPeerURL(peer) {
		return nil, fmt.Errorf("invalid peer URL %q", peer)
	}
	data, err := s.peerGet(ctx, peer, "/v1/peer/cells/"+hash)
	if err != nil {
		return nil, err
	}
	return decodePeerCell(hash, data)
}

// decodePeerCell decodes and verifies one peer cell response: the envelope
// must name the requested hash and the payload must match its declared size
// and SHA-256, recomputed over the received bytes.
func decodePeerCell(hash string, data []byte) ([]byte, error) {
	var wire peerCellWire
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("undecodable peer cell: %w", err)
	}
	if wire.Hash != hash {
		return nil, fmt.Errorf("peer cell names hash %.12s…, want %.12s…", wire.Hash, hash)
	}
	if int64(len(wire.Payload)) != wire.Size || sha256Hex(wire.Payload) != wire.SHA256 {
		return nil, errors.New("peer cell checksum mismatch")
	}
	return []byte(wire.Payload), nil
}

// countPeerFetch records one peer fetch outcome: a verified install (with
// its payload bytes) or a miss/verification failure that fell back to
// recomputation.
func (s *Service) countPeerFetch(hit bool, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.peerFetchHits++
		s.peerFetchBytes += bytes
		return
	}
	s.peerFetchMisses++
}
