package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/trace"
)

// overlapSpec builds a 1-scheduler × len(points) × 2-run matrix over a
// shared tiny workload, so two specs with intersecting point sets share the
// cells of the intersection.
func overlapSpec(points []spec.Point) spec.Spec {
	p := trace.GoogleParams()
	p.Jobs = 6
	p.Span = 120
	return spec.Spec{
		Workload:   spec.Workload{Trace: &p},
		Schedulers: []spec.Scheduler{{Name: "fair"}},
		Points:     points,
		Runs:       2,
		BaseSeed:   11,
	}
}

var (
	pointA = spec.Point{X: 0, Machines: 20}
	pointB = spec.Point{X: 1, Machines: 25}
	pointC = spec.Point{X: 2, Machines: 30}
)

// coldArtifacts runs a spec directly through the runner — no service, no
// cache — and renders its artifact bytes: the ground truth any cached or
// resumed execution must reproduce exactly.
func coldArtifacts(t *testing.T, sp spec.Spec) *CachedResult {
	t.Helper()
	hash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sp.Normalize().Runner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(context.Background(), rs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := encodeResult(hash, res)
	if err != nil {
		t.Fatal(err)
	}
	return cached
}

func sameArtifacts(t *testing.T, got, want *CachedResult, label string) {
	t.Helper()
	if !bytes.Equal(got.JSON, want.JSON) {
		t.Errorf("%s: JSON artifact differs from cold run", label)
	}
	if !bytes.Equal(got.CSV, want.CSV) {
		t.Errorf("%s: CSV artifact differs from cold run", label)
	}
	if !bytes.Equal(got.AggregateCSV, want.AggregateCSV) {
		t.Errorf("%s: aggregate CSV differs from cold run", label)
	}
}

// TestOverlapReuseExecutesOnlyDisjointCells is the cross-matrix acceptance
// scenario: submitting matrix B after an overlapping matrix A executes only
// the cells unique to B — cell hits equal the overlap — and B's artifacts
// are byte-identical to a cold runner.Run of B.
func TestOverlapReuseExecutesOnlyDisjointCells(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, s)

	matrixA := overlapSpec([]spec.Point{pointA, pointB}) // 4 cells
	matrixB := overlapSpec([]spec.Point{pointB, pointC}) // 4 cells, 2 shared

	stA, err := s.Submit(matrixA)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, stA.ID, StateDone)
	m := s.Metrics()
	if m.CellHits != 0 || m.CellMisses != 4 {
		t.Fatalf("cold matrix A: %d hits / %d misses, want 0/4", m.CellHits, m.CellMisses)
	}
	if m.CellBytes == 0 {
		t.Fatal("matrix A published no cell bytes")
	}

	stB, err := s.Submit(matrixB)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, stB.ID, StateDone)
	m = s.Metrics()
	if hits := m.CellHits; hits != 2 {
		t.Errorf("matrix B: %d cell hits, want exactly the overlap (2)", hits)
	}
	if m.CellMisses != 6 { // 4 cold + 2 unique to B
		t.Errorf("cell misses %d, want 6", m.CellMisses)
	}
	if final.CachedCells != 2 {
		t.Errorf("job status reports %d cached cells, want 2", final.CachedCells)
	}

	resB, err := s.Result(stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, resB, coldArtifacts(t, matrixB), "matrix B")

	// A third, fully covered matrix resolves every cell from the cache.
	matrixAgain := overlapSpec([]spec.Point{pointA, pointC})
	stC, err := s.Submit(matrixAgain)
	if err != nil {
		t.Fatal(err)
	}
	final = waitState(t, s, stC.ID, StateDone)
	if final.CachedCells != 4 {
		t.Errorf("fully covered matrix: %d cached cells, want 4", final.CachedCells)
	}
	resC, err := s.Result(stC.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, resC, coldArtifacts(t, matrixAgain), "fully cached matrix")
}

// TestCrashResumeRecomputesOnlyMissing is the crash acceptance scenario: a
// durable service dies mid-matrix (simulated by seeding the job log with a
// non-terminal record plus the persisted spec, over cells a previous
// process really computed); the next process requeues the job instead of
// failing it and completes it resolving every already-persisted cell from
// the cell cache.
func TestCrashResumeRecomputesOnlyMissing(t *testing.T) {
	dir := t.TempDir()
	matrixB := overlapSpec([]spec.Point{pointA, pointB, pointC}) // 6 cells
	hashB, err := matrixB.Hash()
	if err != nil {
		t.Fatal(err)
	}
	canonB, err := matrixB.Normalize().Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// Process 1 computes a subset matrix, persisting 4 of B's 6 cells.
	svc1 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	st1, err := svc1.Submit(overlapSpec([]spec.Point{pointA, pointB}))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc1, st1.ID, StateDone)
	closeService(t, svc1)

	// The crash: matrix B was running (its spec record written, its job
	// non-terminal in the log) when the process died.
	seed := openTestStore(t, dir)
	if err := seed.PutSpec(hashB, canonB); err != nil {
		t.Fatal(err)
	}
	if err := seed.AppendJob(store.JobRecord{
		ID: "m000042", Hash: hashB, State: "running", Done: 3, Total: 6,
		UpdatedAtMs: time.Now().UnixMilli(),
	}, true); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 2 requeues the interrupted job and completes it, recomputing
	// only the 2 cells no process persisted.
	svc2 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, svc2)
	st, err := svc2.Get("m000042")
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() && st.State != StateDone {
		t.Fatalf("interrupted job recovered as %s (%s), want requeued", st.State, st.Error)
	}
	final := waitState(t, svc2, "m000042", StateDone)
	if final.CachedCells != 4 {
		t.Errorf("resumed job: %d cached cells, want 4", final.CachedCells)
	}
	m := svc2.Metrics()
	if m.CellHits != 4 || m.CellMisses != 2 {
		t.Errorf("resume: %d hits / %d misses, want 4/2", m.CellHits, m.CellMisses)
	}
	res, err := svc2.Result("m000042")
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, res, coldArtifacts(t, matrixB), "resumed matrix")

	// New submissions do not collide with the recovered ID, and a third
	// process sees the job as done, not interrupted.
	stNew, err := svc2.Submit(overlapSpec([]spec.Point{pointA}))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := parseJobSeq(stNew.ID); n <= 42 {
		t.Fatalf("ID sequence did not resume past the recovered job: %s", stNew.ID)
	}
	waitState(t, svc2, stNew.ID, StateDone)
	closeService(t, svc2)
	svc3 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, svc3)
	if st, err := svc3.Get("m000042"); err != nil || st.State != StateDone {
		t.Fatalf("third process sees %+v, %v; want done", st, err)
	}
}

// TestCellsEventsStreamAndReplay covers the cells SSE frames: a live
// subscriber sees running partial aggregates ending at done==total, and a
// late subscriber's replay buffer includes a cells frame consistent with
// the final counts (bounded — coalesced to the newest frame).
func TestCellsEventsStreamAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, s)

	sp := overlapSpec([]spec.Point{pointA, pointB}) // 4 cells
	st, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var cellFrames []Event
	var last Event
	for {
		e, ok := sub.Next(ctx)
		if !ok {
			break
		}
		if e.Type == EventCells {
			cellFrames = append(cellFrames, e)
		}
		last = e
	}
	if last.Type != EventDone {
		t.Fatalf("stream ended with %s, want done", last.Type)
	}
	if len(cellFrames) == 0 {
		t.Fatal("live stream carried no cells frames")
	}
	tail := cellFrames[len(cellFrames)-1]
	if tail.Done != 4 || tail.Total != 4 || tail.CachedCells != 0 {
		t.Fatalf("final cells frame %+v, want 4/4 with 0 cached", tail)
	}
	prev := 0
	for _, e := range cellFrames {
		if e.Done < prev {
			t.Fatal("cells frames regressed")
		}
		prev = e.Done
	}

	// Late subscriber: replay includes exactly one coalesced cells frame
	// between the transitions, matching the final counts.
	late, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var types []EventType
	var replayCells []Event
	for {
		e, ok := late.Next(ctx)
		if !ok {
			break
		}
		types = append(types, e.Type)
		if e.Type == EventCells {
			replayCells = append(replayCells, e)
		}
	}
	if len(types) < 3 || types[0] != EventQueued || types[len(types)-1] != EventDone {
		t.Fatalf("replay order: %v", types)
	}
	if len(replayCells) != 1 {
		t.Fatalf("replay carries %d cells frames, want 1 (coalesced)", len(replayCells))
	}
	if replayCells[0].Done != 4 || replayCells[0].Total != 4 {
		t.Fatalf("replayed cells frame %+v, want 4/4", replayCells[0])
	}

	// A cached resubmission's history also stays within the frame bound.
	st2, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st2.ID, StateDone)
	s.mu.Lock()
	n := len(s.jobs[st2.ID].history)
	s.mu.Unlock()
	if n > historyFrameCap {
		t.Fatalf("history grew to %d frames, cap is %d", n, historyFrameCap)
	}
}

// TestCellGCSweeps covers the cells-tier GC: TTL-expired cells leave the
// store, the byte budget evicts oldest cells first, and orphaned spec
// records (no live flight, past retention) are dropped.
func TestCellGCSweeps(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	now := time.Now()
	// Three cells: one long expired, two fresh (the older fresh one is the
	// eviction victim when the budget bites).
	cells := []store.Cell{
		{Hash: testCellHash(1), Payload: testCellPayload("a"), CreatedAt: now.Add(-48 * time.Hour)},
		{Hash: testCellHash(2), Payload: testCellPayload("b"), CreatedAt: now.Add(-2 * time.Minute)},
		{Hash: testCellHash(3), Payload: testCellPayload("c"), CreatedAt: now.Add(-1 * time.Minute)},
	}
	for _, c := range cells {
		if err := st.PutCell(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutSpec(testCellHash(4), []byte("orphan")); err != nil {
		t.Fatal(err)
	}

	s := New(Config{
		Workers:        1,
		Store:          st,
		CacheTTL:       time.Hour,
		CellCacheBytes: 1, // below any single record: everything unexpired evicts to the newest... and beyond
		JobRetention:   time.Millisecond,
		GCInterval:     -1,
	})
	defer closeService(t, s)
	time.Sleep(5 * time.Millisecond) // age the orphan spec past retention
	s.GC()

	infos, err := st.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("%d cells survived TTL+budget sweep, want 0", len(infos))
	}
	specs, err := st.ListSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 0 {
		t.Fatalf("orphan spec record survived: %+v", specs)
	}
	if got := s.Metrics().CellsGCed; got != 3 {
		t.Errorf("cells_gced %d, want 3", got)
	}
}

// TestCellGCBudgetEvictsOldestFirst pins the eviction order.
func TestCellGCBudgetEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	now := time.Now()
	old := store.Cell{Hash: testCellHash(1), Payload: testCellPayload("a"), CreatedAt: now.Add(-time.Hour)}
	fresh := store.Cell{Hash: testCellHash(2), Payload: testCellPayload("b"), CreatedAt: now}
	if err := st.PutCell(old); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCell(fresh); err != nil {
		t.Fatal(err)
	}
	infos, err := st.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	var freshBytes int64
	for _, info := range infos {
		if info.Hash == fresh.Hash {
			freshBytes = info.Bytes
		}
	}
	s := New(Config{Workers: 1, Store: st, CellCacheBytes: freshBytes, GCInterval: -1})
	defer closeService(t, s)
	s.GC()
	infos, err = st.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Hash != fresh.Hash {
		t.Fatalf("budget eviction kept %+v, want only the fresh cell", infos)
	}
}

// TestCellCacheDisabled: -cell-cache=false keeps the durable service on its
// pre-cell behavior — no cell records, no spec records, no cell metrics.
func TestCellCacheDisabled(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, Store: openTestStore(t, dir), DisableCellCache: true, GCInterval: -1})
	defer closeService(t, s)
	st, err := s.Submit(overlapSpec([]spec.Point{pointA}))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	m := s.Metrics()
	if m.CellHits != 0 || m.CellMisses != 0 || m.CellBytes != 0 {
		t.Fatalf("disabled cell cache still counted: %+v", m)
	}
	infos, err := s.storeHandle.ListCells()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("disabled cell cache persisted %d cells", len(infos))
	}
	specs, err := s.storeHandle.ListSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 0 {
		t.Fatalf("disabled cell cache persisted %d spec records", len(specs))
	}
}

// testCellPayload is a syntactically valid cell payload (the store requires
// JSON) distinguished by a marker string.
func testCellPayload(marker string) []byte {
	return []byte(`{"pad":"` + strings.Repeat(marker, 64) + `"}`)
}

// testCellHash returns a distinct valid cell hash per suffix byte.
func testCellHash(b byte) string {
	const hexdigits = "0123456789abcdef"
	h := make([]byte, 64)
	for i := range h {
		h[i] = 'c'
	}
	h[63] = hexdigits[b%16]
	return string(h)
}
