package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/trace"
)

// testSpec returns a tiny distinct spec per seed (distinct hash per seed).
func testSpec(seed int64) spec.Spec {
	p := trace.GoogleParams()
	p.Jobs = 6
	p.Span = 120
	return spec.Spec{
		Workload:   spec.Workload{Trace: &p},
		Schedulers: []spec.Scheduler{{Name: "fair"}},
		Points:     []spec.Point{{X: 0, Machines: 20}},
		BaseSeed:   seed,
	}
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, s *Service, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func closeService(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("close: %v", err)
	}
}

// blockingService returns a service whose matrix runs block until released,
// giving tests deterministic control over queue and flight states.
func blockingService(cfg Config) (*Service, chan struct{}, *int32) {
	release := make(chan struct{})
	s := New(cfg)
	var runs int32
	var mu sync.Mutex
	s.runMatrix = func(ctx context.Context, rs runner.Spec, opts runner.Options) (*runner.Result, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return runner.Run(ctx, rs, opts)
	}
	return s, release, &runs
}

func TestSubmitRunsToDone(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer closeService(t, s)
	st, err := s.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh submission is %s", st.State)
	}
	if st.Total != 1 {
		t.Fatalf("total %d, want 1", st.Total)
	}
	done := waitState(t, s, st.ID, StateDone)
	if done.Cached {
		t.Fatal("first run reported cached")
	}
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JSON) == 0 || len(res.CSV) == 0 || len(res.AggregateCSV) == 0 {
		t.Fatal("artifact bytes missing")
	}
	if res.Hash != st.Hash {
		t.Fatalf("result hash %s != job hash %s", res.Hash, st.Hash)
	}
}

func TestCacheHitServesSameBytes(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeService(t, s)
	first, err := s.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateDone)
	firstRes, err := s.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}

	second, err := s.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second submission: state %s cached %v", second.State, second.Cached)
	}
	secondRes, err := s.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if secondRes != firstRes {
		t.Fatal("cache hit did not share the artifact")
	}
	m := s.Metrics()
	if m.CacheHits != 1 || m.Flights != 1 || m.Submissions != 2 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestSingleFlightDedup(t *testing.T) {
	s, release, runs := blockingService(Config{Workers: 1, QueueDepth: 4})
	defer closeService(t, s)

	a, err := s.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatal("same spec produced different hashes")
	}
	if a.ID == b.ID {
		t.Fatal("jobs should be distinct submissions")
	}
	close(release)
	waitState(t, s, a.ID, StateDone)
	waitState(t, s, b.ID, StateDone)
	ra, _ := s.Result(a.ID)
	rb, _ := s.Result(b.ID)
	if ra != rb {
		t.Fatal("deduped jobs do not share one artifact")
	}
	if *runs != 1 {
		t.Fatalf("matrix ran %d times, want 1", *runs)
	}
	if m := s.Metrics(); m.DedupHits != 1 {
		t.Fatalf("dedup hits %d, want 1", m.DedupHits)
	}
}

func TestQueueFull(t *testing.T) {
	s, release, _ := blockingService(Config{Workers: 1, QueueDepth: 1})
	defer closeService(t, s)
	defer close(release)

	// Worker grabs the first flight; the second occupies the single queue
	// slot; the third distinct spec must be rejected.
	if _, err := s.Submit(testSpec(10)); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pop the first flight off the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first flight")
		}
		time.Sleep(time.Millisecond)
	}
	orig, err := s.Submit(testSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec(12)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: %v, want ErrQueueFull", err)
	}
	// A duplicate of a queued spec still dedups rather than failing.
	queued, err := s.Submit(testSpec(11))
	if err != nil {
		t.Fatalf("dedup of queued spec: %v", err)
	}

	// Cancelling every job of the queued flight frees its queue slot
	// immediately — a full queue of cancelled work must not 429 new jobs.
	for _, id := range []string{orig.ID, queued.ID} {
		if ok, err := s.Cancel(id); err != nil || !ok {
			t.Fatalf("cancel %s: %v %v", id, ok, err)
		}
	}
	if depth := s.Metrics().QueueDepth; depth != 0 {
		t.Fatalf("queue depth %d after cancelling all queued work", depth)
	}
	if _, err := s.Submit(testSpec(13)); err != nil {
		t.Fatalf("submit after freeing the queue: %v", err)
	}
}

func TestCancelQueuedAndShared(t *testing.T) {
	s, release, runs := blockingService(Config{Workers: 1, QueueDepth: 4})
	defer closeService(t, s)

	// Block the worker with a filler flight.
	filler, err := s.Submit(testSpec(20))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Submit(testSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(testSpec(21)) // shares a's flight
	if err != nil {
		t.Fatal(err)
	}

	// Cancelling one of two attached jobs keeps the flight alive.
	if ok, err := s.Cancel(a.ID); err != nil || !ok {
		t.Fatalf("cancel a: %v %v", ok, err)
	}
	if st, _ := s.Get(a.ID); st.State != StateCancelled {
		t.Fatalf("a is %s", st.State)
	}
	if st, _ := s.Get(b.ID); st.State.Terminal() {
		t.Fatalf("b terminated early: %s", st.State)
	}
	// Cancelling the last job cancels the queued flight entirely.
	if ok, err := s.Cancel(b.ID); err != nil || !ok {
		t.Fatalf("cancel b: %v %v", ok, err)
	}
	// Cancel is idempotent and reports false on finished jobs.
	if ok, err := s.Cancel(b.ID); err != nil || ok {
		t.Fatalf("re-cancel b: %v %v", ok, err)
	}

	close(release)
	waitState(t, s, filler.ID, StateDone)
	if *runs != 1 {
		t.Fatalf("cancelled flight still ran (%d runs)", *runs)
	}
	if m := s.Metrics(); m.JobsCancelled != 2 {
		t.Fatalf("cancelled %d, want 2", m.JobsCancelled)
	}
}

func TestEventsReplayAndLiveStream(t *testing.T) {
	s, release, _ := blockingService(Config{Workers: 1, QueueDepth: 4})
	defer closeService(t, s)

	st, err := s.Submit(testSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	var types []EventType
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		e, ok := sub.Next(ctx)
		if !ok {
			break
		}
		if e.Job != st.ID {
			t.Fatalf("event for %s on %s's stream", e.Job, st.ID)
		}
		types = append(types, e.Type)
	}
	joined := ""
	for _, ty := range types {
		joined += string(ty) + " "
	}
	if types[0] != EventQueued {
		t.Fatalf("stream %s does not start with queued", joined)
	}
	if types[len(types)-1] != EventDone {
		t.Fatalf("stream %s does not end with done", joined)
	}
	if !strings.Contains(joined, string(EventRunning)) {
		t.Fatalf("stream %s has no running event", joined)
	}

	// A late subscriber still sees the full state history.
	late, err := s.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var lateTypes []EventType
	for {
		e, ok := late.Next(ctx)
		if !ok {
			break
		}
		lateTypes = append(lateTypes, e.Type)
	}
	if len(lateTypes) < 3 || lateTypes[0] != EventQueued || lateTypes[len(lateTypes)-1] != EventDone {
		t.Fatalf("late replay %v", lateTypes)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Submit(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("get: %v", err)
	}
	if _, err := s.Result("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("result: %v", err)
	}
	if _, err := s.Subscribe("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := s.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel: %v", err)
	}
	st, err := s.Submit(testSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(st.ID); !errors.Is(err, ErrNotReady) && err != nil {
		// The tiny matrix may already be done; only a wrong error kind fails.
		t.Fatalf("result while pending: %v", err)
	}
	closeService(t, s)
	if _, err := s.Submit(testSpec(41)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// TestSubmitExpansionFailure covers specs that pass validation but whose
// workload cannot be generated (trace calibration failure): the submission
// is accepted, then the job fails with the expansion error.
func TestSubmitExpansionFailure(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeService(t, s)
	sp := testSpec(70)
	// Valid per Params.Validate, but the bounded-Pareto task-count mean
	// 1.9 is unreachable with a cap of 2, so trace.Generate fails.
	sp.Workload.Trace.MeanTasksPerJob = 1.9
	sp.Workload.Trace.MaxTasksPerJob = 2
	_, err := s.Submit(sp)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("submit: %v", err)
	}
	m := s.Metrics()
	if m.Submissions != 1 || m.JobsFailed != 1 || m.QueueDepth != 0 {
		t.Fatalf("metrics after expansion failure: %+v", m)
	}
	// The flight was removed from the single-flight table, so a retry is
	// a fresh attempt, not a dedup against the corpse.
	if _, err := s.Submit(sp); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("retry: %v", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	var ids []string
	for seed := int64(50); seed < 54; seed++ {
		st, err := s.Submit(testSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, id := range ids {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s drained into %s", id, st.State)
		}
	}
}

func TestCloseDeadlineCancelsWork(t *testing.T) {
	s, release, _ := blockingService(Config{Workers: 1, QueueDepth: 4})
	defer close(release)
	st, err := s.Submit(testSpec(60))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close: %v", err)
	}
	got, err := s.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Fatalf("job after forced close: %s", got.State)
	}
}

func TestLRUCacheByteEviction(t *testing.T) {
	// Budget fits two entries (size = len(JSON) + overhead = 100 + 256)
	// with headroom for the +50-byte refresh below, but not three.
	c := newLRUCache(2*(100+cacheEntryOverhead)+88, 0)
	entry := func(h string) *CachedResult {
		return &CachedResult{Hash: h, JSON: make([]byte, 100), CreatedAt: time.Now()}
	}
	c.add(entry("a"))
	c.add(entry("b"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add(entry("c")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
	if want := 2 * int64(100+cacheEntryOverhead); c.sizeBytes() != want {
		t.Fatalf("bytes %d, want %d", c.sizeBytes(), want)
	}
	// Refresh keeps a single entry per hash and re-accounts its size.
	big := entry("c")
	big.CSV = make([]byte, 50)
	c.add(big)
	if c.len() != 2 {
		t.Fatalf("len after refresh %d", c.len())
	}
	if want := int64(100+cacheEntryOverhead) + int64(150+cacheEntryOverhead); c.sizeBytes() != want {
		t.Fatalf("bytes after refresh %d, want %d", c.sizeBytes(), want)
	}
	// An entry bigger than the whole budget is still retained — alone.
	huge := entry("huge")
	huge.JSON = make([]byte, 10_000)
	c.add(huge)
	if c.len() != 1 {
		t.Fatalf("len after oversized add %d, want 1", c.len())
	}
	if _, ok := c.get("huge"); !ok {
		t.Fatal("oversized entry evicted itself")
	}
	// Disabled cache stores nothing.
	d := newLRUCache(-1, 0)
	d.add(entry("x"))
	if d.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestLRUCacheTTLExpiry(t *testing.T) {
	c := newLRUCache(1<<20, time.Hour)
	base := time.Unix(1_700_000_000, 0)
	now := base
	c.now = func() time.Time { return now }
	c.add(&CachedResult{Hash: "old", JSON: []byte("x"), CreatedAt: base})
	now = base.Add(30 * time.Minute)
	c.add(&CachedResult{Hash: "new", JSON: []byte("y"), CreatedAt: now})
	if _, ok := c.get("old"); !ok {
		t.Fatal("entry expired early")
	}

	now = base.Add(90 * time.Minute) // old is 90m past creation, new is 60m
	if _, ok := c.get("old"); ok {
		t.Fatal("expired entry served")
	}
	if _, ok := c.get("new"); !ok {
		t.Fatal("live entry dropped")
	}
	// The sweep drops expired entries without a get touching them.
	now = base.Add(3 * time.Hour)
	if removed := c.expire(); removed != 1 {
		t.Fatalf("expire removed %d, want 1", removed)
	}
	if c.len() != 0 || c.sizeBytes() != 0 {
		t.Fatalf("cache not empty after sweep: %d entries, %d bytes", c.len(), c.sizeBytes())
	}
	// Expired entries are refused at insertion.
	c.add(&CachedResult{Hash: "stale", JSON: []byte("z"), CreatedAt: base})
	if c.len() != 0 {
		t.Fatal("expired entry inserted")
	}
}
