// Package service turns the deterministic matrix runner into a
// simulation-as-a-service layer: clients submit canonical matrix specs
// (internal/service/spec), the service executes them on a bounded FIFO
// queue feeding a pool of runner.Run workers, and every completed matrix is
// stored in a content-addressed result cache keyed by the spec hash —
// size-in-bytes LRU in memory, optionally backed by a disk store
// (internal/store) that survives restarts.
//
// Determinism is what makes the sharing sound: the runner produces
// byte-identical artifacts for equal specs at any parallelism, so
//
//   - identical in-flight submissions collapse into one computation
//     (single-flight: later submissions attach to the running flight),
//   - cached responses are exactly the bytes a fresh run would produce, and
//   - a disk entry written by one process is byte-identical to what the next
//     process would compute, so restarts start with a warm cache.
//
// Each submission is an independent job with its own lifecycle
// (queued → running → done/failed/cancelled), an event stream for live
// progress, and independent cancellation; a shared computation is cancelled
// only when every job attached to it has been cancelled.
//
// With a Store configured, job state transitions are appended to a durable
// job log: on startup the service replays it, keeping terminal-job history
// visible across restarts. Unless disabled, the store also backs a per-cell
// content-addressed cache (keyed by spec.CellHash): every computed cell is
// persisted individually, matrices resolve cells they share with earlier
// matrices from disk instead of recomputing them, and a job that was queued
// or running at crash time is requeued from its persisted spec — its new
// flight refills from the dead process's cells and recomputes only the
// remainder. Cell-level progress streams to subscribers as "cells" events
// carrying done/cached/total counts. A background garbage collector ages
// terminal jobs (and their replayable event buffers) out of the job table
// under JobRetention, expires cached artifacts and cells past CacheTTL from
// memory and disk, evicts oldest cells past the CellCacheBytes budget, and
// compacts the job log.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/tenant"
)

// Errors reported by the service.
var (
	ErrClosed      = errors.New("service: closed")
	ErrQueueFull   = errors.New("service: queue full")
	ErrUnknownJob  = errors.New("service: unknown job")
	ErrNotReady    = errors.New("service: result not ready")
	ErrTenantQuota = errors.New("service: tenant quota exceeded")
)

// restartErrMsg marks jobs that were queued or running when the previous
// process died; recovery fails them because their flight did not survive.
const restartErrMsg = "job interrupted by service restart"

// compactAppendThreshold triggers a job-log compaction once this many
// records have been appended since the last one, so the log stays bounded
// even when retention never removes a job.
const compactAppendThreshold = 1024

// State is a job lifecycle state.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Config sizes the service. The zero value gets sensible defaults.
type Config struct {
	// Workers is the number of matrices executed concurrently (default 2).
	Workers int
	// QueueDepth bounds the FIFO of matrices waiting for a worker
	// (default 16); submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// CacheBytes bounds the in-memory result cache in artifact bytes
	// (default 256 MiB; negative disables in-memory caching).
	CacheBytes int64
	// CacheTTL expires cached artifacts — in memory and on disk — this long
	// after their computation time (0 = never expire).
	CacheTTL time.Duration
	// CellParallelism bounds the worker pool inside each runner.Run call
	// (default runtime.GOMAXPROCS(0)). Results do not depend on it.
	CellParallelism int
	// Store, when non-nil, persists artifacts and the job table across
	// restarts. The service takes ownership: Close closes it.
	Store *store.Store
	// DisableCellCache turns off the per-cell content-addressed cache that
	// is otherwise on whenever a Store is configured: with it on, every
	// computed cell is persisted under its cell hash (spec.CellHash) and
	// matrices resolve cells shared with earlier matrices — or with their
	// own interrupted previous run — from disk instead of recomputing them.
	DisableCellCache bool
	// CellCacheBytes bounds the disk cells tier: when a GC sweep finds the
	// tier above this budget, oldest cells are evicted first until it fits
	// (0 = unbounded).
	CellCacheBytes int64
	// JobRetention ages terminal jobs (and their event history) out of the
	// job table (default 24h; negative keeps them forever).
	JobRetention time.Duration
	// GCInterval paces the background sweep that applies JobRetention and
	// CacheTTL (default 1m; negative disables the background sweep — GC can
	// still be invoked manually).
	GCInterval time.Duration
	// Tenants, when non-nil, turns on multi-tenant admission control:
	// submissions must carry a registered API token (SubmitToken), each
	// tenant's quotas and submission rate are enforced, and per-tenant
	// accounting is kept on every job state transition. Nil (the default) is
	// anonymous single-tenant mode with all pre-tenant behavior unchanged.
	// The registry can be replaced at runtime with ReloadTenants; this field
	// only seeds the initial one.
	Tenants *tenant.Registry
	// QueuePolicy selects how queued matrices are dequeued: fifo (default),
	// fair (weighted-fair lottery across tenants), or srpt
	// (shortest-estimated-job-first, sized by uncached cells × workload
	// jobs). fair degenerates to fifo without Tenants; srpt is useful either
	// way.
	QueuePolicy tenant.Policy
	// QueueSeed fixes the fair-policy lottery for reproducible tests
	// (0 = derived from the clock at startup).
	QueueSeed int64
	// PeerClient issues shard-to-shard peer artifact fetches (default
	// http.DefaultClient; per-fetch lifetime is bounded by PeerTimeout).
	PeerClient *http.Client
	// PeerTimeout bounds each peer artifact or cell fetch (default 5s). A
	// slow peer degrades to recomputation, never to a hung submission.
	PeerTimeout time.Duration
	// Logger receives structured log lines (job lifecycle, flight
	// execution, HTTP requests) with the internal/obs attribute vocabulary.
	// Nil (the default) discards them, keeping library and daemon behavior
	// identical to pre-observability releases.
	Logger *slog.Logger
	// ShardName, when set, is stamped as the "shard" attribute on every log
	// line — the mrgated pool name that lets one grep follow a trace ID
	// across a gateway and the shard it routed to.
	ShardName string
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CellParallelism <= 0 {
		c.CellParallelism = runtime.GOMAXPROCS(0)
	}
	if c.JobRetention == 0 {
		c.JobRetention = 24 * time.Hour
	}
	if c.GCInterval == 0 {
		c.GCInterval = time.Minute
	}
	if c.QueuePolicy == "" {
		c.QueuePolicy = tenant.PolicyFIFO
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * time.Second
	}
	if c.QueueSeed == 0 {
		c.QueueSeed = time.Now().UnixNano()
	}
	return c
}

// JobStatus is the client-visible snapshot of one job.
type JobStatus struct {
	ID    string `json:"id"`
	Hash  string `json:"hash"`
	State State  `json:"state"`
	// Tenant is the submitting tenant's name; empty in anonymous mode (the
	// field is omitted, keeping anonymous responses byte-identical).
	Tenant string `json:"tenant,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// Done/Total report matrix-cell progress.
	Done  int `json:"done"`
	Total int `json:"total"`
	// CachedCells counts landed cells resolved from the cell cache rather
	// than simulated.
	CachedCells int    `json:"cached_cells,omitempty"`
	Error       string `json:"error,omitempty"`
	// Lifecycle timestamps (RFC 3339, millisecond precision, UTC).
	// SubmittedAt is when the submission was accepted; StartedAt when the
	// job began running (empty for cache hits, which never run); FinishedAt
	// when it reached a terminal state. Queue wait and run duration fall
	// out of the three. omitempty keeps pre-timestamp responses identical
	// for phases never reached.
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// jobState is one submission's server-side state. Guarded by Service.mu.
type jobState struct {
	id          string
	hash        string
	tenant      string // submitting tenant; "" in anonymous mode
	state       State
	cached      bool
	errMsg      string
	done        int
	cachedCells int
	total       int
	submittedAt time.Time // when the submission was accepted
	startedAt   time.Time // when the job began running (zero for cache hits)
	terminalAt  time.Time // when the job reached a terminal state (GC anchor)
	traceID     string    // trace of the submitting request; "" if untraced
	result      *CachedResult
	flight      *flight // nil once terminal
	subs        []*Subscription
	history     []Event // state transitions, replayed to late subscribers
}

func (j *jobState) status() JobStatus {
	st := JobStatus{
		ID: j.id, Hash: j.hash, State: j.state, Tenant: j.tenant, Cached: j.cached,
		Done: j.done, Total: j.total, CachedCells: j.cachedCells, Error: j.errMsg,
		SubmittedAt: rfc3339(j.submittedAt), StartedAt: rfc3339(j.startedAt),
	}
	if j.state.Terminal() {
		st.FinishedAt = rfc3339(j.terminalAt)
	}
	return st
}

// historyFrameCap bounds a job's replayable event buffer in frames. State
// transitions are few and cells frames coalesce to one trailing entry, so
// the cap is a defensive ceiling, not a working limit; once reached, further
// non-terminal frames are dropped from replay (live subscribers still see
// them) rather than growing the buffer.
const historyFrameCap = 64

// emit publishes an event to every subscriber and records replayable frames:
// state transitions always, and cells frames coalesced newest-wins (each
// carries the full running counts, so one trailing frame replays the same
// progress a live subscriber saw). Raw progress events stay live-only. The
// buffer is bounded by historyFrameCap; terminal events are recorded even at
// the cap. A terminal event closes every subscription, so the references are
// dropped immediately rather than pinned for the life of the job record.
// Callers hold Service.mu.
func (j *jobState) emit(e Event) {
	e.Job = j.id
	e.Tenant = j.tenant
	if e.Terminal() {
		e.SubmittedAt = rfc3339(j.submittedAt)
		e.StartedAt = rfc3339(j.startedAt)
		e.FinishedAt = rfc3339(j.terminalAt)
	}
	switch {
	case e.Type == EventProgress:
		// live-only
	case e.Type == EventCells:
		if n := len(j.history); n > 0 && j.history[n-1].Type == EventCells {
			j.history[n-1] = e
		} else if n < historyFrameCap {
			j.history = append(j.history, e)
		}
	case e.Terminal() || len(j.history) < historyFrameCap:
		j.history = append(j.history, e)
	}
	for _, sub := range j.subs {
		sub.publish(e)
	}
	if e.Terminal() {
		j.subs = nil
	}
}

// terminalEvent synthesizes the event matching the job's terminal state,
// used to rebuild replay history for jobs recovered from the job log.
func (j *jobState) terminalEvent() Event {
	e := Event{
		Job: j.id, Done: j.done, Total: j.total,
		SubmittedAt: rfc3339(j.submittedAt),
		StartedAt:   rfc3339(j.startedAt),
		FinishedAt:  rfc3339(j.terminalAt),
	}
	switch j.state {
	case StateDone:
		e.Type = EventDone
		e.Cached = j.cached
	case StateCancelled:
		e.Type = EventCancelled
	default:
		e.Type = EventFailed
		e.Error = j.errMsg
	}
	return e
}

// flight is one shared matrix computation: every job submitted with the
// same spec hash while it is queued or running attaches to it.
type flight struct {
	hash      string
	tenant    string  // owner: the tenant that first submitted this matrix
	size      float64 // estimated remaining work (SRPT dequeue key)
	rspec     runner.Spec
	sp        spec.Spec // normalized service spec, for cell hashing
	jobs      []*jobState
	ctx       context.Context
	cancel    context.CancelFunc
	cancelled bool
	state     State
	startedAt time.Time // when a worker picked the flight up
	traceID   string    // trace of the first submission; "" if untraced
	peer      string    // previous ring owner's base URL; "" without a hint
	done      int
	cached    int // landed cells resolved from the cell cache
	lastDone  int // cells already counted into Service.cellsDone
	total     int
}

// Service is an in-process simulation service. Create with New, serve over
// HTTP via Handler, and stop with Close.
type Service struct {
	cfg   Config
	start time.Time
	obsv  serviceObs

	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg     sync.WaitGroup
	gcStop chan struct{}

	// runMatrix executes one matrix; runner.Run outside tests.
	runMatrix func(context.Context, runner.Spec, runner.Options) (*runner.Result, error)

	// storeHandle persists artifacts and job records; nil in in-memory mode.
	// Fields under mu below never touch the disk while locked except for
	// job-log appends (one buffered write per state transition; only
	// terminal records fsync) — artifact reads and writes happen off-lock.
	storeHandle *store.Store

	mu   sync.Mutex
	cond *sync.Cond // wakes workers when the queue grows or the service closes
	// queue holds the flights waiting for a worker under the configured
	// dequeue policy (fifo, weighted-fair, or srpt). A policy queue rather
	// than a channel so Cancel can remove a fully-cancelled queued flight
	// immediately and free its slot for new submissions.
	queue *tenant.Queue[*flight]
	// reserved counts flights registered in inflight whose workload is
	// still expanding; they hold a queue slot but are not yet in pending.
	reserved int
	closed   bool
	seq      int
	jobs     map[string]*jobState
	inflight map[string]*flight
	cache    *lruCache

	submissions   int64
	cacheHits     int64
	diskHits      int64
	dedupHits     int64
	flightsRun    int64
	jobsDone      int64
	jobsFailed    int64
	jobsCancelled int64
	jobsGCed      int64
	artifactsGCed int64
	quarantined   int64
	storeErrors   int64
	cellsDone     int64
	cellHits      int64
	cellMisses    int64
	cellBytes     int64
	cellsGCed     int64
	assembled     int64 // matrices completed from cells without a worker slot
	unauthorized  int64 // requests rejected for missing/unknown/disabled tokens

	// Peer-fetch counters: hashes relocated by a pool membership change
	// whose artifacts or cells were adopted from the previous ring owner
	// (hits, with payload bytes) or fell back to recomputation (misses).
	peerFetchHits   int64
	peerFetchMisses int64
	peerFetchBytes  int64

	// tenantAccts is the per-tenant counter and gauge table, lazily created
	// per named tenant; anonymous submissions ("") are never entered.
	tenantAccts map[string]*tenantAcct

	// tenants is the live tenant registry, read through registry() on every
	// authentication/quota decision and swapped atomically by ReloadTenants —
	// never read Config.Tenants after New. Nil means anonymous mode; a
	// service started anonymous stays anonymous (and vice versa), so the
	// queue's weight closure and handlers can treat tenancy as a startup
	// property even though the tenant set underneath is live.
	tenants atomic.Pointer[tenant.Registry]
}

// tenantAcct is one tenant's accounting row. The queued/running/cells
// fields are gauges maintained on every job state transition — cells (the
// live total across the tenant's queued and running jobs) is the basis of
// the MaxCells quota — and the rest are process-lifetime counters.
type tenantAcct struct {
	submitted   int64
	rejected    int64 // quota, queue-full, and rate-limit rejections
	queued      int64
	running     int64
	cells       int64
	cellSeconds float64 // wall-clock seconds of matrix execution
}

// New starts a service with cfg defaults filled and its worker pool running.
// If cfg.Store is set, the job table is recovered from its log first (jobs
// that were queued or running at crash time are failed) and the background
// garbage collector starts alongside the workers.
func New(cfg Config) *Service {
	cfg = cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:         cfg,
		start:       time.Now(),
		baseCtx:     ctx,
		baseCancel:  cancel,
		gcStop:      make(chan struct{}),
		jobs:        make(map[string]*jobState),
		inflight:    make(map[string]*flight),
		cache:       newLRUCache(cfg.CacheBytes, cfg.CacheTTL),
		storeHandle: cfg.Store,
		runMatrix:   runner.Run,
		tenantAccts: make(map[string]*tenantAcct),
		obsv:        newServiceObs(cfg.Logger, cfg.ShardName),
	}
	s.tenants.Store(cfg.Tenants)
	var weight func(string) float64
	if cfg.Tenants != nil {
		// Resolve through the live registry on every lottery draw, not the
		// startup one, so a hot reload's weight changes apply to jobs already
		// queued. registry() stays non-nil: reload cannot turn tenancy off.
		weight = func(name string) float64 { return s.registry().Weight(name) }
	}
	s.queue = tenant.NewQueue[*flight](cfg.QueuePolicy, weight, cfg.QueueSeed)
	s.cond = sync.NewCond(&s.mu)
	if s.storeHandle != nil {
		s.recoverJobs()
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				fl, ok := s.nextFlight()
				if !ok {
					return
				}
				s.runFlight(fl)
			}
		}()
	}
	if cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop(cfg.GCInterval)
	}
	return s
}

// registry returns the live tenant registry, nil in anonymous mode. Every
// tenant decision loads it exactly once so one request sees one registry
// generation even while ReloadTenants swaps it underneath.
func (s *Service) registry() *tenant.Registry { return s.tenants.Load() }

// ReloadTenants atomically replaces the tenant registry: requests already
// past authentication finish against the registry they loaded, the next
// request sees the new one. Tokens added to the new registry are admitted
// immediately; tokens removed stop authenticating, though jobs they already
// submitted keep running (cancel them explicitly if needed). Rate-limit
// buckets restart full — a reload is rare enough that the one free burst
// does not matter. Per-tenant accounting survives by name.
//
// Tenancy itself is a startup property: reloading a nil registry, or
// reloading into a service that started anonymous, is rejected — toggling
// authentication on a live service would silently change the admission
// model for every queued job.
func (s *Service) ReloadTenants(reg *tenant.Registry) error {
	if reg == nil {
		return errors.New("service: reload: nil registry (tenancy cannot be turned off at runtime)")
	}
	if s.registry() == nil {
		return errors.New("service: reload: service started anonymous (tenancy cannot be turned on at runtime)")
	}
	s.tenants.Store(reg)
	s.obsv.log.Info("tenant registry reloaded", "tenants", reg.Len())
	return nil
}

// recoverJobs rebuilds the job table from the store's job log: the latest
// record per job wins and the ID sequence resumes past the highest recovered
// ID. A job that was queued or running at crash time is requeued when its
// canonical spec survived in the specs/ tier — its new flight refills from
// the cells the dead process persisted, recomputing only the remainder — and
// failed otherwise (the pre-cell-cache behavior, and the only option with
// cell caching off). Recovered jobs do not count into this process's
// submission counters; requeued flights count as flights because they run
// here. Called from New before any worker starts.
func (s *Service) recoverJobs() {
	recs, err := s.storeHandle.ReplayJobs()
	if err != nil {
		s.storeErrors++
		return
	}
	var interrupted []*jobState
	for _, r := range recs {
		j := &jobState{
			id:          r.ID,
			hash:        r.Hash,
			tenant:      r.Tenant,
			state:       State(r.State),
			cached:      r.Cached,
			errMsg:      r.Error,
			done:        r.Done,
			total:       r.Total,
			submittedAt: timeFromMs(r.SubmittedAtMs),
			startedAt:   timeFromMs(r.StartedAtMs),
			terminalAt:  time.UnixMilli(r.UpdatedAtMs),
		}
		if r.FinishedAtMs != 0 {
			j.terminalAt = time.UnixMilli(r.FinishedAtMs)
		}
		if !j.state.Terminal() {
			if s.requeueRecovered(j) {
				// The previous process's run never finished, so its start
				// time is meaningless for the rerun; this process stamps a
				// fresh one when a worker picks the flight up.
				j.startedAt = time.Time{}
				j.history = []Event{{Type: EventQueued, Job: j.id, Total: j.total}}
				interrupted = append(interrupted, j)
				s.jobs[j.id] = j
				if n, ok := parseJobSeq(j.id); ok && n > s.seq {
					s.seq = n
				}
				continue
			}
			j.state = StateFailed
			j.errMsg = restartErrMsg
			j.terminalAt = time.Now()
			interrupted = append(interrupted, j)
		}
		j.history = []Event{
			{Type: EventQueued, Job: j.id, Total: j.total},
			j.terminalEvent(),
		}
		s.jobs[j.id] = j
		if n, ok := parseJobSeq(j.id); ok && n > s.seq {
			s.seq = n
		}
	}
	// Record the recovery verdicts — failed-by-restart or back-to-queued —
	// so the next restart replays them instead of re-deciding.
	requeued := 0
	for _, j := range interrupted {
		if !j.state.Terminal() {
			requeued++
		}
		s.persistJob(j)
	}
	if len(recs) > 0 {
		s.obsv.log.Info("job log recovered",
			"jobs", len(recs), "interrupted", len(interrupted), "requeued", requeued)
	}
}

// requeueRecovered rebuilds the flight of an interrupted job from its
// persisted spec record, reporting success. On success the job is queued on
// the flight (shared with other interrupted jobs of the same hash); any
// failure — cell cache off, record missing or corrupt, spec no longer
// parseable — leaves the job for the caller to fail. Runs single-threaded
// from New, before any worker starts.
func (s *Service) requeueRecovered(j *jobState) bool {
	if !s.cellCacheEnabled() {
		return false
	}
	if fl, ok := s.inflight[j.hash]; ok {
		// An earlier interrupted job of the same matrix already rebuilt the
		// flight; share it.
		j.state = StateQueued
		j.done, j.cachedCells, j.total = 0, 0, fl.total
		j.flight = fl
		fl.jobs = append(fl.jobs, j)
		s.tenantAcctAdmit(j)
		return true
	}
	canon, err := s.storeHandle.GetSpec(j.hash)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrCorrupt):
		s.quarantined++
		return false
	case errors.Is(err, store.ErrNotFound):
		return false
	default:
		s.storeErrors++
		return false
	}
	sp, err := spec.Parse(canon)
	if err != nil {
		return false
	}
	norm := sp.Normalize()
	rspec, err := norm.Runner()
	if err != nil {
		return false
	}
	fctx, fcancel := context.WithCancel(s.baseCtx)
	fl := &flight{
		hash:   j.hash,
		tenant: j.tenant,
		rspec:  rspec,
		sp:     norm,
		ctx:    fctx,
		cancel: fcancel,
		state:  StateQueued,
		total:  len(norm.Schedulers) * len(norm.Points) * norm.Runs,
	}
	fl.size = s.jobSize(norm, fl.total)
	s.inflight[j.hash] = fl
	s.queue.Push(fl.tenant, fl.size, fl)
	s.flightsRun++
	j.state = StateQueued
	j.done, j.cachedCells, j.total = 0, 0, fl.total
	j.flight = fl
	fl.jobs = append(fl.jobs, j)
	s.tenantAcctAdmit(j)
	return true
}

// acct returns (creating if needed) a named tenant's accounting row.
// Anonymous submissions are never entered: every tenant helper below
// no-ops on an empty name, which is what keeps anonymous single-tenant
// mode behaviorally identical to the pre-tenant service. Caller holds mu.
func (s *Service) acct(name string) *tenantAcct {
	ta, ok := s.tenantAccts[name]
	if !ok {
		ta = &tenantAcct{}
		s.tenantAccts[name] = ta
	}
	return ta
}

// tenantAcctAdmit records a live (non-terminal) job entering the tenant's
// books: the gauge of its current state and its matrix cells. Caller holds
// mu (or runs single-threaded from New).
func (s *Service) tenantAcctAdmit(j *jobState) {
	if j.tenant == "" {
		return
	}
	ta := s.acct(j.tenant)
	switch j.state {
	case StateQueued:
		ta.queued++
	case StateRunning:
		ta.running++
	}
	ta.cells += int64(j.total)
}

// tenantAcctRun moves one job from the queued to the running gauge.
// Caller holds mu.
func (s *Service) tenantAcctRun(j *jobState) {
	if j.tenant == "" {
		return
	}
	ta := s.acct(j.tenant)
	ta.queued--
	ta.running++
}

// tenantAcctTerminal removes a job that was live in state `from` from the
// tenant's gauges. Caller holds mu.
func (s *Service) tenantAcctTerminal(j *jobState, from State) {
	if j.tenant == "" {
		return
	}
	ta := s.acct(j.tenant)
	switch from {
	case StateQueued:
		ta.queued--
	case StateRunning:
		ta.running--
	}
	ta.cells -= int64(j.total)
}

// checkQuota enforces a tenant's admission quotas for a job that would
// enter in state `state` with `total` matrix cells: MaxQueued bounds jobs
// waiting in the queue, MaxCells bounds live cells across the tenant's
// queued and running jobs. Cache and disk hits never reach here — they
// complete immediately and hold neither a queue slot nor cells. Caller
// holds mu.
func (s *Service) checkQuota(tn string, state State, total int) error {
	reg := s.registry()
	if tn == "" || reg == nil {
		return nil
	}
	t, ok := reg.Lookup(tn)
	if !ok {
		return nil
	}
	ta := s.acct(tn)
	if t.MaxQueued > 0 && state == StateQueued && ta.queued >= int64(t.MaxQueued) {
		return fmt.Errorf("%w: tenant %s has %d queued jobs (max %d)",
			ErrTenantQuota, tn, ta.queued, t.MaxQueued)
	}
	if t.MaxCells > 0 && ta.cells+int64(total) > t.MaxCells {
		return fmt.Errorf("%w: tenant %s would hold %d in-flight cells (max %d)",
			ErrTenantQuota, tn, ta.cells+int64(total), t.MaxCells)
	}
	return nil
}

// jobSize estimates a matrix's remaining work for the SRPT dequeue policy:
// uncached cells × workload jobs. The uncached count comes from cheap
// existence probes against the cells tier (PR 6 content addressing), so a
// mostly-cached matrix estimates small and jumps the queue; under other
// policies — where nothing reads the size — the probes are skipped and the
// full cell count is used. Runs off-lock: it does store I/O.
func (s *Service) jobSize(norm spec.Spec, total int) float64 {
	wsize := norm.WorkloadJobs()
	if wsize < 1 {
		wsize = 1
	}
	uncached := total
	if s.cfg.QueuePolicy == tenant.PolicySRPT && s.cellCacheEnabled() {
		if hasher, err := norm.CellHasher(); err == nil {
			runs := norm.Runs
			if runs < 1 {
				runs = 1
			}
			uncached = 0
			for si := range norm.Schedulers {
				for pi := range norm.Points {
					for run := 0; run < runs; run++ {
						hash, herr := hasher.Hash(si, pi, run)
						if herr != nil || !s.storeHandle.HasCell(hash) {
							uncached++
						}
					}
				}
			}
		}
	}
	return float64(uncached) * float64(wsize)
}

// parseJobSeq extracts the numeric sequence of a job ID ("m%06d").
func parseJobSeq(id string) (int, bool) {
	num, ok := strings.CutPrefix(id, "m")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// nextFlight blocks until a flight is pending or the service has closed
// and drained; the bool reports whether a flight was dequeued.
func (s *Service) nextFlight() (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if fl, ok := s.queue.Pop(); ok {
			return fl, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// Submit registers an anonymous job for the spec and returns its initial
// status. With a tenant registry configured, use SubmitToken instead —
// Submit bypasses authentication and is intended for in-process callers
// and anonymous single-tenant deployments.
func (s *Service) Submit(sp spec.Spec) (JobStatus, error) {
	return s.submit(context.Background(), "", sp)
}

// SubmitContext is Submit with a caller context: a trace context installed
// by obs.ContextWithTrace is stamped on the job and carried through its
// log lines, so one trace ID follows the submission from the HTTP edge
// into the queue and the runner. The context is read for observability
// only — it does not cancel the job (use Cancel).
func (s *Service) SubmitContext(ctx context.Context, sp spec.Spec) (JobStatus, error) {
	return s.submit(ctx, "", sp)
}

// SubmitToken authenticates an API token against the configured tenant
// registry, charges the tenant's submission rate limit, and submits the
// spec on the tenant's behalf. Without a registry the token is ignored and
// the submission is anonymous. Errors: tenant.ErrNoToken /
// tenant.ErrUnknownToken / tenant.ErrDisabled for authentication failures,
// tenant.ErrRateLimited (a *tenant.RateLimitError carrying the retry
// delay) for rate rejections, ErrTenantQuota and ErrQueueFull for
// admission rejections.
func (s *Service) SubmitToken(token string, sp spec.Spec) (JobStatus, error) {
	return s.SubmitTokenContext(context.Background(), token, sp)
}

// SubmitTokenContext is SubmitToken with a caller context; see
// SubmitContext for what the context carries.
func (s *Service) SubmitTokenContext(ctx context.Context, token string, sp spec.Spec) (JobStatus, error) {
	reg := s.registry()
	if reg == nil {
		return s.submit(ctx, "", sp)
	}
	t, err := reg.Admit(token, time.Now())
	if err != nil {
		s.mu.Lock()
		var rl *tenant.RateLimitError
		if errors.As(err, &rl) {
			s.acct(rl.Tenant).rejected++
		} else {
			s.unauthorized++
		}
		s.mu.Unlock()
		s.obsv.log.Warn("submission rejected", "error", err.Error(),
			obs.KeyTraceID, traceIDFrom(ctx))
		return JobStatus{}, err
	}
	return s.submit(ctx, t.Name, sp)
}

// traceIDFrom extracts the trace ID installed by obs.ContextWithTrace, or
// "" when the caller is untraced (in-process Submit).
func traceIDFrom(ctx context.Context) string {
	if tc, ok := obs.TraceFrom(ctx); ok {
		return tc.TraceID
	}
	return ""
}

// submit registers a job for the spec on behalf of tenant tn ("" =
// anonymous) and returns its initial status. The spec is validated and
// content-hashed; a cache hit — from memory or, in persistent mode, from
// the disk store — completes the job immediately, an equal in-flight spec
// shares its computation, and otherwise the job is queued (failing fast
// with ErrQueueFull when the queue is at capacity, or ErrTenantQuota when
// the tenant is over its own limits). With the cell cache on, a matrix
// whose every cell is already persisted is assembled from cells right here
// — completing without ever occupying a worker slot. Only accepted
// submissions count toward the submissions metric.
func (s *Service) submit(ctx context.Context, tn string, sp spec.Spec) (JobStatus, error) {
	trace := traceIDFrom(ctx)
	hash, err := sp.Hash()
	if err != nil {
		return JobStatus{}, err
	}
	// The matrix size is known from the axes alone — no workload expansion
	// needed — so the flight can be registered before the slow part.
	norm := sp.Normalize()
	total := len(norm.Schedulers) * len(norm.Points) * norm.Runs

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if st, ok, ferr := s.fastPath(tn, hash, trace); ok || ferr != nil {
		s.mu.Unlock()
		return st, ferr
	}
	if s.storeHandle != nil {
		// Probe the disk store outside the lock (it reads whole artifact
		// files); identical submissions racing the probe at worst read the
		// same entry twice, which is idempotent.
		s.mu.Unlock()
		source := "disk"
		art, derr := s.storeHandle.GetArtifacts(hash)
		if errors.Is(derr, store.ErrNotFound) && peerFrom(ctx) != "" {
			// Local miss on a hash the gateway says relocated here: adopt
			// the previous ring owner's artifacts instead of recomputing.
			// Fetched bytes are checksum-verified before the crash-atomic
			// install; any failure falls through to the normal queue path.
			peer := peerFrom(ctx)
			part, perr := s.fetchPeerArtifacts(ctx, peer, hash)
			if perr == nil {
				perr = s.storeHandle.PutArtifacts(part)
			}
			if perr == nil {
				art, derr = part, nil
				source = "peer"
				s.countPeerFetch(true, int64(len(part.JSON)+len(part.CSV)+len(part.AggregateCSV)))
			} else {
				s.countPeerFetch(false, 0)
				s.obsv.log.Warn("peer fetch missed",
					obs.KeySpec, obs.SpecPrefix(hash), "peer", peer, "error", perr.Error())
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return JobStatus{}, ErrClosed
		}
		if st, ok, ferr := s.fastPath(tn, hash, trace); ok || ferr != nil {
			s.mu.Unlock()
			return st, ferr
		}
		expired := derr == nil && s.cfg.CacheTTL > 0 && time.Since(art.CreatedAt) > s.cfg.CacheTTL
		switch {
		case derr == nil && !expired:
			res := resultFromArtifacts(art)
			s.cache.add(res)
			s.countSubmission(tn)
			if source == "disk" {
				s.diskHits++
			}
			j := s.newJob(hash, tn, trace)
			j.state = StateDone
			j.cached = true
			j.result = res
			j.done, j.total = res.Cells, res.Cells
			j.terminalAt = time.Now()
			s.jobsDone++
			j.emit(Event{Type: EventQueued, Total: j.total})
			j.emit(Event{Type: EventDone, Done: j.done, Total: j.total, Cached: true})
			s.persistJob(j)
			st := j.status()
			s.mu.Unlock()
			s.obsv.log.Info("job done", append(jobAttrs(j), "cached", true, "source", source)...)
			return st, nil
		case errors.Is(derr, store.ErrCorrupt):
			// The entry was quarantined; recompute below repopulates it.
			s.quarantined++
		case derr != nil && !errors.Is(derr, store.ErrNotFound):
			s.storeErrors++ // I/O trouble reads as a miss, not a failure
		}
		// Expired entries also fall through: the recompute overwrites the
		// stale entry with a fresh CreatedAt (byte-identical artifacts).
	}
	if s.queue.Len()+s.reserved >= s.cfg.QueueDepth {
		if tn != "" {
			s.acct(tn).rejected++
		}
		s.mu.Unlock()
		s.obsv.log.Warn("submission rejected", "error", "queue full",
			obs.KeySpec, obs.SpecPrefix(hash), obs.KeyTraceID, trace)
		return JobStatus{}, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cfg.QueueDepth)
	}
	if qerr := s.checkQuota(tn, StateQueued, total); qerr != nil {
		s.acct(tn).rejected++
		s.mu.Unlock()
		s.obsv.log.Warn("submission rejected", "error", qerr.Error(),
			obs.KeySpec, obs.SpecPrefix(hash), obs.KeyTenant, tn, obs.KeyTraceID, trace)
		return JobStatus{}, qerr
	}
	// Reserve the queue slot and register the flight in the single-flight
	// table before expanding the workload (trace generation of a large job
	// count is the slow part of submission): concurrent identical
	// submissions attach to this flight instead of expanding the same
	// trace again, and doomed-to-429 bursts are rejected before paying for
	// an expansion.
	fctx, fcancel := context.WithCancel(s.baseCtx)
	fl := &flight{
		hash:    hash,
		sp:      norm,
		ctx:     fctx,
		cancel:  fcancel,
		state:   StateQueued,
		total:   total,
		tenant:  tn,
		traceID: trace,
		peer:    peerFrom(ctx),
	}
	s.reserved++
	s.inflight[hash] = fl
	s.countSubmission(tn)
	j := s.newJob(hash, tn, trace)
	j.total = total
	j.flight = fl
	fl.jobs = append(fl.jobs, j)
	s.tenantAcctAdmit(j)
	j.emit(Event{Type: EventQueued, Total: total})
	s.persistJob(j)
	s.mu.Unlock()
	s.obsv.log.Info("job queued", append(jobAttrs(j), "cells", total)...)

	// A matrix whose every cell is already persisted needs no worker at
	// all: stitch the artifact together from the cell tier and complete
	// the job without ever occupying a queue slot.
	if st, ok := s.tryAssemble(fl, j); ok {
		return st, nil
	}

	rspec, rerr := norm.Runner()

	// Persist the canonical spec under its matrix hash while the flight is
	// alive: should this process die mid-matrix, the next one requeues the
	// interrupted job from this record and refills from persisted cells
	// instead of failing it. Best-effort — without the record, recovery
	// degrades to the fail-on-restart behavior.
	specPutFailed := false
	if rerr == nil && s.cellCacheEnabled() {
		if canon, cerr := norm.Canonical(); cerr == nil {
			specPutFailed = s.storeHandle.PutSpec(hash, canon) != nil
		}
	}
	if rerr == nil {
		fl.size = s.jobSize(norm, total)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if specPutFailed {
		s.storeErrors++
	}
	s.reserved--
	if fl.cancelled {
		// Every attached job was cancelled while the workload expanded;
		// Cancel already detached them and removed the flight.
		return j.status(), nil
	}
	if rerr == nil && s.closed {
		// Close began after the reservation; its drain covers only flights
		// that were already pending, so fail rather than strand the jobs.
		rerr = ErrClosed
	}
	if rerr != nil {
		if s.inflight[fl.hash] == fl {
			delete(s.inflight, fl.hash)
		}
		fl.cancel()
		jobs := fl.jobs
		fl.jobs = nil
		for _, jb := range jobs {
			s.tenantAcctTerminal(jb, StateQueued)
			jb.state = StateFailed
			jb.errMsg = rerr.Error()
			jb.flight = nil
			jb.terminalAt = time.Now()
			s.jobsFailed++
			jb.emit(Event{Type: EventFailed, Total: jb.total, Error: jb.errMsg})
			s.persistJob(jb)
			s.obsv.log.Warn("job failed", append(jobAttrs(jb), "error", jb.errMsg)...)
		}
		return JobStatus{}, rerr
	}
	fl.rspec = rspec
	s.queue.Push(fl.tenant, fl.size, fl)
	s.flightsRun++
	s.cond.Signal()
	return j.status(), nil
}

// fastPath serves a submission from the in-memory result cache or attaches
// it to an in-flight computation, counting it as accepted. Caller holds mu;
// the bool reports success. A non-nil error means the submission was
// positively rejected (tenant quota) rather than missed.
func (s *Service) fastPath(tn, hash, trace string) (JobStatus, bool, error) {
	if res, ok := s.cache.get(hash); ok {
		s.countSubmission(tn)
		s.cacheHits++
		j := s.newJob(hash, tn, trace)
		j.state = StateDone
		j.cached = true
		j.result = res
		j.done, j.total = res.Cells, res.Cells
		j.terminalAt = time.Now()
		s.jobsDone++
		j.emit(Event{Type: EventQueued, Total: j.total})
		j.emit(Event{Type: EventDone, Done: j.done, Total: j.total, Cached: true})
		s.persistJob(j)
		s.obsv.log.Info("job done", append(jobAttrs(j), "cached", true, "source", "memory")...)
		return j.status(), true, nil
	}
	if fl, ok := s.inflight[hash]; ok && !fl.cancelled {
		// Attaching still charges the tenant's gauges (the job occupies
		// their queued/cell budget even though the work is shared), so the
		// quota check applies here too.
		if qerr := s.checkQuota(tn, fl.state, fl.total); qerr != nil {
			s.acct(tn).rejected++
			return JobStatus{}, false, qerr
		}
		s.countSubmission(tn)
		s.dedupHits++
		j := s.newJob(hash, tn, trace)
		j.state = fl.state
		j.done, j.total = fl.done, fl.total
		j.cachedCells = fl.cached
		j.flight = fl
		fl.jobs = append(fl.jobs, j)
		s.tenantAcctAdmit(j)
		j.emit(Event{Type: EventQueued, Total: j.total})
		if fl.state == StateRunning {
			// The shared computation is already underway, so this job's
			// queue wait is over the moment it attaches.
			j.startedAt = time.Now()
			s.obsv.observeQueueWait(j.submittedAt, j.startedAt)
			j.emit(Event{Type: EventRunning, Done: j.done, Total: j.total})
			if fl.done > 0 {
				// Catch the late job up to the flight's cell counts so its
				// replay buffer is consistent with jobs attached earlier.
				j.emit(Event{Type: EventCells, Done: fl.done, CachedCells: fl.cached, Total: fl.total})
			}
		}
		s.persistJob(j)
		return j.status(), true, nil
	}
	return JobStatus{}, false, nil
}

// countSubmission counts one accepted submission, attributed to the tenant
// when named. Caller holds mu.
func (s *Service) countSubmission(tn string) {
	s.submissions++
	if tn != "" {
		s.acct(tn).submitted++
	}
}

// newJob allocates a job record stamped with its submission time and the
// submitting request's trace ID. Caller holds mu.
func (s *Service) newJob(hash, tn, trace string) *jobState {
	s.seq++
	j := &jobState{
		id:          fmt.Sprintf("m%06d", s.seq),
		hash:        hash,
		state:       StateQueued,
		tenant:      tn,
		traceID:     trace,
		submittedAt: time.Now(),
	}
	s.jobs[j.id] = j
	return j
}

// persistJob appends the job's current state to the store's job log.
// Best-effort: failures are counted, not surfaced — the in-memory state
// remains authoritative for this process. Only terminal records pay for an
// fsync (a lost queued/running record reads as a job that never arrived,
// while lost history would be real damage), so the buffered appends on the
// submission fast paths stay cheap under this lock. Caller holds mu.
func (s *Service) persistJob(j *jobState) {
	if s.storeHandle == nil {
		return
	}
	rec := store.JobRecord{
		ID:            j.id,
		Hash:          j.hash,
		State:         string(j.state),
		Cached:        j.cached,
		Done:          j.done,
		Total:         j.total,
		Error:         j.errMsg,
		Tenant:        j.tenant,
		UpdatedAtMs:   time.Now().UnixMilli(),
		SubmittedAtMs: unixMsOrZero(j.submittedAt),
		StartedAtMs:   unixMsOrZero(j.startedAt),
	}
	if j.state.Terminal() {
		rec.FinishedAtMs = unixMsOrZero(j.terminalAt)
	}
	err := s.storeHandle.AppendJob(rec, j.state.Terminal())
	if err != nil {
		s.storeErrors++
	}
}

// runFlight executes one shared computation on the calling worker.
func (s *Service) runFlight(fl *flight) {
	s.mu.Lock()
	if fl.cancelled {
		s.mu.Unlock()
		return
	}
	fl.state = StateRunning
	fl.startedAt = time.Now()
	for _, j := range fl.jobs {
		s.tenantAcctRun(j)
		j.state = StateRunning
		j.startedAt = fl.startedAt
		s.obsv.observeQueueWait(j.submittedAt, fl.startedAt)
		j.emit(Event{Type: EventRunning, Total: j.total})
		s.persistJob(j)
	}
	njobs := len(fl.jobs)
	s.mu.Unlock()
	s.obsv.log.Info("flight running",
		obs.KeySpec, obs.SpecPrefix(fl.hash), obs.KeyTraceID, fl.traceID,
		"cells", fl.total, "jobs", njobs)

	res, err := s.runMatrix(fl.ctx, fl.rspec, runner.Options{
		Parallelism:  s.cfg.CellParallelism,
		Progress:     func(done, total int) { s.flightProgress(fl, done, total) },
		CellProgress: func(done, cached, total int) { s.flightCells(fl, done, cached, total) },
		CellCache:    s.cellCacheFor(fl),
		CellTime: func(d time.Duration, fromCache bool) {
			if !fromCache {
				s.obsv.cellDur.Observe(d.Seconds())
			}
		},
	})
	runDur := time.Since(fl.startedAt)
	s.obsv.runDur.Observe(runDur.Seconds())

	var cached *CachedResult
	if err == nil {
		cached, err = encodeResult(fl.hash, res)
	}
	// Persist before announcing completion (still off the lock): once a
	// client sees done, a crash must not lose the artifact it was promised.
	persistFailed := false
	if err == nil && s.storeHandle != nil {
		if perr := s.storeHandle.PutArtifacts(store.Artifacts{
			Hash:         cached.Hash,
			JSON:         cached.JSON,
			CSV:          cached.CSV,
			AggregateCSV: cached.AggregateCSV,
			Cells:        cached.Cells,
			CreatedAt:    cached.CreatedAt,
		}); perr != nil {
			persistFailed = true
		}
	}
	// The flight is over either way: its spec record has served its purpose
	// (crash-resume needs it only while the matrix is in flight — on success
	// the cells and artifacts carry the result, on failure a resubmission
	// writes a fresh record).
	if s.cellCacheEnabled() {
		_ = s.storeHandle.DeleteSpec(fl.hash)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if persistFailed {
		s.storeErrors++
	}
	if s.inflight[fl.hash] == fl {
		delete(s.inflight, fl.hash)
	}
	jobs := fl.jobs
	fl.jobs = nil
	if fl.tenant != "" && !fl.startedAt.IsZero() {
		// Wall-clock worker time, charged whether or not the matrix landed:
		// the slot was occupied either way.
		s.acct(fl.tenant).cellSeconds += time.Since(fl.startedAt).Seconds()
	}
	if err != nil {
		for _, j := range jobs {
			s.tenantAcctTerminal(j, StateRunning)
			j.state = StateFailed
			j.errMsg = err.Error()
			j.flight = nil
			j.terminalAt = time.Now()
			s.jobsFailed++
			j.emit(Event{Type: EventFailed, Done: j.done, Total: j.total, Error: j.errMsg})
			s.persistJob(j)
		}
		s.obsv.log.Warn("flight failed",
			obs.KeySpec, obs.SpecPrefix(fl.hash), obs.KeyTraceID, fl.traceID,
			obs.KeyDurationMs, float64(runDur)/float64(time.Millisecond),
			"jobs", len(jobs), "error", err.Error())
		return
	}
	s.cache.add(cached)
	for _, j := range jobs {
		s.tenantAcctTerminal(j, StateRunning)
		j.state = StateDone
		j.result = cached
		j.done = j.total
		j.flight = nil
		j.terminalAt = time.Now()
		s.jobsDone++
		j.emit(Event{Type: EventDone, Done: j.done, Total: j.total})
		s.persistJob(j)
	}
	s.obsv.log.Info("flight done",
		obs.KeySpec, obs.SpecPrefix(fl.hash), obs.KeyTraceID, fl.traceID,
		obs.KeyDurationMs, float64(runDur)/float64(time.Millisecond),
		"cells", fl.total, "cached_cells", fl.cached, "jobs", len(jobs))
}

// flightProgress fans one runner progress callback out to every attached
// job's subscribers and keeps the global cell counter current.
func (s *Service) flightProgress(fl *flight, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl.done, fl.total = done, total
	s.cellsDone += int64(done - fl.lastDone)
	fl.lastDone = done
	for _, j := range fl.jobs {
		j.done, j.total = done, total
		j.emit(Event{Type: EventProgress, Done: done, Total: total})
	}
}

// flightCells fans one runner cell callback — the streaming partial
// aggregate — out to every attached job: how much of the matrix has landed
// and how much of that was resolved from the cell cache.
func (s *Service) flightCells(fl *flight, done, cached, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl.done, fl.cached, fl.total = done, cached, total
	for _, j := range fl.jobs {
		j.done, j.cachedCells, j.total = done, cached, total
		j.emit(Event{Type: EventCells, Done: done, CachedCells: cached, Total: total})
	}
}

// encodeResult renders the deterministic artifact bytes of a completed
// matrix once; every job and every future cache hit shares them.
func encodeResult(hash string, res *runner.Result) (*CachedResult, error) {
	var jsonBuf, csvBuf, aggBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		return nil, fmt.Errorf("service: encode json: %w", err)
	}
	if err := res.WriteCSV(&csvBuf); err != nil {
		return nil, fmt.Errorf("service: encode csv: %w", err)
	}
	if err := res.WriteAggregateCSV(&aggBuf); err != nil {
		return nil, fmt.Errorf("service: encode aggregate csv: %w", err)
	}
	return &CachedResult{
		Hash:         hash,
		JSON:         jsonBuf.Bytes(),
		CSV:          csvBuf.Bytes(),
		AggregateCSV: aggBuf.Bytes(),
		Cells:        len(res.Cells),
		CreatedAt:    time.Now(),
	}, nil
}

// resultFromArtifacts converts a disk entry back into a cacheable result.
func resultFromArtifacts(a store.Artifacts) *CachedResult {
	return &CachedResult{
		Hash:         a.Hash,
		JSON:         a.JSON,
		CSV:          a.CSV,
		AggregateCSV: a.AggregateCSV,
		Cells:        a.Cells,
		CreatedAt:    a.CreatedAt,
	}
}

// Get returns the status snapshot of a job.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// Result returns the completed artifact of a done job; ErrNotReady while it
// is queued or running, and the failure/cancellation as an error otherwise.
// For a job recovered from the job log — done in a previous process — the
// artifact is loaded back from the disk store on first access; if the entry
// has since been GC'd or quarantined, the result is reported gone and the
// client must resubmit the spec.
func (s *Service) Result(id string) (*CachedResult, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateDone:
		if j.result != nil {
			res := j.result
			s.mu.Unlock()
			return res, nil
		}
		hash := j.hash
		if res, ok := s.cache.get(hash); ok {
			j.result = res
			s.mu.Unlock()
			return res, nil
		}
		st := s.storeHandle
		s.mu.Unlock()
		if st == nil {
			return nil, fmt.Errorf("service: job %s: result no longer available", id)
		}
		art, err := st.GetArtifacts(hash)
		s.mu.Lock()
		defer s.mu.Unlock()
		switch {
		case err == nil:
			res := resultFromArtifacts(art)
			s.cache.add(res)
			s.diskHits++
			if j2, ok := s.jobs[id]; ok && j2.state == StateDone {
				j2.result = res
			}
			return res, nil
		case errors.Is(err, store.ErrCorrupt):
			s.quarantined++
		case !errors.Is(err, store.ErrNotFound):
			s.storeErrors++
		}
		return nil, fmt.Errorf(
			"service: job %s: result no longer available (expired or quarantined); resubmit the spec", id)
	case StateFailed:
		defer s.mu.Unlock()
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.errMsg)
	case StateCancelled:
		defer s.mu.Unlock()
		return nil, fmt.Errorf("service: job %s was cancelled", id)
	default:
		defer s.mu.Unlock()
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotReady, id, j.state)
	}
}

// Subscribe returns the job's event stream. The stream replays past state
// transitions (so a subscriber always sees queued first), then delivers
// live progress and the terminal event, after which it closes.
func (s *Service) Subscribe(id string) (*Subscription, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	sub := newSubscription()
	for _, e := range j.history {
		sub.publish(e)
	}
	if !j.state.Terminal() {
		j.subs = append(j.subs, sub)
	}
	return sub, nil
}

// Cancel cancels a job. Cancelling is per-submission: a computation shared
// with other jobs keeps running until its last attached job is cancelled.
// It reports false (with no error) when the job had already finished.
func (s *Service) Cancel(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if j.state.Terminal() {
		return false, nil
	}
	fl := j.flight
	j.flight = nil
	s.tenantAcctTerminal(j, j.state)
	j.state = StateCancelled
	j.terminalAt = time.Now()
	s.jobsCancelled++
	j.emit(Event{Type: EventCancelled, Done: j.done, Total: j.total})
	s.persistJob(j)
	if fl != nil {
		for i, other := range fl.jobs {
			if other == j {
				fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
				break
			}
		}
		if len(fl.jobs) == 0 {
			fl.cancelled = true
			fl.cancel()
			if s.inflight[fl.hash] == fl {
				delete(s.inflight, fl.hash)
			}
			// A fully-cancelled queued flight frees its queue slot right
			// away instead of riding along as a tombstone until a worker
			// would have skipped it.
			s.queue.Remove(fl)
		}
	}
	s.obsv.log.Info("job cancelled", jobAttrs(j)...)
	return true, nil
}

// gcLoop runs GC on a fixed cadence until Close.
func (s *Service) gcLoop(interval time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.GC()
		case <-s.gcStop:
			return
		}
	}
}

// GC runs one garbage-collection sweep and reports what it removed:
// terminal jobs older than JobRetention leave the job table (taking their
// replayable event history with them — the unbounded-growth fix), the job
// log is compacted to the surviving jobs, TTL-expired entries leave the
// in-memory cache, and TTL-expired artifacts are deleted from the disk
// store. With cell caching on, the cells tier is swept too — TTL-expired
// cells are deleted, then oldest cells are evicted until the tier fits
// CellCacheBytes — and spec records orphaned by a crash (no live flight,
// older than JobRetention) are dropped. The background loop calls this
// every GCInterval; it is also safe to invoke manually.
func (s *Service) GC() (jobsRemoved, artifactsRemoved int) {
	now := time.Now()
	s.mu.Lock()
	removed := make(map[string]bool)
	if s.cfg.JobRetention >= 0 {
		for id, j := range s.jobs {
			if j.state.Terminal() && !j.terminalAt.IsZero() &&
				now.Sub(j.terminalAt) > s.cfg.JobRetention {
				delete(s.jobs, id)
				removed[id] = true
				jobsRemoved++
			}
		}
	}
	if s.storeHandle != nil {
		// In persistent mode job records need not pin artifact bytes: the
		// memory cache (byte-budgeted) and the disk store serve result
		// fetches, and Result reloads lazily — exactly the recovered-job
		// path. Without this, every done job would hold its artifacts for
		// the whole retention window, dwarfing the cache budget.
		for _, j := range s.jobs {
			if j.state == StateDone && j.result != nil {
				j.result = nil
			}
		}
	}
	s.cache.expire()
	s.jobsGCed += int64(jobsRemoved)
	st := s.storeHandle
	ttl := s.cfg.CacheTTL
	cellsOn := s.cellCacheEnabled()
	inflightHashes := make(map[string]bool, len(s.inflight))
	for h := range s.inflight {
		inflightHashes[h] = true
	}
	s.mu.Unlock()

	if st == nil {
		return jobsRemoved, 0
	}
	var storeErrs int64
	// Compact when jobs were dropped, or when enough redundant transition
	// records have piled up that the log is worth folding even under
	// keep-forever retention. Keeping records NOT in the removed set (rather
	// than only snapshot-time survivors) means a job submitted while the
	// sweep runs can never lose its record to the rewrite.
	if jobsRemoved > 0 || st.PendingAppends() >= compactAppendThreshold {
		if _, err := st.CompactJobs(func(r store.JobRecord) bool { return !removed[r.ID] }); err != nil {
			storeErrs++
		}
	}
	if ttl > 0 {
		infos, err := st.ListArtifacts()
		if err != nil {
			storeErrs++
		}
		for _, info := range infos {
			if now.Sub(info.CreatedAt) > ttl {
				if err := st.DeleteArtifacts(info.Hash); err != nil {
					storeErrs++
				} else {
					artifactsRemoved++
				}
			}
		}
	}
	var cellsRemoved int
	if cellsOn {
		cellsRemoved = s.gcCells(st, now, ttl, &storeErrs)
		s.gcSpecs(st, now, inflightHashes, &storeErrs)
	}
	s.mu.Lock()
	s.artifactsGCed += int64(artifactsRemoved)
	s.cellsGCed += int64(cellsRemoved)
	s.storeErrors += storeErrs
	s.mu.Unlock()
	return jobsRemoved, artifactsRemoved
}

// gcCells sweeps the cells tier: TTL-expired cells are deleted, then — the
// size accounting — oldest surviving cells are evicted until the tier's
// byte total fits CellCacheBytes. Returns the number of cells removed.
func (s *Service) gcCells(st *store.Store, now time.Time, ttl time.Duration, storeErrs *int64) int {
	infos, err := st.ListCells()
	if err != nil {
		*storeErrs++
		return 0
	}
	var removed int
	var live []store.CellInfo
	var liveBytes int64
	for _, info := range infos {
		if ttl > 0 && now.Sub(info.CreatedAt) > ttl {
			if err := st.DeleteCell(info.Hash); err != nil {
				*storeErrs++
			} else {
				removed++
			}
			continue
		}
		live = append(live, info)
		liveBytes += info.Bytes
	}
	if budget := s.cfg.CellCacheBytes; budget > 0 && liveBytes > budget {
		sort.Slice(live, func(i, j int) bool {
			if !live[i].CreatedAt.Equal(live[j].CreatedAt) {
				return live[i].CreatedAt.Before(live[j].CreatedAt)
			}
			return live[i].Hash < live[j].Hash // deterministic tie-break
		})
		for _, info := range live {
			if liveBytes <= budget {
				break
			}
			if err := st.DeleteCell(info.Hash); err != nil {
				*storeErrs++
				continue
			}
			liveBytes -= info.Bytes
			removed++
		}
	}
	return removed
}

// gcSpecs drops spec records orphaned by a crash: a record whose matrix has
// no live flight and that has outlived JobRetention will never be requeued
// (its job either recovered already or aged out of the table), so it only
// wastes disk. Records of in-flight matrices are never touched; flights
// delete their own record on completion.
func (s *Service) gcSpecs(st *store.Store, now time.Time, inflightHashes map[string]bool, storeErrs *int64) {
	if s.cfg.JobRetention < 0 {
		return // keep-forever retention keeps orphaned specs too
	}
	infos, err := st.ListSpecs()
	if err != nil {
		*storeErrs++
		return
	}
	for _, info := range infos {
		if inflightHashes[info.Hash] || now.Sub(info.CreatedAt) <= s.cfg.JobRetention {
			continue
		}
		if err := st.DeleteSpec(info.Hash); err != nil {
			*storeErrs++
		}
	}
}

// Health is the payload of GET /healthz: the cheap shard-health probe a
// routing tier uses to aggregate pool state (see internal/gateway). It
// carries the handful of gauges an operator needs to judge one shard at a
// glance — backpressure (queue depth vs capacity), job-table size, and
// whether the shard is durable — without the full Metrics scrape.
type Health struct {
	// Status is "ok" while the shard accepts submissions and "draining"
	// once Close has begun.
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	JobsTracked   int     `json:"jobs_tracked"`
	Persistent    bool    `json:"persistent"`
}

// Health returns the shard-health snapshot served on /healthz.
func (s *Service) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	status := "ok"
	if s.closed {
		status = "draining"
	}
	return Health{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    s.queue.Len() + s.reserved,
		QueueCapacity: s.cfg.QueueDepth,
		JobsTracked:   len(s.jobs),
		Persistent:    s.storeHandle != nil,
	}
}

// Metrics is a point-in-time snapshot of service counters and gauges.
type Metrics struct {
	Submissions     int64   `json:"submissions"`
	CacheHits       int64   `json:"cache_hits"`
	DiskHits        int64   `json:"disk_hits"`
	DedupHits       int64   `json:"dedup_hits"`
	Flights         int64   `json:"flights"`
	JobsDone        int64   `json:"jobs_done"`
	JobsFailed      int64   `json:"jobs_failed"`
	JobsCancelled   int64   `json:"jobs_cancelled"`
	JobsGCed        int64   `json:"jobs_gced"`
	ArtifactsGCed   int64   `json:"artifacts_gced"`
	Quarantined     int64   `json:"quarantined"`
	StoreErrors     int64   `json:"store_errors"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCapacity   int     `json:"queue_capacity"`
	CacheEntries    int     `json:"cache_entries"`
	CacheBytes      int64   `json:"cache_bytes"`
	JobsTracked     int     `json:"jobs_tracked"`
	Persistent      bool    `json:"persistent"`
	CellsDone       int64   `json:"cells_done"`
	CellHits        int64   `json:"cell_hits"`
	CellMisses      int64   `json:"cell_misses"`
	CellBytes       int64   `json:"cell_bytes"`
	CellsGCed       int64   `json:"cells_gced"`
	Assembled       int64   `json:"assembled"`
	Unauthorized    int64   `json:"unauthorized"`
	PeerFetchHits   int64   `json:"peer_fetch_hits"`
	PeerFetchMisses int64   `json:"peer_fetch_misses"`
	PeerFetchBytes  int64   `json:"peer_fetch_bytes"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	CellsPerSecond  float64 `json:"cells_per_second"`

	// Tenants holds per-tenant counters, keyed by tenant name. Only named
	// tenants appear: anonymous traffic stays in the global counters alone,
	// keeping single-tenant output identical to prior releases. Every field
	// is additive across shards so a gateway can sum them.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// TenantMetrics is one tenant's slice of the service counters.
type TenantMetrics struct {
	Submitted   int64   `json:"submitted"`
	Rejected    int64   `json:"rejected"`
	Queued      int64   `json:"queued"`
	Running     int64   `json:"running"`
	CellSeconds float64 `json:"cell_seconds"`
}

// Metrics returns current counters: submissions split into memory cache
// hits, disk hits, in-flight dedups, and executed flights, plus GC and
// store-health counters, queue and cache gauges, and the lifetime simulation
// throughput in matrix cells per second. Counters are process-lifetime:
// they restart at zero with the process even in persistent mode.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Submissions:     s.submissions,
		CacheHits:       s.cacheHits,
		DiskHits:        s.diskHits,
		DedupHits:       s.dedupHits,
		Flights:         s.flightsRun,
		JobsDone:        s.jobsDone,
		JobsFailed:      s.jobsFailed,
		JobsCancelled:   s.jobsCancelled,
		JobsGCed:        s.jobsGCed,
		ArtifactsGCed:   s.artifactsGCed,
		Quarantined:     s.quarantined,
		StoreErrors:     s.storeErrors,
		QueueDepth:      s.queue.Len() + s.reserved,
		QueueCapacity:   s.cfg.QueueDepth,
		CacheEntries:    s.cache.len(),
		CacheBytes:      s.cache.sizeBytes(),
		JobsTracked:     len(s.jobs),
		Persistent:      s.storeHandle != nil,
		CellsDone:       s.cellsDone,
		CellHits:        s.cellHits,
		CellMisses:      s.cellMisses,
		CellBytes:       s.cellBytes,
		CellsGCed:       s.cellsGCed,
		Assembled:       s.assembled,
		Unauthorized:    s.unauthorized,
		PeerFetchHits:   s.peerFetchHits,
		PeerFetchMisses: s.peerFetchMisses,
		PeerFetchBytes:  s.peerFetchBytes,
	}
	if len(s.tenantAccts) > 0 {
		m.Tenants = make(map[string]TenantMetrics, len(s.tenantAccts))
		for name, ta := range s.tenantAccts {
			m.Tenants[name] = TenantMetrics{
				Submitted:   ta.submitted,
				Rejected:    ta.rejected,
				Queued:      ta.queued,
				Running:     ta.running,
				CellSeconds: ta.cellSeconds,
			}
		}
	}
	m.UptimeSeconds = time.Since(s.start).Seconds()
	if m.UptimeSeconds > 0 {
		m.CellsPerSecond = float64(m.CellsDone) / m.UptimeSeconds
	}
	return m
}

// Close drains the service: no new submissions are accepted, queued and
// running matrices are completed, and Close returns once the workers and the
// garbage collector exit. If ctx expires first, all remaining computations
// are cancelled (their jobs fail with the cancellation error) and the
// context error is returned. In persistent mode the store — which the
// service owns — is closed last, after every worker that could touch it.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	close(s.gcStop)
	s.cond.Broadcast() // wake idle workers so they drain pending and exit
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		s.closeStore()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		s.closeStore()
		return ctx.Err()
	}
}

func (s *Service) closeStore() {
	if s.storeHandle != nil {
		_ = s.storeHandle.Close()
	}
}
