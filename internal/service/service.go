// Package service turns the deterministic matrix runner into a
// simulation-as-a-service layer: clients submit canonical matrix specs
// (internal/service/spec), the service executes them on a bounded FIFO
// queue feeding a pool of runner.Run workers, and every completed matrix is
// stored in a content-addressed LRU cache keyed by the spec hash.
//
// Determinism is what makes the sharing sound: the runner produces
// byte-identical artifacts for equal specs at any parallelism, so
//
//   - identical in-flight submissions collapse into one computation
//     (single-flight: later submissions attach to the running flight), and
//   - cached responses are exactly the bytes a fresh run would produce.
//
// Each submission is an independent job with its own lifecycle
// (queued → running → done/failed/cancelled), an event stream for live
// progress, and independent cancellation; a shared computation is cancelled
// only when every job attached to it has been cancelled.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
)

// Errors reported by the service.
var (
	ErrClosed     = errors.New("service: closed")
	ErrQueueFull  = errors.New("service: queue full")
	ErrUnknownJob = errors.New("service: unknown job")
	ErrNotReady   = errors.New("service: result not ready")
)

// State is a job lifecycle state.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Config sizes the service. The zero value gets sensible defaults.
type Config struct {
	// Workers is the number of matrices executed concurrently (default 2).
	Workers int
	// QueueDepth bounds the FIFO of matrices waiting for a worker
	// (default 16); submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity in matrices
	// (default 64; negative disables caching).
	CacheEntries int
	// CellParallelism bounds the worker pool inside each runner.Run call
	// (default runtime.GOMAXPROCS(0)). Results do not depend on it.
	CellParallelism int
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.CellParallelism <= 0 {
		c.CellParallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// JobStatus is the client-visible snapshot of one job.
type JobStatus struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	State  State  `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	// Done/Total report matrix-cell progress.
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

// jobState is one submission's server-side state. Guarded by Service.mu.
type jobState struct {
	id      string
	hash    string
	state   State
	cached  bool
	errMsg  string
	done    int
	total   int
	result  *CachedResult
	flight  *flight // nil once terminal
	subs    []*Subscription
	history []Event // state transitions, replayed to late subscribers
}

func (j *jobState) status() JobStatus {
	return JobStatus{
		ID: j.id, Hash: j.hash, State: j.state, Cached: j.cached,
		Done: j.done, Total: j.total, Error: j.errMsg,
	}
}

// emit publishes an event to every subscriber and records state transitions
// for replay. Callers hold Service.mu.
func (j *jobState) emit(e Event) {
	e.Job = j.id
	if e.Type != EventProgress {
		j.history = append(j.history, e)
	}
	for _, sub := range j.subs {
		sub.publish(e)
	}
}

// flight is one shared matrix computation: every job submitted with the
// same spec hash while it is queued or running attaches to it.
type flight struct {
	hash      string
	rspec     runner.Spec
	jobs      []*jobState
	ctx       context.Context
	cancel    context.CancelFunc
	cancelled bool
	state     State
	done      int
	lastDone  int // cells already counted into Service.cellsDone
	total     int
}

// Service is an in-process simulation service. Create with New, serve over
// HTTP via Handler, and stop with Close.
type Service struct {
	cfg   Config
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg sync.WaitGroup

	// runMatrix executes one matrix; runner.Run outside tests.
	runMatrix func(context.Context, runner.Spec, runner.Options) (*runner.Result, error)

	mu   sync.Mutex
	cond *sync.Cond // wakes workers when pending grows or the service closes
	// pending is the bounded FIFO of flights waiting for a worker. A slice
	// rather than a channel so Cancel can remove a fully-cancelled queued
	// flight immediately and free its slot for new submissions.
	pending []*flight
	// reserved counts flights registered in inflight whose workload is
	// still expanding; they hold a queue slot but are not yet in pending.
	reserved int
	closed   bool
	seq      int
	jobs     map[string]*jobState
	inflight map[string]*flight
	cache    *lruCache

	submissions   int64
	cacheHits     int64
	dedupHits     int64
	flightsRun    int64
	jobsDone      int64
	jobsFailed    int64
	jobsCancelled int64
	cellsDone     int64
}

// New starts a service with cfg defaults filled and its worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		start:      time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*jobState),
		inflight:   make(map[string]*flight),
		cache:      newLRUCache(cfg.CacheEntries),
		runMatrix:  runner.Run,
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				fl, ok := s.nextFlight()
				if !ok {
					return
				}
				s.runFlight(fl)
			}
		}()
	}
	return s
}

// nextFlight blocks until a flight is pending or the service has closed
// and drained; the bool reports whether a flight was dequeued.
func (s *Service) nextFlight() (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.pending) > 0 {
			fl := s.pending[0]
			s.pending = s.pending[1:]
			return fl, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// Submit registers a job for the spec and returns its initial status. The
// spec is validated and content-hashed; a cache hit completes the job
// immediately, an equal in-flight spec shares its computation, and otherwise
// the job is queued (failing fast with ErrQueueFull when the queue is at
// capacity). Only accepted submissions count toward the submissions metric.
func (s *Service) Submit(sp spec.Spec) (JobStatus, error) {
	hash, err := sp.Hash()
	if err != nil {
		return JobStatus{}, err
	}
	// The matrix size is known from the axes alone — no workload expansion
	// needed — so the flight can be registered before the slow part.
	norm := sp.Normalize()
	total := len(norm.Schedulers) * len(norm.Points) * norm.Runs

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if st, ok := s.fastPath(hash); ok {
		s.mu.Unlock()
		return st, nil
	}
	if len(s.pending)+s.reserved >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cfg.QueueDepth)
	}
	// Reserve the queue slot and register the flight in the single-flight
	// table before expanding the workload (trace generation of a large job
	// count is the slow part of submission): concurrent identical
	// submissions attach to this flight instead of expanding the same
	// trace again, and doomed-to-429 bursts are rejected before paying for
	// an expansion.
	fctx, fcancel := context.WithCancel(s.baseCtx)
	fl := &flight{
		hash:   hash,
		ctx:    fctx,
		cancel: fcancel,
		state:  StateQueued,
		total:  total,
	}
	s.reserved++
	s.inflight[hash] = fl
	s.submissions++
	s.flightsRun++
	j := s.newJob(hash)
	j.total = total
	j.flight = fl
	fl.jobs = append(fl.jobs, j)
	j.emit(Event{Type: EventQueued, Total: total})
	s.mu.Unlock()

	rspec, rerr := norm.Runner()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	if fl.cancelled {
		// Every attached job was cancelled while the workload expanded;
		// Cancel already detached them and removed the flight.
		return j.status(), nil
	}
	if rerr == nil && s.closed {
		// Close began after the reservation; its drain covers only flights
		// that were already pending, so fail rather than strand the jobs.
		rerr = ErrClosed
	}
	if rerr != nil {
		if s.inflight[fl.hash] == fl {
			delete(s.inflight, fl.hash)
		}
		fl.cancel()
		jobs := fl.jobs
		fl.jobs = nil
		for _, jb := range jobs {
			jb.state = StateFailed
			jb.errMsg = rerr.Error()
			jb.flight = nil
			s.jobsFailed++
			jb.emit(Event{Type: EventFailed, Total: jb.total, Error: jb.errMsg})
		}
		return JobStatus{}, rerr
	}
	fl.rspec = rspec
	s.pending = append(s.pending, fl)
	s.cond.Signal()
	return j.status(), nil
}

// fastPath serves a submission from the result cache or attaches it to an
// in-flight computation, counting it as accepted. Caller holds mu; the
// bool reports success.
func (s *Service) fastPath(hash string) (JobStatus, bool) {
	if res, ok := s.cache.get(hash); ok {
		s.submissions++
		s.cacheHits++
		j := s.newJob(hash)
		j.state = StateDone
		j.cached = true
		j.result = res
		j.done, j.total = res.Cells, res.Cells
		s.jobsDone++
		j.emit(Event{Type: EventQueued, Total: j.total})
		j.emit(Event{Type: EventDone, Done: j.done, Total: j.total, Cached: true})
		return j.status(), true
	}
	if fl, ok := s.inflight[hash]; ok && !fl.cancelled {
		s.submissions++
		s.dedupHits++
		j := s.newJob(hash)
		j.state = fl.state
		j.done, j.total = fl.done, fl.total
		j.flight = fl
		fl.jobs = append(fl.jobs, j)
		j.emit(Event{Type: EventQueued, Total: j.total})
		if fl.state == StateRunning {
			j.emit(Event{Type: EventRunning, Done: j.done, Total: j.total})
		}
		return j.status(), true
	}
	return JobStatus{}, false
}

// newJob allocates a job record. Caller holds mu.
func (s *Service) newJob(hash string) *jobState {
	s.seq++
	j := &jobState{
		id:    fmt.Sprintf("m%06d", s.seq),
		hash:  hash,
		state: StateQueued,
	}
	s.jobs[j.id] = j
	return j
}

// runFlight executes one shared computation on the calling worker.
func (s *Service) runFlight(fl *flight) {
	s.mu.Lock()
	if fl.cancelled {
		s.mu.Unlock()
		return
	}
	fl.state = StateRunning
	for _, j := range fl.jobs {
		j.state = StateRunning
		j.emit(Event{Type: EventRunning, Total: j.total})
	}
	s.mu.Unlock()

	res, err := s.runMatrix(fl.ctx, fl.rspec, runner.Options{
		Parallelism: s.cfg.CellParallelism,
		Progress:    func(done, total int) { s.flightProgress(fl, done, total) },
	})

	var cached *CachedResult
	if err == nil {
		cached, err = encodeResult(fl.hash, res)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[fl.hash] == fl {
		delete(s.inflight, fl.hash)
	}
	jobs := fl.jobs
	fl.jobs = nil
	if err != nil {
		for _, j := range jobs {
			j.state = StateFailed
			j.errMsg = err.Error()
			j.flight = nil
			s.jobsFailed++
			j.emit(Event{Type: EventFailed, Done: j.done, Total: j.total, Error: j.errMsg})
		}
		return
	}
	s.cache.add(cached)
	for _, j := range jobs {
		j.state = StateDone
		j.result = cached
		j.done = j.total
		j.flight = nil
		s.jobsDone++
		j.emit(Event{Type: EventDone, Done: j.done, Total: j.total})
	}
}

// flightProgress fans one runner progress callback out to every attached
// job's subscribers and keeps the global cell counter current.
func (s *Service) flightProgress(fl *flight, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl.done, fl.total = done, total
	s.cellsDone += int64(done - fl.lastDone)
	fl.lastDone = done
	for _, j := range fl.jobs {
		j.done, j.total = done, total
		j.emit(Event{Type: EventProgress, Done: done, Total: total})
	}
}

// encodeResult renders the deterministic artifact bytes of a completed
// matrix once; every job and every future cache hit shares them.
func encodeResult(hash string, res *runner.Result) (*CachedResult, error) {
	var jsonBuf, csvBuf, aggBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		return nil, fmt.Errorf("service: encode json: %w", err)
	}
	if err := res.WriteCSV(&csvBuf); err != nil {
		return nil, fmt.Errorf("service: encode csv: %w", err)
	}
	if err := res.WriteAggregateCSV(&aggBuf); err != nil {
		return nil, fmt.Errorf("service: encode aggregate csv: %w", err)
	}
	return &CachedResult{
		Hash:         hash,
		JSON:         jsonBuf.Bytes(),
		CSV:          csvBuf.Bytes(),
		AggregateCSV: aggBuf.Bytes(),
		Cells:        len(res.Cells),
	}, nil
}

// Get returns the status snapshot of a job.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// Result returns the completed artifact of a done job; ErrNotReady while it
// is queued or running, and the failure/cancellation as an error otherwise.
func (s *Service) Result(id string) (*CachedResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %s", id, j.errMsg)
	case StateCancelled:
		return nil, fmt.Errorf("service: job %s was cancelled", id)
	default:
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotReady, id, j.state)
	}
}

// Subscribe returns the job's event stream. The stream replays past state
// transitions (so a subscriber always sees queued first), then delivers
// live progress and the terminal event, after which it closes.
func (s *Service) Subscribe(id string) (*Subscription, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	sub := newSubscription()
	for _, e := range j.history {
		sub.publish(e)
	}
	if !j.state.Terminal() {
		j.subs = append(j.subs, sub)
	}
	return sub, nil
}

// Cancel cancels a job. Cancelling is per-submission: a computation shared
// with other jobs keeps running until its last attached job is cancelled.
// It reports false (with no error) when the job had already finished.
func (s *Service) Cancel(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if j.state.Terminal() {
		return false, nil
	}
	fl := j.flight
	j.flight = nil
	j.state = StateCancelled
	s.jobsCancelled++
	j.emit(Event{Type: EventCancelled, Done: j.done, Total: j.total})
	if fl != nil {
		for i, other := range fl.jobs {
			if other == j {
				fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
				break
			}
		}
		if len(fl.jobs) == 0 {
			fl.cancelled = true
			fl.cancel()
			if s.inflight[fl.hash] == fl {
				delete(s.inflight, fl.hash)
			}
			// A fully-cancelled queued flight frees its queue slot right
			// away instead of riding along as a tombstone until a worker
			// would have skipped it.
			for i, queued := range s.pending {
				if queued == fl {
					s.pending = append(s.pending[:i], s.pending[i+1:]...)
					break
				}
			}
		}
	}
	return true, nil
}

// Metrics is a point-in-time snapshot of service counters and gauges.
type Metrics struct {
	Submissions    int64   `json:"submissions"`
	CacheHits      int64   `json:"cache_hits"`
	DedupHits      int64   `json:"dedup_hits"`
	Flights        int64   `json:"flights"`
	JobsDone       int64   `json:"jobs_done"`
	JobsFailed     int64   `json:"jobs_failed"`
	JobsCancelled  int64   `json:"jobs_cancelled"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	CacheEntries   int     `json:"cache_entries"`
	CellsDone      int64   `json:"cells_done"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	CellsPerSecond float64 `json:"cells_per_second"`
}

// Metrics returns current counters: submissions split into cache hits,
// in-flight dedups, and executed flights, plus queue and cache gauges and
// the lifetime simulation throughput in matrix cells per second.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Submissions:   s.submissions,
		CacheHits:     s.cacheHits,
		DedupHits:     s.dedupHits,
		Flights:       s.flightsRun,
		JobsDone:      s.jobsDone,
		JobsFailed:    s.jobsFailed,
		JobsCancelled: s.jobsCancelled,
		QueueDepth:    len(s.pending) + s.reserved,
		QueueCapacity: s.cfg.QueueDepth,
		CacheEntries:  s.cache.len(),
		CellsDone:     s.cellsDone,
	}
	m.UptimeSeconds = time.Since(s.start).Seconds()
	if m.UptimeSeconds > 0 {
		m.CellsPerSecond = float64(m.CellsDone) / m.UptimeSeconds
	}
	return m
}

// Close drains the service: no new submissions are accepted, queued and
// running matrices are completed, and Close returns once the workers exit.
// If ctx expires first, all remaining computations are cancelled (their
// jobs fail with the cancellation error) and the context error is returned.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.cond.Broadcast() // wake idle workers so they drain pending and exit
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}
