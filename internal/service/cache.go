package service

import (
	"container/list"
	"time"
)

// CachedResult is one content-addressed cache entry: the artifact bytes of a
// completed matrix, keyed by the spec's canonical hash. All fields are
// immutable after insertion and may be served to any number of clients
// concurrently; because the runner is deterministic, these bytes are exactly
// what recomputing the spec would produce.
type CachedResult struct {
	// Hash is the spec content address the entry is stored under.
	Hash string
	// JSON is the full matrix artifact (runner.Result.WriteJSON).
	JSON []byte
	// CSV is the per-cell artifact (runner.Result.WriteCSV).
	CSV []byte
	// AggregateCSV is the replicate-averaged artifact
	// (runner.Result.WriteAggregateCSV).
	AggregateCSV []byte
	// Cells is the matrix size, for metrics.
	Cells int
	// CreatedAt is when the matrix was computed. Entries loaded back from
	// the disk store keep their original computation time, so TTL expiry
	// is anchored to artifact age, not process uptime.
	CreatedAt time.Time
}

// cacheEntryOverhead approximates the per-entry bookkeeping cost so even a
// degenerate zero-byte artifact consumes budget.
const cacheEntryOverhead = 256

// size is the entry's charge against the cache byte budget.
func (r *CachedResult) size() int64 {
	return int64(len(r.JSON)+len(r.CSV)+len(r.AggregateCSV)) + cacheEntryOverhead
}

// lruCache is a non-thread-safe LRU over CachedResult accounted in artifact
// bytes, with optional TTL expiry anchored to CreatedAt; the service guards
// it with its own mutex.
type lruCache struct {
	maxBytes int64
	ttl      time.Duration // 0 = entries never expire
	now      func() time.Time

	bytes   int64
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element holding *CachedResult
}

// newLRUCache builds a cache holding at most maxBytes of artifact bytes
// (non-positive disables caching) whose entries expire ttl after their
// computation time (0 = never).
func newLRUCache(maxBytes int64, ttl time.Duration) *lruCache {
	return &lruCache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func (c *lruCache) expired(res *CachedResult) bool {
	return c.ttl > 0 && c.now().Sub(res.CreatedAt) > c.ttl
}

// get returns the entry and promotes it to most recently used. An entry past
// its TTL is dropped and reported as a miss.
func (c *lruCache) get(hash string) (*CachedResult, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	res := el.Value.(*CachedResult)
	if c.expired(res) {
		c.remove(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return res, true
}

// add inserts (or refreshes) an entry, evicting least-recently-used entries
// until the byte budget holds. The newest entry is always retained, so a
// single matrix larger than the whole budget is still served to the
// submissions that raced its computation. A non-positive budget disables
// caching.
func (c *lruCache) add(res *CachedResult) {
	if c.maxBytes <= 0 || c.expired(res) {
		return
	}
	if el, ok := c.entries[res.Hash]; ok {
		c.bytes += res.size() - el.Value.(*CachedResult).size()
		c.order.MoveToFront(el)
		el.Value = res
	} else {
		c.entries[res.Hash] = c.order.PushFront(res)
		c.bytes += res.size()
	}
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		c.remove(c.order.Back())
	}
}

// expire drops every entry past its TTL, returning how many were removed.
// Expiry is by creation time, not recency, so the whole list is walked.
func (c *lruCache) expire() int {
	removed := 0
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		if c.expired(el.Value.(*CachedResult)) {
			c.remove(el)
			removed++
		}
	}
	return removed
}

func (c *lruCache) remove(el *list.Element) {
	c.order.Remove(el)
	res := el.Value.(*CachedResult)
	c.bytes -= res.size()
	delete(c.entries, res.Hash)
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.order.Len() }

// sizeBytes returns the bytes currently charged against the budget.
func (c *lruCache) sizeBytes() int64 { return c.bytes }
