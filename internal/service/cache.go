package service

import "container/list"

// CachedResult is one content-addressed cache entry: the artifact bytes of a
// completed matrix, keyed by the spec's canonical hash. All fields are
// immutable after insertion and may be served to any number of clients
// concurrently; because the runner is deterministic, these bytes are exactly
// what recomputing the spec would produce.
type CachedResult struct {
	// Hash is the spec content address the entry is stored under.
	Hash string
	// JSON is the full matrix artifact (runner.Result.WriteJSON).
	JSON []byte
	// CSV is the per-cell artifact (runner.Result.WriteCSV).
	CSV []byte
	// AggregateCSV is the replicate-averaged artifact
	// (runner.Result.WriteAggregateCSV).
	AggregateCSV []byte
	// Cells is the matrix size, for metrics.
	Cells int
}

// lruCache is a non-thread-safe LRU over CachedResult; the service guards it
// with its own mutex.
type lruCache struct {
	max     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // hash -> element holding *CachedResult
}

func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the entry and promotes it to most recently used.
func (c *lruCache) get(hash string) (*CachedResult, bool) {
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*CachedResult), true
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entries beyond the capacity. A non-positive capacity disables caching.
func (c *lruCache) add(res *CachedResult) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.entries[res.Hash]; ok {
		c.order.MoveToFront(el)
		el.Value = res
		return
	}
	c.entries[res.Hash] = c.order.PushFront(res)
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*CachedResult).Hash)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.order.Len() }
