package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/tenant"
)

func decodeJSON(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// testRegistry builds a registry, failing the test on invalid input.
func testRegistry(t *testing.T, tenants ...tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// authedRequest issues an HTTP request with an optional bearer token and
// returns the response (caller closes the body).
func authedRequest(t *testing.T, client *http.Client, method, url, token string, body []byte) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTenantAuthHTTP(t *testing.T) {
	reg := testRegistry(t,
		tenant.Tenant{Name: "alpha", Token: "tok-alpha"},
		tenant.Tenant{Name: "charlie", Token: "tok-charlie"},
		tenant.Tenant{Name: "bravo", Token: "tok-bravo", Disabled: true},
	)
	s := New(Config{Workers: 1, QueueDepth: 8, Tenants: reg})
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := testSpec(1).Canonical()

	// Missing and unknown tokens: 401 with a challenge.
	for _, token := range []string{"", "tok-nobody"} {
		resp := authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", token, body)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: HTTP %d, want 401", token, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("token %q: 401 without WWW-Authenticate challenge", token)
		}
		resp.Body.Close()
	}

	// A disabled tenant authenticates but is forbidden.
	resp := authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-bravo", body)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled tenant: HTTP %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	// A valid token submits, and the status carries the tenant.
	resp = authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-alpha", body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid token: HTTP %d", resp.StatusCode)
	}
	var st JobStatus
	if err := decodeJSON(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Tenant != "alpha" {
		t.Fatalf("status tenant %q, want alpha", st.Tenant)
	}

	// Job reads require a token too; liveness and metrics stay open.
	resp = authedRequest(t, ts.Client(), http.MethodGet, ts.URL+"/v1/matrices/"+st.ID, "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status read: HTTP %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()
	resp = authedRequest(t, ts.Client(), http.MethodGet, ts.URL+"/v1/matrices/"+st.ID, "tok-charlie", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated status read: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	for _, path := range []string{"/healthz", "/metrics"} {
		resp = authedRequest(t, ts.Client(), http.MethodGet, ts.URL+path, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s closed to anonymous probes: HTTP %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Cancellation is owner-only.
	resp = authedRequest(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/matrices/"+st.ID, "tok-charlie", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant cancel: HTTP %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()
	resp = authedRequest(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/matrices/"+st.ID, "tok-alpha", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner cancel: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()

	if m := s.Metrics(); m.Unauthorized < 3 {
		t.Fatalf("unauthorized counter %d, want >= 3", m.Unauthorized)
	}
}

func TestTenantRateLimitRetryAfter(t *testing.T) {
	reg := testRegistry(t, tenant.Tenant{Name: "alpha", Token: "tok-alpha", Rate: 0.5, Burst: 1})
	s := New(Config{Workers: 1, QueueDepth: 8, Tenants: reg})
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body1, _ := testSpec(1).Canonical()
	body2, _ := testSpec(2).Canonical()

	resp := authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-alpha", body1)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-alpha", body2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission: HTTP %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	m := s.Metrics()
	if m.Tenants["alpha"].Rejected != 1 || m.Tenants["alpha"].Submitted != 1 {
		t.Fatalf("tenant counters: %+v", m.Tenants["alpha"])
	}
}

// TestTenantQuotaIsolation is the noisy-neighbor acceptance: tenant alpha
// flooding past its own queued-jobs quota is rejected without evicting,
// blocking, or failing bravo's jobs — and the quota frees as jobs finish.
func TestTenantQuotaIsolation(t *testing.T) {
	reg := testRegistry(t,
		tenant.Tenant{Name: "alpha", Token: "tok-a", MaxQueued: 2},
		tenant.Tenant{Name: "bravo", Token: "tok-b"},
		tenant.Tenant{Name: "cells", Token: "tok-c", MaxCells: 1},
	)
	s, release, _ := blockingService(Config{Workers: 1, QueueDepth: 32, Tenants: reg})
	defer closeService(t, s)

	// Occupy the single worker so every later submission stays queued.
	blocker, err := s.Submit(testSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)

	var alphaJobs []JobStatus
	for i := int64(0); i < 2; i++ {
		st, err := s.SubmitToken("tok-a", testSpec(100+i))
		if err != nil {
			t.Fatalf("alpha submission %d: %v", i, err)
		}
		alphaJobs = append(alphaJobs, st)
	}
	if _, err := s.SubmitToken("tok-a", testSpec(102)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("alpha over quota: err %v, want ErrTenantQuota", err)
	}

	// bravo is untouched by alpha's flood, before and after it.
	var bravoJobs []JobStatus
	for i := int64(0); i < 3; i++ {
		st, err := s.SubmitToken("tok-b", testSpec(200+i))
		if err != nil {
			t.Fatalf("bravo submission %d: %v", i, err)
		}
		bravoJobs = append(bravoJobs, st)
	}

	// The cell quota rejects on projected in-flight cells, not job count.
	if _, err := s.SubmitToken("tok-c", testSpec(300)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitToken("tok-c", testSpec(301)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("cells over quota: err %v, want ErrTenantQuota", err)
	}

	// Alpha's earlier jobs were not evicted by its own flood.
	for _, st := range alphaJobs {
		got, err := s.Get(st.ID)
		if err != nil || got.State.Terminal() {
			t.Fatalf("alpha job %s: state %s err %v", st.ID, got.State, err)
		}
	}

	close(release)
	for _, st := range append(alphaJobs, bravoJobs...) {
		waitState(t, s, st.ID, StateDone)
	}

	// Terminal jobs release their quota.
	if _, err := s.SubmitToken("tok-a", testSpec(103)); err != nil {
		t.Fatalf("alpha after drain: %v", err)
	}

	m := s.Metrics()
	if m.Tenants["alpha"].Rejected != 1 || m.Tenants["bravo"].Rejected != 0 {
		t.Fatalf("rejection counters: alpha %+v bravo %+v", m.Tenants["alpha"], m.Tenants["bravo"])
	}
	if m.Tenants["bravo"].Submitted != 3 {
		t.Fatalf("bravo submitted %d, want 3", m.Tenants["bravo"].Submitted)
	}
}

// orderRecordingService stubs runMatrix to record each flight's spec (by
// base seed and matrix shape) in execution order, blocking runs on a gate
// channel: send one token per run, or close it to release everything.
func orderRecordingService(cfg Config) (*Service, chan struct{}, func() []runner.Spec) {
	gate := make(chan struct{}, 64)
	s := New(cfg)
	var mu sync.Mutex
	var order []runner.Spec
	s.runMatrix = func(ctx context.Context, rs runner.Spec, opts runner.Options) (*runner.Result, error) {
		mu.Lock()
		order = append(order, rs)
		mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return runner.Run(ctx, rs, opts)
	}
	snapshot := func() []runner.Spec {
		mu.Lock()
		defer mu.Unlock()
		return append([]runner.Spec(nil), order...)
	}
	return s, gate, snapshot
}

// TestQueuePolicyFairWeightedShares pins the weighted lottery at the
// service level: with a 3:1 weight split and both tenants holding a
// backlog, alpha wins the clear majority of dequeues.
func TestQueuePolicyFairWeightedShares(t *testing.T) {
	reg := testRegistry(t,
		tenant.Tenant{Name: "alpha", Token: "tok-a", Weight: 3},
		tenant.Tenant{Name: "bravo", Token: "tok-b", Weight: 1},
	)
	s, gate, snapshot := orderRecordingService(Config{
		Workers: 1, QueueDepth: 64, Tenants: reg,
		QueuePolicy: tenant.PolicyFair, QueueSeed: 42,
	})
	defer closeService(t, s)

	blocker, err := s.Submit(testSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)

	// Interleaved sustained backlogs: alpha seeds 100+i, bravo 200+i.
	var all []JobStatus
	for i := int64(0); i < 8; i++ {
		a, err := s.SubmitToken("tok-a", testSpec(100+i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.SubmitToken("tok-b", testSpec(200+i))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, a, b)
	}
	close(gate)
	for _, st := range all {
		waitState(t, s, st.ID, StateDone)
	}

	// While both backlogs lasted — the first 8 dequeues after the blocker
	// (bravo's 8 jobs can never drain before then) — alpha's 3:1 weight
	// should earn it roughly 6 of 8.
	order := snapshot()
	if len(order) != 17 {
		t.Fatalf("recorded %d runs, want 17", len(order))
	}
	alphaWins := 0
	for _, rs := range order[1:9] {
		if rs.BaseSeed >= 100 && rs.BaseSeed < 200 {
			alphaWins++
		}
	}
	if alphaWins < 5 {
		t.Fatalf("alpha won %d of the first 8 contested dequeues, want >= 5 (order %v)",
			alphaWins, seeds(order))
	}
}

func seeds(order []runner.Spec) []int64 {
	out := make([]int64, len(order))
	for i, rs := range order {
		out[i] = rs.BaseSeed
	}
	return out
}

// TestQueuePolicySRPTPrefersCachedWork is the dogfooding acceptance: under
// -queue-policy srpt a small matrix whose cells are mostly in the cell
// cache is estimated cheap — via the same content addresses the runner
// will resolve — and jumps a large cold matrix that arrived first.
func TestQueuePolicySRPTPrefersCachedWork(t *testing.T) {
	dir := t.TempDir()
	s, gate, snapshot := orderRecordingService(Config{
		Workers: 1, QueueDepth: 16, GCInterval: -1,
		Store:       openTestStore(t, dir),
		QueuePolicy: tenant.PolicySRPT,
	})
	defer closeService(t, s)

	// Warm the cell cache with pointA and pointB.
	gate <- struct{}{}
	warm, err := s.Submit(overlapSpec([]spec.Point{pointA, pointB}))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, warm.ID, StateDone)

	// Occupy the worker, then queue a large cold matrix before a small
	// mostly-cached one.
	blocker, err := s.Submit(testSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)
	pointD := spec.Point{X: 9, Machines: 40}
	pointE := spec.Point{X: 10, Machines: 45}
	pointF := spec.Point{X: 11, Machines: 50}
	cold, err := s.Submit(overlapSpec([]spec.Point{pointD, pointE, pointF})) // 6 cells, none cached
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Submit(overlapSpec([]spec.Point{pointA, pointD})) // 4 cells, 2 cached
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitState(t, s, cold.ID, StateDone)
	waitState(t, s, small.ID, StateDone)

	order := snapshot()
	if len(order) != 4 {
		t.Fatalf("recorded %d runs, want 4", len(order))
	}
	// order[0] warm, order[1] blocker; the contested pop is order[2].
	if got := len(order[2].Points); got != 2 {
		t.Fatalf("SRPT ran the %d-point matrix before the 2-point mostly-cached one", got)
	}
}

// TestAssembledFastPath: a matrix fully covered by cached cells completes
// at submission — worker-free, byte-identical, and counted as assembled
// rather than as a flight.
func TestAssembledFastPath(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueDepth: 8, GCInterval: -1, Store: openTestStore(t, dir)})
	defer closeService(t, s)

	warm, err := s.Submit(overlapSpec([]spec.Point{pointA, pointB}))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, warm.ID, StateDone)

	sub := overlapSpec([]spec.Point{pointA})
	st, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("fully covered matrix submitted as %s, want immediate %s", st.State, StateDone)
	}
	if !st.Cached || st.CachedCells != st.Total || st.Total != 2 {
		t.Fatalf("assembled status: %+v", st)
	}
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, res, coldArtifacts(t, sub), "assembled matrix")

	m := s.Metrics()
	if m.Assembled != 1 {
		t.Fatalf("assembled %d, want 1", m.Assembled)
	}
	if m.Flights != 1 {
		t.Fatalf("flights %d, want 1 (assembly must not occupy a queue slot)", m.Flights)
	}

	// The assembled artifact was persisted: a restart serves it as a disk
	// hit without touching cells.
	closeService(t, s)
	s2 := New(Config{Workers: 1, QueueDepth: 8, GCInterval: -1, Store: openTestStore(t, dir)})
	defer closeService(t, s2)
	st2, err := s2.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("restart: %s, want disk hit", st2.State)
	}
	if m := s2.Metrics(); m.DiskHits != 1 || m.Assembled != 0 {
		t.Fatalf("restart metrics: disk hits %d assembled %d, want 1/0", m.DiskHits, m.Assembled)
	}
}

// TestRestartKeepsTenantAttribution: a job interrupted mid-run is requeued
// on restart still owned by its tenant — visible in its status and charged
// to the tenant's accounting.
func TestRestartKeepsTenantAttribution(t *testing.T) {
	dir := t.TempDir()
	reg := testRegistry(t, tenant.Tenant{Name: "acme", Token: "tok-acme"})
	sp := overlapSpec([]spec.Point{pointA})
	hash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := sp.Normalize().Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// The crash: acme's job was running when the process died.
	seed := openTestStore(t, dir)
	if err := seed.PutSpec(hash, canon); err != nil {
		t.Fatal(err)
	}
	if err := seed.AppendJob(store.JobRecord{
		ID: "m000007", Hash: hash, State: "running", Total: 2, Tenant: "acme",
		UpdatedAtMs: time.Now().UnixMilli(),
	}, true); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1, QueueDepth: 8, GCInterval: -1,
		Store: openTestStore(t, dir), Tenants: reg})
	defer closeService(t, s)
	st, err := s.Get("m000007")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" {
		t.Fatalf("recovered job tenant %q, want acme", st.Tenant)
	}
	waitState(t, s, "m000007", StateDone)
	m := s.Metrics()
	ta, ok := m.Tenants["acme"]
	if !ok {
		t.Fatal("recovered job not charged to its tenant")
	}
	if ta.Queued != 0 || ta.Running != 0 {
		t.Fatalf("gauges not settled after completion: %+v", ta)
	}
	if ta.CellSeconds <= 0 {
		t.Fatalf("cell seconds %v, want > 0", ta.CellSeconds)
	}
}

// TestAnonymousModeUnchanged: without a registry, tokens are ignored, no
// tenant rows appear anywhere, and the JSON surfaces carry no tenant field.
func TestAnonymousModeUnchanged(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := testSpec(1).Canonical()
	resp := authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "ignored-token", body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submit: HTTP %d", resp.StatusCode)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if bytes.Contains(raw.Bytes(), []byte(`"tenant"`)) {
		t.Fatalf("anonymous status leaks a tenant field: %s", raw)
	}
	var st JobStatus
	if err := decodeJSON(bytes.NewReader(raw.Bytes()), &st); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts.Client(), ts.URL, st.ID)

	metrics := getBody(t, ts.Client(), ts.URL+"/metrics", http.StatusOK)
	if bytes.Contains(metrics, []byte("mrclone_tenant_")) {
		t.Fatal("anonymous metrics emit tenant series")
	}
	if m := s.Metrics(); len(m.Tenants) != 0 {
		t.Fatalf("anonymous service grew tenant accounts: %v", m.Tenants)
	}
}

// TestTenantHotReload: ReloadTenants swaps the registry atomically, so a
// token added after startup is admitted without a restart, a token dropped
// stops authenticating, and a swap that would toggle tenancy off is
// rejected.
func TestTenantHotReload(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8,
		Tenants: testRegistry(t, tenant.Tenant{Name: "alpha", Token: "tok-alpha"})})
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := testSpec(1).Canonical()

	// Before the reload the newcomer's token does not exist.
	resp := authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-newcomer", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("pre-reload unknown token: HTTP %d, want 401", resp.StatusCode)
	}

	// Swap in a registry that adds newcomer and drops alpha.
	if err := s.ReloadTenants(testRegistry(t,
		tenant.Tenant{Name: "newcomer", Token: "tok-newcomer"})); err != nil {
		t.Fatal(err)
	}

	resp = authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-newcomer", body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-reload new token: HTTP %d, want admission", resp.StatusCode)
	}
	var st JobStatus
	if err := decodeJSON(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Tenant != "newcomer" {
		t.Fatalf("post-reload job tenant %q, want newcomer", st.Tenant)
	}

	// The dropped token no longer authenticates, even though its jobs (none
	// here) would keep running.
	resp = authedRequest(t, ts.Client(), http.MethodPost, ts.URL+"/v1/matrices", "tok-alpha", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("dropped token: HTTP %d, want 401", resp.StatusCode)
	}

	// Tenancy is a startup property: it cannot be reloaded away.
	if err := s.ReloadTenants(nil); err == nil {
		t.Fatal("nil registry reload accepted")
	}
}

// TestAnonymousServiceRejectsTenantReload: the inverse toggle — turning
// authentication on under live anonymous traffic — is rejected too.
func TestAnonymousServiceRejectsTenantReload(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer closeService(t, s)
	err := s.ReloadTenants(testRegistry(t, tenant.Tenant{Name: "alpha", Token: "tok-alpha"}))
	if err == nil {
		t.Fatal("reload into an anonymous service accepted")
	}
}
