package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/obs/obstest"
	"mrclone/internal/store"
)

// logSink is a goroutine-safe buffer for structured log output.
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *logSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *logSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// jsonLogger builds a debug-level JSON logger writing into a fresh sink.
func jsonLogger(t *testing.T) (*logSink, *Service) {
	t.Helper()
	sink := &logSink{}
	logger, err := obs.NewLogger(sink, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, CellParallelism: 2, Logger: logger, ShardName: "obs0"})
	return sink, s
}

// logEntries decodes every JSON line the sink captured.
func logEntries(t *testing.T, sink *logSink) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable JSON log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// parseRFC3339 asserts a lifecycle timestamp is present and well-formed.
func parseRFC3339(t *testing.T, field, v string) time.Time {
	t.Helper()
	if v == "" {
		t.Fatalf("%s is empty, want an RFC 3339 timestamp", field)
	}
	ts, err := time.Parse(time.RFC3339Nano, v)
	if err != nil {
		t.Fatalf("%s = %q: %v", field, v, err)
	}
	return ts
}

// TestJobTimestamps: a run-to-done job reports submitted/started/finished
// in order, and the terminal SSE frame carries the same three.
func TestJobTimestamps(t *testing.T) {
	s := New(Config{Workers: 1, CellParallelism: 2})
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(testSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	if st.SubmittedAt == "" {
		t.Error("fresh submission missing submitted_at")
	}
	done := waitState(t, s, st.ID, StateDone)
	sub := parseRFC3339(t, "submitted_at", done.SubmittedAt)
	start := parseRFC3339(t, "started_at", done.StartedAt)
	fin := parseRFC3339(t, "finished_at", done.FinishedAt)
	if start.Before(sub) || fin.Before(start) {
		t.Errorf("timestamps out of order: submitted %s, started %s, finished %s",
			done.SubmittedAt, done.StartedAt, done.FinishedAt)
	}

	// The SSE stream's terminal frame carries the same timestamps.
	resp, err := http.Get(ts.URL + "/v1/matrices/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var terminal *Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			t.Fatalf("undecodable event %q: %v", data, err)
		}
		if e.Terminal() {
			terminal = &e
			break
		}
	}
	if terminal == nil {
		t.Fatal("no terminal SSE frame")
	}
	if terminal.SubmittedAt != done.SubmittedAt || terminal.StartedAt != done.StartedAt ||
		terminal.FinishedAt != done.FinishedAt {
		t.Errorf("terminal frame timestamps %q/%q/%q differ from status %q/%q/%q",
			terminal.SubmittedAt, terminal.StartedAt, terminal.FinishedAt,
			done.SubmittedAt, done.StartedAt, done.FinishedAt)
	}

	// A memory cache hit never ran: started_at stays empty, the rest stick.
	hit, err := s.Submit(testSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != StateDone {
		t.Fatalf("resubmission = %+v, want a cache hit", hit)
	}
	parseRFC3339(t, "submitted_at", hit.SubmittedAt)
	parseRFC3339(t, "finished_at", hit.FinishedAt)
	if hit.StartedAt != "" {
		t.Errorf("cache hit reports started_at %q, want empty (it never ran)", hit.StartedAt)
	}
}

// TestTimestampsSurviveRestart: the job log persists the lifecycle
// timestamps and recovery restores them on the recovered terminal job.
func TestTimestampsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, CellParallelism: 2, Store: st1})
	st, err := s1.Submit(testSpec(62))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s1, st.ID, StateDone)
	closeService(t, s1)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, CellParallelism: 2, Store: st2})
	defer closeService(t, s2)
	got, err := s2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.SubmittedAt != done.SubmittedAt {
		t.Errorf("recovered submitted_at %q, want %q", got.SubmittedAt, done.SubmittedAt)
	}
	if got.StartedAt != done.StartedAt {
		t.Errorf("recovered started_at %q, want %q", got.StartedAt, done.StartedAt)
	}
	if got.FinishedAt == "" {
		t.Error("recovered terminal job missing finished_at")
	}
}

// TestRequestLoggingAndTrace: one HTTP submission through the instrumented
// handler produces a JSON request log line whose trace ID continues the
// client's traceparent, and the job lifecycle lines carry the same trace.
func TestRequestLoggingAndTrace(t *testing.T) {
	sink, s := jsonLogger(t)
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	canon, err := testSpec(63).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/matrices", bytes.NewReader(canon))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The response echoes the continued trace under a fresh span.
	tc, err := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if tc.TraceID != traceID {
		t.Errorf("response trace ID %s, want the inbound %s", tc.TraceID, traceID)
	}
	if tc.SpanID == "00f067aa0ba902b7" {
		t.Error("response span ID not refreshed for this hop")
	}

	waitState(t, s, st.ID, StateDone)

	var sawRequest, sawQueued, sawDone bool
	for _, e := range logEntries(t, sink) {
		if e[obs.KeyShard] != "obs0" {
			t.Errorf("log line missing shard attr: %v", e)
		}
		switch e["msg"] {
		case "http request":
			if e[obs.KeyRoute] == "POST /v1/matrices" {
				sawRequest = true
				if e[obs.KeyTraceID] != traceID {
					t.Errorf("request line trace_id %v, want %s", e[obs.KeyTraceID], traceID)
				}
				if rid, _ := e[obs.KeyRequestID].(string); rid == "" {
					t.Error("request line missing req_id")
				}
			}
		case "job queued":
			sawQueued = true
			if e[obs.KeyTraceID] != traceID {
				t.Errorf("job queued trace_id %v, want %s", e[obs.KeyTraceID], traceID)
			}
			if e[obs.KeyJob] != st.ID {
				t.Errorf("job queued names %v, want %s", e[obs.KeyJob], st.ID)
			}
		case "flight done":
			sawDone = true
			if e[obs.KeySpec] != obs.SpecPrefix(st.Hash) {
				t.Errorf("flight done spec %v, want %s", e[obs.KeySpec], obs.SpecPrefix(st.Hash))
			}
		}
	}
	if !sawRequest || !sawQueued || !sawDone {
		t.Errorf("log stream missing lines: request=%v queued=%v done=%v in\n%s",
			sawRequest, sawQueued, sawDone, sink.String())
	}
}

// TestMetricsExpositionValid runs the in-test exposition parser over a
// live shard scrape: HELP/TYPE pairing for every family, histogram bucket
// monotonicity, and _sum/_count consistency.
func TestMetricsExpositionValid(t *testing.T) {
	s := New(Config{Workers: 1, CellParallelism: 2})
	defer closeService(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(testSpec(64))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	// One HTTP request so the request histogram has a series.
	resp, err := http.Get(ts.URL + "/v1/matrices/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpoContentType {
		t.Errorf("content type %q, want %q", ct, obs.ExpoContentType)
	}
	obstest.MustValidate(t, string(body))

	for _, want := range []string{
		"# TYPE mrclone_http_request_seconds histogram",
		"# TYPE mrclone_queue_wait_seconds histogram",
		"# TYPE mrclone_run_seconds histogram",
		"# TYPE mrclone_cell_seconds histogram",
		"# TYPE mrclone_jobs_done_total counter",
		"# TYPE mrclone_queue_depth gauge",
		"# TYPE go_goroutines gauge",
		"mrclone_run_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	fams, err := obs.ParseExposition(string(body))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		if f.Name != "mrclone_queue_wait_seconds" {
			continue
		}
		for _, smp := range f.Samples {
			if smp.Suffix == "_count" && smp.Value < 1 {
				t.Errorf("queue wait count %v, want >= 1 (one job ran)", smp.Value)
			}
		}
	}
}
