package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"mrclone/internal/obs"
)

// serviceObs bundles the shard's observability state: the structured
// logger (never nil — a discard logger in the default, pre-observability
// configuration) and the latency histograms exported on /metrics.
type serviceObs struct {
	log   *slog.Logger
	shard string

	// httpHist is HTTP request duration by matched route and status code.
	httpHist *obs.HistogramVec
	// queueWait is the time a job spent queued before its flight started
	// (or before it attached to an already-running flight).
	queueWait *obs.Histogram
	// runDur is worker wall-clock time per flight, success or failure.
	runDur *obs.Histogram
	// cellDur is per-cell simulation time; cache-resolved cells are
	// excluded so the distribution reflects simulation cost, not disk reads.
	cellDur *obs.Histogram
}

func newServiceObs(log *slog.Logger, shard string) serviceObs {
	if log == nil {
		log = obs.Nop()
	}
	if shard != "" {
		log = log.With(obs.KeyShard, shard)
	}
	return serviceObs{
		log:       log,
		shard:     shard,
		httpHist:  obs.NewHistogramVec(obs.LatencyBuckets, "route", "status"),
		queueWait: obs.NewHistogram(obs.LatencyBuckets),
		runDur:    obs.NewHistogram(obs.LatencyBuckets),
		cellDur:   obs.NewHistogram(obs.LatencyBuckets),
	}
}

// writeHistograms renders the shard's latency histogram families. The
// names and bucket layout are shared with the gateway (obs.LatencyBuckets),
// which is what lets its /metrics merge them bucket-wise across shards.
func (o *serviceObs) writeHistograms(e *obs.ExpoWriter) {
	e.HistogramSeries("mrclone_http_request_seconds",
		"HTTP request duration by route and status.", o.httpHist.Snapshots())
	e.Histogram("mrclone_queue_wait_seconds",
		"Time jobs waited in the queue before running.", o.queueWait.Snapshot())
	e.Histogram("mrclone_run_seconds",
		"Worker wall-clock time per matrix flight.", o.runDur.Snapshot())
	e.Histogram("mrclone_cell_seconds",
		"Simulation time per matrix cell (cache hits excluded).", o.cellDur.Snapshot())
}

// observeQueueWait records a job's queued→running transition at time now.
func (o *serviceObs) observeQueueWait(submittedAt, now time.Time) {
	if submittedAt.IsZero() {
		return
	}
	if d := now.Sub(submittedAt); d >= 0 {
		o.queueWait.Observe(d.Seconds())
	}
}

// jobAttrs are the log attributes identifying one job everywhere it is
// mentioned: ID, tenant (when named), spec-hash prefix, and trace ID.
func jobAttrs(j *jobState) []any {
	attrs := make([]any, 0, 8)
	attrs = append(attrs, obs.KeyJob, j.id, obs.KeySpec, obs.SpecPrefix(j.hash))
	if j.tenant != "" {
		attrs = append(attrs, obs.KeyTenant, j.tenant)
	}
	if j.traceID != "" {
		attrs = append(attrs, obs.KeyTraceID, j.traceID)
	}
	return attrs
}

// instrument wraps the API mux with the observability middleware: it
// resolves the request's trace context (minting one, or continuing an
// inbound traceparent under a fresh span), mints a request ID, echoes the
// traceparent on the response, records the request into the duration
// histogram by matched route and status, and logs one line per request.
// The health and metrics scrape routes log at debug so a monitoring
// cadence does not drown real traffic at the default level.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc, r := obs.EnsureTrace(r)
		reqID := obs.NewRequestID()
		r = r.WithContext(obs.ContextWithRequestID(r.Context(), reqID))
		w.Header().Set(obs.TraceparentHeader, tc.String())
		rec := obs.NewStatusRecorder(w)
		next.ServeHTTP(rec, r)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := rec.Status()
		dur := time.Since(start)
		s.obsv.httpHist.Observe(dur.Seconds(), route, strconv.Itoa(status))

		lvl := slog.LevelInfo
		if route == "GET /healthz" || route == "GET /metrics" {
			lvl = slog.LevelDebug
		}
		s.obsv.log.LogAttrs(r.Context(), lvl, "http request",
			slog.String(obs.KeyRequestID, reqID),
			slog.String(obs.KeyTraceID, tc.TraceID),
			slog.String(obs.KeySpanID, tc.SpanID),
			slog.String(obs.KeyRoute, route),
			slog.Int(obs.KeyStatus, status),
			slog.Float64(obs.KeyDurationMs, float64(dur)/float64(time.Millisecond)),
		)
	})
}

// rfc3339 renders a lifecycle timestamp: RFC 3339 with millisecond
// precision in UTC, or "" for the zero time (phase never reached) so
// omitempty keeps it out of JSON.
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format("2006-01-02T15:04:05.000Z07:00")
}

// unixMsOrZero converts a lifecycle timestamp for the job log.
func unixMsOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// timeFromMs is the inverse of unixMsOrZero for job-log replay.
func timeFromMs(ms int64) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}
