package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service/spec"
	"mrclone/internal/trace"
)

// e2eSpecJSON is the wire form submitted by the end-to-end test clients.
func e2eSpecJSON(t *testing.T) ([]byte, spec.Spec) {
	t.Helper()
	p := trace.GoogleParams()
	p.Jobs = 10
	p.Span = 300
	sp := spec.Spec{
		Workload: spec.Workload{Trace: &p},
		Schedulers: []spec.Scheduler{
			{Name: "srptms+c"},
			{Name: "fair"},
		},
		Points:   []spec.Point{{X: 0, Machines: 30}},
		Runs:     2,
		BaseSeed: 9,
	}
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return canon, sp
}

type submitResponse struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
}

func postSpec(t *testing.T, client *http.Client, base string, body []byte) (submitResponse, int) {
	t.Helper()
	resp, err := client.Post(base+"/v1/matrices", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return sr, resp.StatusCode
}

func getBody(t *testing.T, client *http.Client, url string, wantCode int) []byte {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d (want %d): %s", url, resp.StatusCode, wantCode, body)
	}
	return body
}

// waitDone polls the status endpoint until the job is done.
func waitDone(t *testing.T, client *http.Client, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		if err := json.Unmarshal(getBody(t, client, base+"/v1/matrices/"+id, http.StatusOK), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance test: the same spec submitted twice by 8
// concurrent clients each — the first wave shares one computation, the
// second wave is served from the cache — and every response body is
// byte-identical to a direct runner.Run of the same matrix. SSE events are
// observed from queued through done, and shutdown drains in-flight jobs.
func TestEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	body, sp := e2eSpecJSON(t)

	// Ground truth: the artifact bytes of a direct in-process run.
	rs, err := sp.Runner()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runner.Run(context.Background(), rs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := direct.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	wave := func(expectEveryCached bool) []submitResponse {
		var (
			wg  sync.WaitGroup
			mu  sync.Mutex
			out []submitResponse
		)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sr, code := postSpec(t, client, ts.URL, body)
				if code != http.StatusOK && code != http.StatusAccepted {
					t.Errorf("submit: HTTP %d", code)
					return
				}
				if expectEveryCached && (!sr.Cached || code != http.StatusOK) {
					t.Errorf("second-wave submit not cached: %+v (HTTP %d)", sr, code)
				}
				mu.Lock()
				out = append(out, sr)
				mu.Unlock()
			}()
		}
		wg.Wait()
		return out
	}

	// Wave 1: all 8 submissions collapse into one flight.
	first := wave(false)
	if len(first) != clients {
		t.Fatalf("wave 1 returned %d responses", len(first))
	}
	// Subscribe to SSE before the run finishes (it may already be done; the
	// stream replays history, so queued and done must both appear).
	sseResp, err := client.Get(ts.URL + "/v1/matrices/" + first[0].ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var sseEvents []string
	scanner := bufio.NewScanner(sseResp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			sseEvents = append(sseEvents, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(sseEvents) < 2 || sseEvents[0] != "queued" || sseEvents[len(sseEvents)-1] != "done" {
		t.Fatalf("SSE events %v: want queued ... done", sseEvents)
	}

	for _, sr := range first {
		waitDone(t, client, ts.URL, sr.ID)
	}
	m := svc.Metrics()
	if m.Flights != 1 {
		t.Fatalf("wave 1 ran %d flights, want 1 (dedup %d, cache %d)",
			m.Flights, m.DedupHits, m.CacheHits)
	}
	if m.DedupHits+m.CacheHits != clients-1 {
		t.Fatalf("wave 1: dedup %d + cache %d != %d", m.DedupHits, m.CacheHits, clients-1)
	}

	// Wave 2: every submission is a cache hit and the hit counter moves.
	hitsBefore := m.CacheHits
	second := wave(true)
	m = svc.Metrics()
	if m.CacheHits != hitsBefore+clients {
		t.Fatalf("cache hits %d, want %d", m.CacheHits, hitsBefore+clients)
	}
	if m.Flights != 1 {
		t.Fatalf("wave 2 started a flight (%d total)", m.Flights)
	}

	// Every response body — cached and uncached — is byte-identical to the
	// direct run.
	for _, sr := range append(first, second...) {
		gotJSON := getBody(t, client, ts.URL+"/v1/matrices/"+sr.ID+"/result", http.StatusOK)
		if !bytes.Equal(gotJSON, wantJSON.Bytes()) {
			t.Fatalf("job %s JSON artifact differs from direct run", sr.ID)
		}
		gotCSV := getBody(t, client, ts.URL+"/v1/matrices/"+sr.ID+"/result?format=csv", http.StatusOK)
		if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
			t.Fatalf("job %s CSV artifact differs from direct run", sr.ID)
		}
	}

	// Metrics endpoint exposes the counters in Prometheus text format.
	metricsBody := string(getBody(t, client, ts.URL+"/metrics", http.StatusOK))
	for _, want := range []string{
		// Wave 1 splits its 7 shared submissions between dedup and cache
		// hits depending on timing; the sum and the rest are exact.
		fmt.Sprintf("mrclone_cache_hits_total %d", m.CacheHits),
		fmt.Sprintf("mrclone_dedup_hits_total %d", m.DedupHits),
		"mrclone_flights_total 1",
		"mrclone_submissions_total 16",
		"mrclone_cells_done_total 4",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
	if !strings.Contains(string(getBody(t, client, ts.URL+"/healthz", http.StatusOK)), `"ok"`) {
		t.Fatal("healthz not ok")
	}

	// Graceful shutdown drains and further submissions are refused.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, code := postSpec(t, client, ts.URL, body); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: HTTP %d", code)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer closeService(t, svc)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	// Malformed and invalid specs are 400.
	for _, body := range []string{"{", `{"version":1}`, `{"version":1,"bogus":true}`} {
		resp, err := client.Post(ts.URL+"/v1/matrices", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown job IDs are 404 everywhere.
	for _, path := range []string{"/v1/matrices/nope", "/v1/matrices/nope/result", "/v1/matrices/nope/events"} {
		getBody(t, client, ts.URL+path, http.StatusNotFound)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/matrices/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: HTTP %d", resp.StatusCode)
	}

	// A finished job serves results in every format; bad formats are 400.
	body, _ := e2eSpecJSON(t)
	sr, _ := postSpec(t, client, ts.URL, body)
	waitDone(t, client, ts.URL, sr.ID)
	getBody(t, client, ts.URL+"/v1/matrices/"+sr.ID+"/result?format=aggregate", http.StatusOK)
	getBody(t, client, ts.URL+"/v1/matrices/"+sr.ID+"/result?format=yaml", http.StatusBadRequest)

	// Cancelled jobs report Gone for results and cancelled=false on repeat.
	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/v1/matrices/"+sr.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelBody struct {
		Cancelled bool `json:"cancelled"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cancelBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cancelBody.Cancelled {
		t.Fatal("cancelling a done job reported cancelled=true")
	}
}

// TestHTTPConcurrentLoad hammers the service with distinct and duplicate
// specs from many goroutines; under -race this doubles as the concurrency
// soundness check required by the acceptance criteria.
func TestHTTPConcurrentLoad(t *testing.T) {
	svc := New(Config{Workers: 4, QueueDepth: 64})
	defer closeService(t, svc)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	makeBody := func(seed int64) []byte {
		p := trace.GoogleParams()
		p.Jobs = 5
		p.Span = 100
		sp := spec.Spec{
			Workload:   spec.Workload{Trace: &p},
			Schedulers: []spec.Scheduler{{Name: "fair"}},
			Points:     []spec.Point{{X: 0, Machines: 15}},
			BaseSeed:   seed,
		}
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		return canon
	}

	const goroutines = 16
	ids := make([]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// 4 distinct specs, each submitted by 4 goroutines.
			sr, code := postSpec(t, client, ts.URL, makeBody(int64(g%4)))
			if code != http.StatusOK && code != http.StatusAccepted {
				t.Errorf("goroutine %d: HTTP %d", g, code)
				return
			}
			ids[g] = sr.ID
		}(g)
	}
	wg.Wait()

	byHash := map[string][]byte{}
	for g, id := range ids {
		if id == "" {
			continue
		}
		waitDone(t, client, ts.URL, id)
		var st JobStatus
		if err := json.Unmarshal(getBody(t, client, ts.URL+"/v1/matrices/"+id, http.StatusOK), &st); err != nil {
			t.Fatal(err)
		}
		res := getBody(t, client, ts.URL+"/v1/matrices/"+id+"/result", http.StatusOK)
		if prev, ok := byHash[st.Hash]; ok && !bytes.Equal(prev, res) {
			t.Fatalf("goroutine %d: same hash, different bytes", g)
		}
		byHash[st.Hash] = res
	}
	if len(byHash) != 4 {
		t.Fatalf("distinct results %d, want 4", len(byHash))
	}
	m := svc.Metrics()
	if m.Flights > 4 {
		t.Fatalf("%d flights for 4 distinct specs", m.Flights)
	}
	if got := fmt.Sprint(m.Submissions); got != "16" {
		t.Fatalf("submissions %s", got)
	}
}
