package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/store"
)

// openTestStore opens a store on dir, failing the test on error.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartWarmCache is the acceptance scenario at the HTTP layer: a
// matrix computed by one service process is served byte-identically by the
// next process on the same data directory, as a disk hit with no recompute,
// and the first process's job history stays visible.
func TestRestartWarmCache(t *testing.T) {
	dir := t.TempDir()
	body, sp := e2eSpecJSON(t)

	// Ground truth: a direct in-process run of the same matrix.
	rs, err := sp.Runner()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runner.Run(context.Background(), rs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON bytes.Buffer
	if err := direct.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}

	// Process 1: compute and persist.
	svc1 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	ts1 := httptest.NewServer(svc1.Handler())
	sr1, code := postSpec(t, ts1.Client(), ts1.URL, body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitDone(t, ts1.Client(), ts1.URL, sr1.ID)
	got1 := getBody(t, ts1.Client(), ts1.URL+"/v1/matrices/"+sr1.ID+"/result", http.StatusOK)
	if !bytes.Equal(got1, wantJSON.Bytes()) {
		t.Fatal("process 1 artifact differs from direct run")
	}
	ts1.Close()
	closeService(t, svc1) // closes the store it owns

	// Process 2: same data directory, fresh everything else.
	svc2 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, svc2)
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()

	// The first process's terminal job is visible history.
	var recovered JobStatus
	if err := json.Unmarshal(getBody(t, ts2.Client(), ts2.URL+"/v1/matrices/"+sr1.ID, http.StatusOK), &recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.State != StateDone || recovered.Hash != sr1.Hash {
		t.Fatalf("recovered job %+v", recovered)
	}
	// Its artifact is lazily reloaded from disk.
	if got := getBody(t, ts2.Client(), ts2.URL+"/v1/matrices/"+sr1.ID+"/result", http.StatusOK); !bytes.Equal(got, wantJSON.Bytes()) {
		t.Fatal("recovered job artifact differs")
	}

	// Resubmitting the spec is an immediate disk-warm cache hit: done in
	// the submit response, no flight run, byte-identical artifact.
	sr2, code := postSpec(t, ts2.Client(), ts2.URL, body)
	if code != http.StatusOK || !sr2.Cached {
		t.Fatalf("resubmit after restart: HTTP %d cached=%v", code, sr2.Cached)
	}
	if sr2.ID == sr1.ID {
		t.Fatal("restart reused a job ID")
	}
	got2 := getBody(t, ts2.Client(), ts2.URL+"/v1/matrices/"+sr2.ID+"/result", http.StatusOK)
	if !bytes.Equal(got2, wantJSON.Bytes()) {
		t.Fatal("disk cache hit not byte-identical")
	}
	m := svc2.Metrics()
	if m.Flights != 0 {
		t.Fatalf("restart recomputed: %d flights", m.Flights)
	}
	if m.DiskHits == 0 {
		t.Fatalf("no disk hits counted: %+v", m)
	}
	if !m.Persistent {
		t.Fatal("persistent gauge off")
	}
}

// TestCorruptEntryTriggersRecompute damages the stored artifact between two
// processes: the next submission quarantines the entry and recomputes
// instead of erroring, and the recompute repopulates the store.
func TestCorruptEntryTriggersRecompute(t *testing.T) {
	dir := t.TempDir()
	body, _ := e2eSpecJSON(t)

	svc1 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	ts1 := httptest.NewServer(svc1.Handler())
	sr1, _ := postSpec(t, ts1.Client(), ts1.URL, body)
	waitDone(t, ts1.Client(), ts1.URL, sr1.ID)
	want := getBody(t, ts1.Client(), ts1.URL+"/v1/matrices/"+sr1.ID+"/result", http.StatusOK)
	ts1.Close()
	closeService(t, svc1)

	// Truncate the stored JSON artifact.
	if err := os.Truncate(filepath.Join(dir, "artifacts", sr1.Hash[:2], sr1.Hash, "matrix.json"), 5); err != nil {
		t.Fatal(err)
	}

	// Cell caching off: with the cells intact the service would assemble
	// the matrix from them instead (covered by the assembly-path tests);
	// this test pins the recompute fallback.
	svc2 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1, DisableCellCache: true})
	defer closeService(t, svc2)
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	sr2, code := postSpec(t, ts2.Client(), ts2.URL, body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit over corrupt entry: HTTP %d", code)
	}
	if sr2.Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	waitDone(t, ts2.Client(), ts2.URL, sr2.ID)
	got := getBody(t, ts2.Client(), ts2.URL+"/v1/matrices/"+sr2.ID+"/result", http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Fatal("recompute after corruption not byte-identical")
	}
	m := svc2.Metrics()
	if m.Quarantined == 0 || m.Flights != 1 {
		t.Fatalf("metrics after corruption: %+v", m)
	}
	// The quarantined bytes are kept aside and the store holds a fresh entry.
	quarantined, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quarantined) == 0 {
		t.Fatalf("quarantine empty (%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "artifacts", sr1.Hash[:2], sr1.Hash, "matrix.json")); err != nil {
		t.Fatalf("store not repopulated: %v", err)
	}
}

// TestRecoveryFailsInterruptedJobs seeds a job log with a job that never
// reached a terminal state — as a crash would leave it — and expects the
// next process to fail it, replay its terminal event to subscribers, and
// resume the ID sequence past it.
func TestRecoveryFailsInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	seed := openTestStore(t, dir)
	for _, rec := range []store.JobRecord{
		{ID: "m000007", Hash: strings.Repeat("ab", 32), State: "queued", Total: 4, UpdatedAtMs: 1},
		{ID: "m000008", Hash: strings.Repeat("cd", 32), State: "running", Done: 1, Total: 4, UpdatedAtMs: 2},
		{ID: "m000009", Hash: strings.Repeat("ef", 32), State: "cancelled", Total: 2, UpdatedAtMs: 3},
	} {
		if err := seed.AppendJob(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, s)
	for _, id := range []string{"m000007", "m000008"} {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateFailed || !strings.Contains(st.Error, "restart") {
			t.Fatalf("interrupted job %s recovered as %+v", id, st)
		}
		// Late subscribers replay queued then the synthesized failure.
		sub, err := s.Subscribe(id)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		var types []EventType
		for {
			e, ok := sub.Next(ctx)
			if !ok {
				break
			}
			types = append(types, e.Type)
		}
		cancel()
		if len(types) != 2 || types[0] != EventQueued || types[1] != EventFailed {
			t.Fatalf("replay for %s: %v", id, types)
		}
	}
	if st, err := s.Get("m000009"); err != nil || st.State != StateCancelled {
		t.Fatalf("terminal job: %+v, %v", st, err)
	}
	// Results of jobs whose artifacts never existed are gone, not 500s.
	if _, err := s.Result("m000009"); err == nil {
		t.Fatal("cancelled recovered job served a result")
	}
	// New submissions must not collide with recovered IDs.
	st, err := s.Submit(testSpec(90))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := parseJobSeq(st.ID); n <= 9 {
		t.Fatalf("ID sequence did not resume: %s", st.ID)
	}
	// The failed-by-restart verdict was persisted: a third process sees the
	// jobs as terminal failures, not as interrupted again.
	waitState(t, s, st.ID, StateDone)
	closeService(t, s)
	s3 := New(Config{Workers: 1, Store: openTestStore(t, dir), GCInterval: -1})
	defer closeService(t, s3)
	if st, err := s3.Get("m000008"); err != nil || st.State != StateFailed {
		t.Fatalf("second restart: %+v, %v", st, err)
	}
}

// TestJobAndArtifactGC covers the retention sweep: terminal jobs (and their
// event buffers) age out of the table, the job log compacts, and
// TTL-expired artifacts leave the disk store so the next submission
// recomputes.
func TestJobAndArtifactGC(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{
		Workers:      1,
		Store:        openTestStore(t, dir),
		GCInterval:   -1, // sweeps run manually below
		JobRetention: time.Millisecond,
		CacheTTL:     50 * time.Millisecond,
	})
	defer closeService(t, s)

	st, err := s.Submit(testSpec(80))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	if infos, err := s.cfg.Store.ListArtifacts(); err != nil || len(infos) != 1 {
		t.Fatalf("store holds %d artifacts (%v), want 1", len(infos), err)
	}

	// Terminal subscriptions are dropped eagerly (the event-buffer fix).
	s.mu.Lock()
	if subs := s.jobs[st.ID].subs; subs != nil {
		s.mu.Unlock()
		t.Fatalf("terminal job retains %d subscriber refs", len(subs))
	}
	s.mu.Unlock()

	time.Sleep(60 * time.Millisecond) // past JobRetention and CacheTTL
	jobsRemoved, artifactsRemoved := s.GC()
	if jobsRemoved != 1 || artifactsRemoved != 1 {
		t.Fatalf("GC removed %d jobs, %d artifacts; want 1, 1", jobsRemoved, artifactsRemoved)
	}
	if _, err := s.Get(st.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("job survived GC: %v", err)
	}
	m := s.Metrics()
	if m.JobsGCed != 1 || m.ArtifactsGCed != 1 || m.JobsTracked != 0 || m.CacheEntries != 0 {
		t.Fatalf("metrics after GC: %+v", m)
	}
	// The job log compacted to nothing: replay is empty.
	if recs, err := s.cfg.Store.ReplayJobs(); err != nil || len(recs) != 0 {
		t.Fatalf("job log after GC: %d records (%v)", len(recs), err)
	}
	if infos, err := s.cfg.Store.ListArtifacts(); err != nil || len(infos) != 0 {
		t.Fatalf("store holds %d artifacts after GC (%v)", len(infos), err)
	}
	// A resubmission recomputes rather than erroring.
	st2, err := s.Submit(testSpec(80))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st2.ID, StateDone)
	if m := s.Metrics(); m.Flights != 2 {
		t.Fatalf("flights after expiry resubmit: %d, want 2", m.Flights)
	}
}

// TestBackgroundGCRuns proves the background sweeper fires on its own.
func TestBackgroundGCRuns(t *testing.T) {
	s := New(Config{
		Workers:      1,
		GCInterval:   5 * time.Millisecond,
		JobRetention: time.Millisecond,
	})
	defer closeService(t, s)
	st, err := s.Submit(testSpec(81))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.Get(st.ID); errors.Is(err, ErrUnknownJob) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background GC never removed the terminal job")
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestInMemoryModeUnchanged pins the default mode: no store, restarts
// forget, and nothing touches the filesystem.
func TestInMemoryModeUnchanged(t *testing.T) {
	s := New(Config{Workers: 1, GCInterval: -1})
	st, err := s.Submit(testSpec(82))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	if m := s.Metrics(); m.Persistent || m.DiskHits != 0 {
		t.Fatalf("in-memory metrics: %+v", m)
	}
	closeService(t, s)
	s2 := New(Config{Workers: 1, GCInterval: -1})
	defer closeService(t, s2)
	if _, err := s2.Get(st.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("in-memory job survived restart: %v", err)
	}
}
