package job

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mrclone/internal/dist"
)

func detDist(t *testing.T, v float64) dist.Distribution {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func validSpec(t *testing.T) Spec {
	t.Helper()
	return Spec{
		ID:         1,
		Arrival:    0,
		Weight:     2,
		MapTasks:   3,
		ReduceTask: 2,
		MapDist:    detDist(t, 10),
		ReduceDist: detDist(t, 20),
	}
}

func TestSpecValidate(t *testing.T) {
	base := validSpec(t)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero weight", func(s *Spec) { s.Weight = 0 }},
		{"negative weight", func(s *Spec) { s.Weight = -1 }},
		{"negative map tasks", func(s *Spec) { s.MapTasks = -1 }},
		{"negative reduce tasks", func(s *Spec) { s.ReduceTask = -2 }},
		{"no tasks", func(s *Spec) { s.MapTasks, s.ReduceTask = 0, 0 }},
		{"map tasks without dist", func(s *Spec) { s.MapDist = nil }},
		{"reduce tasks without dist", func(s *Spec) { s.ReduceDist = nil }},
		{"negative arrival", func(s *Spec) { s.Arrival = -5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec(t)
			tc.mutate(&s)
			if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
				t.Errorf("want ErrBadSpec, got %v", err)
			}
		})
	}
}

func TestMapOnlyJobIsValid(t *testing.T) {
	s := validSpec(t)
	s.ReduceTask = 0
	s.ReduceDist = nil
	if err := s.Validate(); err != nil {
		t.Fatalf("map-only job rejected: %v", err)
	}
	j, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Spec.PhaseStats(PhaseReduce); got != (Stats{}) {
		t.Errorf("empty reduce phase stats = %+v, want zero", got)
	}
}

func TestEffectiveWorkload(t *testing.T) {
	// phi = m*(Em + r*sm) + ri*(Er + r*sr); deterministic dists have s=0.
	s := validSpec(t)
	if got, want := s.EffectiveWorkload(5), 3.0*10+2.0*20; got != want {
		t.Errorf("EffectiveWorkload = %v, want %v", got, want)
	}
	// With a nonzero-variance distribution the deviation factor matters.
	u, err := dist.NewUniform(0, 20) // mean 10, sd 20/sqrt(12)
	if err != nil {
		t.Fatal(err)
	}
	s.MapDist = u
	sd := 20 / math.Sqrt(12)
	want := 3*(10+2*sd) + 2*20
	if got := s.EffectiveWorkload(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("EffectiveWorkload = %v, want %v", got, want)
	}
}

func TestLifecycle(t *testing.T) {
	j, err := New(validSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Unscheduled(PhaseMap); got != 3 {
		t.Fatalf("initial unscheduled map = %d", got)
	}
	if j.MapPhaseDone() || j.Done() {
		t.Fatal("fresh job reports phases done")
	}

	mt := j.Task(TaskID{Job: 1, Phase: PhaseMap, Index: 0})
	if mt == nil {
		t.Fatal("map task 0 missing")
	}
	if err := j.MarkLaunched(mt, 5); err != nil {
		t.Fatal(err)
	}
	if mt.State != TaskRunning || mt.LaunchSlot != 5 || mt.Copies != 1 {
		t.Fatalf("after launch: %+v", mt)
	}
	if got := j.Unscheduled(PhaseMap); got != 2 {
		t.Fatalf("unscheduled map after launch = %d", got)
	}
	// Second copy of the same task does not change the unscheduled count.
	if err := j.MarkLaunched(mt, 6); err != nil {
		t.Fatal(err)
	}
	if got := j.Unscheduled(PhaseMap); got != 2 {
		t.Fatalf("unscheduled map after clone = %d", got)
	}
	if mt.Copies != 2 || j.RunningCopies != 2 {
		t.Fatalf("copies=%d running=%d, want 2/2", mt.Copies, j.RunningCopies)
	}

	j.MarkCopyStopped(mt)
	j.MarkDone(mt, 30)
	j.MarkCopyStopped(mt)
	if mt.State != TaskDone || mt.FinishSlot != 30 {
		t.Fatalf("after done: %+v", mt)
	}
	if j.RunningCopies != 0 {
		t.Fatalf("running copies = %d, want 0", j.RunningCopies)
	}
	if err := j.MarkLaunched(mt, 31); err == nil {
		t.Fatal("launching a finished task should error")
	}

	// Finish everything; job completion and flowtime.
	for _, task := range j.Tasks {
		if task.State != TaskDone {
			if err := j.MarkLaunched(task, 40); err != nil {
				t.Fatal(err)
			}
			j.MarkCopyStopped(task)
			j.MarkDone(task, 50)
		}
	}
	if !j.MapPhaseDone() || !j.Done() {
		t.Fatal("job should be done")
	}
	if got := j.FinishSlot; got != 50 {
		t.Fatalf("finish slot = %d, want 50", got)
	}
	if got := j.Flowtime(); got != 50 {
		t.Fatalf("flowtime = %d, want 50", got)
	}
}

func TestFlowtimeBeforeFinish(t *testing.T) {
	j, err := New(validSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Flowtime(); got != -1 {
		t.Fatalf("flowtime before finish = %d, want -1", got)
	}
}

func TestTaskLookup(t *testing.T) {
	j, err := New(validSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		id   TaskID
		want bool
	}{
		{TaskID{Job: 1, Phase: PhaseMap, Index: 0}, true},
		{TaskID{Job: 1, Phase: PhaseMap, Index: 2}, true},
		{TaskID{Job: 1, Phase: PhaseMap, Index: 3}, false},
		{TaskID{Job: 1, Phase: PhaseReduce, Index: 1}, true},
		{TaskID{Job: 1, Phase: PhaseReduce, Index: 2}, false},
		{TaskID{Job: 2, Phase: PhaseMap, Index: 0}, false},
		{TaskID{Job: 1, Phase: Phase(9), Index: 0}, false},
		{TaskID{Job: 1, Phase: PhaseMap, Index: -1}, false},
	}
	for _, tc := range cases {
		got := j.Task(tc.id)
		if (got != nil) != tc.want {
			t.Errorf("Task(%v) = %v, want present=%v", tc.id, got, tc.want)
		}
		if got != nil && got.ID != tc.id {
			t.Errorf("Task(%v) returned task %v", tc.id, got.ID)
		}
	}
}

func TestRemainingEffectiveWorkloadAndPriority(t *testing.T) {
	j, err := New(validSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	// All unscheduled: U = phi.
	if got, want := j.RemainingEffectiveWorkload(0), j.Spec.EffectiveWorkload(0); got != want {
		t.Fatalf("U = %v, want %v", got, want)
	}
	mt := j.Task(TaskID{Job: 1, Phase: PhaseMap, Index: 0})
	if err := j.MarkLaunched(mt, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := j.RemainingEffectiveWorkload(0), 2.0*10+2.0*20; got != want {
		t.Fatalf("U after one launch = %v, want %v", got, want)
	}
	if got, want := j.Priority(0), 2.0/60.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("priority = %v, want %v", got, want)
	}
	// Exhaust the unscheduled pool: priority becomes the +Inf sentinel.
	for _, task := range j.Tasks {
		if task.State == TaskUnscheduled {
			if err := j.MarkLaunched(task, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := j.Priority(0); got < 1e300 {
		t.Fatalf("priority with zero remaining = %v, want sentinel", got)
	}
}

func TestUnscheduledAndRunningTaskLists(t *testing.T) {
	j, err := New(validSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j.UnscheduledTasks(PhaseMap)); got != 3 {
		t.Fatalf("unscheduled map list = %d", got)
	}
	mt := j.Task(TaskID{Job: 1, Phase: PhaseMap, Index: 1})
	if err := j.MarkLaunched(mt, 0); err != nil {
		t.Fatal(err)
	}
	um := j.UnscheduledTasks(PhaseMap)
	if len(um) != 2 {
		t.Fatalf("unscheduled map after launch = %d", len(um))
	}
	for _, task := range um {
		if task.ID.Index == 1 {
			t.Error("launched task still listed unscheduled")
		}
	}
	rm := j.RunningTasks(PhaseMap)
	if len(rm) != 1 || rm[0].ID.Index != 1 {
		t.Fatalf("running map list = %v", rm)
	}
	if got := len(j.RunningTasks(PhaseReduce)); got != 0 {
		t.Fatalf("running reduce = %d", got)
	}
}

func TestAccumulatedHigherPriorityWorkload(t *testing.T) {
	mk := func(id int, w float64, mTasks int, mMean float64) Spec {
		d, err := dist.NewDeterministic(mMean)
		if err != nil {
			t.Fatal(err)
		}
		return Spec{ID: id, Weight: w, MapTasks: mTasks, MapDist: d}
	}
	// phi: A=10, B=40, C=100. priorities: A=1/10, B=1/40, C=2/100=1/50.
	specs := []Spec{
		mk(0, 1, 1, 10),
		mk(1, 1, 4, 10),
		mk(2, 2, 10, 10),
	}
	// For A (highest priority), only A counts.
	if got, want := AccumulatedHigherPriorityWorkload(specs, 0, 0), 10.0; got != want {
		t.Errorf("fs_A = %v, want %v", got, want)
	}
	// For B: A and B.
	if got, want := AccumulatedHigherPriorityWorkload(specs, 1, 0), 50.0; got != want {
		t.Errorf("fs_B = %v, want %v", got, want)
	}
	// For C: everyone.
	if got, want := AccumulatedHigherPriorityWorkload(specs, 2, 0), 150.0; got != want {
		t.Errorf("fs_C = %v, want %v", got, want)
	}
}

// Property: counters never go negative and unscheduled+launched bookkeeping
// stays consistent under random operation sequences.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		j, err := New(validSpec(t))
		if err != nil {
			return false
		}
		for _, op := range ops {
			idx := int(op) % len(j.Tasks)
			task := j.Tasks[idx]
			switch op % 3 {
			case 0:
				_ = j.MarkLaunched(task, int64(op))
			case 1:
				if task.Copies > 0 {
					j.MarkCopyStopped(task)
				}
			case 2:
				if task.State == TaskRunning {
					j.MarkDone(task, int64(op))
				}
			}
			if j.Unscheduled(PhaseMap) < 0 || j.Unscheduled(PhaseReduce) < 0 ||
				j.Unfinished(PhaseMap) < 0 || j.Unfinished(PhaseReduce) < 0 ||
				j.RunningCopies < 0 {
				return false
			}
		}
		// Recount from task states and compare to the cached counters.
		var unschedM, unschedR, unfinM, unfinR int
		for _, task := range j.Tasks {
			if task.State == TaskUnscheduled {
				if task.ID.Phase == PhaseMap {
					unschedM++
				} else {
					unschedR++
				}
			}
			if task.State != TaskDone {
				if task.ID.Phase == PhaseMap {
					unfinM++
				} else {
					unfinR++
				}
			}
		}
		return unschedM == j.Unscheduled(PhaseMap) &&
			unschedR == j.Unscheduled(PhaseReduce) &&
			unfinM == j.Unfinished(PhaseMap) &&
			unfinR == j.Unfinished(PhaseReduce)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseMap.String() != "map" || PhaseReduce.String() != "reduce" {
		t.Error("phase strings wrong")
	}
	if Phase(42).String() == "" {
		t.Error("unknown phase should still stringify")
	}
	id := TaskID{Job: 3, Phase: PhaseReduce, Index: 7}
	if id.String() != "J3/reduce/7" {
		t.Errorf("TaskID.String() = %q", id.String())
	}
	states := map[TaskState]string{
		TaskUnscheduled: "unscheduled",
		TaskRunning:     "running",
		TaskDone:        "done",
		TaskState(99):   "TaskState(99)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("TaskState(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
