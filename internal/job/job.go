// Package job models two-phase MapReduce jobs: sets of map and reduce tasks
// with Map→Reduce precedence, per-phase workload statistics, and the
// effective-workload quantities the paper's schedulers are built on
// (Equations 2–4 of Xu & Lau, ICDCS 2015).
package job

import (
	"errors"
	"fmt"

	"mrclone/internal/dist"
)

// Phase identifies the Map or Reduce phase of a job.
type Phase int

// Phases of a MapReduce job.
const (
	PhaseMap Phase = iota + 1
	PhaseReduce
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseMap:
		return "map"
	case PhaseReduce:
		return "reduce"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// ErrBadSpec is returned when a job specification is invalid.
var ErrBadSpec = errors.New("job: invalid specification")

// Spec is the static description of a job as it appears in a trace. The
// duration distributions are the ground truth used by the simulation engine;
// schedulers may only consult the first two moments (the paper's information
// model), which Spec exposes via PhaseStats.
type Spec struct {
	ID         int
	Arrival    int64   // arrival slot a_i
	Weight     float64 // w_i > 0; trace priority is used as the weight
	MapTasks   int     // m_i >= 0
	ReduceTask int     // r_i >= 0 (at least one phase must be non-empty)
	MapDist    dist.Distribution
	ReduceDist dist.Distribution
}

// Validate checks structural invariants of the spec.
func (s Spec) Validate() error {
	switch {
	case s.Weight <= 0:
		return fmt.Errorf("%w: job %d weight %v", ErrBadSpec, s.ID, s.Weight)
	case s.MapTasks < 0 || s.ReduceTask < 0:
		return fmt.Errorf("%w: job %d negative task counts (%d map, %d reduce)",
			ErrBadSpec, s.ID, s.MapTasks, s.ReduceTask)
	case s.MapTasks == 0 && s.ReduceTask == 0:
		return fmt.Errorf("%w: job %d has no tasks", ErrBadSpec, s.ID)
	case s.MapTasks > 0 && s.MapDist == nil:
		return fmt.Errorf("%w: job %d has map tasks but no map distribution", ErrBadSpec, s.ID)
	case s.ReduceTask > 0 && s.ReduceDist == nil:
		return fmt.Errorf("%w: job %d has reduce tasks but no reduce distribution", ErrBadSpec, s.ID)
	case s.Arrival < 0:
		return fmt.Errorf("%w: job %d arrival %d", ErrBadSpec, s.ID, s.Arrival)
	}
	return nil
}

// Stats are the first two moments of task workload in one phase — the only
// workload information the paper's schedulers receive.
type Stats struct {
	Mean   float64 // E^c_i
	StdDev float64 // sigma^c_i
}

// PhaseStats returns the scheduler-visible workload statistics for a phase.
// For an empty phase it returns zeros.
func (s Spec) PhaseStats(p Phase) Stats {
	var d dist.Distribution
	switch p {
	case PhaseMap:
		if s.MapTasks == 0 {
			return Stats{}
		}
		d = s.MapDist
	case PhaseReduce:
		if s.ReduceTask == 0 {
			return Stats{}
		}
		d = s.ReduceDist
	default:
		return Stats{}
	}
	if d == nil {
		return Stats{}
	}
	return Stats{Mean: d.Mean(), StdDev: d.StdDev()}
}

// EffectiveWorkload computes phi_i (Equation 2):
//
//	phi_i = m_i (E^m_i + r sigma^m_i) + r_i (E^r_i + r sigma^r_i)
//
// where r is the deviation factor weighting the standard deviation.
func (s Spec) EffectiveWorkload(deviationFactor float64) float64 {
	m := s.PhaseStats(PhaseMap)
	r := s.PhaseStats(PhaseReduce)
	return float64(s.MapTasks)*(m.Mean+deviationFactor*m.StdDev) +
		float64(s.ReduceTask)*(r.Mean+deviationFactor*r.StdDev)
}

// TotalTasks returns m_i + r_i.
func (s Spec) TotalTasks() int { return s.MapTasks + s.ReduceTask }

// TaskID identifies one task within one job.
type TaskID struct {
	Job   int
	Phase Phase
	Index int // 0-based within the phase
}

// String implements fmt.Stringer.
func (id TaskID) String() string {
	return fmt.Sprintf("J%d/%v/%d", id.Job, id.Phase, id.Index)
}

// TaskState is the lifecycle of a task.
type TaskState int

// Task lifecycle states. A task is Unscheduled until its first copy launches
// (the paper's "unscheduled" pool), Running while at least one copy is live,
// and Done when its earliest copy completes.
const (
	TaskUnscheduled TaskState = iota + 1
	TaskRunning
	TaskDone
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskUnscheduled:
		return "unscheduled"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// Task is the runtime state of a single task.
type Task struct {
	ID          TaskID
	State       TaskState
	Copies      int   // live copies currently occupying machines
	LaunchSlot  int64 // slot of first copy launch (-1 if unscheduled)
	FinishSlot  int64 // slot of completion (-1 if not done)
	TotalCopies int   // copies ever launched (for accounting)

	// pendingPos / runningPos index this task inside its job's pending and
	// running lists (-1 when absent), giving O(1) launch/done transitions.
	pendingPos int
	runningPos int

	// Runtime is an opaque slot reserved for the simulation engine's
	// per-task bookkeeping (it holds the task's calendar entry while copies
	// are live). Schedulers and other packages must not read or write it.
	Runtime any
}

// Job is the runtime state of a job inside the cluster engine.
type Job struct {
	Spec Spec

	Tasks []*Task // map tasks first, then reduce tasks

	pending    [2][]*Task // per-phase unscheduled tasks (order not stable)
	running    [2][]*Task // per-phase tasks with at least one live copy
	unfinished [2]int     // per-phase count of not-Done tasks
	stats      [2]Stats   // cached per-phase workload moments (hot path)

	RunningCopies int   // sigma_i(l): machines currently running this job's copies
	FinishSlot    int64 // -1 until the job completes
}

// New materializes the runtime state for a spec. Task records and the
// per-phase bookkeeping lists come from per-job slab allocations — the
// engine materializes every job of a trace, so the constructor is on the
// simulation hot path.
func New(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	total := spec.TotalTasks()
	m := spec.MapTasks
	j := &Job{
		Spec:       spec,
		FinishSlot: -1,
	}
	slab := make([]Task, total)
	ptrs := make([]*Task, 3*total)
	j.Tasks = ptrs[:total:total]
	pend := ptrs[total : 2*total : 2*total]
	runb := ptrs[2*total:]
	j.pending[0], j.pending[1] = pend[:m:m], pend[m:]
	j.running[0], j.running[1] = runb[:0:m], runb[m:m:total]
	for i := range slab {
		t := &slab[i]
		phase, index := PhaseMap, i
		if i >= m {
			phase, index = PhaseReduce, i-m
		}
		*t = Task{
			ID:         TaskID{Job: spec.ID, Phase: phase, Index: index},
			State:      TaskUnscheduled,
			LaunchSlot: -1,
			FinishSlot: -1,
			pendingPos: index,
			runningPos: -1,
		}
		j.Tasks[i] = t
		pend[i] = t
	}
	j.unfinished[phaseIdx(PhaseMap)] = spec.MapTasks
	j.unfinished[phaseIdx(PhaseReduce)] = spec.ReduceTask
	// Distribution moments can be expensive (numerical integrals); cache
	// them once — schedulers evaluate priorities every slot.
	j.stats[phaseIdx(PhaseMap)] = spec.PhaseStats(PhaseMap)
	j.stats[phaseIdx(PhaseReduce)] = spec.PhaseStats(PhaseReduce)
	return j, nil
}

// PhaseStats returns the cached scheduler-visible workload statistics.
func (j *Job) PhaseStats(p Phase) Stats { return j.stats[phaseIdx(p)] }

// EffectiveWorkload is phi_i (Equation 2) over the cached moments.
func (j *Job) EffectiveWorkload(deviationFactor float64) float64 {
	m := j.stats[phaseIdx(PhaseMap)]
	r := j.stats[phaseIdx(PhaseReduce)]
	return float64(j.Spec.MapTasks)*(m.Mean+deviationFactor*m.StdDev) +
		float64(j.Spec.ReduceTask)*(r.Mean+deviationFactor*r.StdDev)
}

// removePending drops t from its phase's pending list in O(1) by swapping
// the last element into its slot.
func (j *Job) removePending(t *Task) {
	idx := phaseIdx(t.ID.Phase)
	pos := t.pendingPos
	if pos < 0 {
		return
	}
	list := j.pending[idx]
	last := len(list) - 1
	list[pos] = list[last]
	list[pos].pendingPos = pos
	list[last] = nil
	j.pending[idx] = list[:last]
	t.pendingPos = -1
}

// removeRunning drops t from its phase's running list in O(1).
func (j *Job) removeRunning(t *Task) {
	idx := phaseIdx(t.ID.Phase)
	pos := t.runningPos
	if pos < 0 {
		return
	}
	list := j.running[idx]
	last := len(list) - 1
	list[pos] = list[last]
	list[pos].runningPos = pos
	list[last] = nil
	j.running[idx] = list[:last]
	t.runningPos = -1
}

func phaseIdx(p Phase) int {
	if p == PhaseMap {
		return 0
	}
	return 1
}

// Task returns the runtime task for an ID, or nil if out of range.
func (j *Job) Task(id TaskID) *Task {
	if id.Job != j.Spec.ID {
		return nil
	}
	var idx int
	switch id.Phase {
	case PhaseMap:
		if id.Index < 0 || id.Index >= j.Spec.MapTasks {
			return nil
		}
		idx = id.Index
	case PhaseReduce:
		if id.Index < 0 || id.Index >= j.Spec.ReduceTask {
			return nil
		}
		idx = j.Spec.MapTasks + id.Index
	default:
		return nil
	}
	return j.Tasks[idx]
}

// Unscheduled returns the number of tasks of phase p that have never been
// launched: m_i(l) or r_i(l) in the paper's notation.
func (j *Job) Unscheduled(p Phase) int { return len(j.pending[phaseIdx(p)]) }

// Unfinished returns the number of tasks of phase p not yet done.
func (j *Job) Unfinished(p Phase) int { return j.unfinished[phaseIdx(p)] }

// MapPhaseDone reports whether every map task has completed, which gates the
// Reduce phase (constraint 1g).
func (j *Job) MapPhaseDone() bool { return j.unfinished[phaseIdx(PhaseMap)] == 0 }

// Done reports whether the job has completed all tasks.
func (j *Job) Done() bool {
	return j.unfinished[phaseIdx(PhaseMap)] == 0 && j.unfinished[phaseIdx(PhaseReduce)] == 0
}

// RemainingEffectiveWorkload computes U_i(l) (Equation 4) over the
// *unscheduled* task counts:
//
//	U_i(l) = m_i(l)(E^m_i + r sigma^m_i) + r_i(l)(E^r_i + r sigma^r_i).
func (j *Job) RemainingEffectiveWorkload(deviationFactor float64) float64 {
	m := j.stats[phaseIdx(PhaseMap)]
	r := j.stats[phaseIdx(PhaseReduce)]
	return float64(j.Unscheduled(PhaseMap))*(m.Mean+deviationFactor*m.StdDev) +
		float64(j.Unscheduled(PhaseReduce))*(r.Mean+deviationFactor*r.StdDev)
}

// Priority returns w_i / U_i(l), the paper's online priority. Jobs whose
// remaining effective workload is zero (all tasks scheduled but not finished)
// get +Inf priority so they are never starved of their running copies.
func (j *Job) Priority(deviationFactor float64) float64 {
	u := j.RemainingEffectiveWorkload(deviationFactor)
	if u <= 0 {
		return inf
	}
	return j.Spec.Weight / u
}

const inf = 1e308 // large finite sentinel; avoids NaN arithmetic downstream

// MarkLaunched transitions a task out of the unscheduled pool on its first
// copy launch and counts the new copy. It returns an error if the task is
// already done.
func (j *Job) MarkLaunched(t *Task, slot int64) error {
	if t.State == TaskDone {
		return fmt.Errorf("job %d: launching copy of finished task %v", j.Spec.ID, t.ID)
	}
	if t.State == TaskUnscheduled {
		t.State = TaskRunning
		t.LaunchSlot = slot
		j.removePending(t)
		idx := phaseIdx(t.ID.Phase)
		t.runningPos = len(j.running[idx])
		j.running[idx] = append(j.running[idx], t)
	}
	t.Copies++
	t.TotalCopies++
	j.RunningCopies++
	return nil
}

// MarkCopyStopped decrements the live-copy count for a task whose copy was
// killed or finished.
func (j *Job) MarkCopyStopped(t *Task) {
	if t.Copies > 0 {
		t.Copies--
	}
	if j.RunningCopies > 0 {
		j.RunningCopies--
	}
}

// MarkDone completes a task at the given slot. It is a no-op if already done.
func (j *Job) MarkDone(t *Task, slot int64) {
	if t.State == TaskDone {
		return
	}
	if t.State == TaskUnscheduled {
		// Defensive: a task can only finish after being launched.
		j.removePending(t)
	}
	j.removeRunning(t)
	t.State = TaskDone
	t.FinishSlot = slot
	j.unfinished[phaseIdx(t.ID.Phase)]--
	if j.Done() {
		j.FinishSlot = slot
	}
}

// UnscheduledTasks returns the tasks of phase p still in the unscheduled
// pool. The slice is freshly allocated (nil when empty); element order is an
// implementation detail — callers needing randomness shuffle explicitly.
// Schedulers on the simulation hot path should prefer AppendUnscheduled
// with a reused scratch buffer.
func (j *Job) UnscheduledTasks(p Phase) []*Task {
	list := j.pending[phaseIdx(p)]
	if len(list) == 0 {
		return nil
	}
	out := make([]*Task, len(list))
	copy(out, list)
	return out
}

// AppendUnscheduled appends the tasks of phase p still in the unscheduled
// pool to dst and returns the extended slice: the allocation-free variant of
// UnscheduledTasks for scheduler scratch buffers. The appended snapshot
// remains valid while tasks launch, in the same order UnscheduledTasks
// would have returned.
func (j *Job) AppendUnscheduled(dst []*Task, p Phase) []*Task {
	return append(dst, j.pending[phaseIdx(p)]...)
}

// RunningTasks returns the tasks of phase p with at least one live copy.
// The slice is freshly allocated (nil when empty). Hot paths should prefer
// AppendRunning with a reused scratch buffer.
func (j *Job) RunningTasks(p Phase) []*Task {
	list := j.running[phaseIdx(p)]
	if len(list) == 0 {
		return nil
	}
	out := make([]*Task, len(list))
	copy(out, list)
	return out
}

// AppendRunning appends the tasks of phase p with at least one live copy to
// dst and returns the extended slice: the allocation-free variant of
// RunningTasks for scheduler scratch buffers.
func (j *Job) AppendRunning(dst []*Task, p Phase) []*Task {
	return append(dst, j.running[phaseIdx(p)]...)
}

// Flowtime returns f_i - a_i, or -1 if the job has not finished.
func (j *Job) Flowtime() int64 {
	if j.FinishSlot < 0 {
		return -1
	}
	return j.FinishSlot - j.Spec.Arrival
}

// AccumulatedHigherPriorityWorkload computes f^s_i (Equation 3) for a set of
// specs under the offline priority w/phi: the sum of effective workloads of
// all jobs whose priority is at least that of spec i (including itself).
func AccumulatedHigherPriorityWorkload(specs []Spec, i int, deviationFactor float64) float64 {
	pi := specs[i].Weight / specs[i].EffectiveWorkload(deviationFactor)
	var sum float64
	for _, s := range specs {
		phi := s.EffectiveWorkload(deviationFactor)
		if phi <= 0 {
			continue
		}
		if s.Weight/phi >= pi {
			sum += phi
		}
	}
	return sum
}
