package gateway

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"mrclone/internal/obs"
)

// gatewayObs bundles the gateway's observability state: the structured
// logger (never nil — a discard logger when Config.Logger is unset) and the
// edge-side request-duration histogram exported on /metrics.
type gatewayObs struct {
	log *slog.Logger
	// httpHist is gateway-side HTTP request duration by matched route and
	// status — the client-observed latency, including the upstream hop.
	httpHist *obs.HistogramVec
}

func newGatewayObs(log *slog.Logger) gatewayObs {
	if log == nil {
		log = obs.Nop()
	}
	return gatewayObs{
		log:      log,
		httpHist: obs.NewHistogramVec(obs.LatencyBuckets, "route", "status"),
	}
}

// instrument wraps the gateway mux with the observability middleware: it
// resolves the request's trace context (minting one, or continuing an
// inbound traceparent under a fresh span), mints a request ID, echoes the
// traceparent on the response, records the request into the edge duration
// histogram by matched route and status, and logs one line per request —
// carrying the serving shard when the route set X-Mrclone-Shard, which is
// what ties a gateway log line to the shard log line sharing its trace ID.
// Health and metrics scrapes log at debug so a monitoring cadence does not
// drown real traffic at the default level.
func (g *Gateway) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		g.requests.Add(1)
		tc, r := obs.EnsureTrace(r)
		reqID := obs.NewRequestID()
		r = r.WithContext(obs.ContextWithRequestID(r.Context(), reqID))
		w.Header().Set(obs.TraceparentHeader, tc.String())
		rec := obs.NewStatusRecorder(w)
		next.ServeHTTP(rec, r)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := rec.Status()
		dur := time.Since(start)
		g.obsv.httpHist.Observe(dur.Seconds(), route, strconv.Itoa(status))

		lvl := slog.LevelInfo
		if route == "GET /healthz" || route == "GET /metrics" {
			lvl = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String(obs.KeyRequestID, reqID),
			slog.String(obs.KeyTraceID, tc.TraceID),
			slog.String(obs.KeySpanID, tc.SpanID),
			slog.String(obs.KeyRoute, route),
			slog.Int(obs.KeyStatus, status),
			slog.Float64(obs.KeyDurationMs, float64(dur)/float64(time.Millisecond)),
		}
		if shard := rec.Header().Get(HeaderShard); shard != "" {
			attrs = append(attrs, slog.String(obs.KeyShard, shard))
		}
		g.obsv.log.LogAttrs(r.Context(), lvl, "http request", attrs...)
	})
}
