package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"mrclone/internal/service"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/tenant"
	"mrclone/internal/trace"
)

// tenantList is the registry both tiers share in these tests. Each shard
// (and the gateway, when it acts as an admission edge) gets its own
// Registry instance built from it: rate-limiter buckets are per-process
// state, exactly as separate mrserved/mrgated processes would hold them.
func tenantList() []tenant.Tenant {
	return []tenant.Tenant{
		{Name: "alpha", Token: "tok-alpha", Weight: 3},
		{Name: "bravo", Token: "tok-bravo", Weight: 1},
		{Name: "ops", Token: "tok-ops"},
	}
}

func mustRegistry(t *testing.T, tenants []tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// newTenantCluster builds a cluster like newTestCluster but with per-shard
// service configs (each shard needs its own registry and, for srpt, its own
// store) and a hook to extend the gateway config.
func newTenantCluster(t *testing.T, nShards, nGateways int,
	shardCfg func(i int) service.Config, gwCfg func(Config) Config) *testCluster {
	t.Helper()
	c := &testCluster{}
	for i := 0; i < nShards; i++ {
		svc := service.New(shardCfg(i))
		ts := httptest.NewServer(svc.Handler())
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		c.shards = append(c.shards, svc)
		c.shardSrvs = append(c.shardSrvs, ts)
		c.pool = append(c.pool, Shard{Name: fmt.Sprintf("s%d", i), URL: u})
	}
	for j := 0; j < nGateways; j++ {
		cfg := Config{Shards: c.pool}
		if gwCfg != nil {
			cfg = gwCfg(cfg)
		}
		gw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.gateways = append(c.gateways, gw)
		c.gwSrvs = append(c.gwSrvs, httptest.NewServer(gw.Handler()))
	}
	t.Cleanup(func() {
		for _, ts := range c.gwSrvs {
			ts.Close()
		}
		for _, gw := range c.gateways {
			gw.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for _, svc := range c.shards {
			_ = svc.Close(ctx)
		}
		for _, ts := range c.shardSrvs {
			ts.Close()
		}
	})
	return c
}

// tokRequest issues one gateway request with a bearer token.
func tokRequest(t *testing.T, method, url, token string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// postSpecTok submits spec bytes with a token and decodes the namespaced
// status, failing unless the submission was accepted.
func postSpecTok(t *testing.T, base string, body []byte, token string) service.JobStatus {
	t.Helper()
	resp := tokRequest(t, http.MethodPost, base+"/v1/matrices", token, body)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("submit: undecodable status %q: %v", raw, err)
	}
	return st
}

// getStatusTok fetches a namespaced job's status with a token.
func getStatusTok(t *testing.T, base, id, token string) (int, service.JobStatus) {
	t.Helper()
	resp := tokRequest(t, http.MethodGet, base+"/v1/matrices/"+id, token, nil)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st service.JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("status: undecodable %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st
}

// waitDoneTok polls a namespaced job with a token until done.
func waitDoneTok(t *testing.T, base, id, token string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatusTok(t, base, id, token)
		if code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d", id, code)
		}
		if st.State == service.StateDone {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.JobStatus{}
}

// seedOnShard searches seeds from `start` until build(seed) content-hashes
// onto the wanted shard, so a test can pin work to one shard's queue.
func seedOnShard(t *testing.T, gw *Gateway, shard string, start int64, build func(int64) spec.Spec) spec.Spec {
	t.Helper()
	for seed := start; seed < start+4096; seed++ {
		sp := build(seed)
		_, hash := canonHash(t, sp)
		if gw.Ring().Lookup(hash) == shard {
			return sp
		}
	}
	t.Fatalf("no seed in [%d,%d) lands on shard %s", start, start+4096, shard)
	return spec.Spec{}
}

// mediumSpec is heavy enough (~tens of ms) that a 1ms status-poll loop can
// observe each flight's start on a Workers=1 shard.
func mediumSpec(seed int64) spec.Spec {
	p := trace.GoogleParams()
	p.Jobs = 300
	p.Span = 3000
	return spec.Spec{
		Workload:   spec.Workload{Trace: &p},
		Schedulers: []spec.Scheduler{{Name: "srptms+c"}},
		Points:     []spec.Point{{X: 0, Machines: 25}},
		Runs:       1,
		BaseSeed:   seed,
	}
}

// blockerSpec occupies a Workers=1 shard for long enough to stack a backlog
// behind it (a few hundred ms at least), without dragging out the drain.
// Runs is calibrated to the discrete-event engine; if the engine gets
// faster, raise it — backlog-dependent assertions (fair-share splits,
// queued-quota 429s) silently degrade to FIFO/no-op observations when the
// blocker drains before the backlog forms.
func blockerSpec(seed int64) spec.Spec {
	sp := mediumSpec(seed)
	sp.Runs = 64
	return sp
}

// recordRunOrder watches namespaced jobs on one shard until all are done,
// returning the order in which their flights were first observed started
// (running or already terminal). On a Workers=1 shard that is the dequeue
// order. Observation goes straight to the shard service — a poll round is
// a handful of in-process Gets (microseconds), far finer-grained than the
// shortest matrix run, where polling over HTTP could see two consecutive
// short runs in one round and record them in submission order.
func recordRunOrder(t *testing.T, svc *service.Service, ids []string) []string {
	t.Helper()
	local := make(map[string]string, len(ids))
	for _, id := range ids {
		_, rest, ok := strings.Cut(id, idSep)
		if !ok {
			t.Fatalf("job ID %q is not shard-namespaced", id)
		}
		local[id] = rest
	}
	seen := make(map[string]bool, len(ids))
	var order []string
	done := 0
	deadline := time.Now().Add(120 * time.Second)
	for done < len(ids) {
		if time.Now().After(deadline) {
			t.Fatalf("observed only %d/%d runs (order %v)", len(order), len(ids), order)
		}
		done = 0
		for _, id := range ids {
			st, err := svc.Get(local[id])
			if err != nil {
				t.Fatal(err)
			}
			if st.State == service.StateFailed || st.State == service.StateCancelled {
				t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
			}
			if st.State.Terminal() {
				done++
			}
			if !seen[id] && (st.State == service.StateRunning || st.State.Terminal()) {
				seen[id] = true
				order = append(order, id)
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	return order
}

// TestTenantFairShareThroughGateway is the weighted-fairness acceptance:
// alpha (weight 3) and bravo (weight 1) hold sustained backlogs on one
// shard of a two-shard cluster; under -queue-policy fair the shard's
// dequeue order converges on a ~3:1 split while both backlogs last.
func TestTenantFairShareThroughGateway(t *testing.T) {
	c := newTenantCluster(t, 2, 1, func(i int) service.Config {
		return service.Config{
			Workers: 1, CellParallelism: 2, QueueDepth: 64,
			Tenants:     mustRegistry(t, tenantList()),
			QueuePolicy: tenant.PolicyFair,
			QueueSeed:   42,
		}
	}, nil)
	base := c.gwURL(0)
	gw := c.gateways[0]

	// Occupy s0's worker, then stack interleaved backlogs behind it.
	blocker := seedOnShard(t, gw, "s0", 900, blockerSpec)
	canon, _ := canonHash(t, blocker)
	bst := postSpecTok(t, base, canon, "tok-ops")
	waitRunningTok(t, base, bst.ID, "tok-ops")

	var ids []string
	owner := make(map[string]string)
	seed := int64(1)
	for i := 0; i < 8; i++ {
		for _, token := range []string{"tok-alpha", "tok-bravo"} {
			sp := seedOnShard(t, gw, "s0", seed, mediumSpec)
			seed = sp.BaseSeed + 1
			st := postSpecTok(t, base, mustCanon(t, sp), token)
			if want := strings.TrimPrefix(token, "tok-"); st.Tenant != want {
				t.Fatalf("submission tenant %q, want %q", st.Tenant, want)
			}
			ids = append(ids, st.ID)
			owner[st.ID] = token
		}
	}

	order := recordRunOrder(t, c.shardFor(t, "s0"), ids)
	// While both backlogs last — bravo's 8 jobs guarantee that for at
	// least the first 8 contested dequeues — weight 3 should win alpha
	// roughly 6 of every 8.
	var owners []string
	for _, id := range order {
		owners = append(owners, strings.TrimPrefix(owner[id], "tok-"))
	}
	t.Logf("dequeue order: %v ids: %v", owners, order)
	alphaWins := 0
	for _, id := range order[:8] {
		if owner[id] == "tok-alpha" {
			alphaWins++
		}
	}
	if alphaWins < 5 || alphaWins > 7 {
		t.Fatalf("alpha won %d of the first 8 contested dequeues, want ~6 (3:1 weights)", alphaWins)
	}
	waitDoneTok(t, base, bst.ID, "tok-ops")
}

func mustCanon(t *testing.T, sp spec.Spec) []byte {
	t.Helper()
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

// waitRunningTok polls until the job's flight has started.
func waitRunningTok(t *testing.T, base, id, token string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatusTok(t, base, id, token)
		if code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d", id, code)
		}
		if st.State == service.StateRunning {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s early", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestTenantSRPTJumpsQueueThroughGateway is the dogfooding acceptance at
// cluster level: with shards running -queue-policy srpt over their cell
// stores, a small mostly-cached matrix submitted after a large cold one
// runs (and finishes) first, because its cached cells shrink its estimated
// size.
func TestTenantSRPTJumpsQueueThroughGateway(t *testing.T) {
	c := newTenantCluster(t, 2, 1, func(i int) service.Config {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return service.Config{
			Workers: 1, CellParallelism: 2, QueueDepth: 16, Store: st,
			QueuePolicy: tenant.PolicySRPT,
		}
	}, nil)
	base := c.gwURL(0)
	gw := c.gateways[0]

	pointA := spec.Point{X: 0, Machines: 20}
	pointB := spec.Point{X: 1, Machines: 25}
	pointD := spec.Point{X: 9, Machines: 40}
	pointE := spec.Point{X: 10, Machines: 45}
	family := func(points []spec.Point) func(int64) spec.Spec {
		return func(seed int64) spec.Spec {
			p := trace.GoogleParams()
			p.Jobs = 200
			p.Span = 2000
			return spec.Spec{
				Workload:   spec.Workload{Trace: &p},
				Schedulers: []spec.Scheduler{{Name: "fair"}},
				Points:     points,
				Runs:       2,
				BaseSeed:   seed,
			}
		}
	}
	// Warm and small must share a seed (cell reuse) and a shard; find a
	// seed that pins both hashes to s0, then pin the others independently.
	var warm, small spec.Spec
	for seed := int64(1); ; seed++ {
		if seed > 4096 {
			t.Fatal("no seed pins warm+small to s0")
		}
		warm, small = family([]spec.Point{pointA, pointB})(seed), family([]spec.Point{pointA, pointD})(seed)
		_, wh := canonHash(t, warm)
		_, sh := canonHash(t, small)
		if gw.Ring().Lookup(wh) == "s0" && gw.Ring().Lookup(sh) == "s0" {
			break
		}
	}
	// The cold matrix shares no cells with the warm run: fresh points, its
	// own seed, pinned to the same shard.
	cold := seedOnShard(t, gw, "s0", 5000,
		family([]spec.Point{pointD, pointE, {X: 11, Machines: 50}}))
	blocker := seedOnShard(t, gw, "s0", 9000, blockerSpec)

	// Warm the shard's cell cache with pointA and pointB.
	wst := postSpecTok(t, base, mustCanon(t, warm), "")
	waitDone(t, base, wst.ID)

	// Occupy the worker, then queue cold (6 cells) before small (4 cells,
	// 2 of them cached → estimated size 2 cells).
	bst := postSpecTok(t, base, mustCanon(t, blocker), "")
	waitRunningTok(t, base, bst.ID, "")
	cst := postSpecTok(t, base, mustCanon(t, cold), "")
	sst := postSpecTok(t, base, mustCanon(t, small), "")

	order := recordRunOrder(t, c.shardFor(t, "s0"), []string{cst.ID, sst.ID})
	if order[0] != sst.ID {
		t.Fatalf("cold large matrix ran before the mostly-cached small one (order %v)", order)
	}
	final := waitDoneTok(t, base, sst.ID, "")
	if final.CachedCells != 2 {
		t.Fatalf("small matrix resolved %d cells from cache, want 2", final.CachedCells)
	}
	waitDoneTok(t, base, bst.ID, "")
}

// TestTenantQuotaThroughGateway: a tenant at its queued-jobs quota gets a
// 429 with Retry-After through the gateway — passed through untouched —
// while another tenant's submissions to the same shard proceed.
func TestTenantQuotaThroughGateway(t *testing.T) {
	tenants := []tenant.Tenant{
		{Name: "alpha", Token: "tok-alpha", MaxQueued: 1},
		{Name: "bravo", Token: "tok-bravo"},
		{Name: "ops", Token: "tok-ops"},
	}
	c := newTenantCluster(t, 2, 1, func(i int) service.Config {
		return service.Config{
			Workers: 1, CellParallelism: 2, QueueDepth: 32,
			Tenants: mustRegistry(t, tenants),
		}
	}, nil)
	base := c.gwURL(0)
	gw := c.gateways[0]

	blocker := seedOnShard(t, gw, "s0", 900, blockerSpec)
	bst := postSpecTok(t, base, mustCanon(t, blocker), "tok-ops")
	waitRunningTok(t, base, bst.ID, "tok-ops")

	q1 := seedOnShard(t, gw, "s0", 1, testSpec)
	st1 := postSpecTok(t, base, mustCanon(t, q1), "tok-alpha")

	q2 := seedOnShard(t, gw, "s0", q1.BaseSeed+1, testSpec)
	resp := tokRequest(t, http.MethodPost, base+"/v1/matrices", "tok-alpha", mustCanon(t, q2))
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: HTTP %d: %s", resp.StatusCode, raw)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("429 Retry-After %q did not survive the proxy hop", resp.Header.Get("Retry-After"))
	}

	// Same shard, different tenant: unaffected.
	q3 := seedOnShard(t, gw, "s0", q2.BaseSeed+1, testSpec)
	st3 := postSpecTok(t, base, mustCanon(t, q3), "tok-bravo")

	waitDoneTok(t, base, st1.ID, "tok-alpha")
	waitDoneTok(t, base, st3.ID, "tok-bravo")
	waitDoneTok(t, base, bst.ID, "tok-ops")

	// The quota freed as alpha's job finished.
	q4 := seedOnShard(t, gw, "s0", q3.BaseSeed+1, testSpec)
	st4 := postSpecTok(t, base, mustCanon(t, q4), "tok-alpha")
	waitDoneTok(t, base, st4.ID, "tok-alpha")
}

// TestTenantMetricsAggregateAcrossShards: per-tenant labeled series from
// every shard sum through the gateway's /metrics, keyed by tenant.
func TestTenantMetricsAggregateAcrossShards(t *testing.T) {
	c := newTenantCluster(t, 2, 1, func(i int) service.Config {
		return service.Config{
			Workers: 2, CellParallelism: 2, QueueDepth: 32,
			Tenants: mustRegistry(t, tenantList()),
		}
	}, nil)
	base := c.gwURL(0)
	gw := c.gateways[0]

	// Spread alpha submissions over both shards: pin one to each.
	var ids []string
	for _, shard := range []string{"s0", "s1"} {
		for k := 0; k < 2; k++ {
			sp := seedOnShard(t, gw, shard, int64(1+100*k), testSpec)
			if shard == "s1" {
				sp = seedOnShard(t, gw, shard, sp.BaseSeed+1000, testSpec)
			}
			st := postSpecTok(t, base, mustCanon(t, sp), "tok-alpha")
			ids = append(ids, st.ID)
		}
	}
	for _, id := range ids {
		waitDoneTok(t, base, id, "tok-alpha")
	}

	// Both shards must have served alpha, or the aggregation check is
	// vacuous.
	for i, svc := range c.shards {
		if svc.Metrics().Tenants["alpha"].Submitted == 0 {
			t.Fatalf("shard s%d served no alpha submissions", i)
		}
	}

	resp := tokRequest(t, http.MethodGet, base+"/metrics", "", nil)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := `mrclone_tenant_submitted_total{tenant="alpha"}`
	got := metricValue(t, string(body), series)
	if got != float64(len(ids)) {
		t.Fatalf("%s = %g through the gateway, want %d (summed across shards)\n%s",
			series, got, len(ids), body)
	}
}

// metricValue extracts one series' value from a Prometheus text payload.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s missing from:\n%s", series, body)
	return 0
}

// TestGatewayEdgeRateLimit: with a registry on the gateway itself,
// admission happens before routing — the shards stay anonymous and never
// see the rejected request.
func TestGatewayEdgeRateLimit(t *testing.T) {
	c := newTenantCluster(t, 2, 1, func(i int) service.Config {
		return service.Config{Workers: 1, CellParallelism: 2, QueueDepth: 16}
	}, func(cfg Config) Config {
		cfg.Tenants = mustRegistry(t, []tenant.Tenant{
			{Name: "alpha", Token: "tok-alpha", Rate: 0.2, Burst: 1},
		})
		return cfg
	})
	base := c.gwURL(0)

	// No token: rejected at the edge with a challenge.
	resp := tokRequest(t, http.MethodPost, base+"/v1/matrices", "", mustCanon(t, testSpec(1)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized || resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatalf("unauthenticated edge submit: HTTP %d", resp.StatusCode)
	}

	st := postSpecTok(t, base, mustCanon(t, testSpec(2)), "tok-alpha")

	resp = tokRequest(t, http.MethodPost, base+"/v1/matrices", "tok-alpha", mustCanon(t, testSpec(3)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate edge submit: HTTP %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("edge 429 Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	waitDone(t, base, st.ID)

	// Only the admitted submission reached any shard.
	var submissions int64
	for _, svc := range c.shards {
		submissions += svc.Metrics().Submissions
	}
	if submissions != 1 {
		t.Fatalf("shards saw %d submissions, want 1 (edge must reject before routing)", submissions)
	}

	// The gateway's own counters record both rejections.
	resp = tokRequest(t, http.MethodGet, base+"/metrics", "", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if metricValue(t, string(body), "mrclone_gateway_rate_limited_total") != 1 {
		t.Fatal("edge rate-limit rejection not counted")
	}
	if metricValue(t, string(body), "mrclone_gateway_unauthorized_total") != 1 {
		t.Fatal("edge auth rejection not counted")
	}
}
