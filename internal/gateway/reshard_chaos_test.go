package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// dialCounter is an http.Transport hook that counts request-path dials per
// "host:port" address. Installed on the gateway's request Client (never the
// probe client), it makes the breaker acceptance criterion directly
// observable: once a dead shard's breaker opens, its dial count freezes.
type dialCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newDialCounter() *dialCounter {
	return &dialCounter{counts: make(map[string]int)}
}

func (d *dialCounter) transport() *http.Transport {
	return &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			d.mu.Lock()
			d.counts[addr]++
			d.mu.Unlock()
			var nd net.Dialer
			return nd.DialContext(ctx, network, addr)
		},
	}
}

func (d *dialCounter) count(addr string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counts[addr]
}

// pollBreaker waits until the gateway's /healthz reports the shard's circuit
// breaker in the wanted state. Polling /healthz also feeds the breakers (the
// route probes through the same path as the background loop), so this both
// observes and accelerates convergence.
func pollBreaker(t *testing.T, base, shard, want string, deadline time.Duration) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for time.Now().Before(limit) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var ph PoolHealth
		derr := json.NewDecoder(resp.Body).Decode(&ph)
		resp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		for _, sh := range ph.Shards {
			if sh.Name == shard && sh.Breaker == want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("shard %s breaker never reached %q", shard, want)
}

// gatewayMetricValue scrapes the gateway's /metrics and returns the value of
// one unlabelled sample line.
func gatewayMetricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			f, perr := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if perr != nil {
				t.Fatalf("unparsable %s sample %q: %v", name, v, perr)
			}
			return f
		}
	}
	t.Fatalf("gateway metrics carry no %s sample:\n%s", name, raw)
	return 0
}

// TestChaosResharding is the elastic-membership chaos suite: under sustained
// load, a shard is killed, its breaker opens (freezing request-path dials to
// the dead address), the pool is reshaped at runtime through the admin route
// (dead shard out, fresh replacement in), and every spec computed before the
// change is then served without a single new flight — keys that stayed put
// answer from their owner's disk, keys relocated to the new shard arrive via
// verified peer fetch from their previous owner. Artifact bytes stay
// identical to a direct runner.Run throughout.
func TestChaosResharding(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness runs multi-second phases")
	}

	// Pool of three durable shards on real TCP listeners.
	const n = 3
	shards := make([]*chaosShard, n)
	pool := make([]Shard, n)
	for i := range shards {
		shards[i] = startChaosShard(t, fmt.Sprintf("s%d", i), t.TempDir(), "127.0.0.1:0")
		u, err := url.Parse("http://" + shards[i].addr)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = Shard{Name: shards[i].name, URL: u}
	}

	// The request client counts dials; probes ride a separate client so
	// background health traffic never shows up in request-path accounting. A
	// 10s cooldown makes the open state sticky: only a successful probe (and
	// there will be none — the dead shard stays dead) could close it, so the
	// dial-freeze assertion cannot race a half-open request probe.
	dc := newDialCounter()
	gw, err := New(Config{
		Shards:          pool,
		Client:          &http.Client{Transport: dc.transport()},
		ProbeClient:     &http.Client{},
		ProbeInterval:   50 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 10 * time.Second,
		EnableAdmin:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gwSrv := httptest.NewServer(gw.Handler())
	t.Cleanup(gwSrv.Close)
	base := gwSrv.URL

	// Deterministic seed selection against ring math, no sampling luck: the
	// post-reshard ring (s1 out, s3 in) is computed up front via the same
	// delta methods the admin route uses. A key not owned by s1 either keeps
	// its owner or moves to s3 — track two of each kind, plus one spec owned
	// by the doomed shard for the breaker burst.
	r0 := gw.Ring()
	rAdd, err := r0.With("s3")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := rAdd.Without("s1")
	if err != nil {
		t.Fatal(err)
	}
	type tracked struct {
		seed     int64
		canon    []byte
		hash     string
		owner0   string // owner before the reshard
		owner1   string // owner after the reshard
		wantJSON []byte
	}
	var movers, stayers []*tracked
	var burstCanon []byte
	for seed := int64(1); len(movers) < 2 || len(stayers) < 2 || burstCanon == nil; seed++ {
		if seed > 500 {
			t.Fatal("ring scan found no seed mix for the reshard scenario")
		}
		canon, hash := canonHash(t, testSpec(seed))
		o0, o1 := r0.Lookup(hash), r1.Lookup(hash)
		switch {
		case o0 == "s1":
			if burstCanon == nil {
				burstCanon = canon
			}
		case o1 == "s3" && len(movers) < 2:
			movers = append(movers, &tracked{seed: seed, canon: canon, hash: hash, owner0: o0, owner1: o1})
		case o1 == o0 && len(stayers) < 2:
			stayers = append(stayers, &tracked{seed: seed, canon: canon, hash: hash, owner0: o0, owner1: o1})
		}
	}
	all := append(append([]*tracked{}, movers...), stayers...)

	// Phase 1: compute every tracked spec through the gateway and check it
	// against the ground truth — the byte-identical artifact of a direct
	// in-process runner.Run.
	for _, tr := range all {
		tr.wantJSON, _, _ = directArtifacts(t, testSpec(tr.seed))
		resp, st := postSpec(t, base, tr.canon)
		if got := resp.Header.Get(HeaderShard); got != tr.owner0 {
			t.Fatalf("spec %.12s… served by %q, ring owner is %q", tr.hash, got, tr.owner0)
		}
		waitDone(t, base, st.ID)
		if got := getResult(t, base, st.ID, "json"); !bytes.Equal(got, tr.wantJSON) {
			t.Fatalf("pre-reshard artifact for %.12s… differs from direct runner.Run bytes", tr.hash)
		}
	}

	// Sustained load: a background client hammers a spec owned by a surviving
	// shard straight through the kill and the reshard; every request must
	// keep succeeding.
	loadCanon := stayers[0].canon
	var loadFails atomic.Int64
	loadStop := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for {
			select {
			case <-loadStop:
				return
			default:
			}
			resp, err := http.Post(base+"/v1/matrices", "application/json", bytes.NewReader(loadCanon))
			if err != nil {
				loadFails.Add(1)
			} else {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
					loadFails.Add(1)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Phase 2: kill s1 and wait for the probe loop to trip its breaker.
	deadAddr := shards[1].addr
	shards[1].kill(t)
	pollBreaker(t, base, "s1", "open", 15*time.Second)

	// With the breaker open, submissions owned by the dead shard must fail
	// over without dialing it: the dial count to the dead address freezes.
	dialsAtOpen := dc.count(deadAddr)
	var burstID string
	for i := 0; i < 4; i++ {
		resp, st := postSpec(t, base, burstCanon)
		if got := resp.Header.Get(HeaderShard); got == "s1" || got == "" {
			t.Fatalf("burst %d served by %q, want a live replica", i, got)
		}
		if resp.Header.Get(HeaderFailover) != "true" {
			t.Errorf("burst %d missing the failover header", i)
		}
		burstID = st.ID
	}
	waitDone(t, base, burstID)
	if got := dc.count(deadAddr); got != dialsAtOpen {
		t.Fatalf("dead shard dialed %d times after its breaker opened (was %d): open breaker must cost zero request-path dials",
			got, dialsAtOpen)
	}
	if skips := gatewayMetricValue(t, base, "mrclone_gateway_breaker_skips_total"); skips < 4 {
		t.Errorf("breaker skips = %v after 4 short-circuited attempts, want >= 4", skips)
	}

	// Phase 3: reshape the pool at runtime — dead shard out, replacement in —
	// through the admin route, as one atomic membership change.
	s3 := startChaosShard(t, "s3", t.TempDir(), "127.0.0.1:0")
	upd, err := json.Marshal(PoolUpdate{
		Add:    []ShardConfig{{Name: "s3", URL: "http://" + s3.addr}},
		Remove: []string{"s1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/pool/shards", "application/json", bytes.NewReader(upd))
	if err != nil {
		t.Fatal(err)
	}
	var ps PoolStatus
	if derr := json.NewDecoder(resp.Body).Decode(&ps); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool update: HTTP %d", resp.StatusCode)
	}
	names := make([]string, len(ps.Shards))
	for i, sc := range ps.Shards {
		names[i] = sc.Name
	}
	if got := strings.Join(names, ","); got != "s0,s2,s3" {
		t.Fatalf("post-update membership %q, want s0,s2,s3", got)
	}
	// The live ring after the delta equals the one predicted up front — the
	// history-independence the ring property tests pin, holding end to end.
	if gw.Ring().String() != r1.String() {
		t.Fatalf("live ring %s differs from predicted delta ring %s", gw.Ring(), r1)
	}

	// Phase 4: stop the load (it must not have seen a single failure), then
	// resubmit every tracked spec. Nothing recomputes: stayers answer from
	// their owner's disk, movers land on s3 which peer-fetches the verified
	// artifacts from each spec's previous owner.
	close(loadStop)
	loadWG.Wait()
	if fails := loadFails.Load(); fails != 0 {
		t.Fatalf("background load saw %d failed requests across the kill and reshard, want 0", fails)
	}

	live := []*chaosShard{shards[0], shards[2], s3}
	var flightsBefore int64
	for _, sh := range live {
		flightsBefore += sh.svc.Metrics().Flights
	}
	for _, tr := range all {
		resp, st := postSpec(t, base, tr.canon)
		if got := resp.Header.Get(HeaderShard); got != tr.owner1 {
			t.Fatalf("post-reshard spec %.12s… served by %q, want new owner %q", tr.hash, got, tr.owner1)
		}
		st = waitDone(t, base, st.ID)
		if !st.Cached {
			t.Errorf("post-reshard spec %.12s… reports cached=false, want a cache or peer hit", tr.hash)
		}
		if got := getResult(t, base, st.ID, "json"); !bytes.Equal(got, tr.wantJSON) {
			t.Errorf("post-reshard artifact for %.12s… differs from direct runner.Run bytes", tr.hash)
		}
	}
	var flightsAfter int64
	for _, sh := range live {
		flightsAfter += sh.svc.Metrics().Flights
	}
	if flightsAfter != flightsBefore {
		t.Fatalf("resharding recomputed: flights went %d -> %d resubmitting already-computed specs, want no change",
			flightsBefore, flightsAfter)
	}

	// The movers arrived on s3 via verified peer fetch, and the counters
	// aggregate through the gateway's merged /metrics.
	if hits := s3.svc.Metrics().PeerFetchHits; hits < int64(len(movers)) {
		t.Errorf("replacement shard peer-fetch hits = %d, want >= %d", hits, len(movers))
	}
	if hits := gatewayMetricValue(t, base, "mrclone_peer_fetch_hits_total"); hits < float64(len(movers)) {
		t.Errorf("aggregated mrclone_peer_fetch_hits_total = %v, want >= %d", hits, len(movers))
	}
}
