package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mrclone/internal/runner"
	"mrclone/internal/service"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/trace"
)

// testSpec is a small, fast matrix whose content hash varies with seed.
func testSpec(seed int64) spec.Spec {
	p := trace.GoogleParams()
	p.Jobs = 8
	p.Span = 200
	return spec.Spec{
		Workload:   spec.Workload{Trace: &p},
		Schedulers: []spec.Scheduler{{Name: "srptms+c"}},
		Points:     []spec.Point{{X: 0, Machines: 25}},
		Runs:       1,
		BaseSeed:   seed,
	}
}

func canonHash(t *testing.T, sp spec.Spec) ([]byte, string) {
	t.Helper()
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return canon, hash
}

// directArtifacts computes the ground truth the cluster must match: the
// deterministic artifact bytes of a direct in-process runner.Run.
func directArtifacts(t *testing.T, sp spec.Spec) (jsonBytes, csvBytes, aggBytes []byte) {
	t.Helper()
	rspec, err := sp.Runner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(context.Background(), rspec, runner.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var jb, cb, ab bytes.Buffer
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteAggregateCSV(&ab); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), ab.Bytes()
}

// testCluster is the in-process multi-node harness: nShards mrserved
// services behind nGateways gateways, everything over real HTTP.
type testCluster struct {
	shards    []*service.Service
	shardSrvs []*httptest.Server
	pool      []Shard
	gateways  []*Gateway
	gwSrvs    []*httptest.Server
}

func (c *testCluster) gwURL(i int) string { return c.gwSrvs[i%len(c.gwSrvs)].URL }

func newTestCluster(t *testing.T, nShards, nGateways int, cfg service.Config) *testCluster {
	t.Helper()
	c := &testCluster{}
	for i := 0; i < nShards; i++ {
		svc := service.New(cfg)
		ts := httptest.NewServer(svc.Handler())
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		c.shards = append(c.shards, svc)
		c.shardSrvs = append(c.shardSrvs, ts)
		c.pool = append(c.pool, Shard{Name: fmt.Sprintf("s%d", i), URL: u})
	}
	for j := 0; j < nGateways; j++ {
		gw, err := New(Config{Shards: c.pool})
		if err != nil {
			t.Fatal(err)
		}
		c.gateways = append(c.gateways, gw)
		c.gwSrvs = append(c.gwSrvs, httptest.NewServer(gw.Handler()))
	}
	t.Cleanup(func() {
		for _, ts := range c.gwSrvs {
			ts.Close()
		}
		for _, gw := range c.gateways {
			gw.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for _, svc := range c.shards {
			_ = svc.Close(ctx)
		}
		for _, ts := range c.shardSrvs {
			ts.Close()
		}
	})
	return c
}

// shardFor returns the service behind a shard name ("s<i>").
func (c *testCluster) shardFor(t *testing.T, name string) *service.Service {
	t.Helper()
	for i, sh := range c.pool {
		if sh.Name == name {
			return c.shards[i]
		}
	}
	t.Fatalf("unknown shard %q", name)
	return nil
}

// postSpec submits canonical spec bytes through a gateway and decodes the
// namespaced job status.
func postSpec(t *testing.T, base string, body []byte) (*http.Response, service.JobStatus) {
	t.Helper()
	resp, err := http.Post(base+"/v1/matrices", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("submit: undecodable status %q: %v", raw, err)
	}
	return resp, st
}

// getStatus fetches one namespaced job's status through a gateway.
func getStatus(t *testing.T, base, id string) (int, service.JobStatus) {
	t.Helper()
	resp, err := http.Get(base + "/v1/matrices/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("status: undecodable %q: %v", raw, err)
		}
	}
	return resp.StatusCode, st
}

// waitDone polls a namespaced job through a gateway until it is done.
func waitDone(t *testing.T, base, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d", id, code)
		}
		switch st.State {
		case service.StateDone:
			return st
		case service.StateFailed, service.StateCancelled:
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return service.JobStatus{}
}

// getResult fetches artifact bytes for a namespaced job through a gateway.
func getResult(t *testing.T, base, id, format string) []byte {
	t.Helper()
	u := base + "/v1/matrices/" + id + "/result"
	if format != "" {
		u += "?format=" + format
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s (%s): HTTP %d: %s", id, format, resp.StatusCode, raw)
	}
	return raw
}

// TestMultiNodeSingleFlight is the headline e2e: three shards, two
// gateways, eight concurrent submissions of one spec split across both
// gateways. The cluster must collapse them into exactly one flight
// cluster-wide, and every result — through either gateway — must be
// byte-identical to a direct runner.Run.
func TestMultiNodeSingleFlight(t *testing.T) {
	c := newTestCluster(t, 3, 2, service.Config{Workers: 1, CellParallelism: 2})
	sp := testSpec(41)
	canon, hash := canonHash(t, sp)
	wantJSON, wantCSV, wantAgg := directArtifacts(t, sp)
	owner := c.gateways[0].Ring().Lookup(hash)

	const clients = 8
	type submission struct {
		gw string
		st service.JobStatus
	}
	subs := make([]submission, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := c.gwURL(i) // alternate between the two gateways
			resp, st := postSpec(t, base, canon)
			if got := resp.Header.Get(HeaderShard); got != owner {
				t.Errorf("client %d: served by shard %q, ring owner is %q", i, got, owner)
			}
			if got := resp.Header.Get(HeaderRoutedBy); got != hash {
				t.Errorf("client %d: routed-by %q, want %q", i, got, hash)
			}
			if !strings.HasPrefix(st.ID, owner+idSep) {
				t.Errorf("client %d: job id %q not namespaced by owner %q", i, st.ID, owner)
			}
			if st.Hash != hash {
				t.Errorf("client %d: hash %q, want %q", i, st.Hash, hash)
			}
			subs[i] = submission{gw: base, st: st}
		}(i)
	}
	wg.Wait()

	for i := range subs {
		subs[i].st = waitDone(t, subs[i].gw, subs[i].st.ID)
	}

	// Exactly one flight cluster-wide; every submission was accepted.
	var flights, submissions, dedupOrCached int64
	for _, svc := range c.shards {
		m := svc.Metrics()
		flights += m.Flights
		submissions += m.Submissions
		dedupOrCached += m.DedupHits + m.CacheHits
	}
	if flights != 1 {
		t.Errorf("cluster ran %d flights for %d identical submissions, want exactly 1", flights, clients)
	}
	if ownerFlights := c.shardFor(t, owner).Metrics().Flights; ownerFlights != 1 {
		t.Errorf("ring owner %s ran %d flights, want the cluster's single flight", owner, ownerFlights)
	}
	if submissions != clients {
		t.Errorf("shards accepted %d submissions, want %d", submissions, clients)
	}
	if dedupOrCached != clients-1 {
		t.Errorf("dedup+cache hits = %d, want %d", dedupOrCached, clients-1)
	}

	// Byte-identical artifacts through both gateways, in every format.
	for i, sub := range subs {
		got := getResult(t, sub.gw, sub.st.ID, "json")
		if !bytes.Equal(got, wantJSON) {
			t.Fatalf("client %d: JSON artifact differs from direct runner.Run (%d vs %d bytes)",
				i, len(got), len(wantJSON))
		}
		otherGW := c.gwURL(i + 1)
		if got := getResult(t, otherGW, sub.st.ID, "json"); !bytes.Equal(got, wantJSON) {
			t.Fatalf("client %d: JSON artifact differs when fetched via the other gateway", i)
		}
	}
	if got := getResult(t, c.gwURL(0), subs[0].st.ID, "csv"); !bytes.Equal(got, wantCSV) {
		t.Error("CSV artifact differs from direct runner.Run")
	}
	if got := getResult(t, c.gwURL(1), subs[0].st.ID, "aggregate"); !bytes.Equal(got, wantAgg) {
		t.Error("aggregate artifact differs from direct runner.Run")
	}
}

// TestRingSpread proves distinct specs actually shard: each submission is
// served by the shard the ring places its hash on, and the sample of specs
// lands on more than one shard.
func TestRingSpread(t *testing.T) {
	c := newTestCluster(t, 3, 2, service.Config{Workers: 2, CellParallelism: 2})
	r := c.gateways[0].Ring()
	seen := make(map[string]int)
	type placed struct {
		gw, id string
	}
	var jobs []placed
	for seed := int64(1); seed <= 9; seed++ {
		sp := testSpec(seed)
		canon, hash := canonHash(t, sp)
		base := c.gwURL(int(seed))
		resp, st := postSpec(t, base, canon)
		want := r.Lookup(hash)
		if got := resp.Header.Get(HeaderShard); got != want {
			t.Errorf("seed %d: served by %q, ring places %s on %q", seed, got, hash, want)
		}
		seen[want]++
		jobs = append(jobs, placed{gw: base, id: st.ID})
	}
	if len(seen) < 2 {
		t.Errorf("9 distinct specs all landed on one shard: %v", seen)
	}
	for _, j := range jobs {
		waitDone(t, j.gw, j.id)
	}
	var flights int64
	for _, svc := range c.shards {
		flights += svc.Metrics().Flights
	}
	if flights != 9 {
		t.Errorf("cluster ran %d flights for 9 distinct specs, want 9", flights)
	}
}

// TestGatewaySSE streams a job's lifecycle through the gateway and checks
// the events carry the namespaced gateway job ID.
func TestGatewaySSE(t *testing.T) {
	c := newTestCluster(t, 2, 1, service.Config{Workers: 1, CellParallelism: 2})
	canon, _ := canonHash(t, testSpec(7))
	_, st := postSpec(t, c.gwURL(0), canon)

	resp, err := http.Get(c.gwURL(0) + "/v1/matrices/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var types []service.EventType
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var e service.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			t.Fatalf("undecodable event %q: %v", data, err)
		}
		if e.Job != st.ID {
			t.Fatalf("event job %q, want namespaced %q", e.Job, st.ID)
		}
		types = append(types, e.Type)
		if e.Terminal() {
			break
		}
	}
	if len(types) == 0 || types[0] != service.EventQueued {
		t.Fatalf("event stream %v, want to open with queued", types)
	}
	if last := types[len(types)-1]; last != service.EventDone {
		t.Fatalf("event stream %v, want to end with done", types)
	}
}

// TestGatewayCancelAndErrors covers the remaining proxied routes: cancel
// with ID rewriting, and the gateway's own error responses.
func TestGatewayCancelAndErrors(t *testing.T) {
	// One worker and a pre-loaded slow-ish spec keep the second job queued
	// long enough to cancel deterministically? No — cancel an already-done
	// job instead, which has a stable response, and exercise error paths.
	c := newTestCluster(t, 2, 1, service.Config{Workers: 1, CellParallelism: 2})
	base := c.gwURL(0)
	canon, _ := canonHash(t, testSpec(3))
	_, st := postSpec(t, base, canon)
	waitDone(t, base, st.ID)

	// Cancelling a finished job reports cancelled=false with the status.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/matrices/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelBody struct {
		Cancelled bool `json:"cancelled"`
		service.JobStatus
	}
	if err := json.NewDecoder(resp.Body).Decode(&cancelBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cancelBody.Cancelled || cancelBody.ID != st.ID {
		t.Fatalf("cancel done job: HTTP %d %+v", resp.StatusCode, cancelBody)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/matrices/no-separator", http.StatusNotFound},
		{"/v1/matrices/ghost.m000001", http.StatusNotFound},     // unknown shard
		{"/v1/matrices/s0.m999999", http.StatusNotFound},        // unknown job, passthrough
		{"/v1/matrices/s0.m999999/result", http.StatusNotFound}, // unknown job result
		{"/v1/matrices/" + st.ID + "/result?format=bogus", http.StatusBadRequest},
	} {
		resp, err := http.Get(base + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: HTTP %d (%s), want %d", tc.path, resp.StatusCode, body, tc.want)
		}
	}

	// A body that is not a valid spec never reaches any shard.
	resp, err = http.Post(base+"/v1/matrices", "application/json", strings.NewReader(`{"version":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: HTTP %d, want 400", resp.StatusCode)
	}
	var submissions int64
	for _, svc := range c.shards {
		submissions += svc.Metrics().Submissions
	}
	if submissions != 1 {
		t.Errorf("shards saw %d submissions, want only the valid one", submissions)
	}
}

// TestPoolHealthAndMetrics checks the aggregation routes against a healthy
// pool and again after one shard dies.
func TestPoolHealthAndMetrics(t *testing.T) {
	c := newTestCluster(t, 3, 1, service.Config{Workers: 1, CellParallelism: 2})
	base := c.gwURL(0)
	canon, _ := canonHash(t, testSpec(11))
	_, st := postSpec(t, base, canon)
	waitDone(t, base, st.ID)

	var health PoolHealth
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || len(health.Shards) != 3 {
		t.Fatalf("pool health = HTTP %d %+v, want ok with 3 shards", resp.StatusCode, health)
	}
	for _, sh := range health.Shards {
		if !sh.Up || sh.Health == nil || sh.Health.QueueCapacity == 0 {
			t.Fatalf("shard %s health %+v, want up with a shard probe payload", sh.Name, sh)
		}
	}

	metricsText := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	m := metricsText()
	for _, want := range []string{
		"mrclone_flights_total 1", // summed across the pool
		"mrclone_gateway_shards 3",
		"mrclone_gateway_shards_up 3",
		"mrclone_gateway_submissions_total 1",
		`mrclone_gateway_shard_up{shard="s1"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("aggregated metrics missing %q:\n%s", want, m)
		}
	}

	// Drain one shard (reachable but rejecting work): the pool verdict must
	// degrade even though every shard still answers its probe.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer drainCancel()
	if err := c.shards[2].Close(drainCtx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = PoolHealth{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("with a draining shard: HTTP %d status %q, want 200 degraded", resp.StatusCode, health.Status)
	}
	if !health.Shards[2].Up || health.Shards[2].Health == nil || health.Shards[2].Health.Status != "draining" {
		t.Fatalf("draining shard reported %+v, want up with status draining", health.Shards[2])
	}

	// Kill one shard: health degrades, its up-gauge drops, aggregation of
	// the survivors keeps working.
	c.shardSrvs[1].Close()
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = PoolHealth{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("after shard death: HTTP %d status %q, want 200 degraded", resp.StatusCode, health.Status)
	}
	if health.Shards[1].Up || health.Shards[1].Error == "" {
		t.Fatalf("dead shard reported %+v, want down with an error", health.Shards[1])
	}
	m = metricsText()
	for _, want := range []string{
		"mrclone_gateway_shards_up 2",
		`mrclone_gateway_shard_up{shard="s1"} 0`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("degraded metrics missing %q", want)
		}
	}
}

// TestSubmitNoFailoverAfterDelivery pins the double-compute guard: a
// transport error after the connection was established (the request may
// have reached the owner) must NOT be replayed onto a replica — the client
// gets a 502 to retry — while a dial failure still fails over (chaos test).
func TestSubmitNoFailoverAfterDelivery(t *testing.T) {
	// A shard stub that accepts the connection, then kills it mid-response.
	killer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("hijacking unsupported")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Close()
	}))
	defer killer.Close()
	healthy := service.New(service.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = healthy.Close(ctx)
	}()
	healthySrv := httptest.NewServer(healthy.Handler())
	defer healthySrv.Close()

	ku, err := url.Parse(killer.URL)
	if err != nil {
		t.Fatal(err)
	}
	hu, err := url.Parse(healthySrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{Shards: []Shard{{Name: "bad", URL: ku}, {Name: "good", URL: hu}}})
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	// Pick a spec the ring places on the connection-killing shard.
	var canon []byte
	for seed := int64(1); ; seed++ {
		if seed > 200 {
			t.Fatal("no seed owned by the bad shard")
		}
		c, hash := canonHash(t, testSpec(seed))
		if gw.Ring().Lookup(hash) == "bad" {
			canon = c
			break
		}
	}
	resp, err := http.Post(gwSrv.URL+"/v1/matrices", "application/json", bytes.NewReader(canon))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("mid-response failure: HTTP %d (%s), want 502 with no failover", resp.StatusCode, body)
	}
	if got := healthy.Metrics().Submissions; got != 0 {
		t.Fatalf("replica accepted %d submissions after an ambiguous owner failure, want 0", got)
	}
}

// TestSubmitPoolDrainingIs503 pins the backpressure signal at the gateway
// boundary: when every replica answers 503 (a rolling restart draining the
// whole pool), the gateway relays retryable 503, not a hard 502.
func TestSubmitPoolDrainingIs503(t *testing.T) {
	c := newTestCluster(t, 2, 1, service.Config{Workers: 1, CellParallelism: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, svc := range c.shards {
		if err := svc.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	canon, _ := canonHash(t, testSpec(5))
	resp, err := http.Post(c.gwURL(0)+"/v1/matrices", "application/json", bytes.NewReader(canon))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pool-wide drain: HTTP %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestGatewayAggregatesCellMetrics: the cell-cache counters are plain
// additive totals, so the gateway's summed /metrics surfaces cross-matrix
// cell reuse happening inside a durable shard.
func TestGatewayAggregatesCellMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One durable shard (the service owns and closes the store): placement
	// is deterministic, so the overlap below is guaranteed to hit its cache.
	c := newTestCluster(t, 1, 1, service.Config{
		Workers: 1, CellParallelism: 2, Store: st, GCInterval: -1,
	})
	base := c.gwURL(0)

	overlapping := func(points []spec.Point) spec.Spec {
		p := trace.GoogleParams()
		p.Jobs = 6
		p.Span = 120
		return spec.Spec{
			Workload:   spec.Workload{Trace: &p},
			Schedulers: []spec.Scheduler{{Name: "fair"}},
			Points:     points,
			Runs:       1,
			BaseSeed:   3,
		}
	}
	pA := spec.Point{X: 0, Machines: 20}
	pB := spec.Point{X: 1, Machines: 25}
	pC := spec.Point{X: 2, Machines: 30}

	canonA, _ := canonHash(t, overlapping([]spec.Point{pA, pB}))
	_, stA := postSpec(t, base, canonA)
	waitDone(t, base, stA.ID)
	canonB, _ := canonHash(t, overlapping([]spec.Point{pB, pC}))
	_, stB := postSpec(t, base, canonB)
	final := waitDone(t, base, stB.ID)
	if final.CachedCells != 1 {
		t.Errorf("overlapping matrix reports %d cached cells through the gateway, want 1", final.CachedCells)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := string(b)
	for _, want := range []string{
		"mrclone_cell_hits_total 1",   // the shared pB cell
		"mrclone_cell_misses_total 3", // pA, pB cold + pC
		"mrclone_gc_cells_total 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("aggregated metrics missing %q:\n%s", want, m)
		}
	}
	// Bytes were written for every simulated (missed) cell.
	for _, line := range strings.Split(m, "\n") {
		if v, ok := strings.CutPrefix(line, "mrclone_cell_bytes_total "); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil || n <= 0 {
				t.Errorf("mrclone_cell_bytes_total = %q, want a positive sum", v)
			}
		}
	}
}
