package gateway

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"mrclone/internal/service"
	"mrclone/internal/service/spec"
	"mrclone/internal/store"
	"mrclone/internal/trace"
)

// slowSpec is a matrix big enough to still be mid-flight when the chaos
// test kills its shard: ~30 cells of a few hundred ms each, executed
// serially (the chaos shards run Workers=1, CellParallelism=1). The kill
// only has to land before the whole matrix finishes, so the margin is wide
// even on slow CI machines.
func slowSpec(seed int64) spec.Spec {
	p := trace.GoogleParams()
	p.Jobs = 400
	p.Span = 4000
	return spec.Spec{
		Workload:   spec.Workload{Trace: &p},
		Schedulers: []spec.Scheduler{{Name: "srptms+c"}},
		Points:     []spec.Point{{X: 0, Machines: 10}},
		Runs:       30,
		BaseSeed:   seed,
	}
}

// chaosShard is one restartable mrserved node: a durable service on a real
// TCP listener, so the harness can kill it (address refuses connections,
// in-flight work dies) and later restart it on the same address and
// data-dir — the disk-recovery path a supervisor restart takes in
// production.
type chaosShard struct {
	name string
	dir  string
	addr string
	svc  *service.Service
	srv  *http.Server
}

// startChaosShard opens (or reopens) the data-dir and serves the shard on
// addr ("127.0.0.1:0" for a fresh port, a previous shard's addr to model a
// restart). Cleanup force-closes the shard; kill earlier is idempotent
// with it.
func startChaosShard(t *testing.T, name, dir, addr string) *chaosShard {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 1, CellParallelism: 1, Store: st})
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt >= 50 {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_ = svc.Close(ctx)
			t.Fatalf("bind %s: %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	sh := &chaosShard{
		name: name,
		dir:  dir,
		addr: ln.Addr().String(),
		svc:  svc,
		srv:  &http.Server{Handler: svc.Handler()},
	}
	go func() { _ = sh.srv.Serve(ln) }()
	t.Cleanup(func() { sh.kill(t) })
	return sh
}

// kill abruptly takes the shard down: the listener and open connections
// drop, the running flight is force-cancelled, and the store is closed so
// the data-dir can be reopened by a restart. As close to kill -9 as an
// in-process harness gets while still releasing file handles.
func (s *chaosShard) kill(t *testing.T) {
	t.Helper()
	_ = s.srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-expired deadline: cancel all remaining work now
	_ = s.svc.Close(ctx)
}

// waitRunning polls a namespaced job through the gateway until its flight
// has started executing.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getStatus(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d", id, code)
		}
		switch st.State {
		case service.StateRunning:
			return
		case service.StateDone, service.StateFailed, service.StateCancelled:
			t.Fatalf("job %s reached %s before the chaos kill", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestChaosKillFailoverRecovery is the chaos satellite: kill a shard
// mid-flight, verify the gateway fails the orphaned job cleanly and routes
// a resubmission to the next ring replica, then restart the shard on its
// data-dir and verify the gateway serves the shard's recovered artifact as
// a disk hit — zero new flights.
func TestChaosKillFailoverRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness runs multi-second flights")
	}
	const n = 3
	shards := make([]*chaosShard, n)
	pool := make([]Shard, n)
	for i := range shards {
		shards[i] = startChaosShard(t, fmt.Sprintf("s%d", i), t.TempDir(), "127.0.0.1:0")
		u, err := url.Parse("http://" + shards[i].addr)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = Shard{Name: shards[i].name, URL: u}
	}
	gw, err := New(Config{Shards: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gwSrv := httptest.NewServer(gw.Handler())
	t.Cleanup(gwSrv.Close)
	base := gwSrv.URL

	// Phase 0: a fast spec completes and persists on its owning shard — the
	// artifact the recovery phase must later serve from disk. Its owner is
	// the shard the chaos kill will target.
	fastSp := testSpec(21)
	fastCanon, fastHash := canonHash(t, fastSp)
	wantJSON, _, _ := directArtifacts(t, fastSp)
	victim := gw.Ring().Lookup(fastHash)
	victimIdx := -1
	for i, sh := range shards {
		if sh.name == victim {
			victimIdx = i
		}
	}
	resp, stB := postSpec(t, base, fastCanon)
	if got := resp.Header.Get(HeaderShard); got != victim {
		t.Fatalf("fast spec served by %q, ring owner is %q", got, victim)
	}
	waitDone(t, base, stB.ID)

	// Phase 1: a slow spec owned by the same victim goes mid-flight.
	var slowCanon []byte
	var slowHash string
	for seed := int64(100); ; seed++ {
		if seed > 300 {
			t.Fatal("no slow-spec seed placed on the victim shard")
		}
		canon, hash := canonHash(t, slowSpec(seed))
		if gw.Ring().Lookup(hash) == victim {
			slowCanon, slowHash = canon, hash
			break
		}
	}
	_, stA := postSpec(t, base, slowCanon)
	waitRunning(t, base, stA.ID)

	// Phase 2: kill the shard mid-flight. The orphaned job must fail
	// cleanly at the gateway: a 502 naming the dead shard, not a hang.
	shards[victimIdx].kill(t)
	errResp, err := http.Get(base + "/v1/matrices/" + stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	errBody, _ := io.ReadAll(errResp.Body)
	errResp.Body.Close()
	if errResp.StatusCode != http.StatusBadGateway {
		t.Fatalf("orphaned job: HTTP %d (%s), want 502", errResp.StatusCode, errBody)
	}
	if !strings.Contains(string(errBody), victim) || !strings.Contains(string(errBody), "unreachable") {
		t.Fatalf("orphaned-job error %q does not name the dead shard", errBody)
	}

	// Phase 3: resubmitting the same spec fails over to the next replica in
	// ring order — the shard that would own the hash if the victim left the
	// ring (ring_test pins this equivalence).
	next := gw.Ring().Replicas(slowHash, 2)[1]
	resub, stA2 := postSpec(t, base, slowCanon)
	if got := resub.Header.Get(HeaderShard); got != next {
		t.Fatalf("resubmission served by %q, want next replica %q", got, next)
	}
	if resub.Header.Get(HeaderFailover) != "true" {
		t.Error("resubmission missing the failover header")
	}
	if !strings.HasPrefix(stA2.ID, next+idSep) {
		t.Fatalf("resubmitted job id %q not namespaced by replica %q", stA2.ID, next)
	}
	if code, _ := getStatus(t, base, stA2.ID); code != http.StatusOK {
		t.Fatalf("resubmitted job status: HTTP %d", code)
	}
	// Cancel the replica's flight — the chaos assertions are about routing,
	// not about burning CPU to the end of a 30-cell matrix.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/matrices/"+stA2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel resubmission: HTTP %d", delResp.StatusCode)
	}

	// Phase 4: restart the victim on its data-dir and address. Membership is
	// unchanged, so no operator action is needed — but the victim's circuit
	// breaker may have opened while it was dead, so wait for the probe loop
	// to observe the recovery and snap the breaker closed before resubmitting.
	// The fast spec then goes to the restarted shard and is served straight
	// from disk — completed on arrival, cached, zero new flights.
	shards[victimIdx] = startChaosShard(t, victim, shards[victimIdx].dir, shards[victimIdx].addr)
	pollBreaker(t, base, victim, "closed", 30*time.Second)
	recResp, stB2 := postSpec(t, base, fastCanon)
	if recResp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart submission: HTTP %d, want 200 (completed on arrival)", recResp.StatusCode)
	}
	if got := recResp.Header.Get(HeaderShard); got != victim {
		t.Fatalf("post-restart submission served by %q, want restarted %q", got, victim)
	}
	if stB2.State != service.StateDone || !stB2.Cached {
		t.Fatalf("post-restart job = %+v, want done and cached", stB2)
	}
	m := shards[victimIdx].svc.Metrics()
	if m.Flights != 0 {
		t.Errorf("restarted shard ran %d flights, want 0 (disk hit)", m.Flights)
	}
	if m.DiskHits != 1 {
		t.Errorf("restarted shard disk hits = %d, want 1", m.DiskHits)
	}
	if got := getResult(t, base, stB2.ID, "json"); string(got) != string(wantJSON) {
		t.Error("recovered artifact differs from direct runner.Run bytes")
	}
}
