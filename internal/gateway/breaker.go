package gateway

import (
	"sync"
	"time"
)

// breakerState is one circuit breaker's position in the state machine.
type breakerState int32

// Breaker states. The numeric values are the mrclone_gateway_breaker_state
// gauge encoding, so reordering them is a metrics-contract change.
const (
	breakerClosed   breakerState = 0 // requests flow; consecutive failures counted
	breakerOpen     breakerState = 1 // requests short-circuit without dialing
	breakerHalfOpen breakerState = 2 // exactly one probe request is in flight
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker tuning defaults (Config.BreakerFailures / BreakerCooldown).
const (
	defaultBreakerFailures = 3
	defaultBreakerCooldown = 5 * time.Second
)

// breaker is one shard's circuit breaker: closed until threshold
// consecutive failures, then open — every Allow short-circuits false, so
// the shard costs zero dials — until cooldown elapses, then half-open,
// admitting exactly one probe whose outcome closes or reopens it.
//
// Two actors feed it: the request path records the outcome of every
// forwarded attempt, and the gateway's background probe loop records
// /healthz reachability. A Failure while open refreshes the open timer, so
// as long as the probe loop keeps failing (probe interval < cooldown) the
// request path never spends its half-open probe on a shard the prober
// already knows is dead; the first successful probe snaps the breaker
// closed with no cooldown to wait out.
//
// All methods are safe for concurrent use. The clock is injectable for
// tests; onChange (may be nil) observes transitions and is called without
// the lock held, so it may log or update gauges freely.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	onChange  func(from, to breakerState)

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker (re-)opened
	probing  bool      // half-open: the single probe slot is taken
}

// newBreaker builds a closed breaker. Non-positive threshold/cooldown get
// the defaults; a nil clock uses time.Now.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, onChange func(from, to breakerState)) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerFailures
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, onChange: onChange}
}

// Allow reports whether a request may dial the shard. Closed always allows;
// open allows nothing until the cooldown has elapsed, at which point the
// breaker goes half-open and this caller becomes its single probe; further
// half-open callers are refused until the probe settles via Success or
// Failure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	from := b.state
	var ok bool
	switch b.state {
	case breakerClosed:
		ok = true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			ok = true
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			ok = true
		}
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
	return ok
}

// Success records a healthy outcome — an answered request or probe — and
// closes the breaker from any state.
func (b *breaker) Success() {
	b.mu.Lock()
	from := b.state
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
}

// Failure records an unhealthy outcome. Closed: one more consecutive
// failure, opening at the threshold. Open: the open timer is refreshed, so
// a still-failing prober holds the breaker open. Half-open: the probe
// failed; reopen.
func (b *breaker) Failure() {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	case breakerOpen:
		b.openedAt = b.now()
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
}

// State returns the breaker's current state for gauges and health output.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) notify(from, to breakerState) {
	if from != to && b.onChange != nil {
		b.onChange(from, to)
	}
}
