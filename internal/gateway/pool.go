package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/ring"
)

// poolView is one immutable snapshot of the pool: the member set, the
// routing ring built over it, and the ring as it stood before the latest
// membership change. Readers load it atomically and never see a half-applied
// update; writers (ApplyPoolUpdate, serialized by poolMu) publish a fresh
// snapshot.
type poolView struct {
	shards map[string]Shard
	order  []Shard // display order: config order, updates appended
	ring   *ring.Ring
	// prev is the routing ring before the most recent membership change, nil
	// until one happens. It answers "who owned this hash before the pool
	// changed?" — the peer-fetch hint that lets a shard receiving relocated
	// keys pull already-computed artifacts instead of recomputing them.
	prev *ring.Ring
}

// peerHint resolves the previous ring owner of hash: the shard most likely
// to hold its artifacts from before the latest membership change. It returns
// the empty strings when there is no previous membership or the previous
// owner has left the pool (nothing to dial).
func (v *poolView) peerHint(hash string) (name, baseURL string) {
	if v.prev == nil {
		return "", ""
	}
	owner := v.prev.Lookup(hash)
	sh, ok := v.shards[owner]
	if !ok {
		return "", ""
	}
	return owner, sh.URL.String()
}

// currentView loads the pool snapshot requests route against.
func (g *Gateway) currentView() *poolView { return g.view.Load() }

// breakerFor returns the shard's circuit breaker, or nil for a shard that
// has left the pool (its breaker is dropped with it).
func (g *Gateway) breakerFor(name string) *breaker {
	g.brMu.Lock()
	defer g.brMu.Unlock()
	return g.breakers[name]
}

// newShardBreaker builds one shard's breaker, wired to log every transition
// through the gateway's structured logger.
func (g *Gateway) newShardBreaker(name string) *breaker {
	return newBreaker(g.breakerFailures, g.breakerCooldown, nil, func(from, to breakerState) {
		g.obsv.log.Info("breaker transition",
			obs.KeyShard, name, "from", from.String(), "to", to.String())
	})
}

// ShardConfig is the wire form of one pool member in admin requests and
// responses.
type ShardConfig struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// PoolUpdate is the body of POST /v1/pool/shards: members to add and member
// names to remove, applied as one atomic membership change.
type PoolUpdate struct {
	Add    []ShardConfig `json:"add,omitempty"`
	Remove []string      `json:"remove,omitempty"`
}

// PoolStatus describes the pool after an update: the member list in display
// order and the resulting routing ring.
type PoolStatus struct {
	Shards []ShardConfig `json:"shards"`
	Ring   string        `json:"ring"`
}

// ApplyPoolUpdate applies one membership change: adds are validated like
// New validates the initial pool and join the routing ring; removed shards
// leave it (their breakers are dropped; in-flight requests to them finish).
// The change is atomic — a request routes against the old snapshot or the
// new one, never a mix — and the pre-change ring is retained as the
// peer-fetch hint source, so submissions relocated by this change carry a
// pointer to their previous owner. Adding an existing name, removing an
// unknown one, or emptying the pool is an error and leaves the pool
// untouched.
func (g *Gateway) ApplyPoolUpdate(upd PoolUpdate) (PoolStatus, error) {
	g.poolMu.Lock()
	defer g.poolMu.Unlock()
	view := g.currentView()

	added := make([]Shard, 0, len(upd.Add))
	for _, sc := range upd.Add {
		u, err := url.Parse(sc.URL)
		if err != nil {
			return PoolStatus{}, fmt.Errorf("gateway: shard %s: %w", sc.Name, err)
		}
		sh := Shard{Name: sc.Name, URL: u}
		if err := validateShard(sh); err != nil {
			return PoolStatus{}, err
		}
		added = append(added, sh)
	}

	// The ring's own delta methods carry the rest of the validation:
	// duplicate adds, unknown removals, and emptying the pool all fail there
	// before anything is published. Adds apply first so a full replacement
	// (add the new generation, remove the old) is a single update.
	next := view.ring
	var err error
	if len(added) > 0 {
		names := make([]string, len(added))
		for i, sh := range added {
			names[i] = sh.Name
		}
		if next, err = next.With(names...); err != nil {
			return PoolStatus{}, err
		}
	}
	if len(upd.Remove) > 0 {
		if next, err = next.Without(upd.Remove...); err != nil {
			return PoolStatus{}, err
		}
	}

	removed := make(map[string]bool, len(upd.Remove))
	for _, name := range upd.Remove {
		removed[name] = true
	}
	shards := make(map[string]Shard, next.Len())
	order := make([]Shard, 0, next.Len())
	for _, sh := range view.order {
		if !removed[sh.Name] {
			shards[sh.Name] = sh
			order = append(order, sh)
		}
	}
	for _, sh := range added {
		shards[sh.Name] = sh
		order = append(order, sh)
	}

	g.brMu.Lock()
	for name := range removed {
		delete(g.breakers, name)
	}
	for _, sh := range added {
		g.breakers[sh.Name] = g.newShardBreaker(sh.Name)
	}
	g.brMu.Unlock()

	g.view.Store(&poolView{shards: shards, order: order, ring: next, prev: view.ring})
	g.obsv.log.Info("pool membership changed",
		"added", len(added), "removed", len(upd.Remove), "ring", next.String())
	return poolStatus(order, next), nil
}

func poolStatus(order []Shard, r *ring.Ring) PoolStatus {
	st := PoolStatus{Ring: r.String(), Shards: make([]ShardConfig, 0, len(order))}
	for _, sh := range order {
		st.Shards = append(st.Shards, ShardConfig{Name: sh.Name, URL: sh.URL.String()})
	}
	return st
}

// handlePoolUpdate is the admin route (POST /v1/pool/shards), registered
// only with Config.EnableAdmin. It carries no tenant authentication — the
// expectation is a trusted operator network, see docs/OPERATIONS.md.
func (g *Gateway) handlePoolUpdate(w http.ResponseWriter, r *http.Request) {
	var upd PoolUpdate
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&upd); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("gateway: decode pool update: %w", err))
		return
	}
	if len(upd.Add) == 0 && len(upd.Remove) == 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("gateway: pool update adds and removes nothing"))
		return
	}
	st, err := g.ApplyPoolUpdate(upd)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// probeLoop drives the background health probes: every interval, each pool
// member's /healthz is fetched concurrently (over the probe client, never
// the request client) and the outcome feeds its circuit breaker. This is
// what turns a dead shard from "one failed dial per routed request" into
// "zero request-path dials within a probe interval or a failure threshold,
// whichever trips first" — and what snaps a recovered shard's breaker
// closed without waiting out a cooldown.
func (g *Gateway) probeLoop(interval time.Duration) {
	defer close(g.probeDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
			g.probePool(context.Background())
		}
	}
}

// probePool runs one concurrent probe round over the current membership.
func (g *Gateway) probePool(ctx context.Context) {
	view := g.currentView()
	var wg sync.WaitGroup
	for _, sh := range view.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.probeHealth(ctx, sh)
		}()
	}
	wg.Wait()
}

// Close stops the background probe loop and waits for it to exit. The
// gateway keeps serving requests (it owns no listener); Close exists so
// embedders and tests do not leak the prober. Safe to call more than once.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stopCh) })
	<-g.probeDone
}
