// Package gateway is the routing tier of the sharded simulation service: an
// HTTP reverse proxy that owns no compute and no state beyond its pool view
// and per-shard circuit breakers. It fronts an elastic pool of mrserved
// shards (internal/service) and routes every request to the shard that owns
// it:
//
//   - submissions (POST /v1/matrices) are routed by content — the gateway
//     extracts the spec hash from the raw body (spec.HashSubmission) and
//     forwards to the shard the consistent-hash ring (internal/ring) places
//     that hash on, falling back to the next replica in ring order when the
//     owner is unreachable or draining;
//   - job routes (GET/DELETE /v1/matrices/{id}, /result, SSE /events) are
//     routed by ID — gateway job IDs are namespaced "<shard>.<local-id>", so
//     the owning shard is recoverable from the ID alone;
//   - GET /healthz and /metrics aggregate the whole pool.
//
// Routing by hash is what makes the shard-local single-flight table
// cluster-wide: identical specs hash identically, every gateway places a
// hash on the same shard (ring placement is deterministic and order-
// independent), so concurrent identical submissions through any number of
// gateways meet in one shard's dedup table and collapse into one flight.
// And because the runner produces byte-identical artifacts for equal specs,
// failover is safe: a resubmission routed to the next replica computes
// exactly the bytes the dead owner would have served.
//
// Membership is elastic: POST /v1/pool/shards (when Config.EnableAdmin is
// set) adds and removes shards at runtime, rebuilding the routing ring as an
// atomic snapshot swap. A background probe loop watches every member's
// /healthz and feeds per-shard circuit breakers; once a shard's breaker
// opens, requests skip it without dialing, and submissions relocated by a
// membership change carry an X-Mrclone-Peer hint naming the previous ring
// owner so the new owner can fetch already-computed artifacts instead of
// recomputing them.
//
// Responses the gateway has routed carry X-Mrclone-Shard (the shard that
// served the request), and submissions additionally X-Mrclone-Routed-By
// (the spec hash used for placement) and X-Mrclone-Failover when a replica
// other than the ring owner served it. Result bytes are passed through
// untouched — byte-identity survives the proxy hop.
package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/ring"
	"mrclone/internal/service"
	"mrclone/internal/service/spec"
	"mrclone/internal/tenant"
)

// idSep separates the shard namespace from the shard-local job ID in
// gateway job IDs ("<shard>.<local-id>"); shard names must not contain it.
const idSep = "."

// Gateway-added response headers.
const (
	// HeaderShard names the shard that served the request.
	HeaderShard = "X-Mrclone-Shard"
	// HeaderRoutedBy carries the spec content hash a submission was placed
	// by.
	HeaderRoutedBy = "X-Mrclone-Routed-By"
	// HeaderFailover is "true" when a submission was served by a replica
	// other than the ring owner.
	HeaderFailover = "X-Mrclone-Failover"
)

// ErrNoShards reports an attempt to build a gateway with an empty pool.
var ErrNoShards = errors.New("gateway: need at least one shard")

// Shard is one mrserved worker in the pool.
type Shard struct {
	// Name is the stable shard identifier used in the ring, in namespaced
	// job IDs, and in the aggregated health/metrics output. It must be
	// non-empty and must not contain ".", "/", or whitespace.
	Name string
	// URL is the shard's base URL (scheme + host, optionally a path
	// prefix).
	URL *url.URL
}

// Config assembles a gateway. Shards is required; everything else defaults.
type Config struct {
	// Shards is the initial pool membership — elastic thereafter via
	// ApplyPoolUpdate / POST /v1/pool/shards. Order is cosmetic (health
	// output); placement depends only on the set of names.
	Shards []Shard
	// VirtualNodes is the per-shard point count of the consistent-hash
	// ring (default ring.DefaultVirtualNodes).
	VirtualNodes int
	// Replicas bounds how many shards a submission is attempted on before
	// the gateway gives up (ring order: owner first). 0 means every shard.
	Replicas int
	// Client issues upstream requests (default: a client with no overall
	// timeout, so SSE streams are not cut; per-request lifetime follows
	// the client's request context).
	Client *http.Client
	// ProbeClient issues the background health probes and /healthz//metrics
	// aggregation fetches, kept separate from Client so probe traffic never
	// shows up in request-path accounting (tests count request dials on
	// Client alone). Defaults to Client.
	ProbeClient *http.Client
	// ProbeTimeout bounds each per-shard /healthz and /metrics probe
	// (default 2s).
	ProbeTimeout time.Duration
	// ProbeInterval is the background health-probe period feeding the
	// per-shard circuit breakers (default 1s; negative disables the loop,
	// leaving breakers fed by request outcomes alone).
	ProbeInterval time.Duration
	// BreakerFailures is the consecutive-failure threshold that opens a
	// shard's circuit breaker (default 3).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker short-circuits requests
	// before admitting a half-open probe (default 5s). The probe loop
	// refreshes the cooldown while a shard stays unreachable and snaps the
	// breaker closed as soon as it answers again.
	BreakerCooldown time.Duration
	// EnableAdmin registers POST /v1/pool/shards, the runtime membership
	// route. It carries no tenant authentication — enable it only where the
	// gateway listens on a trusted operator network (docs/OPERATIONS.md).
	EnableAdmin bool
	// Tenants, when set, makes the gateway an admission edge: submissions
	// are authenticated and rate-limited here, before any shard is dialed,
	// so a flooding tenant burns gateway CPU rather than shard queue slots.
	// The Authorization header is still forwarded verbatim — shards
	// configured with their own registry re-authenticate (use the same
	// file) and apply queue/cell quotas, which only they can see. Nil means
	// the gateway forwards credentials without inspecting them.
	Tenants *tenant.Registry
	// Logger receives one structured line per request, stamped with the
	// request ID, trace and span IDs, matched route, status, duration, and
	// (when a shard served the request) the shard name. Nil discards —
	// output stays exactly as before observability existed.
	Logger *slog.Logger
}

// Gateway routes requests across the shard pool. Create with New, serve via
// Handler, and Close when done (it stops the probe loop). A gateway is
// stateless apart from counters and per-shard breaker positions: membership
// lives in an atomically swapped pool snapshot, and shard health is tracked
// by the background probe loop plus request outcomes — a down shard costs at
// most a few failed dials before its breaker opens and requests skip it
// without dialing; the first successful probe puts it back in rotation.
type Gateway struct {
	client       *http.Client
	probeClient  *http.Client
	replicas     int
	probeTimeout time.Duration
	tenants      *tenant.Registry
	admin        bool
	start        time.Time
	obsv         gatewayObs

	breakerFailures int
	breakerCooldown time.Duration

	poolMu sync.Mutex // serializes membership changes
	view   atomic.Pointer[poolView]

	brMu     sync.Mutex
	breakers map[string]*breaker

	stopCh    chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	requests     atomic.Int64
	submissions  atomic.Int64
	failovers    atomic.Int64
	shardErrors  atomic.Int64
	breakerSkips atomic.Int64
	unauthorized atomic.Int64
	rateLimited  atomic.Int64
}

// validateShard checks one pool member the same way at construction and at
// runtime admission: a routable name and a clean absolute base URL.
func validateShard(sh Shard) error {
	if sh.Name == "" || strings.ContainsAny(sh.Name, idSep+"/ \t\n") {
		return fmt.Errorf("gateway: invalid shard name %q (must be non-empty, no %q, %q, or whitespace)",
			sh.Name, idSep, "/")
	}
	if sh.URL == nil || (sh.URL.Scheme != "http" && sh.URL.Scheme != "https") || sh.URL.Host == "" {
		return fmt.Errorf("gateway: shard %s: need an absolute http(s) base URL", sh.Name)
	}
	if sh.URL.RawQuery != "" || sh.URL.Fragment != "" {
		// forward() rebuilds the query from each client request, so a
		// query on the base URL would be silently dropped — reject it.
		return fmt.Errorf("gateway: shard %s: base URL must not carry a query or fragment", sh.Name)
	}
	return nil
}

// New validates the pool, builds the routing ring, and starts the
// background probe loop (unless disabled). Callers own the returned
// gateway's lifecycle: Close it to stop the prober.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, ErrNoShards
	}
	byName := make(map[string]Shard, len(cfg.Shards))
	names := make([]string, 0, len(cfg.Shards))
	for _, sh := range cfg.Shards {
		if err := validateShard(sh); err != nil {
			return nil, err
		}
		if _, dup := byName[sh.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate shard name %q", sh.Name)
		}
		byName[sh.Name] = sh
		names = append(names, sh.Name)
	}
	r, err := ring.New(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	probeClient := cfg.ProbeClient
	if probeClient == nil {
		probeClient = client
	}
	probe := cfg.ProbeTimeout
	if probe <= 0 {
		probe = 2 * time.Second
	}
	g := &Gateway{
		client:          client,
		probeClient:     probeClient,
		replicas:        cfg.Replicas,
		probeTimeout:    probe,
		tenants:         cfg.Tenants,
		admin:           cfg.EnableAdmin,
		start:           time.Now(),
		obsv:            newGatewayObs(cfg.Logger),
		breakerFailures: cfg.BreakerFailures,
		breakerCooldown: cfg.BreakerCooldown,
		stopCh:          make(chan struct{}),
		probeDone:       make(chan struct{}),
	}
	g.view.Store(&poolView{
		shards: byName,
		order:  append([]Shard(nil), cfg.Shards...),
		ring:   r,
	})
	g.breakers = make(map[string]*breaker, len(names))
	for _, name := range names {
		g.breakers[name] = g.newShardBreaker(name)
	}
	interval := cfg.ProbeInterval
	if interval == 0 {
		interval = time.Second
	}
	if interval > 0 {
		go g.probeLoop(interval)
	} else {
		close(g.probeDone)
	}
	return g, nil
}

// Ring exposes the current placement ring (for tests and diagnostics).
func (g *Gateway) Ring() *ring.Ring { return g.currentView().ring }

// Handler returns the gateway's HTTP API — the same surface a single
// mrserved exposes (docs/API.md), with gateway job IDs namespaced by shard.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", g.handleSubmit)
	mux.HandleFunc("GET /v1/matrices/{id}", g.handleGet)
	mux.HandleFunc("DELETE /v1/matrices/{id}", g.handleCancel)
	mux.HandleFunc("GET /v1/matrices/{id}/result", g.handleResult)
	mux.HandleFunc("GET /v1/matrices/{id}/events", g.handleEvents)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	if g.admin {
		mux.HandleFunc("POST /v1/pool/shards", g.handlePoolUpdate)
	}
	return g.instrument(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// splitJobID decomposes a namespaced gateway job ID.
func splitJobID(id string) (shard, local string, ok bool) {
	shard, local, ok = strings.Cut(id, idSep)
	if !ok || shard == "" || local == "" {
		return "", "", false
	}
	return shard, local, true
}

// errBreakerOpen marks an attempt short-circuited by an open circuit
// breaker: the shard was never dialed.
var errBreakerOpen = errors.New("circuit breaker open")

// forward issues one upstream request against a shard's base URL. The body,
// when non-nil, is a fully buffered submission (retries need rewinding);
// extra headers, when non-nil, are added to the upstream request. The
// shard's circuit breaker gates the attempt — an open breaker returns
// errBreakerOpen without dialing — and absorbs its outcome: any response
// counts as reachable, a dial failure counts against the shard, and an
// ambiguous mid-response error counts as neither.
func (g *Gateway) forward(r *http.Request, sh Shard, method, path, rawQuery string, body []byte, extra http.Header) (*http.Response, error) {
	br := g.breakerFor(sh.Name)
	if br != nil && !br.Allow() {
		g.breakerSkips.Add(1)
		return nil, fmt.Errorf("%w (shard %s)", errBreakerOpen, sh.Name)
	}
	u := *sh.URL
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = rawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// Credentials ride through untouched so multi-tenant shards can
	// authenticate the original caller, not the gateway.
	if auth := r.Header.Get("Authorization"); auth != "" {
		req.Header.Set("Authorization", auth)
	}
	// Propagate the request's trace to the shard under a fresh span ID, so
	// the shard's log lines and the gateway's share one trace ID while each
	// hop remains distinguishable.
	if tc, ok := obs.TraceFrom(r.Context()); ok {
		req.Header.Set(obs.TraceparentHeader, tc.WithNewSpan().String())
	}
	resp, err := g.client.Do(req)
	if br != nil {
		switch {
		case err == nil:
			br.Success()
		case dialFailure(err):
			br.Failure()
		}
	}
	return resp, err
}

// handleSubmit routes a submission by content hash: owner first, then the
// ring's replica sequence when the owner is down. A shard that answers —
// including with a client error or queue-full backpressure — ends the
// walk, and so does a transport error after the connection was
// established: only dial failures (the request provably never reached the
// shard) and 503 (drain in progress, the shard rejected it) fail over.
// That keeps per-shard backpressure visible to the client and guarantees a
// spec never silently computes on two shards — an ambiguous mid-response
// failure surfaces as 502 for the client to retry rather than being
// replayed onto a replica while the owner may still be running it. A shard
// whose circuit breaker is open is skipped without dialing at all; the walk
// moves straight to the next replica.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !g.admit(w, r) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, service.MaxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > service.MaxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec exceeds %d bytes", service.MaxSpecBytes))
		return
	}
	hash, err := spec.HashSubmission(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.submissions.Add(1)
	view := g.currentView()
	// When a membership change relocated this hash, name its previous ring
	// owner so the new owner can peer-fetch already-computed artifacts
	// instead of recomputing. A hint pointing at an open-breaker shard is
	// dropped — the peer fetch would only burn its timeout.
	peerName, peerURL := view.peerHint(hash)
	if peerName != "" {
		if br := g.breakerFor(peerName); br != nil && br.State() == breakerOpen {
			peerName, peerURL = "", ""
		}
	}
	var lastErr error
	allDraining := true // every failed attempt was a shard answering 503
	for i, name := range view.ring.Replicas(hash, g.replicas) {
		sh := view.shards[name]
		var extra http.Header
		if peerURL != "" && name != peerName {
			extra = http.Header{service.PeerHeader: []string{peerURL}}
		}
		resp, ferr := g.forward(r, sh, http.MethodPost, "/v1/matrices", "", body, extra)
		if ferr != nil {
			if errors.Is(ferr, errBreakerOpen) {
				// Skipped without a dial: the breaker already knows this
				// shard is down. Not a shard error — nothing was attempted.
				lastErr = fmt.Errorf("shard %s: %w", name, ferr)
				allDraining = false
				continue
			}
			g.shardErrors.Add(1)
			lastErr = fmt.Errorf("shard %s: %w", name, ferr)
			allDraining = false
			if !dialFailure(ferr) {
				// The request may have been delivered (error after the
				// connection was up): replaying it elsewhere could compute
				// the spec twice and orphan a job on the owner. Let the
				// client retry against a known state instead.
				break
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			g.shardErrors.Add(1)
			lastErr = fmt.Errorf("shard %s: draining (HTTP 503)", name)
			continue
		}
		if i > 0 {
			g.failovers.Add(1)
			w.Header().Set(HeaderFailover, "true")
		}
		w.Header().Set(HeaderShard, name)
		w.Header().Set(HeaderRoutedBy, hash)
		g.relayJobStatus(w, resp, name)
		return
	}
	// A pool where every attempted shard answered 503 is draining, not
	// broken: relay the retryable-unavailable signal instead of a hard 502.
	code := http.StatusBadGateway
	if allDraining {
		code = http.StatusServiceUnavailable
	}
	writeError(w, code,
		fmt.Errorf("gateway: no replica accepted spec %.12s…: %v", hash, lastErr))
}

// admit applies edge admission when the gateway carries a tenant registry:
// the submission must authenticate and fit the tenant's rate budget before
// any shard is dialed. The reply mirrors the shard's own semantics — 401
// with a challenge for missing/unknown tokens, 403 for a disabled tenant,
// 429 with Retry-After when over rate — so clients cannot tell which tier
// rejected them. Returns true when the request may proceed.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request) bool {
	if g.tenants == nil {
		return true
	}
	_, err := g.tenants.Admit(tenant.BearerToken(r), time.Now())
	if err == nil {
		return true
	}
	var rl *tenant.RateLimitError
	switch {
	case errors.As(err, &rl):
		g.rateLimited.Add(1)
		secs := int(math.Ceil(rl.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, tenant.ErrDisabled):
		g.unauthorized.Add(1)
		writeError(w, http.StatusForbidden, err)
	default:
		g.unauthorized.Add(1)
		w.Header().Set("WWW-Authenticate", `Bearer realm="mrclone"`)
		writeError(w, http.StatusUnauthorized, err)
	}
	return false
}

// dialFailure reports whether an upstream error happened while connecting —
// before any bytes of the request could reach the shard — which is the only
// transport failure a submission may safely fail over on.
func dialFailure(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// relayJobStatus forwards a shard response that carries a JobStatus,
// namespacing the job ID; non-2xx responses pass through untouched.
func (g *Gateway) relayJobStatus(w http.ResponseWriter, resp *http.Response, shard string) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		passThrough(w, resp)
		return
	}
	var st service.JobStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("gateway: shard %s: undecodable job status: %w", shard, err))
		return
	}
	st.ID = shard + idSep + st.ID
	writeJSON(w, resp.StatusCode, st)
}

// passThrough relays an upstream response verbatim, preserving the headers
// clients act on: content type plus the backpressure (Retry-After) and
// authentication-challenge (WWW-Authenticate) signals a multi-tenant shard
// attaches to its rejections.
func passThrough(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", "WWW-Authenticate"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// routeJob resolves the shard a namespaced job ID lives on, writing the
// error response itself when the ID is malformed or names an unknown shard.
func (g *Gateway) routeJob(w http.ResponseWriter, id string) (Shard, string, bool) {
	shardName, local, ok := splitJobID(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("gateway: malformed job id %q (want <shard>%s<id>)", id, idSep))
		return Shard{}, "", false
	}
	sh, ok := g.currentView().shards[shardName]
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("gateway: job %q names unknown shard %q", id, shardName))
		return Shard{}, "", false
	}
	return sh, local, true
}

// unreachable reports a job route whose owning shard did not answer. Jobs
// live on exactly one shard, so there is no replica to fall back to — the
// client gets a clean 502 naming the shard instead of a hung request. A
// breaker short-circuit lands here too (502 without a dial), but is not
// counted as a shard error: nothing was attempted.
func (g *Gateway) unreachable(w http.ResponseWriter, sh Shard, err error) {
	if !errors.Is(err, errBreakerOpen) {
		g.shardErrors.Add(1)
	}
	writeError(w, http.StatusBadGateway,
		fmt.Errorf("gateway: shard %s unreachable: %v", sh.Name, err))
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	sh, local, ok := g.routeJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	resp, err := g.forward(r, sh, http.MethodGet, "/v1/matrices/"+local, "", nil, nil)
	if err != nil {
		g.unreachable(w, sh, err)
		return
	}
	w.Header().Set(HeaderShard, sh.Name)
	g.relayJobStatus(w, resp, sh.Name)
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	sh, local, ok := g.routeJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	resp, err := g.forward(r, sh, http.MethodDelete, "/v1/matrices/"+local, "", nil, nil)
	if err != nil {
		g.unreachable(w, sh, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set(HeaderShard, sh.Name)
	if resp.StatusCode != http.StatusOK {
		passThrough(w, resp)
		return
	}
	var body struct {
		Cancelled bool `json:"cancelled"`
		service.JobStatus
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("gateway: shard %s: undecodable cancel response: %w", sh.Name, err))
		return
	}
	body.ID = sh.Name + idSep + body.ID
	writeJSON(w, http.StatusOK, body)
}

// handleResult streams artifact bytes through untouched: the deterministic
// runner guarantees byte-identical artifacts per spec, and the gateway must
// not break that property, so no rewriting happens on this route.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	sh, local, ok := g.routeJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	resp, err := g.forward(r, sh, http.MethodGet, "/v1/matrices/"+local+"/result", r.URL.RawQuery, nil, nil)
	if err != nil {
		g.unreachable(w, sh, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set(HeaderShard, sh.Name)
	passThrough(w, resp)
}

// handleEvents relays the shard's SSE stream frame by frame, rewriting the
// job field of each event to the namespaced gateway ID.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	sh, local, ok := g.routeJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	resp, err := g.forward(r, sh, http.MethodGet, "/v1/matrices/"+local+"/events", "", nil, nil)
	if err != nil {
		g.unreachable(w, sh, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set(HeaderShard, sh.Name)
	if resp.StatusCode != http.StatusOK {
		passThrough(w, resp)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, isData := strings.CutPrefix(line, "data: "); isData {
			var e service.Event
			if json.Unmarshal([]byte(data), &e) == nil {
				e.Job = sh.Name + idSep + e.Job
				if b, merr := json.Marshal(e); merr == nil {
					line = "data: " + string(b)
				}
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return
		}
		if line == "" { // frame boundary
			flusher.Flush()
		}
	}
	flusher.Flush()
}
