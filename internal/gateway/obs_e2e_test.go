package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/obs/obstest"
	"mrclone/internal/service"
)

// logSink is a goroutine-safe buffer for structured log output.
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *logSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *logSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// logEntries decodes every JSON log line the sink captured.
func logEntries(t *testing.T, sink *logSink) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable JSON log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// newObsCluster builds a two-shard, one-gateway cluster where every tier
// logs JSON at debug level into its own sink.
func newObsCluster(t *testing.T) (c *testCluster, gwLog *logSink, shardLogs []*logSink) {
	t.Helper()
	c = &testCluster{}
	for i := 0; i < 2; i++ {
		sink := &logSink{}
		logger, err := obs.NewLogger(sink, "json", "debug")
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("s%d", i)
		svc := service.New(service.Config{
			Workers: 1, CellParallelism: 2, Logger: logger, ShardName: name,
		})
		ts := httptest.NewServer(svc.Handler())
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		c.shards = append(c.shards, svc)
		c.shardSrvs = append(c.shardSrvs, ts)
		c.pool = append(c.pool, Shard{Name: name, URL: u})
		shardLogs = append(shardLogs, sink)
	}
	gwLog = &logSink{}
	gwLogger, err := obs.NewLogger(gwLog, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	gw, err := New(Config{Shards: c.pool, Logger: gwLogger})
	if err != nil {
		t.Fatal(err)
	}
	c.gateways = append(c.gateways, gw)
	c.gwSrvs = append(c.gwSrvs, httptest.NewServer(gw.Handler()))
	t.Cleanup(func() {
		for _, ts := range c.gwSrvs {
			ts.Close()
		}
		for _, gw := range c.gateways {
			gw.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for _, svc := range c.shards {
			_ = svc.Close(ctx)
		}
		for _, ts := range c.shardSrvs {
			ts.Close()
		}
	})
	return c, gwLog, shardLogs
}

// TestObservabilityTracePropagation: one traced submission through the
// gateway leaves JSON log lines on both tiers sharing the client's trace
// ID, with the gateway line naming the serving shard.
func TestObservabilityTracePropagation(t *testing.T) {
	c, gwLog, shardLogs := newObsCluster(t)
	base := c.gwURL(0)
	canon, hash := canonHash(t, testSpec(23))
	owner := c.gateways[0].Ring().Lookup(hash)

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	const clientSpan = "b7ad6b7169203331"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/matrices", bytes.NewReader(canon))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+traceID+"-"+clientSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The gateway echoes the continued trace under its own span.
	tc, err := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if err != nil {
		t.Fatalf("gateway response traceparent: %v", err)
	}
	if tc.TraceID != traceID {
		t.Errorf("gateway response trace ID %s, want the inbound %s", tc.TraceID, traceID)
	}
	if tc.SpanID == clientSpan {
		t.Error("gateway span ID not refreshed for this hop")
	}
	waitDone(t, base, st.ID)

	var gwLine map[string]any
	for _, e := range logEntries(t, gwLog) {
		if e["msg"] == "http request" && e[obs.KeyRoute] == "POST /v1/matrices" {
			gwLine = e
		}
	}
	if gwLine == nil {
		t.Fatalf("no gateway request log line in\n%s", gwLog.String())
	}
	if gwLine[obs.KeyTraceID] != traceID {
		t.Errorf("gateway log trace_id %v, want %s", gwLine[obs.KeyTraceID], traceID)
	}
	if gwLine[obs.KeyShard] != owner {
		t.Errorf("gateway log shard %v, want serving shard %s", gwLine[obs.KeyShard], owner)
	}

	var ownerIdx int
	for i, sh := range c.pool {
		if sh.Name == owner {
			ownerIdx = i
		}
	}
	var shardLine map[string]any
	for _, e := range logEntries(t, shardLogs[ownerIdx]) {
		if e["msg"] == "http request" && e[obs.KeyRoute] == "POST /v1/matrices" {
			shardLine = e
		}
	}
	if shardLine == nil {
		t.Fatalf("no shard request log line in\n%s", shardLogs[ownerIdx].String())
	}
	// The headline property: one trace ID across both processes' logs.
	if shardLine[obs.KeyTraceID] != traceID {
		t.Errorf("shard log trace_id %v, want %s shared with the gateway", shardLine[obs.KeyTraceID], traceID)
	}
	if shardLine[obs.KeySpanID] == gwLine[obs.KeySpanID] {
		t.Error("shard and gateway spans are identical, want a fresh span per hop")
	}
	if shardLine[obs.KeyShard] != owner {
		t.Errorf("shard log shard %v, want %s", shardLine[obs.KeyShard], owner)
	}
}

// scrape fetches a /metrics endpoint and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	return string(b)
}

// histSeries extracts one histogram family's samples for a fixed route
// label, keyed by suffix|status|le, summing duplicates.
func histSeries(t *testing.T, body, family, route string) map[string]float64 {
	t.Helper()
	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("unparseable exposition: %v", err)
	}
	out := map[string]float64{}
	for _, f := range fams {
		if f.Name != family {
			continue
		}
		for _, s := range f.Samples {
			if s.Label("route") != route {
				continue
			}
			key := s.Suffix + "|" + s.Label("status") + "|" + s.Label("le")
			out[key] += s.Value
		}
	}
	return out
}

// TestObservabilityMetricsMerge: shard scrapes and the gateway aggregate
// are valid exposition, and the gateway's histogram series are the exact
// bucket-wise sum of the shards' — same bucket layout, summed counts.
func TestObservabilityMetricsMerge(t *testing.T) {
	c, _, _ := newObsCluster(t)
	base := c.gwURL(0)

	// Several distinct specs so that, with high probability, both shards
	// serve at least one submission (placement is content-hashed).
	const subs = 6
	for seed := int64(31); seed < 31+subs; seed++ {
		canon, _ := canonHash(t, testSpec(seed))
		_, st := postSpec(t, base, canon)
		waitDone(t, base, st.ID)
	}

	gwBody := scrape(t, base)
	obstest.MustValidate(t, gwBody)
	shardBodies := make([]string, len(c.shardSrvs))
	for i, ts := range c.shardSrvs {
		shardBodies[i] = scrape(t, ts.URL)
		obstest.MustValidate(t, shardBodies[i])
	}

	// The submission route's histogram is stable (no POSTs happen during
	// the scrapes), so the merged series must equal the per-shard sum for
	// every bucket, the _sum, and the _count.
	const family = "mrclone_http_request_seconds"
	const route = "POST /v1/matrices"
	merged := histSeries(t, gwBody, family, route)
	want := map[string]float64{}
	total := 0.0
	for _, body := range shardBodies {
		for k, v := range histSeries(t, body, family, route) {
			want[k] += v
			if strings.HasPrefix(k, "_count|") {
				total += v
			}
		}
	}
	if total != subs {
		t.Errorf("shards recorded %v submissions on %q, want %d", total, route, subs)
	}
	if len(merged) == 0 {
		t.Fatalf("gateway aggregate has no %s series for route %q:\n%s", family, route, gwBody)
	}
	if len(merged) != len(want) {
		t.Errorf("merged series has %d samples, shards sum to %d", len(merged), len(want))
	}
	for k, v := range want {
		if merged[k] != v {
			t.Errorf("merged %s{%s} = %v, want bucket-wise sum %v", family, k, merged[k], v)
		}
	}

	// The gateway's own edge histogram and runtime stats ride along, while
	// non-additive shard families stay out of the aggregate.
	for _, wantLine := range []string{
		"# TYPE mrclone_gateway_http_request_seconds histogram",
		"# TYPE mrclone_gateway_requests_total counter",
		"# TYPE mrclone_gateway_shard_up gauge",
		"# TYPE mrclone_flights_total counter",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(gwBody, wantLine) {
			t.Errorf("gateway aggregate missing %q", wantLine)
		}
	}
	for _, absent := range []string{"mrclone_uptime_seconds", "mrclone_cells_per_second", "mrclone_persistent"} {
		if strings.Contains(gwBody, absent+" ") {
			t.Errorf("gateway aggregate contains non-additive %q", absent)
		}
	}
}
