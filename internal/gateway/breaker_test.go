package gateway

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerLifecycle walks the full state machine on a fake clock:
// closed → open at the failure threshold → half-open after the cooldown
// (admitting exactly one probe) → closed on probe success; and half-open
// → open again on probe failure.
func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := newBreaker(3, time.Second, clock.now, func(from, to breakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})

	if b.State() != breakerClosed {
		t.Fatalf("initial state %v, want closed", b.State())
	}
	// Two failures stay under the threshold; a success resets the count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != breakerClosed {
		t.Fatalf("state %v after sub-threshold failures, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	// Third consecutive failure opens it.
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
	// Mid-cooldown failures refresh the timer: the prober holds it open.
	clock.advance(800 * time.Millisecond)
	b.Failure()
	clock.advance(800 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a request after a refreshed cooldown")
	}
	// Cooldown elapsed: exactly one probe gets through.
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused its probe")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state %v after probe admitted, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: reopen, then a later probe succeeds: closed.
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	clock.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second half-open probe")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a request")
	}

	want := []string{
		"closed>open",
		"open>half-open",
		"half-open>open",
		"open>half-open",
		"half-open>closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

// TestBreakerOpenShortCircuitsConcurrently proves the zero-dial property
// under contention: while open and inside the cooldown, every concurrent
// Allow returns false — no request would dial the shard. Run under -race.
func TestBreakerOpenShortCircuitsConcurrently(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(1, time.Hour, clock.now, nil)
	b.Failure() // threshold 1: open immediately

	const callers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := admitted.Load(); n != 0 {
		t.Fatalf("%d requests admitted through an open breaker, want 0", n)
	}
}

// TestBreakerHalfOpenAdmitsExactlyOne: once the cooldown elapses, a burst
// of concurrent requests yields exactly one probe; the rest short-circuit.
// Run under -race.
func TestBreakerHalfOpenAdmitsExactlyOne(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(1, time.Second, clock.now, nil)
	b.Failure()
	clock.advance(2 * time.Second)

	const callers = 64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := admitted.Load(); n != 1 {
		t.Fatalf("%d probes admitted half-open, want exactly 1", n)
	}
	// The probe settles with success; the floodgate reopens for everyone.
	b.Success()
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker refused requests after a successful probe")
	}
}
