package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mrclone/internal/service"
)

// ShardHealth is one shard's entry in the aggregated /healthz payload.
type ShardHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Up   bool   `json:"up"`
	// Error explains why the shard is down (transport or decode failure).
	Error string `json:"error,omitempty"`
	// Health is the shard's own /healthz payload when it answered.
	Health *service.Health `json:"health,omitempty"`
}

// PoolHealth is the gateway's /healthz payload: per-shard probes plus an
// overall verdict — "ok" (all shards up), "degraded" (some up), or "down".
type PoolHealth struct {
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Shards        []ShardHealth `json:"shards"`
}

// probeHealth fetches one shard's /healthz under the probe timeout.
func (g *Gateway) probeHealth(parent context.Context, sh Shard) ShardHealth {
	out := ShardHealth{Name: sh.Name, URL: sh.URL.String()}
	ctx, cancel := context.WithTimeout(parent, g.probeTimeout)
	defer cancel()
	u := *sh.URL
	u.Path = strings.TrimSuffix(u.Path, "/") + "/healthz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	resp, err := g.client.Do(req)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		return out
	}
	var h service.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		out.Error = "undecodable health payload: " + err.Error()
		return out
	}
	out.Up = true
	out.Health = &h
	return out
}

// handleHealthz probes every shard concurrently and reports the pool
// verdict: "ok" only when every shard answers and accepts work ("draining"
// shards are reachable but rejecting submissions, so they degrade the pool
// like a down shard does), "degraded" while at least one shard answers,
// "down" (HTTP 503) when none do.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := PoolHealth{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Shards:        make([]ShardHealth, len(g.order)),
	}
	var wg sync.WaitGroup
	for i, sh := range g.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out.Shards[i] = g.probeHealth(r.Context(), sh)
		}()
	}
	wg.Wait()
	up, accepting := 0, 0
	for _, sh := range out.Shards {
		if sh.Up {
			up++
			if sh.Health != nil && sh.Health.Status == "ok" {
				accepting++
			}
		}
	}
	code := http.StatusOK
	switch {
	case accepting == len(out.Shards):
		out.Status = "ok"
	case up > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// scrapeMetrics fetches and parses one shard's Prometheus-style /metrics
// into series → value, where a series key is the metric name plus its
// verbatim label set ("mrclone_tenant_queued{tenant=\"acme\"}"). Comment
// lines are skipped. Labeled series are kept whole: per-tenant counters are
// additive across shards exactly like the unlabeled ones, and keying by the
// full series string makes the pool sum land on the right tenant.
func (g *Gateway) scrapeMetrics(parent context.Context, sh Shard) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(parent, g.probeTimeout)
	defer cancel()
	u := *sh.URL
	u.Path = strings.TrimSuffix(u.Path, "/") + "/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	vals := make(map[string]float64)
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		vals[fields[0]] += v
	}
	return vals, sc.Err()
}

// nonAdditive lists shard series whose sum across the pool would mislead —
// rates and identity gauges, not counters or occupancy. They are dropped
// from the aggregate (per-shard values remain on each shard's own
// /metrics); everything else the shards export is additive by
// construction: lifetime counters or point-in-time quantities of work and
// bytes that genuinely add up pool-wide.
var nonAdditive = map[string]bool{
	"mrclone_uptime_seconds":   true, // summing uptimes hides single-shard restarts
	"mrclone_cells_per_second": true, // a mean rate; the sum overstates throughput
	"mrclone_persistent":       true, // an identity flag, not a quantity
}

// handleMetrics sums every additive mrclone_* series across the pool and
// appends the gateway's own counters plus a per-shard up gauge. A shard
// that fails its scrape contributes nothing to the sums and reports up 0.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sums := make(map[string]float64)
	up := make([]bool, len(g.order))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, sh := range g.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals, err := g.scrapeMetrics(r.Context(), sh)
			if err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			up[i] = true
			for series, v := range vals {
				name, _, _ := strings.Cut(series, "{")
				if !nonAdditive[name] {
					sums[series] += v
				}
			}
		}()
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	upCount := 0
	for _, ok := range up {
		if ok {
			upCount++
		}
	}
	fmt.Fprintf(w, "# Pool aggregate: %d/%d shards answered their scrape.\n", upCount, len(g.order))
	for _, name := range names {
		fmt.Fprintf(w, "%s %g\n", name, sums[name])
	}
	for _, row := range []struct {
		name  string
		help  string
		value float64
	}{
		{"mrclone_gateway_shards", "Configured pool size.", float64(len(g.order))},
		{"mrclone_gateway_shards_up", "Shards that answered the last scrape.", float64(upCount)},
		{"mrclone_gateway_requests_total", "Requests handled by this gateway.", float64(g.requests.Load())},
		{"mrclone_gateway_submissions_total", "Submissions routed by content hash.", float64(g.submissions.Load())},
		{"mrclone_gateway_failovers_total", "Submissions served by a non-owner replica.", float64(g.failovers.Load())},
		{"mrclone_gateway_shard_errors_total", "Upstream attempts that failed (transport or draining).", float64(g.shardErrors.Load())},
		{"mrclone_gateway_unauthorized_total", "Submissions rejected at the edge for missing or invalid credentials.", float64(g.unauthorized.Load())},
		{"mrclone_gateway_rate_limited_total", "Submissions rejected at the edge by a tenant's rate limit.", float64(g.rateLimited.Load())},
		{"mrclone_gateway_uptime_seconds", "Gateway uptime.", time.Since(g.start).Seconds()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n%s %g\n", row.name, row.help, row.name, row.value)
	}
	for i, sh := range g.order {
		v := 0
		if up[i] {
			v = 1
		}
		fmt.Fprintf(w, "mrclone_gateway_shard_up{shard=%q} %d\n", sh.Name, v)
	}
}
