package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mrclone/internal/obs"
	"mrclone/internal/service"
)

// ShardHealth is one shard's entry in the aggregated /healthz payload.
type ShardHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	Up   bool   `json:"up"`
	// Breaker is the shard's circuit-breaker state ("closed", "open",
	// "half-open") at probe time.
	Breaker string `json:"breaker,omitempty"`
	// Error explains why the shard is down (transport or decode failure).
	Error string `json:"error,omitempty"`
	// Health is the shard's own /healthz payload when it answered.
	Health *service.Health `json:"health,omitempty"`

	// reachable is true when the shard answered the probe at all — any HTTP
	// response, even one that is unhealthy or undecodable, proves the shard
	// is dialable, which is what the circuit breaker tracks.
	reachable bool
}

// PoolHealth is the gateway's /healthz payload: per-shard probes plus an
// overall verdict — "ok" (all shards up), "degraded" (some up), or "down".
type PoolHealth struct {
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Shards        []ShardHealth `json:"shards"`
}

// probeHealth fetches one shard's /healthz under the probe timeout (over the
// probe client, not the request client) and feeds the outcome to the shard's
// circuit breaker: any HTTP answer proves reachability and closes the
// breaker; a transport failure counts against it. Both the background probe
// loop and the aggregated /healthz route go through here, so either keeps
// breaker state fresh.
func (g *Gateway) probeHealth(parent context.Context, sh Shard) ShardHealth {
	out := g.fetchHealth(parent, sh)
	if br := g.breakerFor(sh.Name); br != nil {
		if out.reachable {
			br.Success()
		} else {
			br.Failure()
		}
		out.Breaker = br.State().String()
	}
	return out
}

// fetchHealth performs the raw /healthz fetch for probeHealth.
func (g *Gateway) fetchHealth(parent context.Context, sh Shard) ShardHealth {
	out := ShardHealth{Name: sh.Name, URL: sh.URL.String()}
	ctx, cancel := context.WithTimeout(parent, g.probeTimeout)
	defer cancel()
	u := *sh.URL
	u.Path = strings.TrimSuffix(u.Path, "/") + "/healthz"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	resp, err := g.probeClient.Do(req)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	defer resp.Body.Close()
	out.reachable = true
	if resp.StatusCode != http.StatusOK {
		out.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		return out
	}
	var h service.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		out.Error = "undecodable health payload: " + err.Error()
		return out
	}
	out.Up = true
	out.Health = &h
	return out
}

// handleHealthz probes every shard concurrently and reports the pool
// verdict: "ok" only when every shard answers and accepts work ("draining"
// shards are reachable but rejecting submissions, so they degrade the pool
// like a down shard does), "degraded" while at least one shard answers,
// "down" (HTTP 503) when none do.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	view := g.currentView()
	out := PoolHealth{
		UptimeSeconds: time.Since(g.start).Seconds(),
		Shards:        make([]ShardHealth, len(view.order)),
	}
	var wg sync.WaitGroup
	for i, sh := range view.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out.Shards[i] = g.probeHealth(r.Context(), sh)
		}()
	}
	wg.Wait()
	up, accepting := 0, 0
	for _, sh := range out.Shards {
		if sh.Up {
			up++
			if sh.Health != nil && sh.Health.Status == "ok" {
				accepting++
			}
		}
	}
	code := http.StatusOK
	switch {
	case accepting == len(out.Shards):
		out.Status = "ok"
	case up > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// scrapeMetrics fetches and parses one shard's Prometheus-style /metrics
// into metric families (obs.ParseExposition): HELP/TYPE metadata plus every
// sample with its label set. Keeping families whole — instead of flattening
// to series strings — is what lets the aggregate merge histograms
// bucket-wise and re-emit valid exposition metadata for the pool.
func (g *Gateway) scrapeMetrics(parent context.Context, sh Shard) ([]*obs.Family, error) {
	ctx, cancel := context.WithTimeout(parent, g.probeTimeout)
	defer cancel()
	u := *sh.URL
	u.Path = strings.TrimSuffix(u.Path, "/") + "/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.probeClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return obs.ParseExposition(string(body))
}

// nonAdditive lists shard series whose sum across the pool would mislead —
// rates and identity gauges, not counters or occupancy. They are dropped
// from the aggregate (per-shard values remain on each shard's own
// /metrics); everything else the shards export is additive by
// construction: lifetime counters or point-in-time quantities of work and
// bytes that genuinely add up pool-wide.
var nonAdditive = map[string]bool{
	"mrclone_uptime_seconds":   true, // summing uptimes hides single-shard restarts
	"mrclone_cells_per_second": true, // a mean rate; the sum overstates throughput
	"mrclone_persistent":       true, // an identity flag, not a quantity
}

// additiveFamily reports whether a shard family belongs in the pool
// aggregate. Besides the explicit nonAdditive set, the shards' go_* runtime
// stats are process-local (summed heap sizes or goroutine counts describe
// no real process) and are dropped; the gateway appends its own.
func additiveFamily(name string) bool {
	return !nonAdditive[name] && !strings.HasPrefix(name, "go_")
}

// handleMetrics merges every additive mrclone_* family across the pool —
// counters and gauges sum per label set, histograms sum bucket-wise (all
// shards share the obs.LatencyBuckets layout, so equal `le` buckets add
// exactly) — and appends the gateway's own counters, its edge request
// histogram, a per-shard up gauge, and its runtime stats. A shard that
// fails its scrape contributes nothing to the sums and reports up 0.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	view := g.currentView()
	merge := obs.NewMerge()
	up := make([]bool, len(view.order))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, sh := range view.order {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fams, err := g.scrapeMetrics(r.Context(), sh)
			if err != nil {
				return
			}
			keep := make([]*obs.Family, 0, len(fams))
			for _, f := range fams {
				if additiveFamily(f.Name) {
					keep = append(keep, f)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			up[i] = true
			merge.Add(keep)
		}()
	}
	wg.Wait()

	upCount := 0
	for _, ok := range up {
		if ok {
			upCount++
		}
	}
	w.Header().Set("Content-Type", obs.ExpoContentType)
	e := obs.NewExpoWriter(w)
	e.Comment(fmt.Sprintf("Pool aggregate: %d/%d shards answered their scrape.", upCount, len(view.order)))
	merge.WriteTo(e)
	for _, row := range []struct {
		name  string
		help  string
		typ   string
		value float64
	}{
		{"mrclone_gateway_shards", "Current pool size.", "gauge", float64(len(view.order))},
		{"mrclone_gateway_shards_up", "Shards that answered the last scrape.", "gauge", float64(upCount)},
		{"mrclone_gateway_requests_total", "Requests handled by this gateway.", "counter", float64(g.requests.Load())},
		{"mrclone_gateway_submissions_total", "Submissions routed by content hash.", "counter", float64(g.submissions.Load())},
		{"mrclone_gateway_failovers_total", "Submissions served by a non-owner replica.", "counter", float64(g.failovers.Load())},
		{"mrclone_gateway_shard_errors_total", "Upstream attempts that failed (transport or draining).", "counter", float64(g.shardErrors.Load())},
		{"mrclone_gateway_breaker_skips_total", "Upstream attempts short-circuited by an open circuit breaker (no dial).", "counter", float64(g.breakerSkips.Load())},
		{"mrclone_gateway_unauthorized_total", "Submissions rejected at the edge for missing or invalid credentials.", "counter", float64(g.unauthorized.Load())},
		{"mrclone_gateway_rate_limited_total", "Submissions rejected at the edge by a tenant's rate limit.", "counter", float64(g.rateLimited.Load())},
		{"mrclone_gateway_uptime_seconds", "Gateway uptime.", "gauge", time.Since(g.start).Seconds()},
	} {
		e.Header(row.name, row.help, row.typ)
		e.Sample(row.name, nil, row.value)
	}
	e.HistogramSeries("mrclone_gateway_http_request_seconds",
		"Gateway HTTP request duration by route and status (includes the shard hop).",
		g.obsv.httpHist.Snapshots())
	e.Header("mrclone_gateway_shard_up", "Whether the shard answered the last scrape (1 = up).", "gauge")
	for i, sh := range view.order {
		v := 0.0
		if up[i] {
			v = 1
		}
		e.Sample("mrclone_gateway_shard_up", []obs.Label{{Name: "shard", Value: sh.Name}}, v)
	}
	e.Header("mrclone_gateway_breaker_state",
		"Circuit breaker position per shard (0 = closed, 1 = open, 2 = half-open).", "gauge")
	for _, sh := range view.order {
		if br := g.breakerFor(sh.Name); br != nil {
			e.Sample("mrclone_gateway_breaker_state",
				[]obs.Label{{Name: "shard", Value: sh.Name}}, float64(br.State()))
		}
	}
	obs.WriteRuntimeMetrics(e)
}
