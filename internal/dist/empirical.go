package dist

import (
	"fmt"
	"math"
	"sort"

	"mrclone/internal/rng"
)

// Empirical is the empirical distribution of an observed sample: draws are
// uniform resamples of the observations, and the moments are the sample
// moments. It turns a recorded trace column (real task durations, say) into
// a Distribution the simulator and schedulers can consume unchanged.
type Empirical struct {
	values []float64
	mean   float64
	stddev float64
}

var _ Distribution = (*Empirical)(nil)

// NewEmpirical fits an empirical distribution to the observed samples. It
// requires at least one sample; every sample must be finite and
// non-negative. The input slice is copied.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: empirical fit of zero samples", ErrBadParam)
	}
	e := &Empirical{values: make([]float64, len(samples))}
	var sum float64
	for i, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("%w: empirical sample %d is %v", ErrBadParam, i, v)
		}
		e.values[i] = v
		sum += v
	}
	sort.Float64s(e.values) // canonical order: fits of permuted samples are equal
	n := float64(len(e.values))
	e.mean = sum / n
	var ss float64
	for _, v := range e.values {
		d := v - e.mean
		ss += d * d
	}
	e.stddev = math.Sqrt(ss / n)
	return e, nil
}

// N returns the number of fitted samples.
func (e *Empirical) N() int { return len(e.values) }

// Quantile returns the q-th empirical quantile for q in [0, 1]. A NaN
// argument returns NaN (converting NaN to an index would panic).
func (e *Empirical) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return e.values[0]
	}
	if q >= 1 {
		return e.values[len(e.values)-1]
	}
	return e.values[int(q*float64(len(e.values)))]
}

// Sample implements Distribution by resampling the observations uniformly.
func (e *Empirical) Sample(src *rng.Source) float64 {
	return e.values[src.Intn(len(e.values))]
}

// SampleN implements BatchSampler.
func (e *Empirical) SampleN(dst []float64, src *rng.Source) {
	for i := range dst {
		dst[i] = e.values[src.Intn(len(e.values))]
	}
}

// Mean implements Distribution with the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// StdDev implements Distribution with the (population) sample deviation.
func (e *Empirical) StdDev() float64 { return e.stddev }

// Mixture is a finite weighted mixture of component distributions, for
// workloads with distinct task classes (short interactive maps mixed with
// heavy batch reduces, bimodal production traces).
type Mixture struct {
	components []Distribution
	cum        []float64 // normalized cumulative weights; last entry is 1
	weights    []float64 // normalized weights
}

var _ Distribution = (*Mixture)(nil)

// NewMixture builds a mixture of the given components with proportional
// weights. Components and weights must be equal-length and non-empty, every
// component non-nil, every weight finite and non-negative with a positive
// sum. Weights are normalized internally.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("%w: empty mixture", ErrBadParam)
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("%w: mixture of %d components with %d weights",
			ErrBadParam, len(components), len(weights))
	}
	var total float64
	for i, w := range weights {
		if components[i] == nil {
			return nil, fmt.Errorf("%w: mixture component %d is nil", ErrBadParam, i)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("%w: mixture weight %d is %v", ErrBadParam, i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: mixture weights sum to %v", ErrBadParam, total)
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		cum:        make([]float64, len(weights)),
		weights:    make([]float64, len(weights)),
	}
	cum := 0.0
	lastPos := 0
	for i, w := range weights {
		m.weights[i] = w / total
		cum += m.weights[i]
		m.cum[i] = cum
		if w > 0 {
			lastPos = i
		}
	}
	// Absorb round-off so selection never falls off the end — pinned at the
	// last positive-weight component, not the last slot, so a trailing
	// zero-weight component keeps an empty selection interval (its moments
	// are excluded from Mean/StdDev on the premise it is never drawn).
	for i := lastPos; i < len(m.cum); i++ {
		m.cum[i] = 1
	}
	return m, nil
}

// Sample implements Distribution: select a component by weight, then draw
// from it. Both decisions consume the same stream, keeping runs reproducible.
func (m *Mixture) Sample(src *rng.Source) float64 {
	u := src.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.components[i].Sample(src)
		}
	}
	return m.components[len(m.components)-1].Sample(src)
}

// Mean implements Distribution: the weight-averaged component means.
// Zero-weight components are skipped — they can never be drawn, so an
// infinite moment there must not poison the sum (0 * Inf is NaN).
func (m *Mixture) Mean() float64 {
	var mean float64
	for i, c := range m.components {
		if m.weights[i] == 0 {
			continue
		}
		mean += m.weights[i] * c.Mean()
	}
	return mean
}

// StdDev implements Distribution via the law of total variance:
// Var = sum_i w_i (sigma_i^2 + mu_i^2) - mu^2. Any drawable component with
// an infinite mean or deviation makes the mixture sigma +Inf (never NaN,
// which the naive Inf - Inf subtraction would produce).
func (m *Mixture) StdDev() float64 {
	var second float64
	for i, c := range m.components {
		if m.weights[i] == 0 {
			continue
		}
		mu, sd := c.Mean(), c.StdDev()
		if math.IsInf(mu, 1) || math.IsInf(sd, 1) {
			return math.Inf(1)
		}
		second += m.weights[i] * (sd*sd + mu*mu)
	}
	mean := m.Mean()
	v := second - mean*mean
	if v <= 0 {
		return 0 // round-off on near-degenerate mixtures
	}
	return math.Sqrt(v)
}
