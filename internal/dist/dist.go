// Package dist provides the statistical workload distributions the paper's
// schedulers and trace generator are built on: the heavy-tailed task-duration
// models of Section III (Pareto, bounded Pareto, lognormal) plus light-tailed
// and data-driven families (exponential, Weibull, empirical, mixtures) for
// scenario diversity beyond the paper's evaluation.
//
// Every distribution exposes its first two moments analytically — the
// scheduler information model of the paper is exactly (E, sigma) per phase —
// and samples from a deterministic rng.Source stream — by inverse-CDF
// transformation where the quantile function has a closed form — so equal
// seeds give equal traces regardless of sampling order elsewhere. Heavy-tailed families report +Inf moments where the analytic
// moment diverges (Pareto with alpha <= 1 has no mean, alpha <= 2 no
// variance); consumers such as the analysis package treat an infinite sigma
// as a vacuous concentration bound.
//
// Constructors validate their parameters and return wrapped ErrBadParam
// errors; composite literals (used by the trace generator for serialized
// rows) bypass validation, mirroring the job.Spec convention.
package dist

import (
	"errors"

	"mrclone/internal/rng"
)

// Distribution is a non-negative workload distribution with analytically
// known first and second moments.
//
// Sample draws one variate from the given deterministic stream. Mean and
// StdDev are the analytic moments E[X] and sqrt(Var[X]); they return +Inf
// when the moment diverges (heavy tails), never NaN.
type Distribution interface {
	Sample(src *rng.Source) float64
	Mean() float64
	StdDev() float64
}

// ErrBadParam is wrapped by every constructor error in this package.
var ErrBadParam = errors.New("dist: invalid parameter")

// BatchSampler is implemented by distributions that can draw many variates
// in one call. SampleN must fill dst with exactly the values len(dst)
// successive Sample calls on the same stream would produce — bit-identical,
// consuming the stream identically — so callers may batch freely without
// perturbing seeded runs. The cluster engine draws one batch per launch
// call, which keeps the per-copy cost at the transcendental floor instead
// of an interface dispatch per draw.
type BatchSampler interface {
	SampleN(dst []float64, src *rng.Source)
}

// SampleN fills dst with successive draws from d, using the batched path
// when d implements BatchSampler and falling back to per-draw Sample calls
// otherwise. Both paths consume the stream identically.
func SampleN(d Distribution, dst []float64, src *rng.Source) {
	if b, ok := d.(BatchSampler); ok {
		b.SampleN(dst, src)
		return
	}
	for i := range dst {
		dst[i] = d.Sample(src)
	}
}
