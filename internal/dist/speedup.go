package dist

import (
	"fmt"
	"math"
)

// Speedup is a concave cloning-speedup model: At(k) is the factor by which
// running k parallel copies of one task divides its expected duration,
// E[X] / E[min of k copies]. SCA's convex program optimizes a separable
// objective over such a model; concavity (diminishing returns per copy) is
// what makes greedy marginal allocation exact.
type Speedup interface {
	// At returns the expected speedup of k copies. At(1) = 1; At is
	// non-decreasing and concave for k >= 1.
	At(k float64) float64
}

// ParetoSpeedup is the closed-form speedup under Pareto task durations with
// tail index Alpha: the minimum of k i.i.d. Pareto(xm, alpha) variates is
// Pareto(xm, k*alpha), so
//
//	s(k) = E[X] / E[min_k] = (k*Alpha - 1) / ((Alpha - 1) * k),
//
// which increases from s(1) = 1 toward the ceiling Alpha/(Alpha-1). Heavier
// tails (smaller Alpha) make cloning more profitable — the paper's central
// observation.
type ParetoSpeedup struct {
	Alpha float64
}

var _ Speedup = ParetoSpeedup{}

// NewParetoSpeedup returns the Pareto cloning-speedup model. alpha must
// exceed 1: at alpha <= 1 the Pareto mean diverges and the expected-speedup
// ratio is undefined.
func NewParetoSpeedup(alpha float64) (Speedup, error) {
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 1 {
		return nil, fmt.Errorf("%w: pareto speedup alpha %v must exceed 1", ErrBadParam, alpha)
	}
	return ParetoSpeedup{Alpha: alpha}, nil
}

// At implements Speedup. Arguments below one copy clamp to k = 1.
func (p ParetoSpeedup) At(k float64) float64 {
	if k <= 1 {
		return 1
	}
	return (k*p.Alpha - 1) / ((p.Alpha - 1) * k)
}
