package dist

import (
	"errors"
	"math"
	"testing"

	"mrclone/internal/rng"
)

// sampleMoments draws n variates and returns the empirical mean and
// (population) standard deviation.
func sampleMoments(t *testing.T, d Distribution, seed int64, n int) (mean, sd float64) {
	t.Helper()
	src := rng.New(seed)
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = d.Sample(src)
		sum += xs[i]
	}
	mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		dx := x - mean
		ss += dx * dx
	}
	return mean, math.Sqrt(ss / float64(n))
}

// TestAnalyticMomentsMatchEmpirical: for every finite-moment family, a large
// seeded sample must land within a few percent of the analytic moments.
func TestAnalyticMomentsMatchEmpirical(t *testing.T) {
	mk := func(d Distribution, err error) Distribution {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	empirical, err := NewEmpirical([]float64{1, 2, 2, 3, 5, 8, 13, 21})
	if err != nil {
		t.Fatal(err)
	}
	mixture, err := NewMixture(
		[]Distribution{mk(NewDeterministic(5)), mk(NewUniform(10, 20))},
		[]float64{1, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    Distribution
		tol  float64 // relative tolerance on both moments
	}{
		{"deterministic", mk(NewDeterministic(7)), 1e-12},
		{"uniform", mk(NewUniform(5, 15)), 0.02},
		{"pareto-light", mk(NewPareto(5, 4)), 0.05},
		{"bounded-pareto", mk(NewBoundedPareto(1, 100, 1.5)), 0.05},
		{"bounded-pareto-sub1", mk(NewBoundedPareto(1, 500, 0.5)), 0.05},
		{"lognormal", Lognormal{MuLog: 2, SigmaLog: 0.5}, 0.03},
		{"lognormal-moments", mk(LognormalFromMoments(100, 50)), 0.03},
		{"exponential", mk(NewExponential(0.25)), 0.02},
		{"weibull-heavy", mk(NewWeibull(10, 0.8)), 0.03},
		{"weibull-peaked", mk(NewWeibull(10, 3)), 0.02},
		{"scaled", mk(NewScaled(mk(NewUniform(1, 3)), 10)), 0.02},
		{"empirical", empirical, 0.03},
		{"mixture", mixture, 0.03},
	}
	const n = 200000
	for i, tc := range cases {
		mean, sd := sampleMoments(t, tc.d, int64(100+i), n)
		wantMean, wantSD := tc.d.Mean(), tc.d.StdDev()
		if math.IsInf(wantMean, 0) || math.IsInf(wantSD, 0) {
			t.Fatalf("%s: analytic moments must be finite here (mean=%v sd=%v)",
				tc.name, wantMean, wantSD)
		}
		if relErr(mean, wantMean) > tc.tol {
			t.Errorf("%s: empirical mean %v vs analytic %v", tc.name, mean, wantMean)
		}
		if relErr(sd, wantSD) > 3*tc.tol { // second moment converges slower
			t.Errorf("%s: empirical sd %v vs analytic %v", tc.name, sd, wantSD)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestHeavyTailInfiniteMoments: the Pareto moments must diverge exactly where
// theory says (mean at alpha <= 1, variance at alpha <= 2), never NaN.
func TestHeavyTailInfiniteMoments(t *testing.T) {
	cases := []struct {
		alpha          float64
		infMean, infSD bool
	}{
		{0.8, true, true},
		{1.0, true, true},
		{1.5, false, true},
		{2.0, false, true},
		{2.5, false, false},
	}
	for _, tc := range cases {
		p, err := NewPareto(5, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got := math.IsInf(p.Mean(), 1); got != tc.infMean {
			t.Errorf("alpha=%v: mean inf=%v, want %v", tc.alpha, got, tc.infMean)
		}
		if got := math.IsInf(p.StdDev(), 1); got != tc.infSD {
			t.Errorf("alpha=%v: sd inf=%v, want %v", tc.alpha, got, tc.infSD)
		}
		if math.IsNaN(p.Mean()) || math.IsNaN(p.StdDev()) {
			t.Errorf("alpha=%v: NaN moment", tc.alpha)
		}
	}
}

// TestParetoFiniteMeanFormula pins the closed forms the speedup model and
// engine tests rely on: alpha=2, xm=10 has mean 20.
func TestParetoFiniteMeanFormula(t *testing.T) {
	p, err := NewPareto(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Mean(); math.Abs(got-20) > 1e-12 {
		t.Fatalf("Pareto(10,2) mean = %v, want 20", got)
	}
	p3, err := NewPareto(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p3.StdDev(); math.Abs(got-3*math.Sqrt(3)) > 1e-12 {
		t.Fatalf("Pareto(6,3) sd = %v, want 3*sqrt(3)", got)
	}
}

// TestSupportBounds: every draw must stay inside the distribution's support.
func TestSupportBounds(t *testing.T) {
	src := rng.New(11)
	bp, err := NewBoundedPareto(2, 50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPareto(5, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniform(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if x := bp.Sample(src); x < 2 || x > 50 {
			t.Fatalf("bounded pareto draw %v outside [2, 50]", x)
		}
		if x := p.Sample(src); x < 5 {
			t.Fatalf("pareto draw %v below minimum 5", x)
		}
		if x := u.Sample(src); x < 3 || x >= 9 {
			t.Fatalf("uniform draw %v outside [3, 9)", x)
		}
	}
}

// TestBoundedParetoSpansSupport: the truncated sampler must actually reach
// both edges of its support, not just stay inside it.
func TestBoundedParetoSpansSupport(t *testing.T) {
	bp, err := NewBoundedPareto(1, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 100000; i++ {
		x := bp.Sample(src)
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo > 1.01 || hi < 9 {
		t.Fatalf("draws span [%v, %v], want nearly [1, 10]", lo, hi)
	}
}

// TestBoundedParetoMomentContinuity: the moment formula must be continuous
// across its alpha=k singularities (log branch vs power branch).
func TestBoundedParetoMomentContinuity(t *testing.T) {
	for _, k := range []float64{1, 2} {
		at := func(alpha float64) float64 {
			return BoundedPareto{Lo: 1, Hi: 100, Alpha: alpha}.moment(k)
		}
		exact, below, above := at(k), at(k-1e-7), at(k+1e-7)
		if relErr(below, exact) > 1e-4 || relErr(above, exact) > 1e-4 {
			t.Errorf("moment %v discontinuous at alpha=%v: %v / %v / %v",
				k, k, below, exact, above)
		}
	}
}

// TestDeterminism: equal seeds must give identical streams, distinct seeds
// distinct streams.
func TestDeterminism(t *testing.T) {
	ln, err := LognormalFromMoments(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed int64) []float64 {
		src := rng.New(seed)
		out := make([]float64, 50)
		for i := range out {
			out[i] = ln.Sample(src)
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("distinct seeds produced identical streams")
	}
}

// TestConstructorErrorPaths: every invalid parameter must be rejected with an
// error wrapping ErrBadParam.
func TestConstructorErrorPaths(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	ok, err := NewDeterministic(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"det-negative", errOf(NewDeterministic(-1))},
		{"det-nan", errOf(NewDeterministic(nan))},
		{"det-inf", errOf(NewDeterministic(inf))},
		{"uniform-lo>=hi", errOf(NewUniform(5, 5))},
		{"uniform-inverted", errOf(NewUniform(9, 3))},
		{"uniform-negative", errOf(NewUniform(-1, 3))},
		{"pareto-zero-xm", errOf(NewPareto(0, 2))},
		{"pareto-negative-xm", errOf(NewPareto(-5, 2))},
		{"pareto-zero-alpha", errOf(NewPareto(5, 0))},
		{"pareto-negative-alpha", errOf(NewPareto(5, -1))},
		{"pareto-nan-alpha", errOf(NewPareto(5, nan))},
		{"bp-zero-lo", errOf(NewBoundedPareto(0, 10, 1))},
		{"bp-lo>=hi", errOf(NewBoundedPareto(10, 10, 1))},
		{"bp-alpha<=0", errOf(NewBoundedPareto(1, 10, 0))},
		{"lognormal-nan-mu", errOf(NewLognormal(nan, 1))},
		{"lognormal-negative-sigma", errOf(NewLognormal(0, -1))},
		{"lognormal-moments-zero-mean", errOf(LognormalFromMoments(0, 1))},
		{"lognormal-moments-negative-sd", errOf(LognormalFromMoments(1, -1))},
		{"exponential-zero-rate", errOf(NewExponential(0))},
		{"exponential-negative-rate", errOf(NewExponential(-2))},
		{"weibull-zero-scale", errOf(NewWeibull(0, 1))},
		{"weibull-zero-shape", errOf(NewWeibull(1, 0))},
		{"scaled-nil", errOf(NewScaled(nil, 2))},
		{"scaled-zero", errOf(NewScaled(ok, 0))},
		{"scaled-negative", errOf(NewScaled(ok, -3))},
		{"scaled-nan", errOf(NewScaled(ok, nan))},
		{"empirical-empty", errOfE(NewEmpirical(nil))},
		{"empirical-negative", errOfE(NewEmpirical([]float64{1, -2}))},
		{"empirical-nan", errOfE(NewEmpirical([]float64{nan}))},
		{"mixture-empty", errOfM(NewMixture(nil, nil))},
		{"mixture-length-mismatch", errOfM(NewMixture([]Distribution{ok}, []float64{1, 2}))},
		{"mixture-nil-component", errOfM(NewMixture([]Distribution{nil}, []float64{1}))},
		{"mixture-negative-weight", errOfM(NewMixture([]Distribution{ok}, []float64{-1}))},
		{"mixture-zero-weights", errOfM(NewMixture([]Distribution{ok}, []float64{0}))},
		{"speedup-alpha<=1", errOfS(NewParetoSpeedup(1))},
		{"speedup-nan", errOfS(NewParetoSpeedup(nan))},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !errors.Is(tc.err, ErrBadParam) {
			t.Errorf("%s: error %v does not wrap ErrBadParam", tc.name, tc.err)
		}
	}
}

func errOf(_ Distribution, err error) error { return err }
func errOfE(_ *Empirical, err error) error  { return err }
func errOfM(_ *Mixture, err error) error    { return err }
func errOfS(_ Speedup, err error) error     { return err }

// TestValidZeroCases: boundary parameters that must be accepted.
func TestValidZeroCases(t *testing.T) {
	if _, err := NewDeterministic(0); err != nil {
		t.Errorf("deterministic 0 rejected: %v", err)
	}
	if _, err := NewUniform(0, 1); err != nil {
		t.Errorf("uniform lo=0 rejected: %v", err)
	}
	d, err := LognormalFromMoments(10, 0)
	if err != nil {
		t.Fatalf("lognormal sd=0 rejected: %v", err)
	}
	if got := d.Sample(rng.New(1)); math.Abs(got-10) > 1e-9 {
		t.Errorf("degenerate lognormal draw %v, want 10", got)
	}
}

// TestEmpiricalQuantileAndResampling: draws come only from the fitted values
// and quantiles follow sorted order.
func TestEmpiricalQuantileAndResampling(t *testing.T) {
	obs := []float64{9, 1, 4, 4, 25}
	e, err := NewEmpirical(obs)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != len(obs) {
		t.Fatalf("N = %d, want %d", e.N(), len(obs))
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 25 {
		t.Fatalf("extreme quantiles %v, %v", e.Quantile(0), e.Quantile(1))
	}
	if q := e.Quantile(0.5); q != 4 {
		t.Fatalf("median %v, want 4", q)
	}
	if q := e.Quantile(math.NaN()); !math.IsNaN(q) {
		t.Fatalf("NaN quantile returned %v, want NaN", q)
	}
	allowed := map[float64]bool{1: true, 4: true, 9: true, 25: true}
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		if x := e.Sample(src); !allowed[x] {
			t.Fatalf("draw %v not among fitted values", x)
		}
	}
}

// TestMixtureComposition: the mixture must actually draw from all components
// in proportion to its weights.
func TestMixtureComposition(t *testing.T) {
	lo, err := NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewUniform(100, 101)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixture([]Distribution{lo, hi}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	const n = 100000
	highDraws := 0
	for i := 0; i < n; i++ {
		if m.Sample(src) >= 100 {
			highDraws++
		}
	}
	if frac := float64(highDraws) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("high-component fraction %v, want 0.25", frac)
	}
	// Law of total variance on a hand example: means 0.5 and 100.5,
	// mixture mean 25.5.
	if got := m.Mean(); math.Abs(got-25.5) > 1e-12 {
		t.Fatalf("mixture mean %v, want 25.5", got)
	}
	if got, want := m.StdDev(), math.Sqrt(0.75*(1.0/12+0.25)+0.25*(1.0/12+100.5*100.5)-25.5*25.5); relErr(got, want) > 1e-12 {
		t.Fatalf("mixture sd %v, want %v", got, want)
	}
	// An infinite-variance component makes the mixture sigma infinite.
	p, err := NewPareto(1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := NewMixture([]Distribution{lo, p}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(heavy.StdDev(), 1) {
		t.Fatalf("heavy mixture sd %v, want +Inf", heavy.StdDev())
	}
	// An infinite-MEAN component must give +Inf moments, never NaN
	// (naive law-of-total-variance arithmetic yields Inf - Inf).
	noMean, err := NewPareto(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	heavier, err := NewMixture([]Distribution{lo, noMean}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(heavier.Mean(), 1) || !math.IsInf(heavier.StdDev(), 1) {
		t.Fatalf("infinite-mean mixture moments (%v, %v), want both +Inf",
			heavier.Mean(), heavier.StdDev())
	}
	// A zero-weight component can never be drawn: its infinite moments must
	// not poison the mixture (0 * Inf is NaN).
	zeroed, err := NewMixture([]Distribution{lo, noMean}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := zeroed.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("zero-weight mixture mean %v, want 0.5", got)
	}
	if got, want := zeroed.StdDev(), 1/math.Sqrt(12); relErr(got, want) > 1e-12 {
		t.Fatalf("zero-weight mixture sd %v, want %v", got, want)
	}
	// A trailing zero-weight component must have an EMPTY selection interval:
	// cum must reach exactly 1 at the last positive-weight component, so even
	// a draw of u = 1 - 1ulp cannot select the excluded component.
	if zeroed.cum[0] != 1 || zeroed.cum[1] != 1 {
		t.Fatalf("trailing zero-weight cum = %v, want [1 1]", zeroed.cum)
	}
	src2 := rng.New(6)
	for i := 0; i < 10000; i++ {
		if x := zeroed.Sample(src2); x >= 1 {
			t.Fatalf("zero-weight component drawn: %v", x)
		}
	}
}
