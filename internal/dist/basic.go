package dist

import (
	"fmt"
	"math"

	"mrclone/internal/rng"
)

// Deterministic is the point mass at Value: every task takes exactly the same
// time. It is the zero-variance limit the paper's Remark 2 analyzes.
type Deterministic struct {
	Value float64
}

var _ Distribution = Deterministic{}

// NewDeterministic returns the point mass at v. v must be finite and
// non-negative.
func NewDeterministic(v float64) (Distribution, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return nil, fmt.Errorf("%w: deterministic value %v", ErrBadParam, v)
	}
	return Deterministic{Value: v}, nil
}

// Sample implements Distribution.
func (d Deterministic) Sample(*rng.Source) float64 { return d.Value }

// SampleN implements BatchSampler.
func (d Deterministic) SampleN(dst []float64, _ *rng.Source) {
	for i := range dst {
		dst[i] = d.Value
	}
}

// Mean implements Distribution.
func (d Deterministic) Mean() float64 { return d.Value }

// StdDev implements Distribution.
func (d Deterministic) StdDev() float64 { return 0 }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Distribution = Uniform{}

// NewUniform returns the uniform distribution on [lo, hi). It requires
// 0 <= lo < hi, both finite.
func NewUniform(lo, hi float64) (Distribution, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("%w: uniform bounds [%v, %v)", ErrBadParam, lo, hi)
	}
	if lo < 0 || hi <= lo {
		return nil, fmt.Errorf("%w: uniform bounds [%v, %v)", ErrBadParam, lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample implements Distribution.
func (u Uniform) Sample(src *rng.Source) float64 {
	return u.Lo + (u.Hi-u.Lo)*src.Float64()
}

// SampleN implements BatchSampler.
func (u Uniform) SampleN(dst []float64, src *rng.Source) {
	lo, span := u.Lo, u.Hi-u.Lo
	for i := range dst {
		dst[i] = lo + span*src.Float64()
	}
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// StdDev implements Distribution.
func (u Uniform) StdDev() float64 { return (u.Hi - u.Lo) / math.Sqrt(12) }

// Exponential is the exponential distribution with the given rate: the
// memoryless light-tailed baseline (mean and standard deviation both 1/Rate).
type Exponential struct {
	Rate float64
}

var _ Distribution = Exponential{}

// NewExponential returns an exponential distribution with rate > 0.
func NewExponential(rate float64) (Distribution, error) {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
		return nil, fmt.Errorf("%w: exponential rate %v", ErrBadParam, rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample implements Distribution by inverting the CDF: -ln(1-U)/rate.
func (e Exponential) Sample(src *rng.Source) float64 {
	return -math.Log1p(-src.Float64()) / e.Rate
}

// SampleN implements BatchSampler.
func (e Exponential) SampleN(dst []float64, src *rng.Source) {
	for i := range dst {
		dst[i] = -math.Log1p(-src.Float64()) / e.Rate
	}
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// StdDev implements Distribution.
func (e Exponential) StdDev() float64 { return 1 / e.Rate }

// Weibull is the Weibull distribution with scale lambda and shape k. Shape
// below 1 gives a heavier-than-exponential tail (but all moments finite, in
// contrast to Pareto); shape above 1 concentrates around the scale.
type Weibull struct {
	Scale, Shape float64
}

var _ Distribution = Weibull{}

// NewWeibull returns a Weibull distribution with scale > 0 and shape > 0.
func NewWeibull(scale, shape float64) (Distribution, error) {
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return nil, fmt.Errorf("%w: weibull scale %v", ErrBadParam, scale)
	}
	if math.IsNaN(shape) || math.IsInf(shape, 0) || shape <= 0 {
		return nil, fmt.Errorf("%w: weibull shape %v", ErrBadParam, shape)
	}
	return Weibull{Scale: scale, Shape: shape}, nil
}

// Sample implements Distribution by inverting the CDF:
// scale * (-ln(1-U))^(1/shape).
func (w Weibull) Sample(src *rng.Source) float64 {
	return w.Scale * math.Pow(-math.Log1p(-src.Float64()), 1/w.Shape)
}

// SampleN implements BatchSampler.
func (w Weibull) SampleN(dst []float64, src *rng.Source) {
	invShape := 1 / w.Shape
	for i := range dst {
		dst[i] = w.Scale * math.Pow(-math.Log1p(-src.Float64()), invShape)
	}
}

// Mean implements Distribution: scale * Gamma(1 + 1/shape).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// StdDev implements Distribution.
func (w Weibull) StdDev() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	v := w.Scale * w.Scale * (g2 - g1*g1)
	if v <= 0 {
		return 0 // guards tiny negative round-off at large shapes
	}
	return math.Sqrt(v)
}

// Scaled multiplies every draw of an inner distribution by Factor. The trace
// generator uses it to give each job its own duration scale on a shared
// within-job shape: Scaled(BoundedPareto(1, ratio, alpha), scale).
type Scaled struct {
	Inner  Distribution
	Factor float64
}

var _ Distribution = Scaled{}

// NewScaled wraps d so every sample and both moments are multiplied by
// factor > 0.
func NewScaled(d Distribution, factor float64) (Distribution, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: scaled nil distribution", ErrBadParam)
	}
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
		return nil, fmt.Errorf("%w: scale factor %v", ErrBadParam, factor)
	}
	return Scaled{Inner: d, Factor: factor}, nil
}

// Sample implements Distribution.
func (s Scaled) Sample(src *rng.Source) float64 { return s.Factor * s.Inner.Sample(src) }

// SampleN implements BatchSampler: a batched inner draw scaled in place
// (multiplication commutes bit-exactly, so this matches per-draw Sample).
func (s Scaled) SampleN(dst []float64, src *rng.Source) {
	SampleN(s.Inner, dst, src)
	for i := range dst {
		dst[i] *= s.Factor
	}
}

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.Factor * s.Inner.Mean() }

// StdDev implements Distribution.
func (s Scaled) StdDev() float64 { return s.Factor * s.Inner.StdDev() }
