package dist

import (
	"math"
	"testing"

	"mrclone/internal/rng"
)

// TestParetoSpeedupClosedForm pins the values the SCA tests and the paper's
// examples rely on: alpha=2 gives s(4) = 7/4 with ceiling 2.
func TestParetoSpeedupClosedForm(t *testing.T) {
	s, err := NewParetoSpeedup(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ k, want float64 }{
		{1, 1},
		{2, 1.5},
		{4, 1.75},
		{8, 1.875},
	}
	for _, tc := range cases {
		if got := s.At(tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

// TestParetoSpeedupShape: At(1)=1, monotone non-decreasing, concave, bounded
// by alpha/(alpha-1), and clamped below one copy.
func TestParetoSpeedupShape(t *testing.T) {
	for _, alpha := range []float64{1.2, 1.5, 2, 3, 10} {
		s, err := NewParetoSpeedup(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.At(1); got != 1 {
			t.Fatalf("alpha=%v: At(1) = %v", alpha, got)
		}
		if got := s.At(0.5); got != 1 {
			t.Fatalf("alpha=%v: At(0.5) = %v, want clamp to 1", alpha, got)
		}
		ceiling := alpha / (alpha - 1)
		prev, prevGain := 1.0, math.Inf(1)
		for k := 2.0; k <= 64; k++ {
			v := s.At(k)
			gain := v - prev
			if v < prev {
				t.Fatalf("alpha=%v: speedup decreased at k=%v", alpha, k)
			}
			if gain > prevGain+1e-12 {
				t.Fatalf("alpha=%v: marginal gain increased at k=%v", alpha, k)
			}
			if v >= ceiling {
				t.Fatalf("alpha=%v: At(%v) = %v reached ceiling %v", alpha, k, v, ceiling)
			}
			prev, prevGain = v, gain
		}
	}
}

// TestSpeedupMatchesMinOfKSampling: the closed form must agree with the
// simulated expected speedup of min-of-k Pareto cloning, which is exactly how
// the cluster engine realizes clones.
func TestSpeedupMatchesMinOfKSampling(t *testing.T) {
	const alpha = 2.0
	p, err := NewPareto(10, alpha)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewParetoSpeedup(alpha)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	const n = 300000
	for _, k := range []int{2, 4} {
		var sum float64
		for i := 0; i < n; i++ {
			m := math.Inf(1)
			for c := 0; c < k; c++ {
				m = math.Min(m, p.Sample(src))
			}
			sum += m
		}
		gotSpeedup := p.Mean() / (sum / n)
		if relErr(gotSpeedup, s.At(float64(k))) > 0.05 {
			t.Errorf("k=%d: sampled speedup %v vs closed form %v",
				k, gotSpeedup, s.At(float64(k)))
		}
	}
}
