package dist

import (
	"fmt"
	"math"

	"mrclone/internal/rng"
)

// Pareto is the type-I Pareto distribution with minimum Xm and tail index
// Alpha: P(X > x) = (Xm/x)^Alpha for x >= Xm. It is the paper's straggler
// model — machine service-time degradation is heavy-tailed — and the
// distribution under which min-of-k cloning has the closed-form speedup
// implemented by ParetoSpeedup.
//
// The mean is Alpha*Xm/(Alpha-1) for Alpha > 1 and +Inf otherwise; the
// standard deviation is finite only for Alpha > 2.
type Pareto struct {
	Xm, Alpha float64
}

var _ Distribution = Pareto{}

// NewPareto returns a Pareto distribution with minimum xm > 0 and tail index
// alpha > 0.
func NewPareto(xm, alpha float64) (Distribution, error) {
	if math.IsNaN(xm) || math.IsInf(xm, 0) || xm <= 0 {
		return nil, fmt.Errorf("%w: pareto minimum %v", ErrBadParam, xm)
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 0 {
		return nil, fmt.Errorf("%w: pareto alpha %v", ErrBadParam, alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Sample implements Distribution by inverting the CDF: Xm * (1-U)^(-1/Alpha).
func (p Pareto) Sample(src *rng.Source) float64 {
	u := 1 - src.Float64() // (0, 1]: avoids the infinite draw at U = 1
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// SampleN implements BatchSampler.
func (p Pareto) SampleN(dst []float64, src *rng.Source) {
	exp := -1 / p.Alpha
	for i := range dst {
		dst[i] = p.Xm * math.Pow(1-src.Float64(), exp)
	}
}

// Mean implements Distribution.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// StdDev implements Distribution.
func (p Pareto) StdDev() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	return p.Xm / (p.Alpha - 1) * math.Sqrt(p.Alpha/(p.Alpha-2))
}

// BoundedPareto is the Pareto distribution truncated to the support
// [Lo, Hi]. Truncation keeps every moment finite for any Alpha > 0, which is
// what lets the trace generator use tail indexes below 1 for task counts
// (Table II's mean of 26.31 tasks against a cap of 500 needs alpha < 1).
type BoundedPareto struct {
	Lo, Hi, Alpha float64
}

var _ Distribution = BoundedPareto{}

// NewBoundedPareto returns a Pareto distribution truncated to [lo, hi],
// requiring 0 < lo < hi and alpha > 0. The returned sampler caches the
// truncation constant, halving the transcendental cost per draw versus a
// bare BoundedPareto literal — it matters because the engine samples one
// duration per task copy, millions of draws per experiment.
func NewBoundedPareto(lo, hi, alpha float64) (Distribution, error) {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || lo <= 0 {
		return nil, fmt.Errorf("%w: bounded pareto lower bound %v", ErrBadParam, lo)
	}
	if math.IsNaN(hi) || math.IsInf(hi, 0) || hi <= lo {
		return nil, fmt.Errorf("%w: bounded pareto bounds [%v, %v]", ErrBadParam, lo, hi)
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 0 {
		return nil, fmt.Errorf("%w: bounded pareto alpha %v", ErrBadParam, alpha)
	}
	b := BoundedPareto{Lo: lo, Hi: hi, Alpha: alpha}
	return preparedBoundedPareto{
		BoundedPareto: b,
		theta:         math.Pow(lo/hi, alpha),
	}, nil
}

// preparedBoundedPareto is a BoundedPareto with its constant truncation term
// precomputed. Mean and StdDev come from the embedded value.
type preparedBoundedPareto struct {
	BoundedPareto
	theta float64
}

// Sample implements Distribution with the cached truncation constant.
func (b preparedBoundedPareto) Sample(src *rng.Source) float64 {
	x := b.Lo * math.Pow(1-src.Float64()*(1-b.theta), -1/b.Alpha)
	if x > b.Hi {
		return b.Hi // guards round-off at the upper edge
	}
	return x
}

// SampleN implements BatchSampler: the engine's hottest sampling path, with
// the truncation term and exponent held in locals across the batch.
func (b preparedBoundedPareto) SampleN(dst []float64, src *rng.Source) {
	span, exp := 1-b.theta, -1/b.Alpha
	for i := range dst {
		x := b.Lo * math.Pow(1-src.Float64()*span, exp)
		if x > b.Hi {
			x = b.Hi // guards round-off at the upper edge
		}
		dst[i] = x
	}
}

// Sample implements Distribution by inverting the truncated CDF:
// Lo * (1 - U*(1-(Lo/Hi)^Alpha))^(-1/Alpha), which maps U=0 to Lo and U->1
// to Hi, so every draw lies inside the support.
func (b BoundedPareto) Sample(src *rng.Source) float64 {
	theta := math.Pow(b.Lo/b.Hi, b.Alpha)
	x := b.Lo * math.Pow(1-src.Float64()*(1-theta), -1/b.Alpha)
	if x > b.Hi {
		return b.Hi // guards round-off at the upper edge
	}
	return x
}

// SampleN implements BatchSampler, computing the truncation constant once
// per batch (Sample recomputes it per draw).
func (b BoundedPareto) SampleN(dst []float64, src *rng.Source) {
	prepared := preparedBoundedPareto{BoundedPareto: b, theta: math.Pow(b.Lo/b.Hi, b.Alpha)}
	prepared.SampleN(dst, src)
}

// Mean implements Distribution.
func (b BoundedPareto) Mean() float64 { return b.moment(1) }

// StdDev implements Distribution.
func (b BoundedPareto) StdDev() float64 {
	m := b.moment(1)
	v := b.moment(2) - m*m
	if v <= 0 {
		return 0 // round-off on nearly degenerate supports
	}
	return math.Sqrt(v)
}

// moment returns E[X^k] for the truncated Pareto:
//
//	E[X^k] = Alpha*Lo^Alpha/(1-(Lo/Hi)^Alpha) * (Hi^(k-Alpha)-Lo^(k-Alpha))/(k-Alpha)
//
// with the k = Alpha limit Alpha*Lo^Alpha/(1-(Lo/Hi)^Alpha) * ln(Hi/Lo).
func (b BoundedPareto) moment(k float64) float64 {
	theta := math.Pow(b.Lo/b.Hi, b.Alpha)
	c := b.Alpha * math.Pow(b.Lo, b.Alpha) / (1 - theta)
	if d := k - b.Alpha; math.Abs(d) > 1e-9 {
		return c * (math.Pow(b.Hi, d) - math.Pow(b.Lo, d)) / d
	}
	return c * math.Log(b.Hi/b.Lo)
}
