package dist

import (
	"fmt"
	"math"

	"mrclone/internal/rng"
)

// Lognormal is the lognormal distribution: exp of a Normal(MuLog, SigmaLog)
// variate. The trace generator uses it for between-job duration skew — the
// multiplicative noise model matching production traces where per-job means
// spread over several orders of magnitude.
type Lognormal struct {
	MuLog, SigmaLog float64
}

var _ Distribution = Lognormal{}

// NewLognormal returns a lognormal distribution from its log-space
// parameters; sigmaLog must be non-negative and both must be finite.
func NewLognormal(muLog, sigmaLog float64) (Distribution, error) {
	if math.IsNaN(muLog) || math.IsInf(muLog, 0) {
		return nil, fmt.Errorf("%w: lognormal mu %v", ErrBadParam, muLog)
	}
	if math.IsNaN(sigmaLog) || math.IsInf(sigmaLog, 0) || sigmaLog < 0 {
		return nil, fmt.Errorf("%w: lognormal sigma %v", ErrBadParam, sigmaLog)
	}
	return Lognormal{MuLog: muLog, SigmaLog: sigmaLog}, nil
}

// LognormalFromMoments returns the lognormal distribution with the given
// real-space mean > 0 and standard deviation >= 0, inverting
//
//	mean = exp(mu + sigma^2/2),  sd^2 = mean^2 (exp(sigma^2) - 1).
func LognormalFromMoments(mean, sd float64) (Distribution, error) {
	if math.IsNaN(mean) || math.IsInf(mean, 0) || mean <= 0 {
		return nil, fmt.Errorf("%w: lognormal mean %v", ErrBadParam, mean)
	}
	if math.IsNaN(sd) || math.IsInf(sd, 0) || sd < 0 {
		return nil, fmt.Errorf("%w: lognormal stddev %v", ErrBadParam, sd)
	}
	cv := sd / mean
	sigma2 := math.Log1p(cv * cv)
	return Lognormal{
		MuLog:    math.Log(mean) - sigma2/2,
		SigmaLog: math.Sqrt(sigma2),
	}, nil
}

// Sample implements Distribution.
func (l Lognormal) Sample(src *rng.Source) float64 {
	return math.Exp(l.MuLog + l.SigmaLog*src.NormFloat64())
}

// SampleN implements BatchSampler.
func (l Lognormal) SampleN(dst []float64, src *rng.Source) {
	for i := range dst {
		dst[i] = math.Exp(l.MuLog + l.SigmaLog*src.NormFloat64())
	}
}

// Mean implements Distribution.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2)
}

// StdDev implements Distribution.
func (l Lognormal) StdDev() float64 {
	s2 := l.SigmaLog * l.SigmaLog
	return l.Mean() * math.Sqrt(math.Expm1(s2))
}
