package experiments

import (
	"fmt"

	"mrclone/internal/analysis"
	"mrclone/internal/cluster"
	"mrclone/internal/dist"
	"mrclone/internal/job"
	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/sched/offline"
)

// ---------------------------------------------------------------------------
// Theorem 1: offline flowtime bound
// ---------------------------------------------------------------------------

// Theorem1Result reports how often the offline per-job flowtime bound
// E^r_i + r sigma^r_i + f^s_i/M held across randomized runs, against the
// theorem's success-probability floor.
type Theorem1Result struct {
	DeviationFactor float64
	Machines        int
	Runs            int
	JobsPerRun      int
	Violations      int
	Checks          int
	// TheoremFloor is 1 + 1/r^4 - 2/r^2, the minimum per-check probability
	// the theorem guarantees.
	TheoremFloor float64
	// ZeroVarianceRatio is the measured weighted-flowtime competitive ratio
	// against the SRPT lower bound on a zero-variance instance (Remark 2
	// promises <= 2).
	ZeroVarianceRatio float64
}

// HoldRate is the measured fraction of checks where the bound held.
func (r *Theorem1Result) HoldRate() float64 {
	if r.Checks == 0 {
		return 0
	}
	return 1 - float64(r.Violations)/float64(r.Checks)
}

// Theorem1 runs the offline bound experiment on a bulk-arrival workload with
// moderate variance plus the zero-variance 2-competitiveness check.
func Theorem1(o Options) (*Theorem1Result, error) {
	o = o.normalize()
	const (
		machines = 3
		rFactor  = 3.0
	)
	out := &Theorem1Result{
		DeviationFactor: rFactor,
		Machines:        machines,
		Runs:            o.Runs * 20, // cheap instances: use more seeds
		TheoremFloor:    analysis.Theorem1SuccessProbability(rFactor),
	}

	// Bulk-arrival instance with uniform task durations (finite variance).
	u, err := dist.NewUniform(5, 15)
	if err != nil {
		return nil, err
	}
	specs := []job.Spec{
		{ID: 0, Weight: 1, MapTasks: 4, MapDist: u, ReduceTask: 2, ReduceDist: u},
		{ID: 1, Weight: 1, MapTasks: 2, MapDist: u},
		{ID: 2, Weight: 2, MapTasks: 6, MapDist: u, ReduceTask: 1, ReduceDist: u},
		{ID: 3, Weight: 3, MapTasks: 1, MapDist: u},
		{ID: 4, Weight: 1, MapTasks: 8, MapDist: u, ReduceTask: 3, ReduceDist: u},
	}
	out.JobsPerRun = len(specs)

	// The replicate axis runs on the runner's worker pool: one cell per
	// seed, with unit seed stride matching the historical sequential loop.
	matrix, err := runner.Run(o.ctx(), runner.Spec{
		Specs: specs,
		Schedulers: []runner.SchedulerSpec{
			{Name: "offline", Params: sched.Params{DeviationFactor: rFactor, GateReduces: true}},
		},
		Points:     []runner.Point{{X: 0, Machines: machines}},
		Runs:       out.Runs,
		BaseSeed:   o.Seed,
		SeedStride: 1,
	}, runner.Options{Parallelism: o.Parallelism, Progress: o.Progress, KeepRaw: true})
	if err != nil {
		return nil, err
	}
	bounds := make([]float64, len(specs))
	for i := range specs {
		if bounds[i], err = analysis.Theorem1Bound(specs, i, machines, rFactor); err != nil {
			return nil, err
		}
	}
	for run := 0; run < out.Runs; run++ {
		res := matrix.Cell(0, 0, run).Raw
		flow := make(map[int]int64, len(res.Jobs))
		for _, jr := range res.Jobs {
			flow[jr.ID] = jr.Flowtime
		}
		for i := range specs {
			out.Checks++
			if float64(flow[specs[i].ID]) > bounds[i] {
				out.Violations++
			}
		}
	}

	// Zero-variance 2-competitiveness (Remark 2).
	detSpecs := make([]job.Spec, len(specs))
	copy(detSpecs, specs)
	for i := range detSpecs {
		m := detSpecs[i].PhaseStats(job.PhaseMap)
		if detSpecs[i].MapTasks > 0 {
			d, err := dist.NewDeterministic(m.Mean)
			if err != nil {
				return nil, err
			}
			detSpecs[i].MapDist = d
		}
		r := detSpecs[i].PhaseStats(job.PhaseReduce)
		if detSpecs[i].ReduceTask > 0 {
			d, err := dist.NewDeterministic(r.Mean)
			if err != nil {
				return nil, err
			}
			detSpecs[i].ReduceDist = d
		}
	}
	zeroSched, err := offline.New(offline.Config{GateReduces: true})
	if err != nil {
		return nil, err
	}
	eng, err := cluster.New(cluster.Config{Machines: machines, Seed: o.Seed}, zeroSched, detSpecs)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	measured, err := analysis.WeightedFlowtime(res)
	if err != nil {
		return nil, err
	}
	lower, err := analysis.SRPTLowerBound(detSpecs, machines, 0)
	if err != nil {
		return nil, err
	}
	out.ZeroVarianceRatio, err = analysis.CompetitiveRatio(measured, lower)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Theorem 2: speed augmentation
// ---------------------------------------------------------------------------

// Theorem2Point is one epsilon of the speed-augmentation experiment.
type Theorem2Point struct {
	Epsilon float64
	// AugmentedWeighted is SRPTMS+C's weighted flowtime at speed 1+eps.
	AugmentedWeighted float64
	// BaselineWeighted is the unit-speed SRPT lower-bound proxy for OPT.
	BaselineWeighted float64
	// Ratio = AugmentedWeighted / BaselineWeighted.
	Ratio float64
	// Ceiling is the theorem's (C+1+eps)/eps^2 competitive ceiling.
	Ceiling float64
}

// Theorem2Result holds the speed-augmentation sweep.
type Theorem2Result struct {
	Points []Theorem2Point
}

// Theorem2 runs SRPTMS+C with machine speed 1+eps against a unit-speed SRPT
// baseline (a lower-bound proxy for the optimal clairvoyant scheduler) and
// checks the measured ratio stays below the theorem's o(1/eps^2) ceiling.
func Theorem2(o Options) (*Theorem2Result, error) {
	return Theorem2Epsilons(o, []float64{0.2, 0.4, 0.6, 0.8})
}

// Theorem2Epsilons sweeps an explicit epsilon grid.
func Theorem2Epsilons(o Options, epsilons []float64) (*Theorem2Result, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	maxClones := o.MaxClonesPerTask
	if maxClones == 0 {
		maxClones = 8
	}
	specs, err := tr.Specs()
	if err != nil {
		return nil, err
	}
	// One matrix covers the whole sweep: the srpt row is the unit-speed
	// baseline (identical at every epsilon, so it is a single point), and
	// the srptms+c row sweeps epsilon with speed 1+eps per point.
	points := make([]runner.Point, len(epsilons))
	for i, eps := range epsilons {
		p := sched.Params{Epsilon: eps, DeviationFactor: 3, MaxClonesPerTask: maxClones}
		points[i] = runner.Point{X: eps, Machines: o.Machines, Speed: 1 + eps, Params: &p}
	}
	runOpts := runner.Options{Parallelism: o.Parallelism, Progress: o.Progress, KeepRaw: true}
	aug, err := runner.Run(o.ctx(), runner.Spec{
		Specs:      specs,
		Schedulers: []runner.SchedulerSpec{{Name: "srptms+c"}},
		Points:     points,
		BaseSeed:   o.Seed,
	}, runOpts)
	if err != nil {
		return nil, fmt.Errorf("theorem2 augmented sweep: %w", err)
	}
	base, err := runner.Run(o.ctx(), runner.Spec{
		Specs:      specs,
		Schedulers: []runner.SchedulerSpec{{Name: "srpt", Params: sched.Params{DeviationFactor: 0}}},
		Points:     []runner.Point{{X: 0, Machines: o.Machines, Speed: 1}},
		BaseSeed:   o.Seed,
	}, runOpts)
	if err != nil {
		return nil, fmt.Errorf("theorem2 baseline: %w", err)
	}
	baseW, err := analysis.WeightedFlowtime(base.Cell(0, 0, 0).Raw)
	if err != nil {
		return nil, err
	}
	out := &Theorem2Result{}
	for i, eps := range epsilons {
		augW, err := analysis.WeightedFlowtime(aug.Cell(0, i, 0).Raw)
		if err != nil {
			return nil, err
		}
		ratio, err := analysis.CompetitiveRatio(augW, baseW)
		if err != nil {
			return nil, err
		}
		ceiling, err := analysis.Theorem2CompetitiveCeiling(eps, maxClones)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Theorem2Point{
			Epsilon:           eps,
			AugmentedWeighted: augW,
			BaselineWeighted:  baseW,
			Ratio:             ratio,
			Ceiling:           ceiling,
		})
	}
	return out, nil
}
