// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI) plus numerical checks of the two theorems. Each
// experiment is a pure function of an Options value and returns a typed
// result with text/CSV renderers, so command-line tools, tests, and
// benchmarks share one implementation.
//
// Experiment index (see DESIGN.md §4):
//
//	table2    Table II  — trace statistics
//	fig1      Figure 1  — avg flowtime vs epsilon (r = 0)
//	fig2      Figure 2  — avg flowtime vs r (epsilon = 0.6)
//	fig3      Figure 3  — avg flowtime vs cluster size (eps = 0.6, r = 3)
//	fig4      Figure 4  — CDF of small-job flowtime, SRPTMS+C vs SCA vs Mantri
//	fig5      Figure 5  — CDF of big-job flowtime
//	fig6      Figure 6  — weighted/unweighted avg flowtime per algorithm
//	theorem1  Theorem 1 — offline per-job flowtime bound violation rate
//	theorem2  Theorem 2 — speed-augmented competitive ratio vs ceiling
package experiments

import (
	"context"
	"fmt"
	"math"

	"mrclone/internal/metrics"
	"mrclone/internal/runner"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// Tuned parameters for the comparison experiments (Figures 2–6). The paper
// follows the same procedure — sweep epsilon and r first (Figures 1–2), then
// run the comparisons at the tuned values ("Based on the evaluation results
// above, we choose..."). On the paper's Google trace the tuning selects
// epsilon = 0.6, r = 3; on this repository's synthetic trace the Figure 1
// sweep is flat beyond epsilon ~0.8 with its minimum near 0.9, so the
// comparisons run at epsilon = 0.9, r = 3 (see EXPERIMENTS.md).
const (
	TunedEpsilon         = 0.9
	TunedDeviationFactor = 3
)

// Options configures an experiment run.
type Options struct {
	// Trace generation parameters; zero value means trace.GoogleParams().
	TraceParams trace.Params
	// Jobs truncates the trace to its first n jobs (0 = all).
	Jobs int
	// Machines is the cluster size M (0 = 12000, the paper's cluster).
	Machines int
	// Runs averages each configuration over this many independent seeds
	// (the paper repeats each simulation ten times). 0 = 1.
	Runs int
	// Seed offsets the per-run seeds for reproducibility.
	Seed int64
	// MaxClonesPerTask caps cloning in the cloning schedulers (0 = default).
	MaxClonesPerTask int
	// Parallelism bounds concurrently simulated matrix cells (0 = all
	// cores). Results are byte-identical at any parallelism level; see
	// internal/runner.
	Parallelism int
	// Progress, when non-nil, receives (done, total) cell-completion
	// callbacks from the underlying runner.
	Progress func(done, total int)
	// Ctx, when non-nil, cancels in-flight matrix runs (e.g. on SIGINT);
	// nil means context.Background().
	Ctx context.Context
}

// ctx returns the cancellation context of the run.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// FullOptions mirrors the paper's setup: the whole 6064-job trace on 12K
// machines, averaged over 10 runs.
func FullOptions() Options {
	return Options{Machines: 12000, Runs: 10, Seed: 1}
}

// QuickOptions is a laptop-scale preset preserving the paper's load ratio:
// 800 jobs arriving over the same 35032 s span (so the arrival rate drops
// 7.6x) on a proportionally smaller 1600-machine cluster.
func QuickOptions() Options {
	p := trace.GoogleParams()
	p.Jobs = 800
	return Options{TraceParams: p, Machines: 1600, Runs: 2, Seed: 1}
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.TraceParams.Jobs == 0 {
		o.TraceParams = trace.GoogleParams()
	}
	if o.Machines == 0 {
		o.Machines = 12000
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	return o
}

// buildTrace generates (and truncates) the workload.
func (o Options) buildTrace() (*trace.Trace, error) {
	tr, err := trace.Generate(o.TraceParams)
	if err != nil {
		return nil, err
	}
	if o.Jobs > 0 && o.Jobs < len(tr.Rows) {
		tr = tr.Subset(o.Jobs)
	}
	return tr, nil
}

// runMatrix executes a run matrix over the trace via internal/runner: all
// (scheduler × point × run) cells are simulated on a bounded worker pool,
// and the assembled result is deterministic at any parallelism level.
func (o Options) runMatrix(tr *trace.Trace, schedulers []runner.SchedulerSpec,
	points []runner.Point, keepRaw bool) (*runner.Result, error) {
	specs, err := tr.Specs()
	if err != nil {
		return nil, err
	}
	return runner.Run(o.ctx(), runner.Spec{
		Specs:      specs,
		Schedulers: schedulers,
		Points:     points,
		Runs:       o.Runs,
		BaseSeed:   o.Seed,
	}, runner.Options{
		Parallelism: o.Parallelism,
		Progress:    o.Progress,
		KeepRaw:     keepRaw,
	})
}

// sweepSRPTMSC runs the paper's core scheduler over a sweep and extracts
// the two flowtime averages per point.
func (o Options) sweepSRPTMSC(tr *trace.Trace, points []runner.Point) ([]SweepPoint, error) {
	res, err := o.runMatrix(tr, []runner.SchedulerSpec{{Name: "srptms+c"}}, points, false)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(points))
	for pi := range points {
		agg := res.Aggregate(0, pi)
		out[pi] = SweepPoint{X: agg.X, Mean: agg.MeanFlowtime, Weighted: agg.WeightedFlowtime}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

// Table2Result compares generated trace statistics with the paper's Table II.
type Table2Result struct {
	Stats trace.Stats
}

// Table2 runs experiment T2.
func Table2(o Options) (*Table2Result, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	st, err := tr.ComputeStats()
	if err != nil {
		return nil, err
	}
	return &Table2Result{Stats: st}, nil
}

// Rows renders paper-vs-measured rows.
func (r *Table2Result) Rows() [][3]string {
	f := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	return [][3]string{
		{"Total number of jobs", fmt.Sprintf("%d", trace.GoogleJobs), fmt.Sprintf("%d", r.Stats.Jobs)},
		{"Trace duration (s)", fmt.Sprintf("%d", trace.GoogleSpanSeconds), fmt.Sprintf("%d", r.Stats.SpanSeconds)},
		{"Average number of tasks per job", f(trace.GoogleMeanTasks), f(r.Stats.MeanTasksPerJob)},
		{"Minimum task duration (s)", f(trace.GoogleMinTaskDur), f(r.Stats.MinTaskDur)},
		{"Maximum task duration (s)", f(trace.GoogleMaxTaskDur), f(r.Stats.MaxTaskDur)},
		{"Average task duration (s)", f(trace.GoogleMeanTaskDur), f(r.Stats.MeanTaskDur)},
	}
}

// ---------------------------------------------------------------------------
// Figure 1: epsilon sweep
// ---------------------------------------------------------------------------

// SweepPoint is one x-value of a parameter sweep with the two flowtime
// averages the paper plots.
type SweepPoint struct {
	X        float64
	Mean     float64 // unweighted average flowtime (s)
	Weighted float64 // weighted average flowtime (s)
}

// Fig1Result holds the epsilon sweep of Figure 1.
type Fig1Result struct {
	Points []SweepPoint
}

// Fig1 sweeps epsilon in {0.1..1.0} at r = 0 (as in the paper's Figure 1).
func Fig1(o Options) (*Fig1Result, error) {
	return Fig1Epsilons(o, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
}

// Fig1Epsilons sweeps an explicit epsilon grid. All epsilon points (times
// Runs seeds) are simulated concurrently on the runner's worker pool.
func Fig1Epsilons(o Options, epsilons []float64) (*Fig1Result, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	points := make([]runner.Point, len(epsilons))
	for i, eps := range epsilons {
		p := sched.Params{Epsilon: eps, DeviationFactor: 0, MaxClonesPerTask: o.MaxClonesPerTask}
		points[i] = runner.Point{X: eps, Machines: o.Machines, Params: &p}
	}
	pts, err := o.sweepSRPTMSC(tr, points)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Points: pts}, nil
}

// BestEpsilon returns the epsilon minimizing the unweighted average.
func (r *Fig1Result) BestEpsilon() float64 {
	best, bestV := 0.0, math.Inf(1)
	for _, p := range r.Points {
		if p.Mean < bestV {
			best, bestV = p.X, p.Mean
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Figure 2: r sweep
// ---------------------------------------------------------------------------

// Fig2Result holds the deviation-factor sweep of Figure 2.
type Fig2Result struct {
	Points []SweepPoint
}

// Fig2 sweeps r in {1..10} at epsilon = 0.6.
func Fig2(o Options) (*Fig2Result, error) {
	rs := make([]float64, 10)
	for i := range rs {
		rs[i] = float64(i + 1)
	}
	return Fig2Factors(o, rs)
}

// Fig2Factors sweeps an explicit r grid on the runner's worker pool.
func Fig2Factors(o Options, factors []float64) (*Fig2Result, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	points := make([]runner.Point, len(factors))
	for i, r := range factors {
		p := sched.Params{Epsilon: TunedEpsilon, DeviationFactor: r, MaxClonesPerTask: o.MaxClonesPerTask}
		points[i] = runner.Point{X: r, Machines: o.Machines, Params: &p}
	}
	pts, err := o.sweepSRPTMSC(tr, points)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Points: pts}, nil
}

// ---------------------------------------------------------------------------
// Figure 3: cluster-size sweep
// ---------------------------------------------------------------------------

// Fig3Result holds the machine sweep of Figure 3.
type Fig3Result struct {
	Points []SweepPoint
}

// Fig3 sweeps the cluster size from M/2 to M in six steps at eps=0.6, r=3
// (the paper sweeps 6000..12000 on its 12K baseline).
func Fig3(o Options) (*Fig3Result, error) {
	o = o.normalize()
	var machines []int
	for i := 6; i <= 12; i++ {
		machines = append(machines, o.Machines*i/12)
	}
	return Fig3Machines(o, machines)
}

// Fig3Machines sweeps an explicit machine grid on the runner's worker pool.
func Fig3Machines(o Options, machines []int) (*Fig3Result, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	p := sched.Params{Epsilon: TunedEpsilon, DeviationFactor: TunedDeviationFactor, MaxClonesPerTask: o.MaxClonesPerTask}
	points := make([]runner.Point, len(machines))
	for i, m := range machines {
		points[i] = runner.Point{X: float64(m), Machines: m, Params: &p}
	}
	pts, err := o.sweepSRPTMSC(tr, points)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Points: pts}, nil
}

// ---------------------------------------------------------------------------
// Figures 4 & 5: CDF comparisons
// ---------------------------------------------------------------------------

// ComparedAlgorithms are the three schedulers of Figures 4–6, in plot order.
var ComparedAlgorithms = []string{"srptms+c", "sca", "mantri"}

// CDFResult holds per-algorithm CDF curves over one flowtime range.
type CDFResult struct {
	Lo, Hi float64
	Curves map[string][]metrics.CDFPoint
}

// Fig4 compares the small-job flowtime CDF (0–300 s) across algorithms.
func Fig4(o Options) (*CDFResult, error) { return cdfCompare(o, 0, 300, 13) }

// Fig5 compares the big-job flowtime CDF (300–4000 s) across algorithms.
func Fig5(o Options) (*CDFResult, error) { return cdfCompare(o, 300, 4000, 13) }

func cdfCompare(o Options, lo, hi float64, points int) (*CDFResult, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	res, err := o.runMatrix(tr, comparedSchedulerSpecs(o), []runner.Point{
		{X: 0, Machines: o.Machines},
	}, true)
	if err != nil {
		return nil, err
	}
	out := &CDFResult{Lo: lo, Hi: hi, Curves: make(map[string][]metrics.CDFPoint, len(ComparedAlgorithms))}
	for si, name := range ComparedAlgorithms {
		curve, err := res.CDF(si, 0, lo, hi, points)
		if err != nil {
			return nil, err
		}
		out.Curves[name] = curve
	}
	return out, nil
}

// comparedSchedulerSpecs builds the matrix rows of Figures 4-6: the three
// compared algorithms at the tuned operating point.
func comparedSchedulerSpecs(o Options) []runner.SchedulerSpec {
	p := sched.Params{Epsilon: TunedEpsilon, DeviationFactor: TunedDeviationFactor, MaxClonesPerTask: o.MaxClonesPerTask}
	specs := make([]runner.SchedulerSpec, len(ComparedAlgorithms))
	for i, name := range ComparedAlgorithms {
		specs[i] = runner.SchedulerSpec{Name: name, Params: p}
	}
	return specs
}

// ---------------------------------------------------------------------------
// Figure 6: algorithm comparison
// ---------------------------------------------------------------------------

// AlgoSummary is one algorithm's averaged metrics.
type AlgoSummary struct {
	Name     string
	Mean     float64
	Weighted float64
	P50      float64
	P90      float64
}

// Fig6Result compares the algorithms' average flowtimes.
type Fig6Result struct {
	Summaries []AlgoSummary
}

// Fig6 compares SRPTMS+C, SCA, and Mantri (eps=0.6, r=3, Section VI-C).
// All algorithm × seed cells run concurrently on the runner's worker pool.
func Fig6(o Options) (*Fig6Result, error) {
	o = o.normalize()
	tr, err := o.buildTrace()
	if err != nil {
		return nil, err
	}
	res, err := o.runMatrix(tr, comparedSchedulerSpecs(o), []runner.Point{
		{X: 0, Machines: o.Machines},
	}, false)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{}
	for si, name := range ComparedAlgorithms {
		agg := res.Aggregate(si, 0)
		out.Summaries = append(out.Summaries, AlgoSummary{
			Name: name, Mean: agg.MeanFlowtime, Weighted: agg.WeightedFlowtime,
			P50: agg.P50, P90: agg.P90,
		})
	}
	return out, nil
}

// ImprovementOverMantri returns the relative reductions of SRPTMS+C versus
// Mantri on the two averages (the paper reports "nearly 25%").
func (r *Fig6Result) ImprovementOverMantri() (mean, weighted float64, err error) {
	var ours, mantri *AlgoSummary
	for i := range r.Summaries {
		switch r.Summaries[i].Name {
		case "srptms+c":
			ours = &r.Summaries[i]
		case "mantri":
			mantri = &r.Summaries[i]
		}
	}
	if ours == nil || mantri == nil {
		return 0, 0, fmt.Errorf("experiments: comparison lacks srptms+c or mantri")
	}
	return metrics.Improvement(mantri.Mean, ours.Mean),
		metrics.Improvement(mantri.Weighted, ours.Weighted), nil
}
