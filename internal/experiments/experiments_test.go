package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mrclone/internal/trace"
)

// tinyOptions keeps experiment tests fast: a 120-job trace on a 240-machine
// cluster, one run each.
func tinyOptions() Options {
	p := trace.GoogleParams()
	p.Jobs = 120
	return Options{TraceParams: p, Machines: 240, Runs: 1, Seed: 1}
}

func TestTable2(t *testing.T) {
	res, err := Table2(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Jobs != trace.GoogleJobs {
		t.Errorf("jobs = %d", res.Stats.Jobs)
	}
	rows := res.Rows()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Total number of jobs") {
		t.Error("table text missing statistic name")
	}
}

func TestFig1SweepShape(t *testing.T) {
	res, err := Fig1Epsilons(tinyOptions(), []float64{0.2, 0.6, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Mean <= 0 || p.Weighted <= 0 {
			t.Fatalf("non-positive flowtime at eps=%v: %+v", p.X, p)
		}
	}
	best := res.BestEpsilon()
	if best != 0.2 && best != 0.6 && best != 1.0 {
		t.Fatalf("best epsilon %v not on grid", best)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "epsilon,mean_flowtime") {
		t.Error("CSV header missing")
	}
}

func TestFig2Sweep(t *testing.T) {
	res, err := Fig2Factors(tinyOptions(), []float64{0, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig3MachineSweep(t *testing.T) {
	o := tinyOptions()
	res, err := Fig3Machines(o, []int{120, 240})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Fewer machines must not make flowtimes better.
	if res.Points[0].Mean < res.Points[1].Mean*0.95 {
		t.Errorf("halving machines improved mean flowtime: %v vs %v",
			res.Points[0].Mean, res.Points[1].Mean)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4And5CDFs(t *testing.T) {
	res, err := Fig4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != len(ComparedAlgorithms) {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for name, pts := range res.Curves {
		prev := -1.0
		for _, p := range pts {
			if p.Fraction < prev-1e-9 {
				t.Fatalf("%s: CDF not monotone", name)
			}
			if p.Fraction < 0 || p.Fraction > 1 {
				t.Fatalf("%s: fraction %v", name, p.Fraction)
			}
			prev = p.Fraction
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ASCIIPlot(&buf, "fig4", res.Curves); err != nil {
		t.Fatal(err)
	}

	res5, err := Fig5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res5.Lo != 300 || res5.Hi != 4000 {
		t.Fatalf("fig5 range [%v, %v]", res5.Lo, res5.Hi)
	}
}

func TestFig6ComparisonShape(t *testing.T) {
	res, err := Fig6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != 3 {
		t.Fatalf("summaries = %d", len(res.Summaries))
	}
	byName := map[string]AlgoSummary{}
	for _, s := range res.Summaries {
		byName[s.Name] = s
	}
	// The paper's headline ordering: SRPTMS+C beats Mantri on the weighted
	// average. (SCA sits between; exact gaps vary with the tiny trace.)
	if byName["srptms+c"].Weighted >= byName["mantri"].Weighted {
		t.Errorf("SRPTMS+C weighted %v should beat Mantri %v",
			byName["srptms+c"].Weighted, byName["mantri"].Weighted)
	}
	mean, weighted, err := res.ImprovementOverMantri()
	if err != nil {
		t.Fatal(err)
	}
	if weighted <= 0 {
		t.Errorf("weighted improvement %v should be positive", weighted)
	}
	_ = mean
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1Experiment(t *testing.T) {
	res, err := Theorem1(Options{Runs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks == 0 {
		t.Fatal("no checks performed")
	}
	// The empirical hold rate must not be wildly below the theorem floor
	// (Chebyshev is conservative, so it is normally far above).
	if res.HoldRate() < res.TheoremFloor-0.15 {
		t.Errorf("hold rate %.3f below theorem floor %.3f", res.HoldRate(), res.TheoremFloor)
	}
	if res.ZeroVarianceRatio > 2 {
		t.Errorf("zero-variance competitive ratio %.3f exceeds 2 (Remark 2)", res.ZeroVarianceRatio)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2Experiment(t *testing.T) {
	res, err := Theorem2Epsilons(tinyOptions(), []float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Ratio <= 0 {
			t.Errorf("eps=%v: ratio %v", p.Epsilon, p.Ratio)
		}
		if p.Ratio > p.Ceiling {
			t.Errorf("eps=%v: measured ratio %.3f exceeds theorem ceiling %.1f",
				p.Epsilon, p.Ratio, p.Ceiling)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestParallelismInvariance pins the tentpole guarantee at the experiments
// layer: the same experiment run at parallelism 1, 4, and 16 must render
// byte-identical artifacts.
func TestParallelismInvariance(t *testing.T) {
	base := tinyOptions()
	base.Runs = 2
	var artifacts []string
	for _, par := range []int{1, 4, 16} {
		o := base
		o.Parallelism = par
		var buf bytes.Buffer
		fig1, err := Fig1Epsilons(o, []float64{0.2, 0.8})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if err := fig1.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		fig6, err := Fig6(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := fig6.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		fig4, err := Fig4(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := fig4.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, buf.String())
	}
	if artifacts[0] != artifacts[1] || artifacts[0] != artifacts[2] {
		t.Fatal("artifacts differ across parallelism 1/4/16")
	}
}

// TestProgressCallback checks the runner progress plumbing through Options.
func TestProgressCallback(t *testing.T) {
	o := tinyOptions()
	var last, calls int
	o.Progress = func(done, total int) {
		last, calls = done, calls+1
		if total != 3 { // 3 algorithms x 1 point x 1 run
			t.Errorf("total = %d, want 3", total)
		}
	}
	if _, err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	if calls != 3 || last != 3 {
		t.Errorf("progress calls=%d last=%d, want 3/3", calls, last)
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	err := RenderTable(&buf, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a    bb") && !strings.Contains(out, "a   bb") {
		t.Errorf("unaligned header: %q", out)
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ASCIIPlot(&buf, "x", nil); err == nil {
		t.Fatal("empty plot accepted")
	}
}

func TestOptionsPresets(t *testing.T) {
	full := FullOptions()
	if full.Machines != 12000 || full.Runs != 10 {
		t.Errorf("full preset %+v", full)
	}
	quick := QuickOptions()
	if quick.TraceParams.Jobs != 800 || quick.Machines != 1600 {
		t.Errorf("quick preset %+v", quick)
	}
	// Load ratio preserved: jobs/machines ~ 6064/12000.
	fullRatio := float64(trace.GoogleJobs) / 12000
	quickRatio := float64(quick.TraceParams.Jobs) / float64(quick.Machines)
	if quickRatio/fullRatio > 1.05 || quickRatio/fullRatio < 0.95 {
		t.Errorf("quick preset load ratio %v vs full %v", quickRatio, fullRatio)
	}
}
