package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mrclone/internal/metrics"
)

// RenderTable writes an aligned two-or-more-column text table.
func RenderTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, n := range widths {
		total += n + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders Table II as paper-vs-measured rows.
func (r *Table2Result) WriteText(w io.Writer) error {
	rows := make([][]string, 0, 6)
	for _, row := range r.Rows() {
		rows = append(rows, []string{row[0], row[1], row[2]})
	}
	return RenderTable(w, []string{"Statistic", "Paper (Table II)", "Measured"}, rows)
}

// writeSweep renders a sweep result with an x-axis label.
func writeSweep(w io.Writer, xLabel string, points []SweepPoint) error {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.X),
			fmt.Sprintf("%.1f", p.Mean),
			fmt.Sprintf("%.1f", p.Weighted),
		})
	}
	return RenderTable(w, []string{xLabel, "Avg flowtime (s)", "Weighted avg flowtime (s)"}, rows)
}

// WriteText renders the Figure 1 sweep.
func (r *Fig1Result) WriteText(w io.Writer) error { return writeSweep(w, "epsilon", r.Points) }

// WriteText renders the Figure 2 sweep.
func (r *Fig2Result) WriteText(w io.Writer) error { return writeSweep(w, "r", r.Points) }

// WriteText renders the Figure 3 sweep.
func (r *Fig3Result) WriteText(w io.Writer) error { return writeSweep(w, "machines", r.Points) }

// WriteText renders a CDF comparison with one column per algorithm.
func (r *CDFResult) WriteText(w io.Writer) error {
	names := make([]string, 0, len(r.Curves))
	for name := range r.Curves {
		names = append(names, name)
	}
	sort.Strings(names)
	header := append([]string{"flowtime<="}, names...)
	var nPoints int
	for _, c := range r.Curves {
		nPoints = len(c)
		break
	}
	rows := make([][]string, 0, nPoints)
	for i := 0; i < nPoints; i++ {
		row := make([]string, 0, len(header))
		var x float64
		for _, name := range names {
			x = r.Curves[name][i].X
		}
		row = append(row, fmt.Sprintf("%.0f", x))
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.3f", r.Curves[name][i].Fraction))
		}
		rows = append(rows, row)
	}
	return RenderTable(w, header, rows)
}

// WriteText renders the Figure 6 comparison and the headline improvement.
func (r *Fig6Result) WriteText(w io.Writer) error {
	rows := make([][]string, 0, len(r.Summaries))
	for _, s := range r.Summaries {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%.1f", s.Weighted),
			fmt.Sprintf("%.1f", s.P50),
			fmt.Sprintf("%.1f", s.P90),
		})
	}
	if err := RenderTable(w, []string{"Algorithm", "Avg flowtime (s)",
		"Weighted avg (s)", "P50 (s)", "P90 (s)"}, rows); err != nil {
		return err
	}
	mean, weighted, err := r.ImprovementOverMantri()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nSRPTMS+C vs Mantri: avg flowtime -%.1f%%, weighted avg -%.1f%% (paper: ~25%%)\n",
		mean*100, weighted*100)
	return err
}

// WriteText renders the Theorem 1 check.
func (r *Theorem1Result) WriteText(w io.Writer) error {
	rows := [][]string{
		{"deviation factor r", fmt.Sprintf("%g", r.DeviationFactor)},
		{"machines", fmt.Sprintf("%d", r.Machines)},
		{"bound checks", fmt.Sprintf("%d", r.Checks)},
		{"violations", fmt.Sprintf("%d", r.Violations)},
		{"measured hold rate", fmt.Sprintf("%.3f", r.HoldRate())},
		{"theorem floor (1+1/r^4-2/r^2)", fmt.Sprintf("%.3f", r.TheoremFloor)},
		{"zero-variance competitive ratio", fmt.Sprintf("%.3f (theorem: <= 2)", r.ZeroVarianceRatio)},
	}
	return RenderTable(w, []string{"Theorem 1 (offline bound)", "Value"}, rows)
}

// WriteText renders the Theorem 2 check.
func (r *Theorem2Result) WriteText(w io.Writer) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.Epsilon),
			fmt.Sprintf("%.0f", p.AugmentedWeighted),
			fmt.Sprintf("%.0f", p.BaselineWeighted),
			fmt.Sprintf("%.3f", p.Ratio),
			fmt.Sprintf("%.1f", p.Ceiling),
		})
	}
	return RenderTable(w, []string{"epsilon", "SRPTMS+C @ speed 1+eps",
		"SRPT baseline @ speed 1", "ratio", "theorem ceiling"}, rows)
}

// WriteCSV emits a sweep as CSV.
func writeSweepCSV(w io.Writer, xLabel string, points []SweepPoint) error {
	if _, err := fmt.Fprintf(w, "%s,mean_flowtime,weighted_flowtime\n", xLabel); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%g,%.4f,%.4f\n", p.X, p.Mean, p.Weighted); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits Figure 1 data.
func (r *Fig1Result) WriteCSV(w io.Writer) error { return writeSweepCSV(w, "epsilon", r.Points) }

// WriteCSV emits Figure 2 data.
func (r *Fig2Result) WriteCSV(w io.Writer) error { return writeSweepCSV(w, "r", r.Points) }

// WriteCSV emits Figure 3 data.
func (r *Fig3Result) WriteCSV(w io.Writer) error { return writeSweepCSV(w, "machines", r.Points) }

// WriteCSV emits a CDF comparison.
func (r *CDFResult) WriteCSV(w io.Writer) error {
	names := make([]string, 0, len(r.Curves))
	for name := range r.Curves {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "flowtime,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	var nPoints int
	for _, c := range r.Curves {
		nPoints = len(c)
		break
	}
	for i := 0; i < nPoints; i++ {
		var x float64
		cells := make([]string, 0, len(names))
		for _, name := range names {
			pt := r.Curves[name][i]
			x = pt.X
			cells = append(cells, fmt.Sprintf("%.4f", pt.Fraction))
		}
		if _, err := fmt.Fprintf(w, "%.0f,%s\n", x, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the Figure 6 comparison.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "algorithm,mean_flowtime,weighted_flowtime,p50,p90"); err != nil {
		return err
	}
	for _, s := range r.Summaries {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f\n",
			s.Name, s.Mean, s.Weighted, s.P50, s.P90); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIPlot renders series of (x, y) points as a crude terminal plot, one
// rune per series. It is deliberately simple: fixed 60x16 canvas, linear
// axes.
func ASCIIPlot(w io.Writer, title string, series map[string][]metrics.CDFPoint) error {
	const width, height = 60, 16
	if len(series) == 0 {
		return fmt.Errorf("experiments: empty plot %q", title)
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	marks := []rune{'*', '+', 'o', 'x', '#', '@'}

	minX, maxX := series[names[0]][0].X, series[names[0]][0].X
	var maxY float64
	for _, pts := range series {
		for _, p := range pts {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Fraction > maxY {
				maxY = p.Fraction
			}
		}
	}
	if maxX == minX || maxY == 0 {
		maxX = minX + 1
		maxY = 1
	}
	canvas := make([][]rune, height)
	for i := range canvas {
		canvas[i] = make([]rune, width)
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	for si, name := range names {
		mark := marks[si%len(marks)]
		for _, p := range series[name] {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int(p.Fraction/maxY*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				canvas[row][col] = mark
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for _, line := range canvas {
		if _, err := fmt.Fprintf(w, "|%s\n", string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	legend := make([]string, 0, len(names))
	for si, name := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], name))
	}
	_, err := fmt.Fprintf(w, " x: %.0f..%.0f  y: 0..%.2f  %s\n",
		minX, maxX, maxY, strings.Join(legend, " "))
	return err
}
