package runner

import (
	"bytes"
	"context"
	"testing"
)

// TestAssembleByteIdentical: a fully warmed cache must assemble into the
// exact artifact a real run produces — with no workload attached and no
// cells published.
func TestAssembleByteIdentical(t *testing.T) {
	spec := testMatrix(t, 15)
	total := len(spec.Schedulers) * len(spec.Points) * spec.Runs

	cache := newMemCellCache()
	cold, err := Run(context.Background(), spec, Options{Parallelism: 4, CellCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	want := artifactBytes(t, cold)

	axes := spec
	axes.Specs = nil // Assemble must not need the workload
	cache.lookups, cache.published = 0, 0
	res, ok := Assemble(axes, cache)
	if !ok {
		t.Fatal("Assemble missed on a fully warmed cache")
	}
	if got := artifactBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("assembled artifacts differ from the cold run")
	}
	if cache.lookups != total {
		t.Errorf("Assemble performed %d lookups, want %d", cache.lookups, total)
	}
	if cache.published != 0 {
		t.Errorf("Assemble published %d cells, want 0", cache.published)
	}
}

// TestAssembleAbortsOnFirstMiss: probing a cold or partial cache must be
// cheap — one lookup past the last hit, and a false result.
func TestAssembleAbortsOnFirstMiss(t *testing.T) {
	spec := testMatrix(t, 15)

	empty := newMemCellCache()
	if _, ok := Assemble(spec, empty); ok {
		t.Fatal("Assemble succeeded on an empty cache")
	}
	if empty.lookups != 1 {
		t.Errorf("cold probe cost %d lookups, want 1", empty.lookups)
	}

	cache := newMemCellCache()
	if _, err := Run(context.Background(), spec, Options{CellCache: cache}); err != nil {
		t.Fatal(err)
	}
	delete(cache.cells, [3]int{1, 0, 0}) // one hole mid-matrix
	if _, ok := Assemble(spec, cache); ok {
		t.Fatal("Assemble succeeded with a missing cell")
	}

	if _, ok := Assemble(spec, nil); ok {
		t.Fatal("Assemble succeeded with a nil cache")
	}
}

// TestAssembleRejectsMismatchedPayload mirrors the Run-path contract: a
// payload whose identity fields contradict the cell reads as a miss.
func TestAssembleRejectsMismatchedPayload(t *testing.T) {
	spec := testMatrix(t, 10)
	cache := newMemCellCache()
	if _, err := Run(context.Background(), spec, Options{CellCache: cache}); err != nil {
		t.Fatal(err)
	}
	k := [3]int{0, 0, 0}
	p := cache.cells[k]
	p.Seed++
	cache.cells[k] = p
	if _, ok := Assemble(spec, cache); ok {
		t.Fatal("Assemble accepted a payload with the wrong seed")
	}
}
