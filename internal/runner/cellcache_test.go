package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mrclone/internal/cluster"
)

// memCellCache is an in-memory CellCache that counts traffic.
type memCellCache struct {
	mu        sync.Mutex
	cells     map[[3]int]CellPayload
	lookups   int
	hits      int
	published int
}

func newMemCellCache() *memCellCache {
	return &memCellCache{cells: make(map[[3]int]CellPayload)}
}

func (c *memCellCache) Lookup(si, pi, run int) (CellPayload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	p, ok := c.cells[[3]int{si, pi, run}]
	if ok {
		c.hits++
	}
	return p, ok
}

func (c *memCellCache) Publish(si, pi, run int, p CellPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.published++
	c.cells[[3]int{si, pi, run}] = p
}

// artifactBytes renders all three deterministic artifact encodings.
func artifactBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteAggregateCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCellCacheByteIdentical is the core reuse contract: artifacts must be
// byte-identical whether 0%, 50%, or 100% of cells resolve from the cache,
// at any parallelism.
func TestCellCacheByteIdentical(t *testing.T) {
	spec := testMatrix(t, 20)
	total := len(spec.Schedulers) * len(spec.Points) * spec.Runs

	cold, err := Run(context.Background(), spec, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := artifactBytes(t, cold)

	// Fill a cache from a cold run.
	full := newMemCellCache()
	if _, err := Run(context.Background(), spec, Options{Parallelism: 2, CellCache: full}); err != nil {
		t.Fatal(err)
	}
	if full.published != total {
		t.Fatalf("cold run published %d cells, want %d", full.published, total)
	}

	for _, tc := range []struct {
		name string
		keep func(i int) bool
	}{
		{"100pct", func(int) bool { return true }},
		{"50pct", func(i int) bool { return i%2 == 0 }},
		{"0pct", func(int) bool { return false }},
	} {
		for _, par := range []int{1, 4} {
			partial := newMemCellCache()
			i := 0
			for k, v := range full.cells {
				if tc.keep(i) {
					partial.cells[k] = v
				}
				i++
			}
			prefilled := len(partial.cells)
			var lastDone, lastCached int
			res, err := Run(context.Background(), spec, Options{
				Parallelism: par,
				CellCache:   partial,
				CellProgress: func(done, cached, total int) {
					lastDone, lastCached = done, cached
				},
			})
			if err != nil {
				t.Fatalf("%s par=%d: %v", tc.name, par, err)
			}
			if got := artifactBytes(t, res); !bytes.Equal(got, want) {
				t.Fatalf("%s par=%d: artifacts differ from cold run", tc.name, par)
			}
			if partial.hits != prefilled {
				t.Errorf("%s par=%d: %d cache hits, want %d", tc.name, par, partial.hits, prefilled)
			}
			if fresh := total - prefilled; partial.published != fresh {
				t.Errorf("%s par=%d: %d cells published, want %d", tc.name, par, partial.published, fresh)
			}
			if lastDone != total || lastCached != prefilled {
				t.Errorf("%s par=%d: final cell progress %d/%d cached, want %d/%d",
					tc.name, par, lastCached, lastDone, prefilled, total)
			}
		}
	}
}

// TestCellCacheRejectsMismatchedPayload: a payload whose identity fields
// contradict the cell (stale or miskeyed cache) must read as a miss, so a
// bad cache degrades to recomputation, never a wrong artifact.
func TestCellCacheRejectsMismatchedPayload(t *testing.T) {
	spec := testMatrix(t, 10)
	cold, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := artifactBytes(t, cold)

	cache := newMemCellCache()
	if _, err := Run(context.Background(), spec, Options{CellCache: cache}); err != nil {
		t.Fatal(err)
	}
	for k, p := range cache.cells {
		p.Seed++ // every entry now claims the wrong replicate seed
		cache.cells[k] = p
	}
	cache.published = 0
	res, err := Run(context.Background(), spec, Options{CellCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := artifactBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("mismatched cache payloads leaked into the artifact")
	}
	total := len(spec.Schedulers) * len(spec.Points) * spec.Runs
	if cache.published != total {
		t.Fatalf("recomputed %d cells, want all %d", cache.published, total)
	}
}

// TestCellCacheKeepRawSkipsLookup: a cached payload carries no raw engine
// result, so KeepRaw runs must bypass lookups while still publishing.
func TestCellCacheKeepRawSkipsLookup(t *testing.T) {
	spec := testMatrix(t, 10)
	cache := newMemCellCache()
	if _, err := Run(context.Background(), spec, Options{CellCache: cache}); err != nil {
		t.Fatal(err)
	}
	cache.lookups, cache.published = 0, 0
	res, err := Run(context.Background(), spec, Options{CellCache: cache, KeepRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	if cache.lookups != 0 {
		t.Errorf("KeepRaw run performed %d cache lookups, want 0", cache.lookups)
	}
	if cache.published == 0 {
		t.Error("KeepRaw run published no cells")
	}
	for i := range res.Cells {
		if res.Cells[i].Raw == nil {
			t.Fatalf("cell %d lost its raw result", i)
		}
	}
}

// barrierCache is a CellCache whose lookups all block until n cells are in
// flight, then miss. It forces every cell of a matrix to be mid-execution
// simultaneously, making multi-cell failure deterministic.
type barrierCache struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiting int
	n       int
}

func newBarrierCache(n int) *barrierCache {
	b := &barrierCache{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrierCache) Lookup(si, pi, run int) (CellPayload, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waiting++
	b.cond.Broadcast()
	for b.waiting < b.n {
		b.cond.Wait()
	}
	return CellPayload{}, false
}

func (b *barrierCache) Publish(si, pi, run int, p CellPayload) {}

// TestCellErrorsJoined: every failed cell is reported with its coordinates,
// joined in matrix order, not just the first error out of the pool.
func TestCellErrorsJoined(t *testing.T) {
	spec := testMatrix(t, 20)
	spec.MaxSlots = 3 // every cell overflows deterministically
	total := len(spec.Schedulers) * len(spec.Points) * spec.Runs
	// One worker per cell, all held at the barrier until the whole matrix is
	// in flight: the first failure cancels the feed, but every cell is
	// already executing and must drain into the report.
	_, err := Run(context.Background(), spec, Options{
		Parallelism: total,
		CellCache:   newBarrierCache(total),
	})
	if err == nil {
		t.Fatal("overflowing matrix succeeded")
	}
	if !errors.Is(err, cluster.ErrSlotOverflow) {
		t.Fatalf("want ErrSlotOverflow, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "(si=0,pi=0,run=0)") {
		t.Errorf("error does not name the first cell's coordinates: %v", msg)
	}
	if n := strings.Count(msg, "(si="); n != total {
		t.Errorf("%d cell errors joined, want all %d: %v", n, total, msg)
	}
	// Matrix order: coordinates appear sorted by flat index.
	prev := -1
	for _, line := range strings.Split(msg, "\n") {
		var si, pi, run int
		if _, err := fmt.Sscanf(line, "runner: cell (si=%d,pi=%d,run=%d)", &si, &pi, &run); err != nil {
			continue
		}
		idx := (si*len(spec.Points)+pi)*spec.Runs + run
		if idx <= prev {
			t.Fatalf("cell errors out of matrix order: %v", msg)
		}
		prev = idx
	}
}
