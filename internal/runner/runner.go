// Package runner orchestrates experiment run matrices: the cross product of
// schedulers × sweep points × seed replicates that every figure of the
// paper's evaluation (and every ad-hoc parameter study) reduces to. Cells
// are executed on a bounded worker pool with context cancellation, and the
// whole matrix is deterministic: each cell's RNG seed is a pure function of
// the base seed and the cell's replicate coordinate, results are stored by
// cell index rather than completion order, and every reduction (averages,
// CDFs, artifacts) folds runs in index order — so artifacts are
// byte-identical at any parallelism level, including 1.
//
// Seed derivation deliberately uses common random numbers: only the
// replicate index shifts the seed (CellSeed), never the scheduler or sweep
// coordinate, so every scheduler and every sweep point face the same
// random workload realizations. That is the paired-comparison design of the
// paper's evaluation (each configuration averaged over the same ten seeds)
// and a classic variance-reduction technique for A/B scheduler comparisons.
//
// See README.md in this directory for the matrix model, the seed-derivation
// scheme, and the aggregation semantics.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
	"mrclone/internal/metrics"
	"mrclone/internal/sched"
)

// DefaultSeedStride separates replicate seeds. The stride is a prime large
// enough that replicate streams do not trivially overlap; it matches the
// historical sequential harness so regenerated artifacts stay comparable.
const DefaultSeedStride = 7919

// Errors reported by the runner.
var (
	ErrNoWorkload   = errors.New("runner: matrix needs a non-empty workload")
	ErrNoSchedulers = errors.New("runner: matrix needs at least one scheduler")
	ErrNoPoints     = errors.New("runner: matrix needs at least one sweep point")
	ErrNoRaw        = errors.New("runner: raw results were not kept (set Options.KeepRaw)")
)

// SchedulerSpec is one row of the matrix: a registered scheduler name plus
// its tunables.
type SchedulerSpec struct {
	// Name is the registry name passed to sched.Build ("srptms+c", "sca",
	// "mantri", ...).
	Name string
	// Params are the scheduler tunables; a sweep point may override them.
	Params sched.Params
}

// Point is one column of the matrix: a sweep coordinate with the cluster
// shape (and optionally the scheduler tunables) it maps to. Sweeping
// epsilon or r varies Params; sweeping cluster size varies Machines;
// speed-augmentation studies vary Speed.
type Point struct {
	// X is the coordinate as plotted (epsilon, r, machine count, ...).
	X float64
	// Machines is the cluster size M for this point. Required > 0.
	Machines int
	// Speed is the machine speed (0 means unit speed).
	Speed float64
	// Params, when non-nil, replaces the scheduler's Params at this point.
	Params *sched.Params
}

// Spec describes a run matrix over one workload.
type Spec struct {
	// Specs is the shared workload; every cell simulates the same jobs.
	// Treated as read-only: cells running concurrently share it.
	Specs []job.Spec
	// Schedulers is the scheduler axis. Required non-empty.
	Schedulers []SchedulerSpec
	// Points is the sweep axis. Required non-empty.
	Points []Point
	// Runs is the number of seed replicates per (scheduler, point) pair
	// (the paper repeats each simulation ten times). 0 means 1.
	Runs int
	// BaseSeed anchors the replicate seeds; see CellSeed.
	BaseSeed int64
	// SeedStride overrides the replicate seed spacing (0 = DefaultSeedStride).
	SeedStride int64
	// MaxSlots is passed through to cluster.Config.
	MaxSlots int64
}

// CellSeed derives the RNG seed of replicate run from the base seed. The
// scheduler and sweep coordinates are deliberately excluded (common random
// numbers — see the package comment); the replicate index is the only
// coordinate that shifts the seed, so results are reproducible at any
// parallelism level and paired across the other two axes.
func CellSeed(base int64, stride int64, run int) int64 {
	if stride == 0 {
		stride = DefaultSeedStride
	}
	return base + int64(run)*stride
}

// normalize fills Spec defaults.
func (s Spec) normalize() Spec {
	if s.Runs <= 0 {
		s.Runs = 1
	}
	return s
}

// Total returns the number of matrix cells after normalization:
// schedulers × points × runs.
func (s Spec) Total() int {
	s = s.normalize()
	return len(s.Schedulers) * len(s.Points) * s.Runs
}

// Validate rejects malformed matrices before any cell runs. Run calls it
// internally; service layers call it up front so malformed specs are
// rejected at submission time rather than after queueing.
func (s Spec) Validate() error {
	if len(s.Specs) == 0 {
		return ErrNoWorkload
	}
	if len(s.Schedulers) == 0 {
		return ErrNoSchedulers
	}
	if len(s.Points) == 0 {
		return ErrNoPoints
	}
	for i, p := range s.Points {
		if p.Machines <= 0 {
			return fmt.Errorf("runner: point %d (x=%v): machines %d, need > 0", i, p.X, p.Machines)
		}
	}
	return nil
}

// Options configures matrix execution, not matrix content.
type Options struct {
	// Parallelism bounds concurrently running cells. <= 0 means
	// runtime.GOMAXPROCS(0). Results do not depend on it.
	Parallelism int
	// Progress, when non-nil, is called after each cell completes with the
	// number of finished cells and the matrix size. Calls are serialized
	// and monotone in done; keep the callback cheap.
	Progress func(done, total int)
	// CellProgress, when non-nil, is called after each cell lands with the
	// counts of finished cells, cells resolved from CellCache, and the
	// matrix size. Calls are serialized and monotone in done; keep the
	// callback cheap.
	CellProgress func(done, cached, total int)
	// CellTime, when non-nil, is called after each cell lands with the
	// wall-clock duration the cell took to resolve and whether it came from
	// CellCache. Calls are serialized with Progress/CellProgress; keep the
	// callback cheap. Durations are observational only — they depend on the
	// machine and on cache state, never on matrix content.
	CellTime func(d time.Duration, fromCache bool)
	// CellCache, when non-nil, is consulted before each cell executes and
	// receives each freshly computed cell. A Lookup hit skips the
	// simulation entirely: the payload is restamped with this matrix's
	// coordinates, so the reduced artifacts are byte-identical whether 0%,
	// 50%, or 100% of cells resolved from the cache, at any parallelism.
	// Lookups are skipped when KeepRaw is set (a cached payload carries no
	// raw result); Publish still runs.
	CellCache CellCache
	// KeepRaw retains each cell's full *cluster.Result (per-job records),
	// enabling CDF reductions at the cost of memory proportional to
	// jobs × cells.
	KeepRaw bool
}

// CellCache supplies previously computed cell payloads and receives fresh
// ones. Implementations are called concurrently from the worker pool and
// must be safe for concurrent use; how cells are keyed (e.g. the content
// hashes of internal/service/spec.CellHash) is the implementation's
// business — the runner only speaks coordinates.
type CellCache interface {
	// Lookup returns the payload of cell (si, pi, run) if it resolves.
	Lookup(si, pi, run int) (CellPayload, bool)
	// Publish offers the payload of a freshly computed cell. Failures to
	// store are the implementation's to swallow: publishing is an
	// optimization, never a correctness requirement.
	Publish(si, pi, run int, p CellPayload)
}

// CellPayload is the coordinate-independent outcome of one cell —
// everything CellResult carries except its (scheduler, point, run) position
// in a particular matrix. It is the unit of cross-matrix caching: a payload
// computed inside one matrix restamps as the CellResult of any other matrix
// whose cell has the same content identity.
type CellPayload struct {
	Seed int64 `json:"seed"`

	SchedulerName string  `json:"scheduler_name"` // engine-reported name
	X             float64 `json:"x"`
	Machines      int     `json:"machines"`
	Speed         float64 `json:"speed"`

	Summary       metrics.FlowtimeSummary `json:"summary"`
	Slots         int64                   `json:"slots"`
	TotalCopies   int64                   `json:"total_copies"`
	CloneCopies   int64                   `json:"clone_copies"`
	MachineSlots  int64                   `json:"machine_slots"`
	WastedCopyWrk float64                 `json:"wasted_copy_work"`
	FinishedJobs  int                     `json:"finished_jobs"`
}

// CellResult is the outcome of one matrix cell, identified by its
// coordinates (Scheduler, Point, Run) on the three axes. The embedded
// payload keeps the JSON encoding flat and byte-identical to the historical
// artifact schema.
type CellResult struct {
	Scheduler int `json:"scheduler"` // index into Spec.Schedulers
	Point     int `json:"point"`     // index into Spec.Points
	Run       int `json:"run"`       // replicate index
	CellPayload

	// Raw is the full simulation result; nil unless Options.KeepRaw.
	Raw *cluster.Result `json:"-"`
}

// Result holds a completed matrix, cells stored scheduler-major, then
// point, then run — a fixed order independent of execution interleaving.
type Result struct {
	Schedulers []string     `json:"schedulers"` // registry names, matrix order
	Points     []float64    `json:"points"`     // sweep coordinates, matrix order
	Runs       int          `json:"runs"`
	BaseSeed   int64        `json:"base_seed"`
	Cells      []CellResult `json:"cells"`
}

// cellIndex maps coordinates to the flat cell slot.
func (r *Result) cellIndex(si, pi, run int) int {
	return (si*len(r.Points)+pi)*r.Runs + run
}

// Cell returns the result of one cell by coordinates.
func (r *Result) Cell(si, pi, run int) *CellResult {
	return &r.Cells[r.cellIndex(si, pi, run)]
}

// cellError is one failed cell, kept with its flat index so the joined
// error lists cells in matrix order regardless of completion order.
type cellError struct {
	idx int
	err error
}

// Run executes every cell of the matrix on a bounded worker pool and
// returns the assembled result. Cells whose payloads resolve from
// Options.CellCache skip execution and reduce alongside fresh cells in
// matrix order. The first cell error (or a context cancellation) stops the
// feed and drains in-flight cells; every cell that failed is reported,
// joined in matrix order with its (scheduler, point, run) coordinates.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	spec = spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	total := len(spec.Schedulers) * len(spec.Points) * spec.Runs
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	res := &Result{
		Schedulers: make([]string, len(spec.Schedulers)),
		Points:     make([]float64, len(spec.Points)),
		Runs:       spec.Runs,
		BaseSeed:   spec.BaseSeed,
		Cells:      make([]CellResult, total),
	}
	for i, s := range spec.Schedulers {
		res.Schedulers[i] = s.Name
	}
	for i, p := range spec.Points {
		res.Points[i] = p.X
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu     sync.Mutex
		errs   []cellError
		done   int
		cached int
		wg     sync.WaitGroup
	)
	fail := func(idx int, err error) {
		mu.Lock()
		errs = append(errs, cellError{idx: idx, err: err})
		if len(errs) == 1 {
			cancel() // stop the feed; in-flight cells drain and may add errors
		}
		mu.Unlock()
	}
	land := func(idx int, cell *CellResult, fromCache bool, dur time.Duration) {
		mu.Lock()
		res.Cells[idx] = *cell
		done++
		if fromCache {
			cached++
		}
		if opts.Progress != nil {
			opts.Progress(done, total)
		}
		if opts.CellProgress != nil {
			opts.CellProgress(done, cached, total)
		}
		if opts.CellTime != nil {
			opts.CellTime(dur, fromCache)
		}
		mu.Unlock()
	}
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				start := time.Now()
				if cell, ok := spec.cachedCell(idx, opts); ok {
					land(idx, cell, true, time.Since(start))
					continue
				}
				cell, err := spec.runCell(idx, opts.KeepRaw)
				if err != nil {
					fail(idx, err)
					continue
				}
				if opts.CellCache != nil {
					si, pi, run := spec.cellCoords(idx)
					opts.CellCache.Publish(si, pi, run, cell.CellPayload)
				}
				land(idx, cell, false, time.Since(start))
			}
		}()
	}
feed:
	for idx := 0; idx < total; idx++ {
		select {
		case idxCh <- idx:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if len(errs) > 0 {
		// Matrix order, not completion order, so the joined message is
		// deterministic for a fixed set of failing cells.
		sort.Slice(errs, func(i, j int) bool { return errs[i].idx < errs[j].idx })
		joined := make([]error, len(errs))
		for i, ce := range errs {
			joined[i] = ce.err
		}
		return nil, errors.Join(joined...)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("runner: canceled after %d/%d cells: %w", done, total, err)
	}
	return res, nil
}

// Assemble builds the full matrix result purely from cache, without
// simulating (or even carrying) a workload: every cell must resolve from
// the CellCache with identity fields matching the matrix coordinates, or
// Assemble reports false. spec.Specs may be nil — only the scheduler axis,
// sweep axis, and seeding scheme are read (see
// internal/service/spec.Axes) — which is what makes the fully-cached fast
// path cheap: a submission whose cells all persist from earlier matrices
// reduces to Total() cache reads, no trace expansion and no worker slot.
// Assemble aborts on the first miss, so probing a cold spec costs one
// lookup.
func Assemble(spec Spec, cache CellCache) (*Result, bool) {
	if cache == nil {
		return nil, false
	}
	spec = spec.normalize()
	// The workload-free subset of Validate: Assemble never simulates, so
	// an empty Specs is fine, but the axes must still describe a matrix.
	if len(spec.Schedulers) == 0 || len(spec.Points) == 0 {
		return nil, false
	}
	total := spec.Total()
	res := &Result{
		Schedulers: make([]string, len(spec.Schedulers)),
		Points:     make([]float64, len(spec.Points)),
		Runs:       spec.Runs,
		BaseSeed:   spec.BaseSeed,
		Cells:      make([]CellResult, total),
	}
	for i, s := range spec.Schedulers {
		res.Schedulers[i] = s.Name
	}
	for i, p := range spec.Points {
		res.Points[i] = p.X
	}
	opts := Options{CellCache: cache}
	for idx := 0; idx < total; idx++ {
		cell, ok := spec.cachedCell(idx, opts)
		if !ok {
			return nil, false
		}
		res.Cells[idx] = *cell
	}
	return res, true
}

// cellCoords maps a flat cell index to its (scheduler, point, run)
// coordinates; the inverse of Result.cellIndex.
func (s *Spec) cellCoords(idx int) (si, pi, run int) {
	run = idx % s.Runs
	pi = (idx / s.Runs) % len(s.Points)
	si = idx / (s.Runs * len(s.Points))
	return si, pi, run
}

// cachedCell resolves one cell from Options.CellCache, restamped with this
// matrix's coordinates. Payloads whose identity fields contradict the cell —
// a stale or miskeyed cache entry — are rejected as misses, so a bad cache
// degrades to recomputation, never to a wrong artifact.
func (s *Spec) cachedCell(idx int, opts Options) (*CellResult, bool) {
	if opts.CellCache == nil || opts.KeepRaw {
		return nil, false
	}
	si, pi, run := s.cellCoords(idx)
	p, ok := opts.CellCache.Lookup(si, pi, run)
	if !ok {
		return nil, false
	}
	pt := s.Points[pi]
	if p.Seed != CellSeed(s.BaseSeed, s.SeedStride, run) ||
		p.X != pt.X || p.Machines != pt.Machines {
		return nil, false
	}
	return &CellResult{Scheduler: si, Point: pi, Run: run, CellPayload: p}, true
}

// runCell simulates one cell. It is called concurrently: everything it
// touches on spec is read-only, and it builds a private scheduler and
// engine.
func (s *Spec) runCell(idx int, keepRaw bool) (*CellResult, error) {
	si, pi, run := s.cellCoords(idx)

	ss := s.Schedulers[si]
	pt := s.Points[pi]
	params := ss.Params
	if pt.Params != nil {
		params = *pt.Params
	}
	seed := CellSeed(s.BaseSeed, s.SeedStride, run)
	fail := func(err error) (*CellResult, error) {
		return nil, fmt.Errorf("runner: cell (si=%d,pi=%d,run=%d) %s x=%v: %w",
			si, pi, run, ss.Name, pt.X, err)
	}

	schedImpl, err := sched.Build(ss.Name, params)
	if err != nil {
		return fail(err)
	}
	eng, err := cluster.New(cluster.Config{
		Machines: pt.Machines,
		Speed:    pt.Speed,
		MaxSlots: s.MaxSlots,
		Seed:     seed,
	}, schedImpl, s.Specs)
	if err != nil {
		return fail(err)
	}
	raw, err := eng.Run()
	if err != nil {
		return fail(err)
	}
	sum, err := metrics.Summarize(raw)
	if err != nil {
		return fail(err)
	}
	cell := &CellResult{
		Scheduler: si,
		Point:     pi,
		Run:       run,
		CellPayload: CellPayload{
			Seed:          seed,
			SchedulerName: raw.Scheduler,
			X:             pt.X,
			Machines:      raw.Machines,
			Speed:         raw.Speed,
			Summary:       sum,
			Slots:         raw.Slots,
			TotalCopies:   raw.TotalCopies,
			CloneCopies:   raw.CloneCopies,
			MachineSlots:  raw.MachineSlots,
			WastedCopyWrk: raw.WastedCopyWrk,
			FinishedJobs:  raw.FinishedJobs,
		},
	}
	if keepRaw {
		cell.Raw = raw
	}
	return cell, nil
}
