package runner

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"mrclone/internal/cluster"
	"mrclone/internal/job"
	"mrclone/internal/metrics"
	"mrclone/internal/sched"
	"mrclone/internal/trace"
)

// testSpecs builds a small mixed map/reduce workload.
func testSpecs(t *testing.T, jobs int) []job.Spec {
	t.Helper()
	p := trace.GoogleParams()
	p.Jobs = jobs
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// testMatrix is a 2-scheduler × 3-point × 2-run matrix.
func testMatrix(t *testing.T, jobs int) Spec {
	t.Helper()
	params := sched.Params{Epsilon: 0.9, DeviationFactor: 3}
	eps06 := sched.Params{Epsilon: 0.6, DeviationFactor: 3}
	return Spec{
		Specs: testSpecs(t, jobs),
		Schedulers: []SchedulerSpec{
			{Name: "srptms+c", Params: params},
			{Name: "fair"},
		},
		Points: []Point{
			{X: 60, Machines: 60},
			{X: 80, Machines: 80},
			{X: 0.6, Machines: 80, Params: &eps06},
		},
		Runs:     2,
		BaseSeed: 1,
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	spec := testMatrix(t, 30)
	var artifacts [][]byte
	for _, par := range []int{1, 4, 16} {
		res, err := Run(context.Background(), spec, Options{Parallelism: par, KeepRaw: true})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var jsonBuf, csvBuf bytes.Buffer
		if err := res.WriteJSON(&jsonBuf); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteAggregateCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, append(jsonBuf.Bytes(), csvBuf.Bytes()...))
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) || !bytes.Equal(artifacts[0], artifacts[2]) {
		t.Fatal("artifacts differ across parallelism 1/4/16")
	}
}

// TestMatchesSequentialBaseline proves the runner's aggregation reproduces
// the hand-rolled sequential loop (engine per cell, summaries averaged in
// run order) bit for bit.
func TestMatchesSequentialBaseline(t *testing.T) {
	spec := testMatrix(t, 25)
	res, err := Run(context.Background(), spec, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for si, ss := range spec.Schedulers {
		for pi, pt := range spec.Points {
			var want metrics.FlowtimeSummary
			for run := 0; run < spec.Runs; run++ {
				params := ss.Params
				if pt.Params != nil {
					params = *pt.Params
				}
				s, err := sched.Build(ss.Name, params)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := cluster.New(cluster.Config{
					Machines: pt.Machines,
					Seed:     CellSeed(spec.BaseSeed, 0, run),
				}, s, spec.Specs)
				if err != nil {
					t.Fatal(err)
				}
				raw, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				sum, err := metrics.Summarize(raw)
				if err != nil {
					t.Fatal(err)
				}
				want.Jobs = sum.Jobs
				want.MeanFlowtime += sum.MeanFlowtime
				want.WeightedFlowtime += sum.WeightedFlowtime
				want.P50 += sum.P50
			}
			n := float64(spec.Runs)
			agg := res.Aggregate(si, pi)
			if agg.Jobs != want.Jobs ||
				agg.MeanFlowtime != want.MeanFlowtime/n ||
				agg.WeightedFlowtime != want.WeightedFlowtime/n ||
				agg.P50 != want.P50/n {
				t.Errorf("scheduler %s point %v: aggregate %+v diverges from sequential baseline",
					ss.Name, pt.X, agg)
			}
		}
	}
}

func TestCDFAveraging(t *testing.T) {
	spec := testMatrix(t, 25)
	res, err := Run(context.Background(), spec, Options{KeepRaw: true})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := res.CDF(0, 0, 0, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	prev := -1.0
	for _, p := range pts {
		if p.Fraction < prev-1e-12 || p.Fraction < 0 || p.Fraction > 1 {
			t.Fatalf("bad CDF point %+v", p)
		}
		prev = p.Fraction
	}

	// Without KeepRaw the CDF must fail loudly.
	lean, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lean.CDF(0, 0, 0, 300, 7); !errors.Is(err, ErrNoRaw) {
		t.Fatalf("want ErrNoRaw, got %v", err)
	}
}

func TestProgressMonotone(t *testing.T) {
	spec := testMatrix(t, 20)
	var seen []int
	total := len(spec.Schedulers) * len(spec.Points) * spec.Runs
	_, err := Run(context.Background(), spec, Options{
		Parallelism: 4,
		Progress: func(done, tot int) {
			if tot != total {
				t.Errorf("total = %d, want %d", tot, total)
			}
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != total {
		t.Fatalf("progress calls = %d, want %d", len(seen), total)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress not monotone: %v", seen)
		}
	}
}

func TestCancellation(t *testing.T) {
	spec := testMatrix(t, 30)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Run(ctx, spec, Options{
		Parallelism: 1,
		Progress: func(done, total int) {
			calls++
			if done == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls >= len(spec.Schedulers)*len(spec.Points)*spec.Runs {
		t.Fatalf("cancellation did not stop the feed: %d cells ran", calls)
	}
}

func TestCellErrorsAbort(t *testing.T) {
	spec := testMatrix(t, 20)
	spec.Schedulers[1].Name = "bogus"
	if _, err := Run(context.Background(), spec, Options{}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bogus scheduler: %v", err)
	}
	spec = testMatrix(t, 20)
	spec.MaxSlots = 3 // every cell overflows
	if _, err := Run(context.Background(), spec, Options{}); !errors.Is(err, cluster.ErrSlotOverflow) {
		t.Fatalf("want ErrSlotOverflow, got %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	specs := testSpecs(t, 5)
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"empty workload", Spec{Schedulers: []SchedulerSpec{{Name: "fair"}},
			Points: []Point{{Machines: 10}}}, ErrNoWorkload},
		{"no schedulers", Spec{Specs: specs, Points: []Point{{Machines: 10}}}, ErrNoSchedulers},
		{"no points", Spec{Specs: specs, Schedulers: []SchedulerSpec{{Name: "fair"}}}, ErrNoPoints},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.spec, Options{}); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	bad := Spec{Specs: specs, Schedulers: []SchedulerSpec{{Name: "fair"}},
		Points: []Point{{Machines: 0}}}
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("zero-machine point accepted")
	}
}

func TestCellSeedScheme(t *testing.T) {
	if CellSeed(1, 0, 0) != 1 {
		t.Error("run 0 must use the base seed unchanged")
	}
	if CellSeed(1, 0, 3) != 1+3*DefaultSeedStride {
		t.Error("default stride not applied")
	}
	if CellSeed(5, 2, 3) != 11 {
		t.Error("explicit stride not applied")
	}
}

func TestCellIndexRoundTrip(t *testing.T) {
	spec := testMatrix(t, 5)
	res, err := Run(context.Background(), spec, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for si := range spec.Schedulers {
		for pi := range spec.Points {
			for run := 0; run < spec.Runs; run++ {
				c := res.Cell(si, pi, run)
				if c.Scheduler != si || c.Point != pi || c.Run != run {
					t.Fatalf("cell (%d,%d,%d) holds coordinates (%d,%d,%d)",
						si, pi, run, c.Scheduler, c.Point, c.Run)
				}
			}
		}
	}
}
