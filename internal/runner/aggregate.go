package runner

import (
	"fmt"

	"mrclone/internal/metrics"
)

// Aggregate is the replicate-averaged outcome of one (scheduler, point)
// pair: the flowtime metrics the paper plots plus cloning-overhead and
// machine-occupancy accounting. All means fold the runs in replicate order,
// so the floating-point result is independent of execution interleaving.
//
// Averaging semantics follow the paper's evaluation (and the historical
// sequential harness): percentiles are per-run percentiles averaged across
// runs, not percentiles of the pooled sample; Min/MaxFlowtime are extrema
// across runs; Jobs is the per-run job count (identical in every run).
type Aggregate struct {
	Scheduler string  `json:"scheduler"`
	X         float64 `json:"x"`
	Runs      int     `json:"runs"`
	Jobs      int     `json:"jobs"`

	MeanFlowtime     float64 `json:"mean_flowtime"`
	WeightedFlowtime float64 `json:"weighted_flowtime"`
	TotalWeighted    float64 `json:"total_weighted"`
	P50              float64 `json:"p50"`
	P90              float64 `json:"p90"`
	P99              float64 `json:"p99"`
	MinFlowtime      int64   `json:"min_flowtime"`
	MaxFlowtime      int64   `json:"max_flowtime"`

	// MeanSlots is the mean final slot (makespan proxy).
	MeanSlots float64 `json:"mean_slots"`
	// MeanTotalCopies / MeanCloneCopies are mean copies launched per run.
	MeanTotalCopies float64 `json:"mean_total_copies"`
	MeanCloneCopies float64 `json:"mean_clone_copies"`
	// MeanWastedWork is the mean workload of killed clone copies (the
	// cloning overhead the paper discusses in Section VI).
	MeanWastedWork float64 `json:"mean_wasted_work"`
	// MeanOccupancy is the mean busy fraction: machine-slots consumed over
	// machine-slots available until the last job finished.
	MeanOccupancy float64 `json:"mean_occupancy"`
}

// Summary views the aggregate as a metrics.FlowtimeSummary (the type the
// rendering layers consume).
func (a Aggregate) Summary() metrics.FlowtimeSummary {
	return metrics.FlowtimeSummary{
		Jobs:             a.Jobs,
		MeanFlowtime:     a.MeanFlowtime,
		WeightedFlowtime: a.WeightedFlowtime,
		TotalWeighted:    a.TotalWeighted,
		MinFlowtime:      a.MinFlowtime,
		MaxFlowtime:      a.MaxFlowtime,
		P50:              a.P50,
		P90:              a.P90,
		P99:              a.P99,
	}
}

// Aggregate reduces the Runs replicates of one (scheduler, point) pair.
func (r *Result) Aggregate(si, pi int) Aggregate {
	agg := Aggregate{
		Scheduler: r.Schedulers[si],
		X:         r.Points[pi],
		Runs:      r.Runs,
	}
	for run := 0; run < r.Runs; run++ {
		c := r.Cell(si, pi, run)
		s := c.Summary
		agg.Jobs = s.Jobs
		agg.MeanFlowtime += s.MeanFlowtime
		agg.WeightedFlowtime += s.WeightedFlowtime
		agg.TotalWeighted += s.TotalWeighted
		agg.P50 += s.P50
		agg.P90 += s.P90
		agg.P99 += s.P99
		if run == 0 || s.MinFlowtime < agg.MinFlowtime {
			agg.MinFlowtime = s.MinFlowtime
		}
		if s.MaxFlowtime > agg.MaxFlowtime {
			agg.MaxFlowtime = s.MaxFlowtime
		}
		agg.MeanSlots += float64(c.Slots)
		agg.MeanTotalCopies += float64(c.TotalCopies)
		agg.MeanCloneCopies += float64(c.CloneCopies)
		agg.MeanWastedWork += c.WastedCopyWrk
		if c.Machines > 0 && c.Slots > 0 {
			agg.MeanOccupancy += float64(c.MachineSlots) / (float64(c.Machines) * float64(c.Slots))
		}
	}
	n := float64(r.Runs)
	agg.MeanFlowtime /= n
	agg.WeightedFlowtime /= n
	agg.TotalWeighted /= n
	agg.P50 /= n
	agg.P90 /= n
	agg.P99 /= n
	agg.MeanSlots /= n
	agg.MeanTotalCopies /= n
	agg.MeanCloneCopies /= n
	agg.MeanWastedWork /= n
	agg.MeanOccupancy /= n
	return agg
}

// Aggregates reduces every (scheduler, point) pair, scheduler-major.
func (r *Result) Aggregates() []Aggregate {
	out := make([]Aggregate, 0, len(r.Schedulers)*len(r.Points))
	for si := range r.Schedulers {
		for pi := range r.Points {
			out = append(out, r.Aggregate(si, pi))
		}
	}
	return out
}

// CDF averages the empirical flowtime CDF of one (scheduler, point) pair
// over its replicates at evenly spaced points in [lo, hi], replicate order.
// Requires the matrix to have been run with Options.KeepRaw.
func (r *Result) CDF(si, pi int, lo, hi float64, points int) ([]metrics.CDFPoint, error) {
	if points < 2 || hi <= lo {
		return nil, fmt.Errorf("runner: bad CDF range [%v, %v] x %d", lo, hi, points)
	}
	acc := make([]metrics.CDFPoint, points)
	for run := 0; run < r.Runs; run++ {
		c := r.Cell(si, pi, run)
		if c.Raw == nil {
			return nil, fmt.Errorf("%w: cell %s x=%v run=%d", ErrNoRaw, c.SchedulerName, c.X, run)
		}
		pts, err := metrics.FlowtimeCDF(c.Raw, lo, hi, points)
		if err != nil {
			return nil, err
		}
		for i, pt := range pts {
			acc[i].X = pt.X
			acc[i].Fraction += pt.Fraction
		}
	}
	for i := range acc {
		acc[i].Fraction /= float64(r.Runs)
	}
	return acc, nil
}
