package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// artifact is the JSON schema of a completed matrix: the axes, every cell,
// and the replicate-averaged aggregates. Field order is fixed by the struct,
// and all values are pure functions of (workload, base seed), so the
// encoding is byte-identical across runs at any parallelism level.
type artifact struct {
	Schedulers []string     `json:"schedulers"`
	Points     []float64    `json:"points"`
	Runs       int          `json:"runs"`
	BaseSeed   int64        `json:"base_seed"`
	Cells      []CellResult `json:"cells"`
	Aggregates []Aggregate  `json:"aggregates"`
}

// WriteJSON writes the matrix result (cells plus aggregates) as indented
// JSON. The output is deterministic: identical matrices produce identical
// bytes regardless of the parallelism they ran at.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifact{
		Schedulers: r.Schedulers,
		Points:     r.Points,
		Runs:       r.Runs,
		BaseSeed:   r.BaseSeed,
		Cells:      r.Cells,
		Aggregates: r.Aggregates(),
	})
}

// ftoa formats floats with the shortest round-trip representation so CSV
// artifacts are deterministic and lossless.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes one row per cell in matrix order (scheduler-major, then
// point, then run). Deterministic for the same reasons as WriteJSON.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scheduler,x,run,seed,jobs,mean_flowtime,weighted_flowtime,"+
		"p50,p90,p99,slots,total_copies,clone_copies,wasted_copy_work,machine_slots"); err != nil {
		return err
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%s,%s,%s,%s,%s,%d,%d,%d,%s,%d\n",
			r.Schedulers[c.Scheduler], ftoa(c.X), c.Run, c.Seed, c.Summary.Jobs,
			ftoa(c.Summary.MeanFlowtime), ftoa(c.Summary.WeightedFlowtime),
			ftoa(c.Summary.P50), ftoa(c.Summary.P90), ftoa(c.Summary.P99),
			c.Slots, c.TotalCopies, c.CloneCopies, ftoa(c.WastedCopyWrk), c.MachineSlots)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteAggregateCSV writes one row per (scheduler, point) pair with the
// replicate-averaged metrics — the shape the paper's figures plot.
func (r *Result) WriteAggregateCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scheduler,x,runs,jobs,mean_flowtime,weighted_flowtime,"+
		"p50,p90,p99,mean_slots,mean_total_copies,mean_clone_copies,mean_wasted_work,mean_occupancy"); err != nil {
		return err
	}
	for _, a := range r.Aggregates() {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			a.Scheduler, ftoa(a.X), a.Runs, a.Jobs,
			ftoa(a.MeanFlowtime), ftoa(a.WeightedFlowtime),
			ftoa(a.P50), ftoa(a.P90), ftoa(a.P99), ftoa(a.MeanSlots),
			ftoa(a.MeanTotalCopies), ftoa(a.MeanCloneCopies),
			ftoa(a.MeanWastedWork), ftoa(a.MeanOccupancy))
		if err != nil {
			return err
		}
	}
	return nil
}
