// Package trace generates and serializes synthetic MapReduce workload
// traces calibrated to the Google cluster-usage statistics the paper reports
// in Table II:
//
//	jobs                 6064
//	trace duration (s)   35032
//	avg tasks per job    26.31
//	min task duration    12.8 s
//	max task duration    22919.3 s
//	avg task duration    1179.7 s
//	priorities           0–11, used as job weights
//
// The paper consumes the real trace only through per-job task counts,
// per-task duration statistics, arrival times, and priorities; the generator
// reproduces those marginals (heavy-tailed task counts and durations) so the
// schedulers exercise identical code paths. See DESIGN.md §2 for the
// substitution argument.
//
// Each job's task durations follow Scaled(BoundedPareto(1, ratio, alpha)),
// i.e. a bounded Pareto with per-job scale: heavy-tailed within-job
// variation is exactly the straggler model of Section III-A.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mrclone/internal/dist"
	"mrclone/internal/job"
	"mrclone/internal/rng"
)

// Table II constants from the paper.
const (
	GoogleJobs        = 6064
	GoogleSpanSeconds = 35032
	GoogleMeanTasks   = 26.31
	GoogleMinTaskDur  = 12.8
	GoogleMaxTaskDur  = 22919.3
	GoogleMeanTaskDur = 1179.7
	GoogleMaxPriority = 11
)

// Params configures the generator. The zero value is invalid; use
// GoogleParams for a Table II-calibrated workload. The JSON tags are the
// wire names used by the service spec (internal/service/spec).
type Params struct {
	Jobs int   `json:"jobs"` // number of jobs
	Span int64 `json:"span"` // arrival window in slots (seconds)

	MeanTasksPerJob float64 `json:"mean_tasks_per_job"` // target mean of the heavy-tailed task count
	MaxTasksPerJob  int     `json:"max_tasks_per_job"`  // cap on tasks per job

	MeanTaskDuration float64 `json:"mean_task_duration"` // target mean task duration across all tasks
	MinTaskDuration  float64 `json:"min_task_duration"`  // support floor (Table II minimum)
	MaxTaskDuration  float64 `json:"max_task_duration"`  // support ceiling (Table II maximum)

	// WithinJobAlpha is the bounded-Pareto tail index of task durations
	// inside one job phase; smaller is heavier (more stragglers). 1.5
	// reproduces the heavy tails reported for production clusters.
	WithinJobAlpha float64 `json:"within_job_alpha"`
	// WithinJobRatio is max/min duration within one job phase.
	WithinJobRatio float64 `json:"within_job_ratio"`
	// DurationCV is the coefficient of variation of the per-job duration
	// noise across jobs (between-job skew on top of the size correlation).
	DurationCV float64 `json:"duration_cv"`
	// CountDurationExponent couples task duration to job size: a job with n
	// tasks scales its duration by (n / MeanTasksPerJob)^exponent. Positive
	// values reproduce the production-trace pattern that small jobs have
	// short tasks (which is why mean job flowtime sits far below mean task
	// duration in the paper's evaluation).
	CountDurationExponent float64 `json:"count_duration_exponent"`
	// ReduceFraction is the expected fraction of a job's tasks that are
	// reduce tasks.
	ReduceFraction float64 `json:"reduce_fraction"`
	// PriorityBias in (0,1) skews priorities low: P(priority=k) ~ bias^k.
	PriorityBias float64 `json:"priority_bias"`

	Seed int64 `json:"seed"`
}

// GoogleParams returns parameters calibrated to Table II.
func GoogleParams() Params {
	return Params{
		Jobs:                  GoogleJobs,
		Span:                  GoogleSpanSeconds,
		MeanTasksPerJob:       GoogleMeanTasks,
		MaxTasksPerJob:        500,
		MeanTaskDuration:      GoogleMeanTaskDur,
		MinTaskDuration:       GoogleMinTaskDur,
		MaxTaskDuration:       GoogleMaxTaskDur,
		WithinJobAlpha:        2.5,
		WithinJobRatio:        5,
		DurationCV:            2,
		CountDurationExponent: 0.8,
		ReduceFraction:        0.3,
		PriorityBias:          0.65,
		Seed:                  1,
	}
}

// Validate checks generator parameters.
func (p Params) Validate() error {
	switch {
	case p.Jobs <= 0:
		return fmt.Errorf("trace: jobs %d", p.Jobs)
	case p.Span <= 0:
		return fmt.Errorf("trace: span %d", p.Span)
	case p.MeanTasksPerJob < 1:
		return fmt.Errorf("trace: mean tasks %v", p.MeanTasksPerJob)
	case p.MaxTasksPerJob < 2:
		return fmt.Errorf("trace: max tasks %d", p.MaxTasksPerJob)
	case p.MeanTaskDuration <= 0 || p.MinTaskDuration <= 0:
		return fmt.Errorf("trace: durations mean=%v min=%v", p.MeanTaskDuration, p.MinTaskDuration)
	case p.MaxTaskDuration <= p.MinTaskDuration:
		return fmt.Errorf("trace: max duration %v <= min %v", p.MaxTaskDuration, p.MinTaskDuration)
	case p.WithinJobAlpha <= 1:
		return fmt.Errorf("trace: within-job alpha %v must exceed 1", p.WithinJobAlpha)
	case p.WithinJobRatio <= 1:
		return fmt.Errorf("trace: within-job ratio %v must exceed 1", p.WithinJobRatio)
	case p.DurationCV <= 0:
		return fmt.Errorf("trace: duration CV %v", p.DurationCV)
	case p.CountDurationExponent < 0 || p.CountDurationExponent > 2:
		return fmt.Errorf("trace: count-duration exponent %v outside [0, 2]", p.CountDurationExponent)
	case p.ReduceFraction < 0 || p.ReduceFraction >= 1:
		return fmt.Errorf("trace: reduce fraction %v outside [0,1)", p.ReduceFraction)
	case p.PriorityBias <= 0 || p.PriorityBias >= 1:
		return fmt.Errorf("trace: priority bias %v outside (0,1)", p.PriorityBias)
	}
	return nil
}

// JobRow is the serializable description of one trace job. Durations use the
// Scaled(BoundedPareto(1, Ratio, Alpha)) parametrization per phase. The JSON
// tags mirror the CSV column names (csvHeader) and are the wire names used
// by the service spec (internal/service/spec).
type JobRow struct {
	ID          int     `json:"id"`
	Arrival     int64   `json:"arrival"`
	Priority    int     `json:"priority"` // 0..11; job weight = Priority + 1 (weights must be > 0)
	MapTasks    int     `json:"map_tasks"`
	ReduceTasks int     `json:"reduce_tasks"`
	MapScale    float64 `json:"map_scale"`
	ReduceScale float64 `json:"reduce_scale"`
	Ratio       float64 `json:"ratio"`
	Alpha       float64 `json:"alpha"`
}

// Weight returns the job weight derived from the trace priority. The paper
// treats the 0–11 priority as the weight; our model requires strictly
// positive weights, so priority k maps to weight k+1 (a uniform shift that
// preserves all orderings).
func (r JobRow) Weight() float64 { return float64(r.Priority + 1) }

// Trace is a generated or loaded workload.
type Trace struct {
	Rows   []JobRow
	Params Params // zero for loaded traces without metadata
}

// Generate produces a trace from parameters. The same parameters always
// produce the same trace.
func Generate(p Params) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(p.Seed).Split("trace")
	arrivalSrc := src.Split("arrivals")
	countSrc := src.Split("counts")
	durSrc := src.Split("durations")
	prioSrc := src.Split("priorities")
	splitSrc := src.Split("splits")

	// Task-count distribution: bounded Pareto on [1, MaxTasks] with alpha
	// calibrated by bisection so the (rounded) mean hits MeanTasksPerJob.
	countAlpha, err := calibrateCountAlpha(p.MeanTasksPerJob, p.MaxTasksPerJob)
	if err != nil {
		return nil, err
	}
	countDist, err := dist.NewBoundedPareto(1, float64(p.MaxTasksPerJob), countAlpha)
	if err != nil {
		return nil, err
	}

	// Per-job mean duration: lognormal across jobs with the target mean and
	// CV, then a correction pass rescales so the task-weighted mean of the
	// clamped values matches MeanTaskDuration.
	ln, err := dist.LognormalFromMoments(p.MeanTaskDuration, p.DurationCV*p.MeanTaskDuration)
	if err != nil {
		return nil, err
	}
	base, err := dist.NewBoundedPareto(1, p.WithinJobRatio, p.WithinJobAlpha)
	if err != nil {
		return nil, err
	}
	bpMean := base.Mean()
	minScale := p.MinTaskDuration
	maxScale := p.MaxTaskDuration / p.WithinJobRatio

	rows := make([]JobRow, p.Jobs)
	var taskCountSum int64
	for i := range rows {
		n := int(math.Round(countDist.Sample(countSrc)))
		if n < 1 {
			n = 1
		}
		if n > p.MaxTasksPerJob {
			n = p.MaxTasksPerJob
		}
		reduces := int(math.Round(p.ReduceFraction * float64(n)))
		if reduces >= n {
			reduces = n - 1
		}
		// A small fraction of jobs are map-only, as in the real trace.
		if reduces > 0 && splitSrc.Float64() < 0.15 {
			reduces = 0
		}
		maps := n - reduces

		mu := ln.Sample(durSrc) *
			math.Pow(float64(n)/p.MeanTasksPerJob, p.CountDurationExponent)
		scale := clamp(mu/bpMean, minScale, maxScale)

		// Priorities skew low overall but correlate positively with job
		// size, as in the Google trace: long-running production services
		// hold both many tasks and high priority, while the numerous small
		// batch jobs run at the lowest priorities.
		prio := samplePriority(prioSrc, p.PriorityBias) + sizeBoost(n, p.MeanTasksPerJob)
		if prio > GoogleMaxPriority {
			prio = GoogleMaxPriority
		}
		rows[i] = JobRow{
			ID:          i,
			Arrival:     int64(arrivalSrc.Float64() * float64(p.Span)),
			Priority:    prio,
			MapTasks:    maps,
			ReduceTasks: reduces,
			MapScale:    scale,
			ReduceScale: scale * (0.8 + 0.4*durSrc.Float64()), // reduces differ mildly
			Ratio:       p.WithinJobRatio,
			Alpha:       p.WithinJobAlpha,
		}
		rows[i].ReduceScale = clamp(rows[i].ReduceScale, minScale, maxScale)
		taskCountSum += int64(n)
	}

	// Correction passes: rescale job scales so the task-weighted mean
	// duration matches the target. Clamping to the Table II support bounds
	// compresses the tail, so a single rescale undershoots; iterating the
	// fixed point converges because the all-at-cap mean exceeds the target.
	for iter := 0; iter < 50; iter++ {
		var weightedMean float64
		for _, r := range rows {
			weightedMean += r.MapScale * bpMean * float64(r.MapTasks)
			weightedMean += r.ReduceScale * bpMean * float64(r.ReduceTasks)
		}
		weightedMean /= float64(taskCountSum)
		if weightedMean <= 0 {
			break
		}
		factor := p.MeanTaskDuration / weightedMean
		if math.Abs(factor-1) < 0.005 {
			break
		}
		for i := range rows {
			rows[i].MapScale = clamp(rows[i].MapScale*factor, minScale, maxScale)
			rows[i].ReduceScale = clamp(rows[i].ReduceScale*factor, minScale, maxScale)
		}
	}

	sort.SliceStable(rows, func(a, b int) bool { return rows[a].Arrival < rows[b].Arrival })
	for i := range rows {
		rows[i].ID = i // re-key in arrival order for readability
	}
	return &Trace{Rows: rows, Params: p}, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sizeBoost raises the priority of jobs much larger than the mean:
// +2 levels per decade of size above the mean task count.
func sizeBoost(tasks int, meanTasks float64) int {
	if float64(tasks) <= meanTasks {
		return 0
	}
	return int(2 * math.Log10(float64(tasks)/meanTasks))
}

// samplePriority draws a 0..11 priority with geometric bias toward 0.
func samplePriority(src *rng.Source, bias float64) int {
	u := src.Float64()
	// P(k) proportional to bias^k over k = 0..11.
	total := (1 - math.Pow(bias, GoogleMaxPriority+1)) / (1 - bias)
	cum := 0.0
	for k := 0; k <= GoogleMaxPriority; k++ {
		cum += math.Pow(bias, float64(k)) / total
		if u <= cum {
			return k
		}
	}
	return GoogleMaxPriority
}

// calibrateCountAlpha bisects the bounded-Pareto tail index so that the mean
// task count matches the target.
func calibrateCountAlpha(target float64, maxTasks int) (float64, error) {
	hi := float64(maxTasks)
	meanAt := func(alpha float64) float64 {
		b := dist.BoundedPareto{Lo: 1, Hi: hi, Alpha: alpha}
		return b.Mean()
	}
	// Mean decreases in alpha; bracket the target. Task counts need a tail
	// index below 1 (the support is bounded, so the mean stays finite).
	loA, hiA := 0.02, 10.0
	if meanAt(loA) < target {
		return 0, fmt.Errorf("trace: mean tasks %v unreachable with max %d", target, maxTasks)
	}
	if meanAt(hiA) > target {
		return 0, fmt.Errorf("trace: mean tasks %v below the bounded-Pareto floor", target)
	}
	for i := 0; i < 200; i++ {
		mid := (loA + hiA) / 2
		if meanAt(mid) > target {
			loA = mid
		} else {
			hiA = mid
		}
	}
	return (loA + hiA) / 2, nil
}

// Specs converts a trace into engine-ready job specs.
func (t *Trace) Specs() ([]job.Spec, error) {
	specs := make([]job.Spec, 0, len(t.Rows))
	for _, r := range t.Rows {
		spec, err := r.Spec()
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Spec converts one row into a job spec.
func (r JobRow) Spec() (job.Spec, error) {
	spec := job.Spec{
		ID:         r.ID,
		Arrival:    r.Arrival,
		Weight:     r.Weight(),
		MapTasks:   r.MapTasks,
		ReduceTask: r.ReduceTasks,
	}
	if r.MapTasks > 0 {
		d, err := phaseDist(r.MapScale, r.Ratio, r.Alpha)
		if err != nil {
			return job.Spec{}, fmt.Errorf("trace: job %d map dist: %w", r.ID, err)
		}
		spec.MapDist = d
	}
	if r.ReduceTasks > 0 {
		d, err := phaseDist(r.ReduceScale, r.Ratio, r.Alpha)
		if err != nil {
			return job.Spec{}, fmt.Errorf("trace: job %d reduce dist: %w", r.ID, err)
		}
		spec.ReduceDist = d
	}
	if err := spec.Validate(); err != nil {
		return job.Spec{}, err
	}
	return spec, nil
}

func phaseDist(scale, ratio, alpha float64) (dist.Distribution, error) {
	base, err := dist.NewBoundedPareto(1, ratio, alpha)
	if err != nil {
		return nil, err
	}
	return dist.NewScaled(base, scale)
}

// Stats are the Table II-style summary statistics of a trace.
type Stats struct {
	Jobs            int
	SpanSeconds     int64   // last arrival minus first arrival
	MeanTasksPerJob float64 //
	MinTaskDur      float64 // support minimum across all tasks
	MaxTaskDur      float64 // support maximum across all tasks
	MeanTaskDur     float64 // task-weighted mean of per-task expected durations
	MeanPriority    float64
	MapTasks        int64
	ReduceTasks     int64
}

// ErrEmptyTrace is returned for stats over an empty trace.
var ErrEmptyTrace = errors.New("trace: empty trace")

// ComputeStats summarizes a trace in the shape of Table II.
func (t *Trace) ComputeStats() (Stats, error) {
	if len(t.Rows) == 0 {
		return Stats{}, ErrEmptyTrace
	}
	var s Stats
	s.Jobs = len(t.Rows)
	minArr, maxArr := int64(math.MaxInt64), int64(math.MinInt64)
	minDur, maxDur := math.Inf(1), math.Inf(-1)
	var taskSum int64
	var durSum, prioSum float64
	for _, r := range t.Rows {
		n := r.MapTasks + r.ReduceTasks
		taskSum += int64(n)
		s.MapTasks += int64(r.MapTasks)
		s.ReduceTasks += int64(r.ReduceTasks)
		prioSum += float64(r.Priority)
		if r.Arrival < minArr {
			minArr = r.Arrival
		}
		if r.Arrival > maxArr {
			maxArr = r.Arrival
		}
		base := dist.BoundedPareto{Lo: 1, Hi: r.Ratio, Alpha: r.Alpha}
		bpMean := base.Mean()
		if r.MapTasks > 0 {
			durSum += r.MapScale * bpMean * float64(r.MapTasks)
			minDur = math.Min(minDur, r.MapScale)
			maxDur = math.Max(maxDur, r.MapScale*r.Ratio)
		}
		if r.ReduceTasks > 0 {
			durSum += r.ReduceScale * bpMean * float64(r.ReduceTasks)
			minDur = math.Min(minDur, r.ReduceScale)
			maxDur = math.Max(maxDur, r.ReduceScale*r.Ratio)
		}
	}
	s.SpanSeconds = maxArr - minArr
	s.MeanTasksPerJob = float64(taskSum) / float64(s.Jobs)
	s.MinTaskDur = minDur
	s.MaxTaskDur = maxDur
	s.MeanTaskDur = durSum / float64(taskSum)
	s.MeanPriority = prioSum / float64(s.Jobs)
	return s, nil
}

// Subset returns a trace containing the first n rows (by arrival order),
// useful for scaled-down experiments. It panics if n < 0; n beyond the end
// is clipped.
func (t *Trace) Subset(n int) *Trace {
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	rows := make([]JobRow, n)
	copy(rows, t.Rows[:n])
	return &Trace{Rows: rows, Params: t.Params}
}

// ScaleArrivals multiplies every arrival time by f (compressing or
// stretching load) and returns a new trace.
func (t *Trace) ScaleArrivals(f float64) (*Trace, error) {
	if f <= 0 || math.IsNaN(f) {
		return nil, fmt.Errorf("trace: arrival scale %v", f)
	}
	rows := make([]JobRow, len(t.Rows))
	copy(rows, t.Rows)
	for i := range rows {
		rows[i].Arrival = int64(float64(rows[i].Arrival) * f)
	}
	return &Trace{Rows: rows, Params: t.Params}, nil
}
