package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadCSV asserts two properties of the CSV parser on arbitrary input:
// it never panics, and any input it accepts round-trips — writing the
// parsed trace and parsing it again yields identical rows (the parsed form
// is a fixed point). Shortest round-trip float formatting (strconv 'g', -1)
// is what makes the second property hold exactly.
func FuzzReadCSV(f *testing.F) {
	// Seed with a real generated trace, the header alone, and assorted
	// near-miss corruptions.
	p := GoogleParams()
	p.Jobs = 5
	p.Span = 100
	tr, err := Generate(p)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := tr.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(strings.Join(csvHeader, ",") + "\n")
	f.Add("")
	f.Add("id,arrival\n1,2\n")
	f.Add(strings.Join(csvHeader, ",") + "\n0,1,2,3,4,5,6,7,8\n")
	f.Add(strings.Join(csvHeader, ",") + "\n0,1,99,3,4,5,6,7,8\n") // bad priority
	f.Add(strings.Join(csvHeader, ",") + "\nx,1,2,3,4,5,6,7,8\n")  // bad int
	f.Add(strings.Join(csvHeader, ",") + "\n0,1,2,3,4,NaN,6,7,8\n")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		var out bytes.Buffer
		if err := tr.WriteCSV(&out); err != nil {
			t.Fatalf("WriteCSV of accepted trace: %v", err)
		}
		back, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-parse of written trace: %v\ninput: %q\nwritten: %q", err, data, out.String())
		}
		if len(back.Rows) != len(tr.Rows) {
			t.Fatalf("row count changed: %d -> %d", len(tr.Rows), len(back.Rows))
		}
		if len(tr.Rows) > 0 && !reflect.DeepEqual(tr.Rows, back.Rows) {
			t.Fatalf("rows not a fixed point:\nfirst:  %+v\nsecond: %+v", tr.Rows, back.Rows)
		}
	})
}
