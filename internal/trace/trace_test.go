package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mrclone/internal/job"
)

func TestGoogleParamsValidate(t *testing.T) {
	if err := GoogleParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Jobs = 0 },
		func(p *Params) { p.Span = 0 },
		func(p *Params) { p.MeanTasksPerJob = 0.5 },
		func(p *Params) { p.MaxTasksPerJob = 1 },
		func(p *Params) { p.MeanTaskDuration = 0 },
		func(p *Params) { p.MinTaskDuration = 0 },
		func(p *Params) { p.MaxTaskDuration = p.MinTaskDuration },
		func(p *Params) { p.WithinJobAlpha = 1 },
		func(p *Params) { p.WithinJobRatio = 1 },
		func(p *Params) { p.DurationCV = 0 },
		func(p *Params) { p.ReduceFraction = 1 },
		func(p *Params) { p.ReduceFraction = -0.1 },
		func(p *Params) { p.PriorityBias = 0 },
		func(p *Params) { p.PriorityBias = 1 },
	}
	for i, mut := range mutations {
		p := GoogleParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Generate(p); err == nil {
			t.Errorf("mutation %d generated", i)
		}
	}
}

// TestTableIICalibration: the generated trace must reproduce the Table II
// statistics within tolerance. This is experiment T2.
func TestTableIICalibration(t *testing.T) {
	tr, err := Generate(GoogleParams())
	if err != nil {
		t.Fatal(err)
	}
	st, err := tr.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != GoogleJobs {
		t.Errorf("jobs = %d, want %d", st.Jobs, GoogleJobs)
	}
	if rel(float64(st.SpanSeconds), GoogleSpanSeconds) > 0.02 {
		t.Errorf("span = %d, want ~%d", st.SpanSeconds, GoogleSpanSeconds)
	}
	if rel(st.MeanTasksPerJob, GoogleMeanTasks) > 0.10 {
		t.Errorf("mean tasks/job = %.2f, want ~%.2f", st.MeanTasksPerJob, GoogleMeanTasks)
	}
	if rel(st.MeanTaskDur, GoogleMeanTaskDur) > 0.10 {
		t.Errorf("mean task duration = %.1f, want ~%.1f", st.MeanTaskDur, GoogleMeanTaskDur)
	}
	if st.MinTaskDur < GoogleMinTaskDur-1e-9 {
		t.Errorf("min task duration = %.1f, below Table II floor %.1f", st.MinTaskDur, GoogleMinTaskDur)
	}
	if st.MaxTaskDur > GoogleMaxTaskDur+1e-9 {
		t.Errorf("max task duration = %.1f, above Table II ceiling %.1f", st.MaxTaskDur, GoogleMaxTaskDur)
	}
}

func rel(got, want float64) float64 { return math.Abs(got-want) / want }

func TestGenerateDeterministic(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 200
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row count differs")
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 100
	a, _ := Generate(p)
	p.Seed = 2
	b, _ := Generate(p)
	same := 0
	for i := range a.Rows {
		if a.Rows[i].MapScale == b.Rows[i].MapScale {
			same++
		}
	}
	if same == len(a.Rows) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRowsSortedByArrivalAndValid(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 300
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, r := range tr.Rows {
		if r.Arrival < prev {
			t.Fatal("rows not sorted by arrival")
		}
		prev = r.Arrival
		if r.MapTasks+r.ReduceTasks < 1 {
			t.Fatalf("row %d has no tasks", r.ID)
		}
		if r.MapTasks < 0 || r.ReduceTasks < 0 {
			t.Fatalf("row %d negative tasks", r.ID)
		}
		if r.Priority < 0 || r.Priority > GoogleMaxPriority {
			t.Fatalf("row %d priority %d", r.ID, r.Priority)
		}
		if r.Weight() <= 0 {
			t.Fatalf("row %d weight %v", r.ID, r.Weight())
		}
		if r.Arrival < 0 || r.Arrival >= p.Span {
			t.Fatalf("row %d arrival %d outside [0, %d)", r.ID, r.Arrival, p.Span)
		}
	}
}

func TestSpecsConvertAndValidate(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 150
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 150 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		// Scheduler-visible stats must be positive for non-empty phases.
		if s.MapTasks > 0 {
			st := s.PhaseStats(job.PhaseMap)
			if st.Mean <= 0 || st.StdDev <= 0 {
				t.Fatalf("job %d map stats %+v", s.ID, st)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 120
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(tr.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(tr.Rows))
	}
	for i := range tr.Rows {
		if tr.Rows[i] != back.Rows[i] {
			t.Fatalf("row %d: %+v vs %+v", i, tr.Rows[i], back.Rows[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",             // no header
		"bogus,header", // wrong header
		csvJoin() + "\n" + "x,0,0,1,0,1,1,20,1.5",  // bad id
		csvJoin() + "\n" + "0,0,99,1,0,1,1,20,1.5", // priority out of range
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func csvJoin() string { return strings.Join(csvHeader, ",") }

func TestSubsetAndScaleArrivals(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 50
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	sub := tr.Subset(10)
	if len(sub.Rows) != 10 {
		t.Fatalf("subset rows = %d", len(sub.Rows))
	}
	if over := tr.Subset(1000); len(over.Rows) != 50 {
		t.Fatalf("over-subset rows = %d", len(over.Rows))
	}
	scaled, err := tr.ScaleArrivals(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Rows {
		if scaled.Rows[i].Arrival != int64(float64(tr.Rows[i].Arrival)*0.5) {
			t.Fatal("arrival scaling wrong")
		}
	}
	if _, err := tr.ScaleArrivals(0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestPrioritySkewedLow(t *testing.T) {
	p := GoogleParams()
	p.Jobs = 2000
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, GoogleMaxPriority+1)
	for _, r := range tr.Rows {
		counts[r.Priority]++
	}
	if counts[0] <= counts[GoogleMaxPriority] {
		t.Fatalf("priority 0 (%d jobs) should dominate priority 11 (%d jobs)",
			counts[0], counts[GoogleMaxPriority])
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	tr := &Trace{}
	if _, err := tr.ComputeStats(); err == nil {
		t.Fatal("empty trace stats accepted")
	}
}

func TestHeavyTailTaskCounts(t *testing.T) {
	// Most jobs must be small while a few are large — the straggler-prone
	// mix the paper's algorithms target.
	p := GoogleParams()
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	small, big := 0, 0
	for _, r := range tr.Rows {
		n := r.MapTasks + r.ReduceTasks
		if n <= 5 {
			small++
		}
		if n >= 100 {
			big++
		}
	}
	if small < len(tr.Rows)/2 {
		t.Errorf("only %d/%d jobs are small (<=5 tasks)", small, len(tr.Rows))
	}
	if big == 0 {
		t.Error("no big jobs (>=100 tasks) generated")
	}
}
