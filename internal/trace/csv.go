package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// csvHeader is the on-disk column layout of a trace file.
var csvHeader = []string{
	"id", "arrival", "priority",
	"map_tasks", "reduce_tasks",
	"map_scale", "reduce_scale",
	"ratio", "alpha",
}

// WriteCSV serializes the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, r := range t.Rows {
		rec := []string{
			strconv.Itoa(r.ID),
			strconv.FormatInt(r.Arrival, 10),
			strconv.Itoa(r.Priority),
			strconv.Itoa(r.MapTasks),
			strconv.Itoa(r.ReduceTasks),
			strconv.FormatFloat(r.MapScale, 'g', -1, 64),
			strconv.FormatFloat(r.ReduceScale, 'g', -1, 64),
			strconv.FormatFloat(r.Ratio, 'g', -1, 64),
			strconv.FormatFloat(r.Alpha, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], col)
		}
	}
	var rows []JobRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		row, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rows = append(rows, row)
	}
	return &Trace{Rows: rows}, nil
}

func parseRow(rec []string) (JobRow, error) {
	var (
		r   JobRow
		err error
	)
	if r.ID, err = strconv.Atoi(rec[0]); err != nil {
		return r, fmt.Errorf("id: %w", err)
	}
	if r.Arrival, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return r, fmt.Errorf("arrival: %w", err)
	}
	if r.Priority, err = strconv.Atoi(rec[2]); err != nil {
		return r, fmt.Errorf("priority: %w", err)
	}
	if r.MapTasks, err = strconv.Atoi(rec[3]); err != nil {
		return r, fmt.Errorf("map_tasks: %w", err)
	}
	if r.ReduceTasks, err = strconv.Atoi(rec[4]); err != nil {
		return r, fmt.Errorf("reduce_tasks: %w", err)
	}
	if r.MapScale, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return r, fmt.Errorf("map_scale: %w", err)
	}
	if r.ReduceScale, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return r, fmt.Errorf("reduce_scale: %w", err)
	}
	if r.Ratio, err = strconv.ParseFloat(rec[7], 64); err != nil {
		return r, fmt.Errorf("ratio: %w", err)
	}
	if r.Alpha, err = strconv.ParseFloat(rec[8], 64); err != nil {
		return r, fmt.Errorf("alpha: %w", err)
	}
	if r.Priority < 0 || r.Priority > GoogleMaxPriority {
		return r, fmt.Errorf("priority %d outside 0..%d", r.Priority, GoogleMaxPriority)
	}
	// Non-finite floats would survive parsing but break every consumer (and
	// NaN is not even equal to itself, so accepted traces would not
	// round-trip); reject them here.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"map_scale", r.MapScale}, {"reduce_scale", r.ReduceScale},
		{"ratio", r.Ratio}, {"alpha", r.Alpha},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return r, fmt.Errorf("%s %v is not finite", f.name, f.v)
		}
	}
	return r, nil
}
