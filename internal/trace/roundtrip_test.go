package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// TestGenerateWriteParseRoundTrip is the gen→write→parse property test:
// across parameter variations, serializing a generated trace and parsing it
// back reproduces the rows exactly (bit-for-bit floats via shortest
// round-trip formatting), and the reloaded trace expands to the same number
// of engine-ready job specs.
func TestGenerateWriteParseRoundTrip(t *testing.T) {
	variations := []func(*Params){
		func(p *Params) {},
		func(p *Params) { p.Seed = 99 },
		func(p *Params) { p.Jobs = 1 },
		func(p *Params) { p.ReduceFraction = 0 },
		func(p *Params) { p.WithinJobAlpha = 1.2; p.WithinJobRatio = 50 },
		func(p *Params) { p.MaxTasksPerJob = 4; p.MeanTasksPerJob = 2 },
	}
	for i, vary := range variations {
		p := GoogleParams()
		p.Jobs = 40
		p.Span = 2000
		vary(&p)
		tr, err := Generate(p)
		if err != nil {
			t.Fatalf("variation %d: generate: %v", i, err)
		}

		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("variation %d: write: %v", i, err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("variation %d: parse: %v", i, err)
		}
		if !reflect.DeepEqual(tr.Rows, back.Rows) {
			t.Fatalf("variation %d: rows changed across write/parse", i)
		}

		// Both sides must expand to valid, equally sized workloads.
		specs, err := tr.Specs()
		if err != nil {
			t.Fatalf("variation %d: specs: %v", i, err)
		}
		backSpecs, err := back.Specs()
		if err != nil {
			t.Fatalf("variation %d: reloaded specs: %v", i, err)
		}
		if len(specs) != len(backSpecs) || len(specs) != len(tr.Rows) {
			t.Fatalf("variation %d: spec counts %d/%d for %d rows",
				i, len(specs), len(backSpecs), len(tr.Rows))
		}
		for j := range specs {
			if specs[j].Arrival != backSpecs[j].Arrival ||
				specs[j].Weight != backSpecs[j].Weight ||
				specs[j].MapTasks != backSpecs[j].MapTasks ||
				specs[j].ReduceTask != backSpecs[j].ReduceTask {
				t.Fatalf("variation %d: job %d spec differs after round-trip", i, j)
			}
		}
	}
}
