package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Merge accumulates metric families from several scrapes (one per shard)
// and renders their bucket-wise sum. Because every shard uses the same
// fixed bucket layout (LatencyBuckets), histogram series with equal labels
// sum exactly: each `le` bucket of the merged histogram is the sum of that
// bucket across shards, and _sum/_count add likewise. Counters and gauges
// sum per identical label set. Callers filter out families that do not add
// meaningfully (uptimes, rates, process-local runtime stats) before Add.
type Merge struct {
	fams  map[string]*mergedFamily
	order []string
}

type mergedFamily struct {
	help    string
	typ     string
	samples map[string]*mergedSample
	order   []string
}

type mergedSample struct {
	suffix string
	labels []Label
	value  float64
}

// NewMerge returns an empty merge.
func NewMerge() *Merge {
	return &Merge{fams: map[string]*mergedFamily{}}
}

// Add folds one scrape's families into the merge. The first scrape to
// mention a family fixes its HELP and TYPE.
func (m *Merge) Add(fams []*Family) {
	for _, f := range fams {
		mf, ok := m.fams[f.Name]
		if !ok {
			mf = &mergedFamily{help: f.Help, typ: f.Type, samples: map[string]*mergedSample{}}
			m.fams[f.Name] = mf
			m.order = append(m.order, f.Name)
		}
		for _, s := range f.Samples {
			labels := append([]Label(nil), s.Labels...)
			sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
			key := s.Suffix + "\xff" + LabelKey(labels)
			ms, ok := mf.samples[key]
			if !ok {
				ms = &mergedSample{suffix: s.Suffix, labels: labels}
				mf.samples[key] = ms
				mf.order = append(mf.order, key)
			}
			ms.value += s.Value
		}
	}
}

// suffixRank orders histogram components within one bucket group.
func suffixRank(suffix string) int {
	switch suffix {
	case "_bucket":
		return 0
	case "_sum":
		return 1
	case "_count":
		return 2
	}
	return 0
}

// leValue parses a sample's le label for numeric bucket ordering; +Inf
// sorts last.
func leValue(s *mergedSample) float64 {
	for _, l := range s.labels {
		if l.Name != "le" {
			continue
		}
		if l.Value == "+Inf" {
			return math.Inf(1)
		}
		v, err := strconv.ParseFloat(l.Value, 64)
		if err == nil {
			return v
		}
	}
	return 0
}

// baseKey identifies a sample's bucket group (labels minus le).
func baseKey(s *mergedSample) string {
	var b strings.Builder
	for _, l := range s.labels {
		if l.Name != "le" {
			b.WriteString(LabelKey([]Label{l}))
		}
	}
	return b.String()
}

// WriteTo renders the merged families through e: families sorted by name;
// within a histogram family, samples grouped by base labels with buckets
// in ascending numeric le order followed by _sum and _count.
func (m *Merge) WriteTo(e *ExpoWriter) {
	names := append([]string(nil), m.order...)
	sort.Strings(names)
	for _, name := range names {
		mf := m.fams[name]
		samples := make([]*mergedSample, 0, len(mf.order))
		for _, key := range mf.order {
			samples = append(samples, mf.samples[key])
		}
		sort.SliceStable(samples, func(i, j int) bool {
			a, b := samples[i], samples[j]
			if ka, kb := baseKey(a), baseKey(b); ka != kb {
				return ka < kb
			}
			if ra, rb := suffixRank(a.suffix), suffixRank(b.suffix); ra != rb {
				return ra < rb
			}
			return leValue(a) < leValue(b)
		})
		e.Header(name, mf.help, mf.typ)
		for _, s := range samples {
			e.Sample(name+s.suffix, s.labels, s.value)
		}
	}
}
