package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpoContentType is the Content-Type of the Prometheus text exposition
// format this package reads and writes.
const ExpoContentType = "text/plain; version=0.0.4"

// Label is one name/value pair on a metric series.
type Label struct {
	Name  string
	Value string
}

// escapeLabelValue applies the exposition format's label-value escaping:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp applies HELP-text escaping: backslash and newline (quotes are
// legal in help text).
func escapeHelp(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// formatLabels renders {a="x",b="y"}, or "" for an empty set.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpoWriter renders the Prometheus text exposition format, pairing every
// family with both its # HELP and # TYPE line (the satellite fix — the
// pre-obs /metrics wrote HELP only, which strict scrapers flag).
type ExpoWriter struct {
	w   io.Writer
	err error
}

// NewExpoWriter wraps w. Write errors stick; check Err once at the end.
func NewExpoWriter(w io.Writer) *ExpoWriter { return &ExpoWriter{w: w} }

// Err returns the first write error, if any.
func (e *ExpoWriter) Err() error { return e.err }

func (e *ExpoWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Comment writes a free-form comment line (not HELP/TYPE metadata).
func (e *ExpoWriter) Comment(text string) {
	e.printf("# %s\n", text)
}

// Header opens a metric family: its HELP and TYPE lines. typ is one of
// counter, gauge, histogram, summary, or untyped. Call Sample (or the
// histogram helpers) for the family's series afterwards.
func (e *ExpoWriter) Header(name, help, typ string) {
	e.printf("# HELP %s %s\n", name, escapeHelp(help))
	e.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one series sample under the current family.
func (e *ExpoWriter) Sample(name string, labels []Label, v float64) {
	e.printf("%s%s %s\n", name, formatLabels(labels), formatValue(v))
}

// Counter writes a complete single-series counter family.
func (e *ExpoWriter) Counter(name, help string, v float64) {
	e.Header(name, help, "counter")
	e.Sample(name, nil, v)
}

// Gauge writes a complete single-series gauge family.
func (e *ExpoWriter) Gauge(name, help string, v float64) {
	e.Header(name, help, "gauge")
	e.Sample(name, nil, v)
}

// histogramSeries writes one label-set's cumulative buckets, sum, and
// count under an already-opened histogram family.
func (e *ExpoWriter) histogramSeries(name string, base []Label, s HistogramSnapshot) {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		labels := append(append([]Label(nil), base...),
			Label{Name: "le", Value: formatValue(bound)})
		e.Sample(name+"_bucket", labels, float64(cum))
	}
	if len(s.Counts) == len(s.Bounds)+1 {
		cum += s.Counts[len(s.Bounds)]
	}
	infLabels := append(append([]Label(nil), base...), Label{Name: "le", Value: "+Inf"})
	e.Sample(name+"_bucket", infLabels, float64(cum))
	e.Sample(name+"_sum", base, s.Sum)
	e.Sample(name+"_count", base, float64(s.Count))
}

// Histogram writes a complete unlabeled histogram family.
func (e *ExpoWriter) Histogram(name, help string, s HistogramSnapshot) {
	e.Header(name, help, "histogram")
	e.histogramSeries(name, nil, s)
}

// HistogramSeries writes a complete labeled histogram family — one bucket
// group per label set (as produced by HistogramVec.Snapshots).
func (e *ExpoWriter) HistogramSeries(name, help string, series []LabeledHistogram) {
	if len(series) == 0 {
		return // a family with no series is omitted entirely
	}
	e.Header(name, help, "histogram")
	for _, lh := range series {
		e.histogramSeries(name, lh.Labels, lh.Snap)
	}
}
