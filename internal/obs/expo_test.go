package obs

import (
	"math"
	"strings"
	"testing"
)

func TestExpoWriterRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	e := NewExpoWriter(&sb)
	e.Comment("a free-form comment")
	e.Counter("demo_requests_total", "Requests served.", 42)
	e.Gauge("demo_depth", "Queue depth.", 3)
	e.Header("demo_tenant_total", "Per-tenant counter.", "counter")
	e.Sample("demo_tenant_total", []Label{{"tenant", `we"ird\te
nant`}}, 7)
	e.Histogram("demo_seconds", "Latency.", h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE demo_requests_total counter",
		"# TYPE demo_depth gauge",
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{le="0.1"} 1`,
		`demo_seconds_bucket{le="1"} 2`,
		`demo_seconds_bucket{le="+Inf"} 3`,
		"demo_seconds_count 3",
		`demo_tenant_total{tenant="we\"ird\\te\nnant"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	fams, err := ParseExposition(out)
	if err != nil {
		t.Fatalf("ParseExposition of own output: %v", err)
	}
	byName := map[string]*Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["demo_requests_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 42 {
		t.Fatalf("counter family mangled: %+v", f)
	}
	if f := byName["demo_tenant_total"]; f == nil || f.Samples[0].Label("tenant") != "we\"ird\\te\nnant" {
		t.Fatalf("label escaping not reversible: %+v", f)
	}
	hf := byName["demo_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hf)
	}
	var suffixes []string
	for _, s := range hf.Samples {
		suffixes = append(suffixes, s.Suffix)
	}
	if len(hf.Samples) != 5 { // 3 buckets + sum + count
		t.Fatalf("histogram samples = %v", suffixes)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	for name, in := range map[string]string{
		"bad value":        "demo 12x\n",
		"bad label":        `demo{l="unterminated} 1` + "\n",
		"bad type":         "# TYPE demo sideways\n",
		"type after data":  "demo 1\n# TYPE demo counter\n",
		"bad metric name":  "1demo 5\n",
		"unquoted label":   "demo{l=5} 1\n",
		"dangling escape":  "demo{l=\"a\\\"} 1\n",
		"unknown escape":   `demo{l="a\t"} 1` + "\n",
		"missing value":    "demo{l=\"a\"}\n",
		"too many fields":  "demo 1 2 3\n",
		"bad timestamp":    "demo 1 soon\n",
		"bad label name":   "demo{0l=\"a\"} 1\n",
		"label without eq": "demo{la} 1\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseExposition(in); err == nil {
				t.Fatalf("ParseExposition(%q) should fail", in)
			}
		})
	}
}

func TestParseExpositionTimestampsAndInf(t *testing.T) {
	fams, err := ParseExposition("# TYPE demo gauge\ndemo 1.5 1700000000000\nup +Inf\ndown -Inf\n")
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	byName := map[string]*Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if v := byName["demo"].Samples[0].Value; v != 1.5 {
		t.Fatalf("timestamped sample = %g", v)
	}
	if v := byName["up"].Samples[0].Value; !math.IsInf(v, 1) {
		t.Fatalf("+Inf sample = %g", v)
	}
	if v := byName["down"].Samples[0].Value; !math.IsInf(v, -1) {
		t.Fatalf("-Inf sample = %g", v)
	}
	if byName["up"].Type != "untyped" || byName["up"].TypeSet {
		t.Fatalf("implicit family should be untyped: %+v", byName["up"])
	}
}

func TestMergeHistograms(t *testing.T) {
	render := func(observe func(*Histogram)) string {
		h := NewHistogram([]float64{0.1, 1})
		observe(h)
		var sb strings.Builder
		e := NewExpoWriter(&sb)
		e.Histogram("demo_seconds", "Latency.", h.Snapshot())
		e.Counter("demo_total", "Count.", 2)
		return sb.String()
	}
	shardA := render(func(h *Histogram) { h.Observe(0.05); h.Observe(0.5) })
	shardB := render(func(h *Histogram) { h.Observe(0.5); h.Observe(5) })

	m := NewMerge()
	for _, scrape := range []string{shardA, shardB} {
		fams, err := ParseExposition(scrape)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		m.Add(fams)
	}
	var sb strings.Builder
	e := NewExpoWriter(&sb)
	m.WriteTo(e)
	out := sb.String()

	for _, want := range []string{
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{le="0.1"} 1`,
		`demo_seconds_bucket{le="1"} 3`,
		`demo_seconds_bucket{le="+Inf"} 4`,
		"demo_seconds_count 4",
		"demo_total 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged output missing %q:\n%s", want, out)
		}
	}
	// Buckets must come out in ascending numeric le order, not lexical.
	i01 := strings.Index(out, `le="0.1"`)
	i1 := strings.Index(out, `le="1"`)
	iInf := strings.Index(out, `le="+Inf"`)
	if !(i01 < i1 && i1 < iInf) {
		t.Fatalf("bucket order wrong (le=0.1 at %d, le=1 at %d, +Inf at %d):\n%s", i01, i1, iInf, out)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var sb strings.Builder
	e := NewExpoWriter(&sb)
	WriteRuntimeMetrics(e)
	if err := e.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_gc_pause_seconds_total counter",
		"go_heap_alloc_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime metrics missing %q:\n%s", want, out)
		}
	}
}
