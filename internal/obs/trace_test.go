package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewTraceValid(t *testing.T) {
	tc := NewTrace()
	if !tc.Valid() {
		t.Fatalf("NewTrace produced invalid context: %+v", tc)
	}
	if tc.Flags&FlagSampled == 0 {
		t.Fatalf("NewTrace should set the sampled flag, got %02x", tc.Flags)
	}
	rt, err := ParseTraceparent(tc.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", tc.String(), err)
	}
	if rt != tc {
		t.Fatalf("round trip changed context: %+v != %+v", rt, tc)
	}
}

func TestWithNewSpanKeepsTrace(t *testing.T) {
	tc := NewTrace()
	hop := tc.WithNewSpan()
	if hop.TraceID != tc.TraceID {
		t.Fatalf("WithNewSpan changed trace ID: %s -> %s", tc.TraceID, hop.TraceID)
	}
	if hop.SpanID == tc.SpanID {
		t.Fatalf("WithNewSpan kept span ID %s", tc.SpanID)
	}
	if !hop.Valid() {
		t.Fatalf("WithNewSpan produced invalid context: %+v", hop)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"canonical", valid, true},
		{"unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"future version with extra data", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"future version exact length", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"empty", "", false},
		{"too short", valid[:54], false},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"bad separator", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"version 00 trailing data", valid + "-extra", false},
		{"trailing junk no separator", valid + "x", false},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", false},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTraceparent(tc.in)
			if tc.ok && err != nil {
				t.Fatalf("ParseTraceparent(%q) = %v, want ok", tc.in, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("ParseTraceparent(%q) = %+v, want error", tc.in, got)
			}
			if tc.ok && !got.Valid() {
				t.Fatalf("ParseTraceparent(%q) accepted but invalid: %+v", tc.in, got)
			}
		})
	}
}

func TestEnsureTrace(t *testing.T) {
	t.Run("mints when absent", func(t *testing.T) {
		r := httptest.NewRequest("GET", "/v1/healthz", nil)
		tc, r2 := EnsureTrace(r)
		if !tc.Valid() {
			t.Fatalf("minted context invalid: %+v", tc)
		}
		got, ok := TraceFrom(r2.Context())
		if !ok || got != tc {
			t.Fatalf("context not installed: %+v ok=%v", got, ok)
		}
	})
	t.Run("continues inbound trace", func(t *testing.T) {
		inbound := NewTrace()
		r := httptest.NewRequest("GET", "/v1/healthz", nil)
		r.Header.Set(TraceparentHeader, inbound.String())
		tc, _ := EnsureTrace(r)
		if tc.TraceID != inbound.TraceID {
			t.Fatalf("trace ID not continued: %s != %s", tc.TraceID, inbound.TraceID)
		}
		if tc.SpanID == inbound.SpanID {
			t.Fatalf("span ID should be re-minted per hop")
		}
	})
	t.Run("replaces malformed header", func(t *testing.T) {
		r := httptest.NewRequest("GET", "/v1/healthz", nil)
		r.Header.Set(TraceparentHeader, "garbage")
		tc, _ := EnsureTrace(r)
		if !tc.Valid() {
			t.Fatalf("should mint a fresh trace on garbage input, got %+v", tc)
		}
	})
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFrom(ctx); ok {
		t.Fatal("empty context should have no trace")
	}
	if _, ok := RequestIDFrom(ctx); ok {
		t.Fatal("empty context should have no request ID")
	}
	tc := NewTrace()
	ctx = ContextWithTrace(ctx, tc)
	ctx = ContextWithRequestID(ctx, "r-1")
	if got, ok := TraceFrom(ctx); !ok || got != tc {
		t.Fatalf("TraceFrom = %+v, %v", got, ok)
	}
	if id, ok := RequestIDFrom(ctx); !ok || id != "r-1" {
		t.Fatalf("RequestIDFrom = %q, %v", id, ok)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("request IDs collide: %s", a)
	}
	if !strings.Contains(a, "-") {
		t.Fatalf("request ID %q missing prefix separator", a)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"": "INFO", "debug": "DEBUG", "INFO": "INFO", "warn": "WARN",
		"warning": "WARN", "error": "ERROR",
	} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lv.String() != want {
			t.Fatalf("ParseLevel(%q) = %s, want %s", in, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", "info")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	log.Info("hello", KeyTraceID, "abc")
	if !strings.Contains(sb.String(), `"trace_id":"abc"`) {
		t.Fatalf("json log line missing trace_id attr: %s", sb.String())
	}
	if _, err := NewLogger(&sb, "xml", "info"); err == nil {
		t.Fatal("NewLogger should reject unknown formats")
	}
	if _, err := NewLogger(&sb, "text", "loud"); err == nil {
		t.Fatal("NewLogger should reject unknown levels")
	}
}

func TestSpecPrefix(t *testing.T) {
	if got := SpecPrefix("0123456789abcdef"); got != "0123456789ab" {
		t.Fatalf("SpecPrefix = %q", got)
	}
	if got := SpecPrefix("short"); got != "short" {
		t.Fatalf("SpecPrefix(short) = %q", got)
	}
}
