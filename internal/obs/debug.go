package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves the debug surface behind the daemons' -debug-addr
// flag: net/http/pprof profiles (CPU, heap, goroutine, block, mutex,
// execution trace) and expvar under /debug/vars. It is a separate handler
// — never mounted on the service listener — so profiling stays reachable
// when the serving mux is saturated and is trivially firewalled off.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
