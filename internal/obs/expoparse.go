package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family: the base name, HELP/TYPE metadata,
// and every sample that belongs to it. For TYPE histogram the base name
// owns its _bucket/_sum/_count samples, recorded via Sample.Suffix.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples []Sample
	// HelpSet/TypeSet record whether the metadata lines actually appeared
	// (Type defaults to "untyped" for implicit families; the exposition
	// validator needs to tell the two apart).
	HelpSet bool
	TypeSet bool
}

// Sample is one series sample within a family. Suffix is "" for plain
// samples and "_bucket"/"_sum"/"_count" for histogram components.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label ("" if absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// BaseLabels returns the sample's labels minus "le", sorted by name —
// the identity of a histogram bucket group.
func (s Sample) BaseLabels() []Label {
	out := make([]Label, 0, len(s.Labels))
	for _, l := range s.Labels {
		if l.Name != "le" {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LabelKey renders a label set as a canonical string for grouping.
func LabelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q;", l.Name, l.Value)
	}
	return b.String()
}

// validMetricStart and metric-name character rules per the exposition
// format: [a-zA-Z_:][a-zA-Z0-9_:]*.
func isMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func isLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// histogramSuffix splits a sample name against a histogram family's base
// name, returning the component suffix ("_bucket", "_sum", "_count") or
// false when the name is not part of that family.
func histogramSuffix(base, name string) (string, bool) {
	if !strings.HasPrefix(name, base) {
		return "", false
	}
	switch suffix := name[len(base):]; suffix {
	case "_bucket", "_sum", "_count":
		return suffix, true
	}
	return "", false
}

// ParseExposition parses the Prometheus text exposition format (v0.0.4)
// into metric families, in order of appearance. It is strict: malformed
// metadata, label syntax, or values are errors, matching what the
// exposition validator test and the gateway's cross-shard merge need.
// Optional sample timestamps are accepted and dropped.
func ParseExposition(data string) ([]*Family, error) {
	var (
		fams  []*Family
		index = map[string]*Family{}
	)
	family := func(name string) *Family {
		if f, ok := index[name]; ok {
			return f
		}
		f := &Family{Name: name, Type: "untyped"}
		index[name] = f
		fams = append(fams, f)
		return f
	}
	// sampleFamily resolves which family a sample line belongs to,
	// attaching histogram components to their declared base family.
	sampleFamily := func(name string) (*Family, string) {
		if f, ok := index[name]; ok {
			return f, ""
		}
		for base, f := range index {
			if f.Type != "histogram" && f.Type != "summary" {
				continue
			}
			if suffix, ok := histogramSuffix(base, name); ok {
				return f, suffix
			}
		}
		return family(name), ""
	}

	for lineNo, line := range strings.Split(data, "\n") {
		errf := func(format string, args ...any) ([]*Family, error) {
			return nil, fmt.Errorf("obs: exposition line %d: %s",
				lineNo+1, fmt.Sprintf(format, args...))
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(strings.TrimPrefix(line, "#"), " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(rest[len("HELP "):], " ", 2)
				if !isMetricName(parts[0]) {
					return errf("HELP for invalid metric name %q", parts[0])
				}
				f := family(parts[0])
				f.HelpSet = true
				if len(parts) == 2 {
					f.Help = unescapeHelp(parts[1])
				}
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.Fields(rest[len("TYPE "):])
				if len(parts) != 2 || !isMetricName(parts[0]) {
					return errf("malformed TYPE line %q", line)
				}
				switch parts[1] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return errf("unknown metric type %q", parts[1])
				}
				f := family(parts[0])
				if len(f.Samples) > 0 {
					return errf("TYPE for %s after its samples", parts[0])
				}
				f.Type = parts[1]
				f.TypeSet = true
			}
			continue // other comments are free-form
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return errf("%v", err)
		}
		f, suffix := sampleFamily(name)
		f.Samples = append(f.Samples, Sample{Suffix: suffix, Labels: labels, Value: value})
	}
	return fams, nil
}

// parseSampleLine splits `name{labels} value [timestamp]`.
func parseSampleLine(line string) (string, []Label, float64, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	name := line[:i]
	if !isMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value (and optional timestamp) after name", line)
	}
	value, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: bad timestamp: %v", line, err)
		}
	}
	return name, labels, value, nil
}

// parseLabels consumes `name="value",...}` (after the opening brace) and
// returns the labels plus the unconsumed remainder of the line.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !isLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value is not quoted", name)
		}
		value, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %v", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		s = rest
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return labels, s[1:], nil
		default:
			return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
