package obs

import (
	"net/http"
	"strconv"
	"sync/atomic"
)

// reqPrefix distinguishes request IDs minted by different processes; the
// counter distinguishes requests within one.
var (
	reqPrefix = randHex(3)
	reqSeq    atomic.Uint64
)

// NewRequestID mints a process-unique request ID: a random per-process
// prefix plus a sequence number, cheap enough for every request.
func NewRequestID() string {
	return reqPrefix + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

// EnsureTrace resolves the request's trace context: a well-formed inbound
// traceparent header continues that trace under a fresh span ID (this
// tier's own hop), anything else starts a new trace. The returned request
// carries the context (TraceFrom) for handlers and onward propagation.
func EnsureTrace(r *http.Request) (TraceContext, *http.Request) {
	tc, err := ParseTraceparent(r.Header.Get(TraceparentHeader))
	if err != nil {
		tc = NewTrace()
	} else {
		tc = tc.WithNewSpan()
	}
	return tc, r.WithContext(ContextWithTrace(r.Context(), tc))
}

// StatusRecorder wraps a ResponseWriter to capture the response status for
// request logs and latency histograms. It passes Flush through so SSE
// streaming keeps working behind it.
type StatusRecorder struct {
	http.ResponseWriter
	code int
}

// NewStatusRecorder wraps w.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

// WriteHeader records the first status code written.
func (r *StatusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write implies 200 when the handler never called WriteHeader.
func (r *StatusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports flushing.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the recorded status code (200 when nothing was written).
func (r *StatusRecorder) Status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}
