// Package obs is the shared observability layer of the serving tiers
// (internal/service, internal/gateway, and their daemons): structured
// logging on log/slog with a common attribute vocabulary, W3C trace-context
// (traceparent) propagation so one trace ID follows a submission through
// gateway → shard → queue → runner, fixed-bucket latency histograms with
// dependency-free Prometheus text exposition (writer, strict parser, and a
// bucket-wise cross-shard merge), Go runtime metrics, and a debug handler
// bundling net/http/pprof and expvar.
//
// Everything here is deliberately small and self-contained: no metric
// client library, no tracing SDK. The service needs exactly four things —
// lines it can grep by trace ID, distributions it can read tails off,
// profiles it can pull when a tail misbehaves, and an exposition format
// strict scrapers accept — and this package is the single place all four
// are defined, so every tier emits them identically.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Standard log attribute keys. Every tier uses these same keys, so one
// grep (or one jq filter in JSON mode) follows a request across processes.
const (
	// KeyRequestID identifies one HTTP request within one process.
	KeyRequestID = "req_id"
	// KeyTraceID is the W3C trace ID shared across tiers (see TraceContext).
	KeyTraceID = "trace_id"
	// KeySpanID is this tier's span within the trace.
	KeySpanID = "span_id"
	// KeyShard names the serving shard (or the shard a gateway routed to).
	KeyShard = "shard"
	// KeyTenant names the authenticated tenant; omitted when anonymous.
	KeyTenant = "tenant"
	// KeyJob is the job ID a line concerns.
	KeyJob = "job"
	// KeySpec is a spec-hash prefix (12 hex chars) identifying the matrix.
	KeySpec = "spec"
	// KeyRoute is the matched HTTP route pattern ("POST /v1/matrices").
	KeyRoute = "route"
	// KeyStatus is the HTTP response status code.
	KeyStatus = "status"
	// KeyDurationMs is a duration in (fractional) milliseconds.
	KeyDurationMs = "duration_ms"
)

// SpecPrefix shortens a spec content hash to the 12-char prefix used in
// log lines — long enough to be unambiguous in any real deployment, short
// enough to scan.
func SpecPrefix(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the structured logger behind the -log-format and
// -log-level flags: format is "text" (the default, human-oriented
// logfmt-style) or "json" (one JSON object per line, machine-oriented);
// level gates verbosity ("debug", "info", "warn", "error").
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// Nop returns a logger that discards everything — the default when no
// logger is configured, keeping library behavior identical to the
// pre-observability releases.
func Nop() *slog.Logger { return slog.New(slog.DiscardHandler) }
