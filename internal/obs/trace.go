package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// TraceparentHeader is the W3C trace-context header name (lowercase per
// the spec; Go's http canonicalizes on the wire either way).
const TraceparentHeader = "traceparent"

// ErrTraceparent reports a malformed traceparent header value.
var ErrTraceparent = errors.New("obs: malformed traceparent")

// FlagSampled is the sampled bit of the traceparent flags octet.
const FlagSampled byte = 0x01

// TraceContext is a W3C trace-context triple: the trace ID shared by every
// tier a request crosses, the span ID of the tier that stamped it, and the
// trace flags. The zero value is invalid; mint with NewTrace or parse an
// inbound header with ParseTraceparent.
type TraceContext struct {
	// TraceID is 32 lowercase hex chars, not all zero.
	TraceID string
	// SpanID is 16 lowercase hex chars, not all zero.
	SpanID string
	// Flags is the flags octet (bit 0 = sampled).
	Flags byte
}

// Valid reports whether the context carries a well-formed, non-zero
// trace ID and span ID.
func (tc TraceContext) Valid() bool {
	return isNonZeroLowerHex(tc.TraceID, 32) && isNonZeroLowerHex(tc.SpanID, 16)
}

// String renders the context as a version-00 traceparent header value.
func (tc TraceContext) String() string {
	return fmt.Sprintf("00-%s-%s-%02x", tc.TraceID, tc.SpanID, tc.Flags)
}

// WithNewSpan keeps the trace ID but mints a fresh span ID — the operation
// each tier performs before acting on (or forwarding) an inbound trace, so
// every hop is distinguishable inside the shared trace.
func (tc TraceContext) WithNewSpan() TraceContext {
	tc.SpanID = randHex(8)
	return tc
}

// NewTrace mints a new sampled trace context with random IDs.
func NewTrace() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8), Flags: FlagSampled}
}

// ParseTraceparent parses a traceparent header value per the W3C
// trace-context spec: "ver-traceid-spanid-flags" with two lowercase hex
// chars of version (not "ff"), 32 of trace ID (not all zero), 16 of span
// ID (not all zero), and two of flags. Version 00 must end at the flags;
// higher versions may carry additional "-"-separated fields, which are
// ignored. The empty string parses as an error (no inbound context), not a
// malformed one — callers mint a fresh trace either way.
func ParseTraceparent(s string) (TraceContext, error) {
	fail := func(why string) (TraceContext, error) {
		return TraceContext{}, fmt.Errorf("%w: %s", ErrTraceparent, why)
	}
	if len(s) < 55 {
		return fail("shorter than the 55-char version-00 form")
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return fail("separators not at offsets 2, 35, 52")
	}
	version, traceID, spanID, flags := s[:2], s[3:35], s[36:52], s[53:55]
	if !isLowerHex(version) {
		return fail("non-hex version")
	}
	if version == "ff" {
		return fail("version ff is forbidden")
	}
	switch {
	case len(s) == 55:
		// exact version-00 shape, any version accepts it
	case version == "00":
		return fail("version 00 carries trailing data")
	case s[55] != '-':
		return fail("trailing data without a separator")
	}
	if !isLowerHex(flags) {
		return fail("non-hex flags")
	}
	if !isNonZeroLowerHex(traceID, 32) {
		return fail("trace ID must be 32 lowercase hex chars, not all zero")
	}
	if !isNonZeroLowerHex(spanID, 16) {
		return fail("span ID must be 16 lowercase hex chars, not all zero")
	}
	var fb byte
	_, _ = fmt.Sscanf(flags, "%02x", &fb)
	return TraceContext{TraceID: traceID, SpanID: spanID, Flags: fb}, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isNonZeroLowerHex(s string, n int) bool {
	if len(s) != n || !isLowerHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

// randHex returns 2n lowercase hex chars of cryptographic randomness.
func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b) // never fails (Go 1.24 crypto/rand contract)
	return hex.EncodeToString(b)
}

// ctxKey keys obs values in a context.Context.
type ctxKey int

const (
	traceKey ctxKey = iota
	requestIDKey
)

// ContextWithTrace returns ctx carrying tc.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey, tc)
}

// TraceFrom extracts the trace context installed by ContextWithTrace.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceKey).(TraceContext)
	return tc, ok
}

// ContextWithRequestID returns ctx carrying a request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom extracts the request ID installed by ContextWithRequestID.
func RequestIDFrom(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(requestIDKey).(string)
	return id, ok
}
