// Package obstest validates Prometheus text exposition output in tests:
// it parses a scrape strictly and checks the structural invariants a real
// scraper relies on — HELP/TYPE pairing, no duplicate series, and
// histogram consistency (monotone cumulative buckets, a +Inf bucket that
// equals _count, exactly one _sum/_count per bucket group).
package obstest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mrclone/internal/obs"
)

// Validate parses data as Prometheus text exposition and returns every
// structural problem found (nil when the scrape is clean).
func Validate(data string) []string {
	fams, err := obs.ParseExposition(data)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue // metadata-only family: legal, nothing to check
		}
		if !f.HelpSet {
			addf("family %s has samples but no # HELP line", f.Name)
		}
		if !f.TypeSet {
			addf("family %s has samples but no # TYPE line", f.Name)
		}

		seen := map[string]bool{}
		for _, s := range f.Samples {
			labels := append([]obs.Label(nil), s.Labels...)
			sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
			key := s.Suffix + "\xff" + obs.LabelKey(labels)
			if seen[key] {
				addf("family %s: duplicate series %s%s%s",
					f.Name, f.Name, s.Suffix, obs.LabelKey(labels))
			}
			seen[key] = true
		}

		if f.Type == "histogram" {
			validateHistogram(f, addf)
		}
	}
	return problems
}

// validateHistogram checks one histogram family's bucket groups.
func validateHistogram(f *obs.Family, addf func(string, ...any)) {
	type group struct {
		buckets []obs.Sample
		sums    int
		counts  int
		count   float64
	}
	groups := map[string]*group{}
	order := []string{}
	get := func(s obs.Sample) *group {
		key := obs.LabelKey(s.BaseLabels())
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	for _, s := range f.Samples {
		g := get(s)
		switch s.Suffix {
		case "_bucket":
			g.buckets = append(g.buckets, s)
		case "_sum":
			g.sums++
		case "_count":
			g.counts++
			g.count = s.Value
		default:
			addf("histogram %s has plain sample %s%s", f.Name, f.Name, obs.LabelKey(s.Labels))
		}
	}

	for _, key := range order {
		g := groups[key]
		where := fmt.Sprintf("histogram %s{%s}", f.Name, key)
		if g.sums != 1 {
			addf("%s: want exactly one _sum, got %d", where, g.sums)
		}
		if g.counts != 1 {
			addf("%s: want exactly one _count, got %d", where, g.counts)
		}
		if len(g.buckets) == 0 {
			addf("%s: no _bucket samples", where)
			continue
		}

		type bucket struct {
			le    float64
			count float64
		}
		buckets := make([]bucket, 0, len(g.buckets))
		sawInf := false
		for _, s := range g.buckets {
			leStr := s.Label("le")
			if leStr == "" {
				addf("%s: _bucket sample without le label", where)
				continue
			}
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
				sawInf = true
			} else {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					addf("%s: unparseable le=%q", where, leStr)
					continue
				}
				le = v
			}
			buckets = append(buckets, bucket{le: le, count: s.Value})
		}
		if !sawInf {
			addf("%s: missing le=\"+Inf\" bucket", where)
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		for i := 1; i < len(buckets); i++ {
			if buckets[i-1].le == buckets[i].le {
				addf("%s: duplicate le=%g bucket", where, buckets[i].le)
			}
			if buckets[i].count < buckets[i-1].count {
				addf("%s: cumulative bucket counts decrease at le=%g (%g < %g)",
					where, buckets[i].le, buckets[i].count, buckets[i-1].count)
			}
		}
		if sawInf && g.counts == 1 {
			inf := buckets[len(buckets)-1]
			if inf.count != g.count {
				addf("%s: le=\"+Inf\" bucket (%g) != _count (%g)", where, inf.count, g.count)
			}
		}
	}
}

// MustValidate fails the given test-like sink when Validate finds
// problems. It takes an interface so both *testing.T and *testing.F work.
func MustValidate(t interface {
	Helper()
	Fatalf(string, ...any)
}, data string) {
	t.Helper()
	if problems := Validate(data); len(problems) > 0 {
		t.Fatalf("invalid exposition:\n  %s", strings.Join(problems, "\n  "))
	}
}
