package obs

import "runtime"

// WriteRuntimeMetrics folds Go runtime health into an exposition stream:
// goroutine count, heap occupancy, and GC activity — the signals that
// explain a process-level tail (GC pause pile-up, goroutine leak, heap
// growth) when the request-level histograms point at this process. The
// go_ prefix marks them process-local; the gateway's cross-shard merge
// excludes them so aggregates never mix shard and gateway runtimes.
func WriteRuntimeMetrics(e *ExpoWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	e.Gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
	e.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	e.Gauge("go_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	e.Gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	e.Gauge("go_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC))
	e.Counter("go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", float64(ms.TotalAlloc))
	e.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	e.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
}
