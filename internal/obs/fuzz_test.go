package obs

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent asserts the parser's safety contract: no panics on
// arbitrary input, and anything accepted is a valid context that renders
// back to a header the parser accepts again (version normalized to 00).
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-state")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("garbage")
	f.Add(strings.Repeat("-", 60))
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")

	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted invalid context from %q: %+v", s, tc)
		}
		rt, err := ParseTraceparent(tc.String())
		if err != nil {
			t.Fatalf("re-parse of rendered %q failed: %v", tc.String(), err)
		}
		if rt != tc {
			t.Fatalf("render/parse not stable: %+v != %+v", rt, tc)
		}
	})
}
