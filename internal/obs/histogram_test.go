package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", s.Count)
	}
	want := []uint64{2, 1, 1, 1} // <=0.1: {0.05, 0.1}; <=1: {0.5}; <=10: {5}; +Inf: {50}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := 0.05 + 0.1 + 0.5 + 5 + 50; s.Sum != got {
		t.Fatalf("sum = %g, want %g", s.Sum, got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec([]float64{1}, "route", "status")
	v.Observe(0.5, "GET /a", "200")
	v.Observe(2, "GET /a", "200")
	v.Observe(0.5, "GET /b", "500")
	snaps := v.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("series = %d, want 2", len(snaps))
	}
	first := snaps[0]
	if first.Labels[0] != (Label{"route", "GET /a"}) || first.Labels[1] != (Label{"status", "200"}) {
		t.Fatalf("labels = %+v", first.Labels)
	}
	if first.Snap.Count != 2 || first.Snap.Counts[0] != 1 || first.Snap.Counts[1] != 1 {
		t.Fatalf("snapshot = %+v", first.Snap)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {1, 0.5},
		"duplicate":  {1, 1},
		"inf":        {1, math.Inf(1)},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) should panic", bounds)
				}
			}()
			NewHistogram(bounds)
		})
	}
}
