package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// LatencyBuckets is the shared fixed bucket layout (upper bounds in
// seconds) of every latency histogram the serving tiers export. One layout
// everywhere is what makes the gateway's cross-shard merge bucket-wise
// exact: equal `le` labels sum without resampling. The range spans a
// sub-millisecond cache hit to a two-minute matrix run; +Inf is implicit.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Buckets are defined by their finite upper bounds (ascending); values
// above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last = overflow (+Inf)
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given finite, strictly
// ascending upper bounds. The slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && bounds[i-1] >= b {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and land in no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds plus the overflow bucket,
// and the running sum and count. The exposition writer renders it as the
// cumulative `_bucket`/`_sum`/`_count` series Prometheus expects.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1
	Sum    float64
	Count  uint64
}

// LabeledHistogram pairs a label set with a histogram snapshot — one
// series group of a labeled histogram family.
type LabeledHistogram struct {
	Labels []Label
	Snap   HistogramSnapshot
}

// vecSep joins label values into map keys; label values containing it
// would collide, but every label this repo emits (routes, status codes)
// cannot carry 0xff bytes.
const vecSep = "\xff"

// HistogramVec is a histogram family partitioned by a fixed set of label
// names (for example route and status code). Series are created lazily on
// first observation.
type HistogramVec struct {
	mu     sync.Mutex
	bounds []float64
	names  []string
	hists  map[string]*Histogram
}

// NewHistogramVec builds a labeled histogram family; labelNames must be
// non-empty (use Histogram for the unlabeled case).
func NewHistogramVec(bounds []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs at least one label name")
	}
	return &HistogramVec{
		bounds: append([]float64(nil), bounds...),
		names:  append([]string(nil), labelNames...),
		hists:  make(map[string]*Histogram),
	}
}

// Observe records one value in the series identified by labelValues,
// which must match the constructor's label names positionally.
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	if len(labelValues) != len(v.names) {
		panic(fmt.Sprintf("obs: HistogramVec got %d label values, want %d",
			len(labelValues), len(v.names)))
	}
	key := strings.Join(labelValues, vecSep)
	v.mu.Lock()
	h, ok := v.hists[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.hists[key] = h
	}
	v.mu.Unlock()
	h.Observe(val)
}

// Snapshots returns every series' labels and snapshot, sorted by label
// values for deterministic exposition output.
func (v *HistogramVec) Snapshots() []LabeledHistogram {
	v.mu.Lock()
	keys := make([]string, 0, len(v.hists))
	for k := range v.hists {
		keys = append(keys, k)
	}
	hists := make([]*Histogram, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		hists = append(hists, v.hists[k])
	}
	v.mu.Unlock()

	out := make([]LabeledHistogram, len(keys))
	for i, k := range keys {
		vals := strings.Split(k, vecSep)
		labels := make([]Label, len(v.names))
		for j, name := range v.names {
			labels[j] = Label{Name: name, Value: vals[j]}
		}
		out[i] = LabeledHistogram{Labels: labels, Snap: hists[i].Snapshot()}
	}
	return out
}
